#include "bbb/dyn/allocator.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/core/probe.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/spec.hpp"

namespace bbb::dyn {

// ---------------------------------------------------------------------------
// DynState
// ---------------------------------------------------------------------------

DynState::DynState(std::uint32_t n)
    : loads_(n),
      level_count_(1, n),
      phi_weight_(static_cast<double>(n)),
      pow_neg_(1, 1.0),
      nonempty_pos_(n, 0) {}

double DynState::pow_neg(std::uint32_t l) const {
  // (1+eps)^{-l}, extended one level at a time so lookups stay O(1): loads
  // only ever move by one level per event.
  while (pow_neg_.size() <= l) {
    pow_neg_.push_back(pow_neg_.back() / (1.0 + core::kPotentialEpsilon));
  }
  return pow_neg_[l];
}

void DynState::add_ball(std::uint32_t bin) {
  const std::uint32_t l = loads_.load(bin);
  loads_.add_ball(bin);

  if (level_count_.size() <= static_cast<std::size_t>(l) + 1) {
    level_count_.resize(static_cast<std::size_t>(l) + 2, 0);
  }
  --level_count_[l];
  ++level_count_[l + 1];
  if (l + 1 > max_) max_ = l + 1;
  // The moved bin was the last one at the minimum level: the new minimum is
  // one level up (where this bin now sits), so min never skips a level.
  if (l == min_ && level_count_[l] == 0) ++min_;

  sum_sq_ += 2ULL * l + 1;
  phi_weight_ += pow_neg(l + 1) - pow_neg(l);

  if (l == 0) {
    nonempty_pos_[bin] = static_cast<std::uint32_t>(nonempty_.size());
    nonempty_.push_back(bin);
  }
}

void DynState::remove_ball(std::uint32_t bin) {
  const std::uint32_t l = loads_.load(bin);
  if (l == 0) {
    throw std::invalid_argument("DynState::remove_ball: bin " + std::to_string(bin) +
                                " is empty");
  }
  loads_.remove_ball(bin);

  --level_count_[l];
  ++level_count_[l - 1];
  if (l - 1 < min_) min_ = l - 1;
  // The moved bin was the last one at the maximum level; it now occupies
  // level l - 1, so the maximum drops by exactly one.
  if (l == max_ && level_count_[l] == 0) --max_;

  sum_sq_ -= 2ULL * l - 1;
  phi_weight_ += pow_neg(l - 1) - pow_neg(l);

  if (l == 1) {
    const std::uint32_t pos = nonempty_pos_[bin];
    const std::uint32_t last = nonempty_.back();
    nonempty_[pos] = last;
    nonempty_pos_[last] = pos;
    nonempty_.pop_back();
  }
}

double DynState::psi() const noexcept {
  const auto t = static_cast<double>(loads_.balls());
  return static_cast<double>(sum_sq_) - t * t / static_cast<double>(loads_.n());
}

double DynState::log_phi() const noexcept {
  const double avg = loads_.average();
  return std::log(phi_weight_) + (avg + 2.0) * std::log1p(core::kPotentialEpsilon);
}

std::uint32_t DynState::bins_with_load_at_least(std::uint32_t k) const noexcept {
  if (k == 0) return loads_.n();
  std::uint32_t count = 0;
  for (std::size_t l = k; l < level_count_.size(); ++l) count += level_count_[l];
  return count;
}

std::uint32_t DynState::sample_nonempty(rng::Engine& gen) const {
  if (nonempty_.empty()) {
    throw std::logic_error("DynState::sample_nonempty: every bin is empty");
  }
  return nonempty_[rng::uniform_below(gen, nonempty_.size())];
}

// ---------------------------------------------------------------------------
// Allocators
// ---------------------------------------------------------------------------

StreamingAllocator::~StreamingAllocator() = default;

std::uint32_t DynOneChoice::choose_bin(rng::Engine& gen) {
  ++probes_;
  return static_cast<std::uint32_t>(rng::uniform_below(gen, state_.n()));
}

DynGreedy::DynGreedy(std::uint32_t n, std::uint32_t d) : StreamingAllocator(n), d_(d) {
  if (d == 0) throw std::invalid_argument("DynGreedy: d must be positive");
}

std::string DynGreedy::name() const { return "greedy[" + std::to_string(d_) + "]"; }

std::uint32_t DynGreedy::choose_bin(rng::Engine& gen) {
  // Same shared candidate scan as core::DChoiceAllocator::place, so the
  // arrivals-only equivalence is bit-for-bit by construction.
  return core::least_loaded_of(gen, state_.n(), d_, probes_,
                               [this](std::uint32_t b) { return state_.load(b); });
}

DynAdaptive::DynAdaptive(std::uint32_t n, Bound bound, std::uint32_t slack)
    : StreamingAllocator(n), bound_mode_(bound), slack_(slack) {}

std::string DynAdaptive::name() const {
  const std::string base =
      bound_mode_ == Bound::kNet ? "adaptive-net" : "adaptive-total";
  return slack_ == 1 ? base : base + "[" + std::to_string(slack_) + "]";
}

std::uint64_t DynAdaptive::accept_bound() const noexcept {
  const std::uint64_t i =
      (bound_mode_ == Bound::kNet ? state_.balls() : total_placed_) + 1;
  const std::uint64_t base = core::ceil_div(i, state_.n());
  // base >= 1 since i >= 1, so the slack-0 variant never underflows.
  return slack_ == 0 ? base - 1 : base + slack_ - 1;
}

std::uint32_t DynAdaptive::choose_bin(rng::Engine& gen) {
  // Termination for either variant: with i balls contributing to the bound,
  // the i - 1 (or fewer) balls present cannot fill all n bins to
  // ceil(i/n), so some bin is at or below every bound >= ceil(i/n) - 1.
  const std::uint64_t bound = accept_bound();
  return core::probe_until(gen, state_.n(), probes_, [this, bound](std::uint32_t b) {
    return state_.load(b) <= bound;
  });
}

DynThreshold::DynThreshold(std::uint32_t n, std::uint32_t bound)
    : StreamingAllocator(n), bound_(bound) {}

std::string DynThreshold::name() const {
  return "threshold[" + std::to_string(bound_) + "]";
}

std::uint32_t DynThreshold::choose_bin(rng::Engine& gen) {
  // A fixed bound cannot adapt: once every bin exceeds it the probe loop
  // would never terminate. Detect that state in O(1) instead of spinning.
  if (state_.min_load() > bound_) {
    throw std::logic_error("DynThreshold: every bin is above the acceptance bound " +
                           std::to_string(bound_));
  }
  return core::probe_until(gen, state_.n(), probes_, [this](std::uint32_t b) {
    return state_.load(b) <= bound_;
  });
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kKind = "allocator";

std::uint32_t optional_slack(const core::ParsedSpec& s, const std::string& spec) {
  return core::spec_optional_arg_u32(s, 1, spec, kKind);
}

}  // namespace

std::unique_ptr<StreamingAllocator> make_streaming_allocator(const std::string& spec,
                                                             std::uint32_t n) {
  const core::ParsedSpec s = core::parse_spec(spec, kKind);
  if (s.name == "one-choice") {
    if (!s.args.empty()) {
      throw std::invalid_argument("allocator spec '" + spec + "': takes no arguments");
    }
    return std::make_unique<DynOneChoice>(n);
  }
  if (s.name == "greedy") {
    if (s.args.size() != 1) {
      throw std::invalid_argument("allocator spec '" + spec + "': needs greedy[d]");
    }
    return std::make_unique<DynGreedy>(n, core::spec_arg_u32(s, 0, spec, kKind));
  }
  if (s.name == "adaptive-net") {
    return std::make_unique<DynAdaptive>(n, DynAdaptive::Bound::kNet,
                                         optional_slack(s, spec));
  }
  if (s.name == "adaptive-total") {
    return std::make_unique<DynAdaptive>(n, DynAdaptive::Bound::kTotal,
                                         optional_slack(s, spec));
  }
  if (s.name == "threshold") {
    if (s.args.size() != 1) {
      throw std::invalid_argument("allocator spec '" + spec +
                                  "': needs threshold[bound]");
    }
    return std::make_unique<DynThreshold>(n, core::spec_arg_u32(s, 0, spec, kKind));
  }
  throw std::invalid_argument("unknown streaming allocator '" + s.name + "'");
}

std::vector<std::string> streaming_allocator_specs() {
  return {"one-choice", "greedy[d]", "adaptive-net", "adaptive-net[slack]",
          "adaptive-total", "adaptive-total[slack]", "threshold[bound]"};
}

}  // namespace bbb::dyn
