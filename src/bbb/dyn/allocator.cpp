#include "bbb/dyn/allocator.hpp"

#include "bbb/core/protocols/registry.hpp"

namespace bbb::dyn {

std::unique_ptr<StreamingAllocator> make_streaming_allocator(const std::string& spec,
                                                             std::uint32_t n,
                                                             std::uint64_t m_hint,
                                                             StateLayout layout) {
  return core::make_streaming_allocator(spec, n, m_hint, layout);
}

std::vector<std::string> streaming_allocator_specs() {
  return core::protocol_specs();
}

}  // namespace bbb::dyn
