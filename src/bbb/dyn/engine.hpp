#pragma once
/// \file engine.hpp
/// The event-driven dynamic engine: drive a workload's event stream into a
/// streaming allocator, maintain the ball registry departures need,
/// snapshot time-windowed metrics, and fold replicates through the same
/// par/ + stats/ machinery sim/runner uses for batch experiments.
///
/// Measurement model: the first `warmup` events burn in (the supermarket
/// model needs to fill to its stationary occupancy), the next `events`
/// events are measured. Steady-state scalars are *time-weighted* averages
/// over the measured window — each visited state is weighted by the
/// holding time until the next event, not counted once per event, because
/// the embedded jump chain over-weights high-occupancy states when the
/// total event rate grows with occupancy. `tail[k]` is the time-average
/// fraction of bins with load >= k — the quantity the Luczak–McDiarmid
/// fixed point predicts. Snapshots every `stride` measured events feed
/// trajectory plots the way sim/trace does for batch runs.
///
/// Determinism contract (mirrors sim/runner): replicate r of a config with
/// master seed s uses engine rng::SeedSequence(s).engine(r) for the
/// workload clock, the allocator's probes, and victim selection, in one
/// sequential stream — results are bit-identical for any thread count.
///
/// Victim selection caveat: rules that relocate balls after placement
/// (cuckoo; `stable_ball_identity() == false`) make any recorded
/// "ball b sits in bin i" stale, so for those the engine overrides the
/// workload's ball-based victim selection with uniform-nonempty-bin.

#include <cstdint>
#include <string>
#include <vector>

#include "bbb/dyn/allocator.hpp"
#include "bbb/dyn/workload.hpp"
#include "bbb/obs/harvest.hpp"
#include "bbb/obs/obs.hpp"
#include "bbb/par/thread_pool.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::dyn {

/// One dynamic experiment: allocator x workload at fixed n, replicated.
struct DynConfig {
  std::string allocator_spec = "adaptive-net";
  std::string workload_spec = "supermarket[90]";
  std::uint32_t n = 1024;         ///< bins
  std::uint64_t m_hint = 0;       ///< total-count hint for fixed-bound rules
                                  ///< (threshold); 0 = unknown (registry uses n)
  /// BinState storage layout. kCompact (the giant-scale 8-bit-lane tier)
  /// supports every workload whose departures pick *balls* (churn, bursty,
  /// chains); workloads that serve a uniformly random busy *bin*
  /// (supermarket) need the wide layout's nonempty index, as do rules
  /// without stable ball identity (cuckoo) — those configs are rejected
  /// up-front with std::invalid_argument.
  core::StateLayout layout = core::StateLayout::kWide;
  std::uint64_t warmup = 32'768;  ///< burn-in events before measurement
  std::uint64_t events = 65'536;  ///< measured events
  std::uint64_t stride = 1'024;   ///< measured events between snapshots
  std::uint32_t tail_max = 12;    ///< track frac(load >= k) for k <= tail_max
  std::uint32_t replicates = 8;
  std::uint64_t seed = 42;
  /// Observability settings. `counters` harvests the core's passive
  /// counters per replicate; `full` additionally times every place/remove
  /// into per-replicate latency histograms (the one layer where per-event
  /// timing is proportionate: dyn events cost microseconds, not the
  /// nanoseconds of a batch placement) and emits heartbeats. Never
  /// affects placements or the randomness stream.
  obs::ObsConfig obs;

  /// Human-readable one-line description for logs and table titles.
  [[nodiscard]] std::string describe() const;
};

/// One time-windowed snapshot of a running dynamic system.
struct DynSnapshot {
  double time = 0.0;          ///< workload clock at the snapshot
  std::uint64_t events = 0;   ///< measured events so far
  std::uint64_t balls = 0;    ///< net balls in the system
  std::uint64_t probes = 0;   ///< cumulative probes
  std::uint32_t max_load = 0;
  std::uint32_t min_load = 0;
  double psi = 0.0;
  double log_phi = 0.0;
};

/// Steady-state outcome of one replicate. All mean_* fields and `tail`
/// are time-weighted averages over the measured window.
struct DynReplicate {
  double mean_balls = 0.0;  ///< time-avg net balls over the measured window
  double mean_psi = 0.0;
  double mean_gap = 0.0;
  double mean_max = 0.0;
  std::uint32_t peak_max = 0;       ///< worst max load seen while measuring
  double probes_per_ball = 0.0;     ///< probes per placed ball, measured window
  /// Departure events that arrived with zero balls in the system. The
  /// shipped generators never emit one (their departure clock has rate
  /// zero when empty, asserted across every generator x allocator combo in
  /// tests/dyn/engine_test.cpp); a nonzero count flags a broken custom
  /// generator — the event still consumed measured time and was *not*
  /// applied.
  std::uint64_t dropped_departures = 0;
  std::vector<double> tail;         ///< tail[k] = time-avg frac bins load >= k
  std::vector<DynSnapshot> snapshots;
  /// Core counters harvested after the replicate (obs level >= counters).
  obs::CoreCounters counters;
  /// Replicate wall time (obs level >= counters).
  std::uint64_t wall_ns = 0;
  /// Per-event latency histograms over the whole replicate, filled only
  /// at obs level full: every arrival's place() / place_weighted() call
  /// and every applied departure's remove() call.
  obs::LatencyHistogram place_ns;
  obs::LatencyHistogram remove_ns;
};

/// Aggregated outcome of one dynamic experiment.
struct DynSummary {
  DynConfig config;
  std::string allocator_name;  ///< canonical StreamingAllocator::name()
  std::string workload_name;   ///< canonical Workload::name()
  stats::RunningStats balls;
  stats::RunningStats psi;
  stats::RunningStats gap;
  stats::RunningStats max_load;
  stats::RunningStats peak_max;
  stats::RunningStats probes_per_ball;
  std::uint64_t dropped_departures = 0;   ///< summed over replicates
  std::vector<stats::RunningStats> tail;  ///< per-k fold of replicate tails
  std::vector<DynReplicate> replicates;   ///< raw rows, replicate order
  /// Metric snapshot (counters summed, place/remove latency histograms
  /// merged in replicate order, steady-state gap/Ψ gauges); empty when
  /// the config's obs level is off.
  obs::Snapshot obs;

  /// Mean steady-state Psi / n — the smoothness number bench_dyn_churn
  /// reports (Corollary 3.5 says O(1) for the batch protocol).
  [[nodiscard]] double psi_per_bin() const;
};

/// Execute one replicate (exposed for tests and custom aggregation).
[[nodiscard]] DynReplicate run_dynamic_replicate(const DynConfig& config,
                                                 std::uint32_t replicate_index);

/// Run all replicates on `pool` and aggregate (fold in replicate order).
/// \throws std::invalid_argument for bad config (unknown specs, n == 0,
///         replicates == 0, events == 0).
[[nodiscard]] DynSummary run_dynamic(const DynConfig& config, par::ThreadPool& pool);

/// Convenience overload owning a transient pool (hardware concurrency).
[[nodiscard]] DynSummary run_dynamic(const DynConfig& config);

}  // namespace bbb::dyn
