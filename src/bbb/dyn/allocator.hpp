#pragma once
/// \file allocator.hpp
/// The dynamic-workload allocator layer — since the single-streaming-core
/// refactor, a *thin veneer* over core/rule.hpp: the bin-load state with
/// O(1) incremental metrics is `core::BinState`, the decision rules are
/// the one registry in core/protocols/registry.hpp, and the pairing of the
/// two is `core::StreamingAllocator`. This header re-exports those names
/// for the dyn engine and builds allocators from spec strings.
///
/// Every registry spec runs here — the full batch vocabulary (one-choice,
/// greedy[d], left[d], memory[d,k], threshold, doubling-threshold,
/// adaptive and its net/total/stale/skewed variants, batched,
/// self-balancing, cuckoo) under every workload generator. Departures
/// expose one genuine design fork the batch papers never face: for
/// bound-tracking rules, is the ball index i the number of balls *ever
/// placed* (total; monotone bound that goes vacuous under sustained churn)
/// or the number *in the system* (net; the bound stays tight forever)?
/// Both variants are first-class specs (`adaptive-total`, `adaptive-net`);
/// bench_dyn_churn measures the separation.
///
/// Invariants (property-tested in tests/dyn/allocator_test.cpp):
///   * every BinState metric equals the batch recomputation from
///     core/metrics.hpp after any interleaving of add/remove, for every
///     rule in the registry;
///   * place() followed by no remove() reproduces the matching batch
///     protocol bit-for-bit from the same engine state for every rule
///     with batch_equivalent() (tests/dyn/batch_equivalence_test.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::dyn {

using core::BinState;
using core::StateLayout;
using core::StreamingAllocator;

/// Build a streaming allocator from a registry spec (see
/// core/protocols/registry.hpp for the grammar). `m_hint` provisions
/// rules that need a total ball count up-front (threshold's fixed bound);
/// 0 = unknown, which the registry resolves to n. `layout` selects the
/// BinState storage (compact = the giant-scale 8-bit-lane tier; rejects
/// workloads that serve uniformly random busy bins, see engine.hpp).
/// \throws std::invalid_argument for unknown names or malformed args.
[[nodiscard]] std::unique_ptr<StreamingAllocator> make_streaming_allocator(
    const std::string& spec, std::uint32_t n, std::uint64_t m_hint = 0,
    StateLayout layout = StateLayout::kWide);

/// All recognized spec shapes (== core::protocol_specs()), for --help /
/// --list output.
[[nodiscard]] std::vector<std::string> streaming_allocator_specs();

}  // namespace bbb::dyn
