#pragma once
/// \file allocator.hpp
/// The dynamic-workload allocator layer: streaming place()/remove() with
/// O(1) incremental metric maintenance.
///
/// The batch `Protocol` interface fills fresh bins and stops; a serving
/// system sees arrivals *and departures* (Luczak & McDiarmid's supermarket
/// model, churn, bursts). Two pieces live here:
///
///  * `DynState` — a LoadVector plus the bookkeeping that makes every
///    Section-2 metric incremental per event, no full rescan:
///      - level counts (number of bins at each load) give max/min/gap in
///        O(1) worst case, because one event moves one bin one level;
///      - S2 = sum l_i^2 gives Psi = S2 - t^2/n;
///      - W = sum (1+eps)^{-l_i} gives ln Phi = ln W + (t/n + 2) ln(1+eps);
///      - the nonempty-bin index supports O(1) "serve a uniformly random
///        busy queue" departures (the supermarket service event).
///
///  * `StreamingAllocator` — the dynamic counterpart of `Protocol`:
///    place() allocates one ball with the wrapped protocol's decision rule,
///    remove(bin) processes one departure. Wrapped rules: one-choice,
///    greedy[d], threshold (fixed acceptance bound), and adaptive — where
///    departures expose a genuine design fork the batch papers never face:
///    the paper's bound for ball i is ceil(i/n) + slack - 1, but once balls
///    leave, is i the number of balls *ever placed* (total; monotone bound
///    that goes vacuous under sustained churn) or the number *in the
///    system* (net; the bound stays tight forever)? Both variants are
///    implemented (`DynAdaptive::Bound`); bench_dyn_churn measures the
///    separation.
///
/// Invariants (property-tested in tests/dyn/allocator_test.cpp):
///   * every DynState metric equals the batch recomputation from
///     core/metrics.hpp after any interleaving of add/remove;
///   * place() followed by no remove() reproduces the matching batch
///     protocol bit-for-bit from the same engine state
///     (tests/dyn/batch_equivalence_test.cpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbb/core/load_vector.hpp"
#include "bbb/core/metrics.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::dyn {

/// Bin loads plus incremental metrics. All mutators are O(1) worst case.
class DynState {
 public:
  /// \param n number of bins. \throws std::invalid_argument if n == 0.
  explicit DynState(std::uint32_t n);

  /// Place one ball into `bin`, updating every derived metric.
  void add_ball(std::uint32_t bin);

  /// Remove one ball from `bin`. \throws std::invalid_argument if empty.
  void remove_ball(std::uint32_t bin);

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    return loads_.load(bin);
  }
  [[nodiscard]] std::uint32_t n() const noexcept { return loads_.n(); }
  [[nodiscard]] std::uint64_t balls() const noexcept { return loads_.balls(); }
  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return loads_.loads();
  }

  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_; }
  [[nodiscard]] std::uint32_t min_load() const noexcept { return min_; }
  [[nodiscard]] std::uint32_t gap() const noexcept { return max_ - min_; }

  /// Quadratic potential Psi = sum (l_i - t/n)^2 = S2 - t^2/n.
  [[nodiscard]] double psi() const noexcept;

  /// ln Phi with the paper's eps = 1/200, maintained incrementally.
  [[nodiscard]] double log_phi() const noexcept;

  /// Number of bins with load >= k (suffix sum over level counts; O(max
  /// load), intended for snapshots, not per-event hot paths with large k).
  [[nodiscard]] std::uint32_t bins_with_load_at_least(std::uint32_t k) const noexcept;

  /// level_counts()[l] = number of bins with load exactly l. May carry
  /// trailing zero entries above max_load().
  [[nodiscard]] const std::vector<std::uint32_t>& level_counts() const noexcept {
    return level_count_;
  }

  [[nodiscard]] std::uint32_t nonempty_bins() const noexcept {
    return static_cast<std::uint32_t>(nonempty_.size());
  }

  /// A uniformly random bin among those with load > 0 — the supermarket
  /// model's "one busy server completes a job" event.
  /// \throws std::logic_error if every bin is empty.
  [[nodiscard]] std::uint32_t sample_nonempty(rng::Engine& gen) const;

 private:
  core::LoadVector loads_;
  std::vector<std::uint32_t> level_count_;  // level_count_[l] = #bins at load l
  std::uint32_t max_ = 0;
  std::uint32_t min_ = 0;
  std::uint64_t sum_sq_ = 0;  // S2 = sum l_i^2 (exact while it fits 64 bits)
  double phi_weight_;         // W = sum (1+eps)^{-l_i}
  mutable std::vector<double> pow_neg_;      // cache of (1+eps)^{-l}
  std::vector<std::uint32_t> nonempty_;      // bin ids with load > 0
  std::vector<std::uint32_t> nonempty_pos_;  // bin -> index in nonempty_

  [[nodiscard]] double pow_neg(std::uint32_t l) const;
};

/// Abstract streaming allocator: one protocol decision rule over a DynState.
class StreamingAllocator {
 public:
  /// \throws std::invalid_argument if n == 0 (via DynState).
  explicit StreamingAllocator(std::uint32_t n) : state_(n) {}
  virtual ~StreamingAllocator();

  /// Short stable identifier that round-trips through
  /// make_streaming_allocator, e.g. "adaptive-net", "greedy[2]".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocate one ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen) {
    const std::uint32_t bin = choose_bin(gen);
    state_.add_ball(bin);
    ++total_placed_;
    return bin;
  }

  /// Process one departure from `bin`.
  /// \throws std::invalid_argument if the bin is empty.
  void remove(std::uint32_t bin) { state_.remove_ball(bin); }

  [[nodiscard]] const DynState& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Balls ever placed (monotone; state().balls() is the net count).
  [[nodiscard]] std::uint64_t total_placed() const noexcept { return total_placed_; }

 protected:
  /// Pick the bin for the next ball, counting probes. Decision loops are
  /// shared with the batch allocators (core/probe.hpp), so arrivals-only
  /// streams reproduce the batch results bit-for-bit by construction.
  virtual std::uint32_t choose_bin(rng::Engine& gen) = 0;

  DynState state_;
  std::uint64_t probes_ = 0;
  std::uint64_t total_placed_ = 0;
};

/// One-choice: each ball to one uniform bin (the M/M/1 farm baseline).
class DynOneChoice final : public StreamingAllocator {
 public:
  explicit DynOneChoice(std::uint32_t n) : StreamingAllocator(n) {}
  [[nodiscard]] std::string name() const override { return "one-choice"; }

 protected:
  std::uint32_t choose_bin(rng::Engine& gen) override;
};

/// greedy[d]: d uniform candidates, least loaded wins, reservoir tie-break
/// — identical randomness consumption to core::DChoiceAllocator.
class DynGreedy final : public StreamingAllocator {
 public:
  /// \throws std::invalid_argument if d == 0.
  DynGreedy(std::uint32_t n, std::uint32_t d);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }

 protected:
  std::uint32_t choose_bin(rng::Engine& gen) override;

 private:
  std::uint32_t d_;
};

/// The paper's adaptive protocol under departures, both bound variants.
class DynAdaptive final : public StreamingAllocator {
 public:
  enum class Bound : std::uint8_t {
    kTotal,  ///< i = balls ever placed — the literal reading of Figure 1
    kNet,    ///< i = balls in the system — the bound that stays tight
  };

  DynAdaptive(std::uint32_t n, Bound bound, std::uint32_t slack = 1);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Bound bound_mode() const noexcept { return bound_mode_; }
  /// Acceptance bound the next ball will use (load <= bound accepted).
  [[nodiscard]] std::uint64_t accept_bound() const noexcept;

 protected:
  std::uint32_t choose_bin(rng::Engine& gen) override;

 private:
  Bound bound_mode_;
  std::uint32_t slack_;
};

/// Threshold with a fixed per-bin acceptance bound b (accept load <= b).
/// The dynamic reading of Czumaj & Stemann: for a target net population m,
/// b = ceil(m/n) + slack - 1 reproduces the batch ThresholdAllocator.
class DynThreshold final : public StreamingAllocator {
 public:
  DynThreshold(std::uint32_t n, std::uint32_t bound);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }

 protected:
  /// \throws std::logic_error if every bin already exceeds the bound (the
  /// fixed bound cannot admit another ball — the deadlock adaptive avoids).
  std::uint32_t choose_bin(rng::Engine& gen) override;

 private:
  std::uint32_t bound_;
};

/// Build a streaming allocator from a spec string. Recognized specs:
///   one-choice
///   greedy[d]                e.g. greedy[2]
///   adaptive-net             = adaptive-net[1]
///   adaptive-net[slack]
///   adaptive-total           = adaptive-total[1]
///   adaptive-total[slack]
///   threshold[bound]         fixed acceptance bound (accept load <= bound)
/// \throws std::invalid_argument for unknown names or malformed args.
[[nodiscard]] std::unique_ptr<StreamingAllocator> make_streaming_allocator(
    const std::string& spec, std::uint32_t n);

/// All recognized spec shapes, for --help / --list output.
[[nodiscard]] std::vector<std::string> streaming_allocator_specs();

}  // namespace bbb::dyn
