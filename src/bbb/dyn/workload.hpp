#pragma once
/// \file workload.hpp
/// Event-stream generators for the dynamic engine: who arrives, who
/// leaves, and when.
///
/// A workload is a stateful generator producing one `DynEvent` at a time
/// from the current system occupancy (`WorkloadContext`). Continuous-time
/// workloads simulate competing exponential clocks (arrival rate vs total
/// departure rate) exactly; discrete workloads advance a unit clock.
///
/// The stock workloads cover the dynamic scenarios of the related work:
///  * supermarket[lambda*100] — Poisson arrivals at rate lambda*n, each
///    nonempty bin serves at unit rate (Luczak & McDiarmid, "On the power
///    of two choices: balls and bins in continuous time"); departures pick
///    a uniformly random *nonempty bin*;
///  * churn[population] / churn-oldest[population] — fixed-population
///    churn: fill to `population` balls, then forever kill one ball
///    (uniform or oldest) and re-place one — the steady-traffic regime the
///    ROADMAP's north star asks about;
///  * bursty[on*100,off*100,switch*100] — on/off modulated Poisson
///    arrivals with per-ball unit-rate departures (M/M/inf with a phase
///    process), the flash-crowd scenario;
///  * chains[lambda*100,s*100,max] — chain arrivals whose length is
///    Zipf(s)-distributed on {1..max} (Batu–Berenbrink–Cooper
///    chains-into-bins), per-ball departures; chain rate is normalized by
///    the mean length so the offered per-ball load is still lambda*n.
///
/// A `weighted:` prefix on chains turns on *atomic* chain placement — the
/// whole chain lands in one bin as a single weighted decision (the actual
/// chains-into-bins process) instead of being exploded into independent
/// unit placements. The engine routes ev.weight through
/// `PlacementRule::place_one(state, weight, gen)` for rules that
/// `supports_weights()` and falls back to the unit explode otherwise.
///
/// Scaled-by-100 integer spec arguments follow the registry convention of
/// skewed-adaptive[s*100].

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/rng/zipf.hpp"

namespace bbb::dyn {

enum class EventKind : std::uint8_t {
  kArrival,    ///< `weight` balls join (a chain arrives as one event)
  kDeparture,  ///< one ball leaves; the victim is picked per DepartSelect
};

/// How a departure event selects its victim.
enum class DepartSelect : std::uint8_t {
  kUniformBall,        ///< uniform over live balls (per-ball unit rates)
  kOldestBall,         ///< FIFO over arrival order
  kUniformNonemptyBin, ///< uniform over busy bins (supermarket service)
};

/// One workload event.
struct DynEvent {
  EventKind kind = EventKind::kArrival;
  std::uint32_t weight = 1;  ///< balls in this arrival (1 unless chains)
  double time = 0.0;         ///< absolute event time (strictly increasing)
};

/// Occupancy snapshot the generator needs to compute its rates.
struct WorkloadContext {
  std::uint64_t balls = 0;        ///< balls currently in the system
  std::uint32_t nonempty_bins = 0;
};

/// Abstract event-stream generator.
class Workload {
 public:
  virtual ~Workload();

  /// Spec-canonical identifier, e.g. "supermarket[90]".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Victim-selection rule for every departure this workload emits.
  [[nodiscard]] virtual DepartSelect depart_select() const noexcept = 0;

  /// True when a weight-w arrival is one atomic decision (the whole chain
  /// into one bin) rather than w independent unit placements.
  [[nodiscard]] virtual bool atomic_arrivals() const noexcept { return false; }

  /// Produce the next event. Generators never emit a departure when
  /// ctx.balls == 0 (the corresponding clock has rate zero).
  [[nodiscard]] virtual DynEvent next(rng::Engine& gen, const WorkloadContext& ctx) = 0;
};

/// The supermarket model: Poisson(lambda*n) arrivals, unit-rate service at
/// every nonempty bin. Stable for lambda < 1.
class SupermarketWorkload final : public Workload {
 public:
  /// \throws std::invalid_argument unless 0 < lambda < 1 and n > 0.
  SupermarketWorkload(std::uint32_t n, double lambda);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DepartSelect depart_select() const noexcept override {
    return DepartSelect::kUniformNonemptyBin;
  }
  [[nodiscard]] DynEvent next(rng::Engine& gen, const WorkloadContext& ctx) override;
  [[nodiscard]] double lambda() const noexcept { return lambda_; }

 private:
  std::uint32_t n_;
  double lambda_;
  double time_ = 0.0;
};

/// Fixed-population churn: `population` arrivals, then strictly
/// alternating departure / arrival pairs forever.
class ChurnWorkload final : public Workload {
 public:
  /// \throws std::invalid_argument if population == 0.
  ChurnWorkload(std::uint64_t population, DepartSelect select);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DepartSelect depart_select() const noexcept override { return select_; }
  [[nodiscard]] DynEvent next(rng::Engine& gen, const WorkloadContext& ctx) override;
  [[nodiscard]] std::uint64_t population() const noexcept { return population_; }

 private:
  std::uint64_t population_;
  DepartSelect select_;
  std::uint64_t filled_ = 0;
  bool next_is_departure_ = true;  // meaningful once filled_ == population_
  double time_ = 0.0;
};

/// On/off modulated Poisson arrivals (rate lambda_on*n or lambda_off*n),
/// per-ball unit-rate departures, exponential phase holding times with
/// rate switch_rate.
class BurstyWorkload final : public Workload {
 public:
  /// \throws std::invalid_argument if rates are negative, both lambdas are
  /// zero, or switch_rate <= 0.
  BurstyWorkload(std::uint32_t n, double lambda_on, double lambda_off,
                 double switch_rate);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DepartSelect depart_select() const noexcept override {
    return DepartSelect::kUniformBall;
  }
  [[nodiscard]] DynEvent next(rng::Engine& gen, const WorkloadContext& ctx) override;
  /// Current phase (exposed for tests).
  [[nodiscard]] bool on() const noexcept { return on_; }

 private:
  std::uint32_t n_;
  double lambda_on_;
  double lambda_off_;
  double switch_rate_;
  bool on_ = true;
  double time_ = 0.0;
};

/// Chain arrivals with Zipf(s) lengths on {1..max_len}; per-ball
/// departures at unit rate. Chain rate lambda*n / E[len] keeps the offered
/// per-ball load at lambda*n. With `atomic` (the `weighted:` spec prefix)
/// each chain is one whole-chain-into-one-bin decision.
class ChainWorkload final : public Workload {
 public:
  /// \throws std::invalid_argument unless 0 < lambda < 1, s >= 0,
  /// max_len >= 1.
  ChainWorkload(std::uint32_t n, double lambda, double s, std::uint32_t max_len,
                bool atomic = false);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] DepartSelect depart_select() const noexcept override {
    return DepartSelect::kUniformBall;
  }
  [[nodiscard]] bool atomic_arrivals() const noexcept override { return atomic_; }
  [[nodiscard]] DynEvent next(rng::Engine& gen, const WorkloadContext& ctx) override;
  [[nodiscard]] double mean_length() const noexcept { return mean_length_; }

 private:
  std::uint32_t n_;
  double lambda_;
  double s_;
  std::uint32_t max_len_;
  bool atomic_;
  rng::ZipfDist lengths_;
  double mean_length_;
  double chain_rate_;
  double time_ = 0.0;
};

/// Build a workload from a spec string. Recognized specs:
///   supermarket[lambda*100]        e.g. supermarket[90]
///   churn[population]              uniform victim
///   churn-oldest[population]       FIFO victim
///   bursty[on*100,off*100,switch*100]
///   chains[lambda*100,s*100,max_len]
///   weighted:chains[lambda*100,s*100,max_len]   atomic whole-chain arrivals
/// \throws std::invalid_argument for unknown names or malformed args
///         (including `weighted:` on a workload other than chains).
[[nodiscard]] std::unique_ptr<Workload> make_workload(const std::string& spec,
                                                      std::uint32_t n);

/// All recognized spec shapes, for --help / --list output.
[[nodiscard]] std::vector<std::string> workload_specs();

}  // namespace bbb::dyn
