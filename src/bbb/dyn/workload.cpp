#include "bbb/dyn/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/core/spec.hpp"

namespace bbb::dyn {

namespace {

/// One exponential inter-event time at total rate `rate`.
double exp_step(rng::Engine& gen, double rate) {
  return -std::log(rng::next_double_nonzero(gen)) / rate;
}

std::string scaled100(double x) {
  return std::to_string(static_cast<std::uint64_t>(std::llround(x * 100.0)));
}

}  // namespace

Workload::~Workload() = default;

// ---------------------------------------------------------------------------
// SupermarketWorkload
// ---------------------------------------------------------------------------

SupermarketWorkload::SupermarketWorkload(std::uint32_t n, double lambda)
    : n_(n), lambda_(lambda) {
  if (n == 0) throw std::invalid_argument("SupermarketWorkload: n must be positive");
  if (!(lambda > 0.0) || lambda >= 1.0) {
    throw std::invalid_argument(
        "SupermarketWorkload: stability needs 0 < lambda < 1");
  }
}

std::string SupermarketWorkload::name() const {
  return "supermarket[" + scaled100(lambda_) + "]";
}

DynEvent SupermarketWorkload::next(rng::Engine& gen, const WorkloadContext& ctx) {
  const double arrival_rate = lambda_ * static_cast<double>(n_);
  const double depart_rate = static_cast<double>(ctx.nonempty_bins);
  const double total = arrival_rate + depart_rate;
  time_ += exp_step(gen, total);
  DynEvent ev;
  ev.time = time_;
  ev.kind = rng::next_double(gen) * total < arrival_rate ? EventKind::kArrival
                                                         : EventKind::kDeparture;
  return ev;
}

// ---------------------------------------------------------------------------
// ChurnWorkload
// ---------------------------------------------------------------------------

ChurnWorkload::ChurnWorkload(std::uint64_t population, DepartSelect select)
    : population_(population), select_(select) {
  if (population == 0) {
    throw std::invalid_argument("ChurnWorkload: population must be positive");
  }
  if (select == DepartSelect::kUniformNonemptyBin) {
    throw std::invalid_argument("ChurnWorkload: victims are balls, not bins");
  }
}

std::string ChurnWorkload::name() const {
  const std::string base =
      select_ == DepartSelect::kOldestBall ? "churn-oldest" : "churn";
  return base + "[" + std::to_string(population_) + "]";
}

DynEvent ChurnWorkload::next(rng::Engine& /*gen*/, const WorkloadContext& /*ctx*/) {
  DynEvent ev;
  if (filled_ < population_) {
    ++filled_;
    time_ += 1.0;
    ev.kind = EventKind::kArrival;
  } else {
    time_ += 0.5;  // one depart + re-place pair per unit of churn time
    ev.kind = next_is_departure_ ? EventKind::kDeparture : EventKind::kArrival;
    next_is_departure_ = !next_is_departure_;
  }
  ev.time = time_;
  return ev;
}

// ---------------------------------------------------------------------------
// BurstyWorkload
// ---------------------------------------------------------------------------

BurstyWorkload::BurstyWorkload(std::uint32_t n, double lambda_on, double lambda_off,
                               double switch_rate)
    : n_(n), lambda_on_(lambda_on), lambda_off_(lambda_off), switch_rate_(switch_rate) {
  if (n == 0) throw std::invalid_argument("BurstyWorkload: n must be positive");
  if (lambda_on < 0.0 || lambda_off < 0.0) {
    throw std::invalid_argument("BurstyWorkload: negative arrival rate");
  }
  if (lambda_on == 0.0 && lambda_off == 0.0) {
    throw std::invalid_argument("BurstyWorkload: some phase must produce arrivals");
  }
  if (!(switch_rate > 0.0)) {
    throw std::invalid_argument("BurstyWorkload: switch_rate must be positive");
  }
}

std::string BurstyWorkload::name() const {
  return "bursty[" + scaled100(lambda_on_) + "," + scaled100(lambda_off_) + "," +
         scaled100(switch_rate_) + "]";
}

DynEvent BurstyWorkload::next(rng::Engine& gen, const WorkloadContext& ctx) {
  // Phase switches are internal clock events: consume them until an
  // arrival or departure fires. The departure rate (ctx.balls) is frozen
  // for the duration of this call, which is exact because no ball moves
  // between events.
  for (;;) {
    const double arrival_rate =
        (on_ ? lambda_on_ : lambda_off_) * static_cast<double>(n_);
    const double depart_rate = static_cast<double>(ctx.balls);
    const double total = arrival_rate + depart_rate + switch_rate_;
    time_ += exp_step(gen, total);
    const double u = rng::next_double(gen) * total;
    if (u < arrival_rate) {
      DynEvent ev;
      ev.kind = EventKind::kArrival;
      ev.time = time_;
      return ev;
    }
    if (u < arrival_rate + depart_rate) {
      DynEvent ev;
      ev.kind = EventKind::kDeparture;
      ev.time = time_;
      return ev;
    }
    on_ = !on_;
  }
}

// ---------------------------------------------------------------------------
// ChainWorkload
// ---------------------------------------------------------------------------

ChainWorkload::ChainWorkload(std::uint32_t n, double lambda, double s,
                             std::uint32_t max_len, bool atomic)
    : n_(n),
      lambda_(lambda),
      s_(s),
      max_len_(max_len),
      atomic_(atomic),
      lengths_(max_len == 0 ? 1 : max_len, s < 0.0 ? 0.0 : s) {
  if (n == 0) throw std::invalid_argument("ChainWorkload: n must be positive");
  if (!(lambda > 0.0) || lambda >= 1.0) {
    throw std::invalid_argument("ChainWorkload: stability needs 0 < lambda < 1");
  }
  if (s < 0.0) throw std::invalid_argument("ChainWorkload: s must be >= 0");
  if (max_len == 0) throw std::invalid_argument("ChainWorkload: max_len must be >= 1");
  double mean = 0.0;
  for (std::size_t i = 0; i < max_len_; ++i) {
    mean += lengths_.probability(i) * static_cast<double>(i + 1);
  }
  mean_length_ = mean;
  chain_rate_ = lambda_ * static_cast<double>(n_) / mean_length_;
}

std::string ChainWorkload::name() const {
  const std::string base = "chains[" + scaled100(lambda_) + "," + scaled100(s_) +
                           "," + std::to_string(max_len_) + "]";
  return atomic_ ? "weighted:" + base : base;
}

DynEvent ChainWorkload::next(rng::Engine& gen, const WorkloadContext& ctx) {
  const double depart_rate = static_cast<double>(ctx.balls);
  const double total = chain_rate_ + depart_rate;
  time_ += exp_step(gen, total);
  DynEvent ev;
  ev.time = time_;
  if (rng::next_double(gen) * total < chain_rate_) {
    ev.kind = EventKind::kArrival;
    ev.weight = lengths_(gen) + 1;  // ZipfDist samples {0..max-1}
  } else {
    ev.kind = EventKind::kDeparture;
  }
  return ev;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kKind = "workload";

std::uint64_t arg_at(const core::ParsedSpec& s, std::size_t i, const std::string& spec) {
  return core::spec_arg(s, i, spec, kKind);
}

}  // namespace

std::unique_ptr<Workload> make_workload(const std::string& spec, std::uint32_t n) {
  const core::SpecPrefix prefix = core::split_spec_prefix(spec, kKind);
  if (!prefix.capacities.empty()) {
    throw std::invalid_argument("workload spec '" + spec +
                                "': 'capacities=' is an allocator modifier, not a "
                                "workload one");
  }
  const core::ParsedSpec s = core::parse_spec(prefix.rest, kKind);
  if (prefix.weighted && s.name != "chains") {
    throw std::invalid_argument("workload spec '" + spec +
                                "': 'weighted:' applies to chains only");
  }
  if (s.name == "supermarket") {
    const double lambda = static_cast<double>(arg_at(s, 0, spec)) / 100.0;
    return std::make_unique<SupermarketWorkload>(n, lambda);
  }
  if (s.name == "churn") {
    return std::make_unique<ChurnWorkload>(arg_at(s, 0, spec),
                                           DepartSelect::kUniformBall);
  }
  if (s.name == "churn-oldest") {
    return std::make_unique<ChurnWorkload>(arg_at(s, 0, spec),
                                           DepartSelect::kOldestBall);
  }
  if (s.name == "bursty") {
    return std::make_unique<BurstyWorkload>(
        n, static_cast<double>(arg_at(s, 0, spec)) / 100.0,
        static_cast<double>(arg_at(s, 1, spec)) / 100.0,
        static_cast<double>(arg_at(s, 2, spec)) / 100.0);
  }
  if (s.name == "chains") {
    return std::make_unique<ChainWorkload>(
        n, static_cast<double>(arg_at(s, 0, spec)) / 100.0,
        static_cast<double>(arg_at(s, 1, spec)) / 100.0,
        core::spec_arg_u32(s, 2, spec, kKind), prefix.weighted);
  }
  throw std::invalid_argument("unknown workload '" + s.name + "'");
}

std::vector<std::string> workload_specs() {
  return {"supermarket[lambda*100]",
          "churn[population]",
          "churn-oldest[population]",
          "bursty[on*100,off*100,switch*100]",
          "chains[lambda*100,s*100,max_len]",
          "weighted:chains[lambda*100,s*100,max_len]"};
}

}  // namespace bbb::dyn
