#include "bbb/dyn/engine.hpp"

#include <chrono>
#include <deque>
#include <stdexcept>

#include "bbb/obs/trace_sink.hpp"
#include "bbb/par/parallel_for.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::dyn {

namespace {

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

/// Live balls in arrival order: O(1) push, O(1) uniform victim (swap with
/// the back), O(1) oldest victim (pop the front). Only maintained for
/// ball-selecting workloads; supermarket departures sample a nonempty bin
/// from the allocator state instead.
class BallRegistry {
 public:
  void push(std::uint32_t bin) { live_.push_back(bin); }

  std::uint32_t pop_uniform(rng::Engine& gen) {
    const auto idx =
        static_cast<std::size_t>(rng::uniform_below(gen, live_.size()));
    const std::uint32_t bin = live_[idx];
    live_[idx] = live_.back();
    live_.pop_back();
    return bin;
  }

  std::uint32_t pop_oldest() {
    const std::uint32_t bin = live_.front();
    live_.pop_front();
    return bin;
  }

  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }

 private:
  std::deque<std::uint32_t> live_;
};

}  // namespace

std::string DynConfig::describe() const {
  std::string desc =
      allocator_spec + " x " + workload_spec + " n=" + std::to_string(n) +
      " warmup=" + std::to_string(warmup) + " events=" + std::to_string(events) +
      " reps=" + std::to_string(replicates) + " seed=" + std::to_string(seed);
  if (layout != core::StateLayout::kWide) {
    desc += " layout=" + std::string(core::to_string(layout));
  }
  desc += obs.describe();
  return desc;
}

double DynSummary::psi_per_bin() const {
  return config.n > 0 ? psi.mean() / static_cast<double>(config.n) : 0.0;
}

DynReplicate run_dynamic_replicate(const DynConfig& config,
                                   std::uint32_t replicate_index) {
  if (config.events == 0) {
    throw std::invalid_argument("run_dynamic: events must be positive");
  }
  const auto alloc = make_streaming_allocator(config.allocator_spec, config.n,
                                              config.m_hint, config.layout);
  const auto workload = make_workload(config.workload_spec, config.n);
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);

  // Eviction-based rules (cuckoo) relocate balls after placement, so a
  // recorded ball->bin assignment goes stale; fall back to bin-occupancy
  // victims for them regardless of what the workload asks for.
  const DepartSelect select = alloc->rule().stable_ball_identity()
                                  ? workload->depart_select()
                                  : DepartSelect::kUniformNonemptyBin;
  if (select == DepartSelect::kUniformNonemptyBin &&
      config.layout != core::StateLayout::kWide) {
    // Fail at config time, not mid-replicate: serving a uniformly random
    // busy bin needs the nonempty index only the wide layout maintains.
    // Name the actual culprit — a bin-serving workload, or a rule whose
    // unstable ball identity forces the bin-victim fallback.
    const std::string why =
        workload->depart_select() == DepartSelect::kUniformNonemptyBin
            ? "workload '" + config.workload_spec +
                  "' serves uniformly random busy bins"
            : "allocator '" + config.allocator_spec +
                  "' relocates balls after placement, forcing bin-occupancy "
                  "departure victims";
    throw std::invalid_argument(
        "run_dynamic: " + why +
        ", which the compact layout does not index; use layout=wide");
  }
  const bool track_balls = select != DepartSelect::kUniformNonemptyBin;
  // Atomic weighted arrivals (weighted:chains): the whole chain lands in
  // one bin via place_one(state, w, gen) when the rule can commit it
  // atomically; rules without supports_weights() keep the unit-explode
  // fallback below.
  const bool atomic_weights =
      workload->atomic_arrivals() && alloc->rule().supports_weights();
  BallRegistry registry;

  DynReplicate rep;
  rep.tail.assign(static_cast<std::size_t>(config.tail_max) + 1, 0.0);
  const std::uint64_t stride = config.stride == 0 ? config.events : config.stride;
  rep.snapshots.reserve(static_cast<std::size_t>(config.events / stride) + 1);

  std::uint64_t probes_at_start = 0;
  std::uint64_t placed_at_start = 0;
  std::vector<double> tail_sum(rep.tail.size(), 0.0);
  double balls_sum = 0.0, psi_sum = 0.0, gap_sum = 0.0, max_sum = 0.0;
  double weight_sum = 0.0;
  double prev_time = 0.0;

  // Per-event timing only at obs level full: dyn events are microsecond-
  // scale (registry + metric bookkeeping per event), so two extra clock
  // reads behind this predictable branch are proportionate here in a way
  // they would not be in the nanosecond batch placement loop. The clock
  // reads never touch `gen`: placements stay bit-for-bit identical.
  const bool timing = config.obs.full_on();
  const bool heartbeats =
      config.obs.full_on() && config.obs.sink && config.obs.heartbeat_seconds > 0;
  obs::Heartbeat heartbeat(config.obs.heartbeat_seconds);
  const auto wall_start = std::chrono::steady_clock::now();

  const std::uint64_t total_events = config.warmup + config.events;
  for (std::uint64_t e = 1; e <= total_events; ++e) {
    const WorkloadContext ctx{alloc->state().balls(), alloc->state().nonempty_bins()};
    const DynEvent ev = workload->next(gen, ctx);

    // Time-weighted steady-state averages: the state produced by event
    // e - 1 was held for ev.time - prev_time. Event-counting averages would
    // sample the embedded jump chain instead, which over-weights
    // high-occupancy states for the continuous-time workloads (the total
    // event rate grows with occupancy); weighting by the holding time
    // recovers the time-stationary quantities the fixed-point predictions
    // describe.
    if (e > config.warmup) {
      const double weight = ev.time - prev_time;
      weight_sum += weight;
      const BinState& state = alloc->state();
      balls_sum += weight * static_cast<double>(state.balls());
      psi_sum += weight * state.psi();
      gap_sum += weight * static_cast<double>(state.gap());
      max_sum += weight * static_cast<double>(state.max_load());
      if (state.max_load() > rep.peak_max) rep.peak_max = state.max_load();
      const auto& levels = state.level_counts();
      // count(load >= k) = n - count(load < k): one prefix sum over the
      // first tail_max levels, O(tail_max) per event regardless of how
      // high the loads have ever been.
      std::uint64_t below = 0;
      for (std::size_t k = 0; k < tail_sum.size(); ++k) {
        tail_sum[k] += weight * static_cast<double>(config.n - below) /
                       static_cast<double>(config.n);
        if (k < levels.size()) below += levels[k];
      }
    }
    prev_time = ev.time;

    if (ev.kind == EventKind::kArrival) {
      const auto place_start = timing ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
      if (atomic_weights && ev.weight > 1) {
        const std::uint32_t bin = alloc->place_weighted(ev.weight, gen);
        // Departures are still per unit ball: register each chain link.
        if (track_balls) {
          for (std::uint32_t w = 0; w < ev.weight; ++w) registry.push(bin);
        }
      } else {
        for (std::uint32_t w = 0; w < ev.weight; ++w) {
          const std::uint32_t bin = alloc->place(gen);
          if (track_balls) registry.push(bin);
        }
      }
      if (timing) rep.place_ns.record(elapsed_ns(place_start));
    } else if (ctx.balls > 0) {
      const auto remove_start = timing ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{};
      std::uint32_t bin = 0;
      switch (select) {
        case DepartSelect::kUniformBall:
          bin = registry.pop_uniform(gen);
          break;
        case DepartSelect::kOldestBall:
          bin = registry.pop_oldest();
          break;
        case DepartSelect::kUniformNonemptyBin:
          bin = alloc->state().sample_nonempty(gen);
          break;
      }
      alloc->remove(bin);
      if (timing) rep.remove_ns.record(elapsed_ns(remove_start));
    } else {
      // The shipped generators never emit a departure when the system is
      // empty (that clock has rate zero); count instead of silently
      // swallowing so a broken custom generator is visible — the event
      // still advanced the clock and consumed a measured slot.
      ++rep.dropped_departures;
    }

    if (heartbeats && (e & 0xFFF) == 0 && heartbeat.due()) {
      // Wall-clock progress signal for long churn runs (warmup included —
      // that is exactly when a giant run looks hung). Observational only.
      const BinState& state = alloc->state();
      obs::JsonLine line("heartbeat", "dyn");
      line.field("replicate", static_cast<std::uint64_t>(replicate_index))
          .field("done", e)
          .field("total", total_events)
          .field("balls", state.balls())
          .field("gap", static_cast<std::uint64_t>(state.gap()));
      config.obs.sink->write(std::move(line));
    }

    if (e == config.warmup) {
      probes_at_start = alloc->probes();
      placed_at_start = alloc->total_placed();
    }
    if (e <= config.warmup) continue;

    const BinState& state = alloc->state();
    const std::uint64_t measured = e - config.warmup;
    if (measured % stride == 0 || measured == config.events) {
      DynSnapshot snap;
      snap.time = ev.time;
      snap.events = measured;
      snap.balls = state.balls();
      snap.probes = alloc->probes();
      snap.max_load = state.max_load();
      snap.min_load = state.min_load();
      snap.psi = state.psi();
      snap.log_phi = state.log_phi();
      if (rep.snapshots.empty() || rep.snapshots.back().events != measured) {
        rep.snapshots.push_back(snap);
      }
    }
  }

  // Workload clocks strictly increase, so the measured window has positive
  // total weight whenever events >= 1.
  const double window = weight_sum;
  rep.mean_balls = balls_sum / window;
  rep.mean_psi = psi_sum / window;
  rep.mean_gap = gap_sum / window;
  rep.mean_max = max_sum / window;
  for (std::size_t k = 0; k < rep.tail.size(); ++k) rep.tail[k] = tail_sum[k] / window;
  const std::uint64_t placed = alloc->total_placed() - placed_at_start;
  rep.probes_per_ball =
      placed > 0
          ? static_cast<double>(alloc->probes() - probes_at_start) /
                static_cast<double>(placed)
          : 0.0;
  if (config.obs.counters_on()) {
    rep.counters = obs::harvest(*alloc);
    rep.wall_ns = elapsed_ns(wall_start);
  }
  return rep;
}

DynSummary run_dynamic(const DynConfig& config, par::ThreadPool& pool) {
  if (config.replicates == 0) {
    throw std::invalid_argument("run_dynamic: replicates must be positive");
  }
  if (config.events == 0) {
    throw std::invalid_argument("run_dynamic: events must be positive");
  }
  // Validate both specs (and capture canonical names) before spawning work.
  const std::string alloc_name =
      make_streaming_allocator(config.allocator_spec, config.n, config.m_hint,
                               config.layout)
          ->name();
  const std::string workload_name = make_workload(config.workload_spec, config.n)->name();

  const bool obs_on = config.obs.counters_on();
  if (obs_on && config.obs.sink) {
    obs::JsonLine line("run_start", "dyn");
    line.begin_object("config")
        .field("describe", config.describe())
        .field("allocator", alloc_name)
        .field("workload", workload_name)
        .field("n", static_cast<std::uint64_t>(config.n))
        .field("warmup", config.warmup)
        .field("events", config.events)
        .field("replicates", static_cast<std::uint64_t>(config.replicates))
        .field("seed", config.seed)
        .field("layout", core::to_string(config.layout))
        .end_object();
    config.obs.sink->write(std::move(line));
  }

  DynSummary summary;
  summary.config = config;
  summary.allocator_name = alloc_name;
  summary.workload_name = workload_name;
  summary.tail.assign(static_cast<std::size_t>(config.tail_max) + 1,
                      stats::RunningStats{});
  summary.replicates = par::parallel_map<DynReplicate>(
      pool, config.replicates, [&config](std::uint64_t r) {
        return run_dynamic_replicate(config, static_cast<std::uint32_t>(r));
      });

  // Fold in replicate order: summaries are independent of scheduling.
  for (const DynReplicate& rep : summary.replicates) {
    summary.balls.add(rep.mean_balls);
    summary.psi.add(rep.mean_psi);
    summary.gap.add(rep.mean_gap);
    summary.max_load.add(rep.mean_max);
    summary.peak_max.add(static_cast<double>(rep.peak_max));
    summary.probes_per_ball.add(rep.probes_per_ball);
    summary.dropped_departures += rep.dropped_departures;
    for (std::size_t k = 0; k < summary.tail.size() && k < rep.tail.size(); ++k) {
      summary.tail[k].add(rep.tail[k]);
    }
  }

  if (obs_on) {
    // Counters sum, per-replicate latency histograms merge losslessly —
    // in replicate order, so the snapshot is thread-count independent.
    obs::MetricsRegistry registry;
    obs::CoreCounters total;
    obs::LatencyHistogram& wall = registry.histogram("dyn.replicate.wall_ns");
    for (const DynReplicate& rep : summary.replicates) {
      total.accumulate(rep.counters);
      wall.record(rep.wall_ns);
    }
    if (config.obs.full_on()) {
      // The event histograms only exist at level full; registering them
      // empty at level counters would clutter the summary table.
      obs::LatencyHistogram& place = registry.histogram("dyn.event.place_latency_ns");
      obs::LatencyHistogram& remove =
          registry.histogram("dyn.event.remove_latency_ns");
      for (const DynReplicate& rep : summary.replicates) {
        place.merge(rep.place_ns);
        remove.merge(rep.remove_ns);
      }
    }
    obs::fold_into(registry, total);
    registry.add_counter("dyn.event.dropped_departures", summary.dropped_departures);
    registry.set_gauge("dyn.gauge.gap", summary.gap.mean());
    registry.set_gauge("dyn.gauge.psi", summary.psi.mean());
    summary.obs = registry.snapshot();

    if (config.obs.sink) {
      for (std::uint32_t r = 0; r < summary.replicates.size(); ++r) {
        const DynReplicate& rep = summary.replicates[r];
        obs::JsonLine line("replicate", "dyn");
        line.field("replicate", static_cast<std::uint64_t>(r))
            .begin_object("metrics")
            .field("probes", rep.counters.probes)
            .field("mean_gap", rep.mean_gap)
            .field("peak_max", static_cast<std::uint64_t>(rep.peak_max))
            .field("dropped_departures", rep.dropped_departures)
            .field("wall_ns", rep.wall_ns)
            .end_object();
        config.obs.sink->write(std::move(line));
      }
      obs::JsonLine line("summary", "dyn");
      obs::append_metrics(line, summary.obs);
      config.obs.sink->write(std::move(line));
    }
  }
  return summary;
}

DynSummary run_dynamic(const DynConfig& config) {
  par::ThreadPool pool;
  return run_dynamic(config, pool);
}

}  // namespace bbb::dyn
