#include "bbb/sim/runner.hpp"

#include <stdexcept>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/par/parallel_for.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::sim {

double RunSummary::probes_per_ball() const {
  return config.m > 0 ? probes.mean() / static_cast<double>(config.m) : 0.0;
}

ReplicateRecord run_replicate(const ExperimentConfig& config,
                              std::uint32_t replicate_index) {
  const auto protocol = core::make_protocol(config.protocol_spec);
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);
  const core::AllocationResult result = protocol->run(config.m, config.n, gen);

  ReplicateRecord rec;
  rec.probes = static_cast<double>(result.probes);
  rec.reallocations = static_cast<double>(result.reallocations);
  rec.rounds = static_cast<double>(result.rounds);
  rec.completed = result.completed;
  const core::LoadMetrics metrics =
      core::compute_metrics(result.loads, result.balls);
  rec.max_load = metrics.max;
  rec.min_load = metrics.min;
  rec.gap = metrics.gap;
  rec.psi = metrics.psi;
  rec.log_phi = metrics.log_phi;
  return rec;
}

RunSummary run_experiment(const ExperimentConfig& config, par::ThreadPool& pool) {
  if (config.replicates == 0) {
    throw std::invalid_argument("run_experiment: replicates must be positive");
  }
  // Validate the spec (and capture the canonical name) before spawning work.
  const std::string canonical = core::make_protocol(config.protocol_spec)->name();

  RunSummary summary;
  summary.config = config;
  summary.protocol_name = canonical;
  summary.records = par::parallel_map<ReplicateRecord>(
      pool, config.replicates,
      [&config](std::uint64_t r) {
        return run_replicate(config, static_cast<std::uint32_t>(r));
      });

  // Fold in replicate order: summaries are independent of scheduling.
  for (const ReplicateRecord& rec : summary.records) {
    summary.probes.add(rec.probes);
    summary.max_load.add(rec.max_load);
    summary.min_load.add(rec.min_load);
    summary.gap.add(rec.gap);
    summary.psi.add(rec.psi);
    summary.log_phi.add(rec.log_phi);
    summary.reallocations.add(rec.reallocations);
    summary.rounds.add(rec.rounds);
    if (!rec.completed) ++summary.failures;
  }
  if (!config.keep_records) {
    summary.records.clear();
    summary.records.shrink_to_fit();
  }
  return summary;
}

RunSummary run_experiment(const ExperimentConfig& config) {
  par::ThreadPool pool;
  return run_experiment(config, pool);
}

}  // namespace bbb::sim
