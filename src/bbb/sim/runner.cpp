#include "bbb/sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/spec.hpp"
#include "bbb/law/one_choice.hpp"
#include "bbb/law/profile.hpp"
#include "bbb/obs/trace_sink.hpp"
#include "bbb/par/parallel_for.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/engine.hpp"

namespace bbb::sim {

namespace {

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

}  // namespace

double RunSummary::probes_per_ball() const {
  return config.m > 0 ? probes.mean() / static_cast<double>(config.m) : 0.0;
}

namespace {

/// The giant-scale replicate path: stream place_one over a compact-layout
/// BinState and read the incremental metrics — no 32-bit load vector, no
/// O(n) metric rescan, so n = 2^30 fits in ~1 GiB. Allocations are
/// bit-for-bit the wide batch result for every rule whose Protocol::run
/// is the place loop (all of them except batched[capacity], which runs
/// its streaming capacity-bounded form here); finalize() reproduces the
/// batch-only post-passes (self-balancing sweeps).
ReplicateRecord run_streaming_replicate(const ExperimentConfig& config,
                                        std::uint32_t replicate_index) {
  const auto start = std::chrono::steady_clock::now();
  const auto alloc = core::make_streaming_allocator(config.protocol_spec, config.n,
                                                    config.m, config.layout);
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);
  alloc->set_engine_exclusive(true);
  if (config.obs.full_on() && config.obs.sink && config.obs.heartbeat_seconds > 0) {
    // Heartbeat variant of the place loop, kept out of the default path so
    // --obs=off (and plain --obs=counters) runs the bare loop below. The
    // wall-clock poll sits behind a 64Ki-ball stride; heartbeats observe
    // (balls done, current gap) and never touch `gen`.
    obs::Heartbeat heartbeat(config.obs.heartbeat_seconds);
    // The heartbeat stride doubles as the batch size: placements are
    // bit-identical to the place() loop (see PlacementRule::place_batch),
    // and kernel-capable rules vectorize each 64Ki chunk.
    for (std::uint64_t i = 0; i < config.m; i += 0x10000) {
      const std::uint64_t chunk = std::min<std::uint64_t>(0x10000, config.m - i);
      alloc->place_batch(chunk, gen);
      if (heartbeat.due()) {
        obs::JsonLine line("heartbeat", "sim");
        line.field("replicate", static_cast<std::uint64_t>(replicate_index))
            .field("done", i + chunk)
            .field("total", config.m)
            .field("gap", static_cast<std::uint64_t>(alloc->state().gap()));
        config.obs.sink->write(std::move(line));
      }
    }
  } else {
    alloc->place_batch(config.m, gen);
  }
  alloc->finalize(gen);

  const core::BinState& state = alloc->state();
  const core::PlacementRule& rule = alloc->rule();
  ReplicateRecord rec;
  rec.probes = static_cast<double>(rule.probes());
  rec.reallocations = static_cast<double>(rule.reallocations());
  rec.rounds = static_cast<double>(rule.rounds());
  rec.completed = rule.completed();
  rec.max_load = state.max_load();
  rec.min_load = state.min_load();
  rec.gap = state.gap();
  rec.psi = state.psi();
  rec.log_phi = state.log_phi();
  if (config.obs.counters_on()) {
    rec.counters = obs::harvest(*alloc);
    rec.wall_ns = elapsed_ns(start);
  }
  return rec;
}

/// The sharded replicate path, for `shards[t]:` specs in either layout:
/// run the multi-core engine of shard/engine.hpp directly (rather than
/// through its opaque Protocol wrapper) so the merged incremental metrics
/// are read off the per-shard states — no O(n) load materialization — and
/// the shard counters (cross-shard traffic, deferrals, ring occupancy)
/// can be harvested. Results are identical to the wrapper: same derived
/// engine, same consumption.
ReplicateRecord run_sharded_replicate(const ExperimentConfig& config,
                                      std::uint32_t shards,
                                      const std::string& inner_spec,
                                      std::uint32_t replicate_index) {
  const auto start = std::chrono::steady_clock::now();
  shard::ShardOptions opt;
  opt.shards = shards;
  opt.layout = config.layout;
  opt.m_hint = config.m;
  shard::ShardedAllocator engine(inner_spec, config.n, opt);
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);
  engine.run(config.m, gen);

  ReplicateRecord rec;
  rec.probes = static_cast<double>(engine.probes());
  rec.max_load = engine.max_load();
  rec.min_load = engine.min_load();
  rec.gap = engine.gap();
  rec.psi = engine.psi();
  rec.log_phi = engine.log_phi();
  if (const core::PlacementRule* rule = engine.rule(); rule != nullptr) {
    rec.reallocations = static_cast<double>(rule->reallocations());
    rec.rounds = static_cast<double>(rule->rounds());
    rec.completed = rule->completed();
  } else {
    rec.rounds = static_cast<double>(engine.sync_rounds());
  }
  if (config.obs.counters_on()) {
    if (const core::PlacementRule* rule = engine.rule(); rule != nullptr) {
      rec.counters = obs::harvest(*rule, &engine.shard_state(0));
    } else {
      rec.counters.probes = engine.probes();
      rec.counters.balls_placed = engine.balls();
      rec.counters.rounds = engine.sync_rounds();
    }
    rec.shard_counters = engine.counters();
    rec.wall_ns = elapsed_ns(start);
  }
  return rec;
}

/// The law-tier replicate path: draw the occupancy profile's law directly
/// instead of simulating m placements. Only one-choice has a sampled law;
/// the record it fills is distribution-equal (NOT bit-equal) to the exact
/// tiers at the same seed — the cross-validation suite in tests/law/ is
/// what certifies the agreement. Probes are reported as m (one-choice
/// probes once per ball); reallocations and rounds are identically zero.
ReplicateRecord run_law_replicate(const ExperimentConfig& config,
                                  std::uint32_t replicate_index) {
  const std::string canonical = core::make_protocol(config.protocol_spec)->name();
  if (canonical != "one-choice") {
    throw std::invalid_argument(
        "run_replicate: tier=law supports only the one-choice spec, got '" +
        canonical + "' (use greedy/mixed through law::run_law_experiment's "
        "fluid curves instead)");
  }
  const auto start = std::chrono::steady_clock::now();
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);
  const law::OccupancyProfile profile =
      law::sample_one_choice_profile(config.m, config.n, gen);

  ReplicateRecord rec;
  rec.probes = static_cast<double>(config.m);
  rec.max_load = profile.max_load();
  rec.min_load = profile.min_load();
  rec.gap = profile.gap();
  rec.psi = profile.psi();
  rec.log_phi = profile.log_phi();
  if (config.obs.counters_on()) {
    // A sampled profile issues no real probes; report the one-choice cost
    // identity (one probe per ball) so cross-tier accounting lines up.
    rec.counters.probes = config.m;
    rec.counters.balls_placed = config.m;
    rec.wall_ns = elapsed_ns(start);
  }
  return rec;
}

}  // namespace

ReplicateRecord run_replicate(const ExperimentConfig& config,
                              std::uint32_t replicate_index) {
  if (config.tier == Tier::kLaw) {
    return run_law_replicate(config, replicate_index);
  }
  if (const core::SpecPrefix prefix =
          core::split_spec_prefix(config.protocol_spec, "protocol");
      prefix.shards != 0) {
    return run_sharded_replicate(config, prefix.shards, prefix.rest,
                                 replicate_index);
  }
  if (config.layout != core::StateLayout::kWide) {
    return run_streaming_replicate(config, replicate_index);
  }
  const auto start = std::chrono::steady_clock::now();
  const auto protocol = core::make_protocol(config.protocol_spec);
  rng::Engine gen = rng::SeedSequence(config.seed).engine(replicate_index);
  const core::AllocationResult result = protocol->run(config.m, config.n, gen);

  ReplicateRecord rec;
  rec.probes = static_cast<double>(result.probes);
  rec.reallocations = static_cast<double>(result.reallocations);
  rec.rounds = static_cast<double>(result.rounds);
  rec.completed = result.completed;
  const core::LoadMetrics metrics =
      core::compute_metrics(result.loads, result.balls);
  rec.max_load = metrics.max;
  rec.min_load = metrics.min;
  rec.gap = metrics.gap;
  rec.psi = metrics.psi;
  rec.log_phi = metrics.log_phi;
  if (config.obs.counters_on()) {
    // The wide batch path runs an opaque Protocol::run, so only the
    // result-level counters exist here (no lookahead/side-table internals
    // — and no mid-replicate heartbeats; the streaming layout has both).
    rec.counters = obs::harvest(result);
    rec.wall_ns = elapsed_ns(start);
  }
  return rec;
}

RunSummary run_experiment(const ExperimentConfig& config, par::ThreadPool& pool) {
  if (config.replicates == 0) {
    throw std::invalid_argument("run_experiment: replicates must be positive");
  }
  // Validate the spec (and capture the canonical name) before spawning work.
  const std::string canonical = core::make_protocol(config.protocol_spec)->name();
  if (config.tier == Tier::kLaw && canonical != "one-choice") {
    throw std::invalid_argument(
        "run_experiment: tier=law supports only the one-choice spec");
  }

  const bool obs_on = config.obs.counters_on();
  if (obs_on && config.obs.sink) {
    obs::JsonLine line("run_start", "sim");
    line.begin_object("config")
        .field("describe", config.describe())
        .field("protocol", canonical)
        .field("m", config.m)
        .field("n", static_cast<std::uint64_t>(config.n))
        .field("replicates", static_cast<std::uint64_t>(config.replicates))
        .field("seed", config.seed)
        .field("layout", core::to_string(config.layout))
        .field("tier", to_string(config.tier))
        .end_object();
    config.obs.sink->write(std::move(line));
  }

  RunSummary summary;
  summary.config = config;
  summary.protocol_name = canonical;
  summary.records = par::parallel_map<ReplicateRecord>(
      pool, config.replicates,
      [&config](std::uint64_t r) {
        return run_replicate(config, static_cast<std::uint32_t>(r));
      });

  // Fold in replicate order: summaries are independent of scheduling.
  const auto fold_start = std::chrono::steady_clock::now();
  for (const ReplicateRecord& rec : summary.records) {
    summary.probes.add(rec.probes);
    summary.max_load.add(rec.max_load);
    summary.min_load.add(rec.min_load);
    summary.gap.add(rec.gap);
    summary.psi.add(rec.psi);
    summary.log_phi.add(rec.log_phi);
    summary.reallocations.add(rec.reallocations);
    summary.rounds.add(rec.rounds);
    if (!rec.completed) ++summary.failures;
  }
  const std::uint64_t fold_ns = elapsed_ns(fold_start);

  if (obs_on) {
    // Counters sum, wall times merge into one histogram — all in
    // replicate order, so the snapshot (like every folded statistic) is
    // identical for any thread count.
    obs::MetricsRegistry registry;
    obs::CoreCounters total;
    shard::ShardCounters shard_total;
    obs::LatencyHistogram& wall = registry.histogram("sim.replicate.wall_ns");
    for (const ReplicateRecord& rec : summary.records) {
      total.accumulate(rec.counters);
      shard_total += rec.shard_counters;
      wall.record(rec.wall_ns);
    }
    obs::fold_into(registry, total);
    obs::fold_into(registry, shard_total);
    registry.set_gauge("sim.fold.wall_ns", static_cast<double>(fold_ns));
    summary.obs = registry.snapshot();

    if (config.obs.sink) {
      for (std::uint32_t r = 0; r < summary.records.size(); ++r) {
        const ReplicateRecord& rec = summary.records[r];
        obs::JsonLine line("replicate", "sim");
        line.field("replicate", static_cast<std::uint64_t>(r))
            .begin_object("metrics")
            .field("probes", rec.counters.probes)
            .field("max_load", rec.max_load)
            .field("gap", rec.gap)
            .field("wall_ns", rec.wall_ns)
            .field("completed", rec.completed)
            .end_object();
        config.obs.sink->write(std::move(line));
      }
      obs::JsonLine line("summary", "sim");
      obs::append_metrics(line, summary.obs);
      config.obs.sink->write(std::move(line));
    }
  }

  if (!config.keep_records) {
    summary.records.clear();
    summary.records.shrink_to_fit();
  }
  return summary;
}

RunSummary run_experiment(const ExperimentConfig& config) {
  par::ThreadPool pool;
  return run_experiment(config, pool);
}

}  // namespace bbb::sim
