#include "bbb/sim/experiment.hpp"

#include <sstream>
#include <stdexcept>

namespace bbb::sim {

std::string to_string(Tier tier) {
  switch (tier) {
    case Tier::kExact:
      return "exact";
    case Tier::kLaw:
      return "law";
  }
  throw std::invalid_argument("to_string: unknown Tier");
}

Tier parse_tier(const std::string& text) {
  if (text == "exact") return Tier::kExact;
  if (text == "law") return Tier::kLaw;
  throw std::invalid_argument("parse_tier: expected 'exact' or 'law', got '" + text +
                              "'");
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << protocol_spec << " m=" << m << " n=" << n << " reps=" << replicates
     << " seed=" << seed;
  if (layout != core::StateLayout::kWide) {
    os << " layout=" << to_string(layout);
  }
  if (tier != Tier::kExact) {
    os << " tier=" << to_string(tier);
  }
  os << obs.describe();
  return os.str();
}

}  // namespace bbb::sim
