#include "bbb/sim/experiment.hpp"

#include <sstream>

namespace bbb::sim {

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << protocol_spec << " m=" << m << " n=" << n << " reps=" << replicates
     << " seed=" << seed;
  if (layout != core::StateLayout::kWide) {
    os << " layout=" << to_string(layout);
  }
  return os.str();
}

}  // namespace bbb::sim
