#pragma once
/// \file experiment.hpp
/// Experiment configuration and per-replicate records — the vocabulary
/// shared by the Monte-Carlo runner, the sweep helpers, and every bench.

#include <cstdint>
#include <string>

#include "bbb/core/bin_state.hpp"
#include "bbb/obs/harvest.hpp"
#include "bbb/obs/obs.hpp"
#include "bbb/shard/counters.hpp"

namespace bbb::sim {

/// Which execution tier evaluates a replicate.
enum class Tier : std::uint8_t {
  /// Simulate every ball through the streaming core (wide or compact
  /// layout per ExperimentConfig::layout) — the exact tiers of PRs 1-5.
  kExact,
  /// Sample the occupancy law directly (law::sample_one_choice_profile):
  /// exact in distribution, O(levels + sqrt(m)) per replicate. Only the
  /// one-choice spec has a sampled law; other specs throw.
  kLaw,
};

/// Round-trips with parse_tier; "exact" / "law".
[[nodiscard]] std::string to_string(Tier tier);

/// \throws std::invalid_argument for anything but "exact" / "law".
[[nodiscard]] Tier parse_tier(const std::string& text);

/// One experiment: a protocol at a fixed (m, n), repeated `replicates`
/// times with independent derived seeds.
struct ExperimentConfig {
  std::string protocol_spec = "adaptive";  ///< registry spec, see registry.hpp
  std::uint64_t m = 0;                     ///< balls
  std::uint32_t n = 1;                     ///< bins
  std::uint32_t replicates = 20;           ///< independent runs
  std::uint64_t seed = 42;                 ///< master seed
  /// BinState storage layout. kWide is the historical batch path
  /// (Protocol::run, bit-for-bit the classic results). kCompact is the
  /// giant-scale tier: replicates stream place_one over an 8-bit-lane
  /// state and read the incremental metrics — same allocations for every
  /// rule whose batch form is the place loop (the one exception, batched[
  /// capacity], runs its streaming capacity-bounded form), at ~1 byte per
  /// bin so n = 2^30 fits in ~1 GiB.
  core::StateLayout layout = core::StateLayout::kWide;
  /// Execution tier. Tier::kLaw replaces the per-ball simulation with the
  /// law tier's exact profile sampler (same SeedSequence-derived engines,
  /// different consumption — records pin to their own golden values).
  /// Probe/reallocation/round counters are not defined by a sampled
  /// profile; the law tier reports probes = m (one probe per ball, the
  /// one-choice cost identity) and zeros elsewhere.
  Tier tier = Tier::kExact;
  /// Keep the raw per-replicate rows in RunSummary::records. Summary
  /// statistics are always folded; switch this off in large sweeps so a
  /// grid of thousands of configs does not retain every raw row in memory.
  bool keep_records = true;
  /// Observability settings (level, trace sink, heartbeat cadence). Off by
  /// default: replicates then run the uninstrumented path of PRs 1-6 and
  /// RunSummary::obs stays empty. Never affects placements (see obs.hpp).
  obs::ObsConfig obs;

  /// Human-readable "spec m=... n=... reps=..." line for logs.
  [[nodiscard]] std::string describe() const;
};

/// The per-replicate scalar outputs every analysis consumes.
struct ReplicateRecord {
  double probes = 0.0;         ///< allocation time (bin samples / messages)
  double max_load = 0.0;
  double min_load = 0.0;
  double gap = 0.0;            ///< max - min
  double psi = 0.0;            ///< quadratic potential at t = m
  double log_phi = 0.0;        ///< ln of exponential potential at t = m
  double reallocations = 0.0;  ///< post-placement moves (CRS, cuckoo)
  double rounds = 0.0;         ///< synchronous rounds (parallel protocols)
  bool completed = true;
  /// Exact core counters (probes, lookahead, compact side-table traffic)
  /// harvested after the replicate — populated only when the experiment's
  /// obs level is counters or full; all-zero otherwise.
  obs::CoreCounters counters;
  /// Sharded-engine counters (cross-shard probe traffic, deferrals, ring
  /// occupancy), aggregated over the replicate's shards — populated under
  /// the same condition, and only for `shards[t]:` specs.
  shard::ShardCounters shard_counters;
  /// Replicate wall time; populated under the same condition.
  std::uint64_t wall_ns = 0;
};

}  // namespace bbb::sim
