#pragma once
/// \file experiment.hpp
/// Experiment configuration and per-replicate records — the vocabulary
/// shared by the Monte-Carlo runner, the sweep helpers, and every bench.

#include <cstdint>
#include <string>

#include "bbb/core/bin_state.hpp"

namespace bbb::sim {

/// One experiment: a protocol at a fixed (m, n), repeated `replicates`
/// times with independent derived seeds.
struct ExperimentConfig {
  std::string protocol_spec = "adaptive";  ///< registry spec, see registry.hpp
  std::uint64_t m = 0;                     ///< balls
  std::uint32_t n = 1;                     ///< bins
  std::uint32_t replicates = 20;           ///< independent runs
  std::uint64_t seed = 42;                 ///< master seed
  /// BinState storage layout. kWide is the historical batch path
  /// (Protocol::run, bit-for-bit the classic results). kCompact is the
  /// giant-scale tier: replicates stream place_one over an 8-bit-lane
  /// state and read the incremental metrics — same allocations for every
  /// rule whose batch form is the place loop (the one exception, batched[
  /// capacity], runs its streaming capacity-bounded form), at ~1 byte per
  /// bin so n = 2^30 fits in ~1 GiB.
  core::StateLayout layout = core::StateLayout::kWide;
  /// Keep the raw per-replicate rows in RunSummary::records. Summary
  /// statistics are always folded; switch this off in large sweeps so a
  /// grid of thousands of configs does not retain every raw row in memory.
  bool keep_records = true;

  /// Human-readable "spec m=... n=... reps=..." line for logs.
  [[nodiscard]] std::string describe() const;
};

/// The per-replicate scalar outputs every analysis consumes.
struct ReplicateRecord {
  double probes = 0.0;         ///< allocation time (bin samples / messages)
  double max_load = 0.0;
  double min_load = 0.0;
  double gap = 0.0;            ///< max - min
  double psi = 0.0;            ///< quadratic potential at t = m
  double log_phi = 0.0;        ///< ln of exponential potential at t = m
  double reallocations = 0.0;  ///< post-placement moves (CRS, cuckoo)
  double rounds = 0.0;         ///< synchronous rounds (parallel protocols)
  bool completed = true;
};

}  // namespace bbb::sim
