#pragma once
/// \file runner.hpp
/// The Monte-Carlo engine: run an experiment's replicates in parallel and
/// fold the per-replicate metrics into summary statistics.
///
/// Determinism contract: replicate r of an experiment with master seed s
/// always uses engine rng::SeedSequence(s).engine(r), and summaries fold
/// records in replicate order — so results are bit-identical for any
/// thread count (property-tested in tests/sim).

#include <vector>

#include "bbb/obs/metrics.hpp"
#include "bbb/par/thread_pool.hpp"
#include "bbb/sim/experiment.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::sim {

/// Aggregated outcome of one experiment.
struct RunSummary {
  ExperimentConfig config;
  std::string protocol_name;  ///< canonical Protocol::name()
  stats::RunningStats probes;
  stats::RunningStats max_load;
  stats::RunningStats min_load;
  stats::RunningStats gap;
  stats::RunningStats psi;
  stats::RunningStats log_phi;
  stats::RunningStats reallocations;
  stats::RunningStats rounds;
  std::uint32_t failures = 0;  ///< replicates with completed == false
  /// Raw rows in replicate order; empty when the config set
  /// keep_records = false (the folded statistics above are unaffected).
  std::vector<ReplicateRecord> records;
  /// Metric snapshot (counters summed across replicates, wall-time
  /// histograms merged in replicate order); empty when the config's obs
  /// level is off.
  obs::Snapshot obs;

  /// probes / m — the per-ball allocation cost the paper's Table 1 compares.
  [[nodiscard]] double probes_per_ball() const;
};

/// Execute one replicate (exposed for tests and custom aggregation).
[[nodiscard]] ReplicateRecord run_replicate(const ExperimentConfig& config,
                                            std::uint32_t replicate_index);

/// Run all replicates on `pool` and aggregate.
/// \throws std::invalid_argument for bad config (unknown spec, n == 0,
///         replicates == 0).
[[nodiscard]] RunSummary run_experiment(const ExperimentConfig& config,
                                        par::ThreadPool& pool);

/// Convenience overload owning a transient pool (hardware concurrency).
[[nodiscard]] RunSummary run_experiment(const ExperimentConfig& config);

}  // namespace bbb::sim
