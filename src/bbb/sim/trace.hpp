#pragma once
/// \file trace.hpp
/// Time-series recording for streaming allocation: snapshot the load
/// metrics every `stride` balls. This is how the smoothness claims
/// (Corollary 3.5 vs. Lemma 4.2) become a curve over t rather than a single
/// end-of-run number.
///
/// Since the single-streaming-core refactor every per-point metric is read
/// off the allocator's incremental `core::BinState` in O(1) — the old
/// implementation rescanned all n loads at every trace point, which made
/// per-ball trajectories (stride 1) of large runs O(m n). bench_micro_state
/// measures the difference.

#include <cstdint>
#include <vector>

#include "bbb/core/rule.hpp"
#include "bbb/io/table.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::sim {

/// One snapshot of a running allocation.
struct TracePoint {
  std::uint64_t balls = 0;
  std::uint64_t probes = 0;
  std::uint32_t max_load = 0;
  std::uint32_t min_load = 0;
  double psi = 0.0;
  double log_phi = 0.0;
};

/// Drive a streaming allocator for m balls, snapshotting every `stride`
/// balls (and always at t = m). Per-point cost is O(1) — metrics come from
/// the allocator's incremental BinState, not a rescan of the loads.
[[nodiscard]] std::vector<TracePoint> trace_allocation(core::StreamingAllocator& alloc,
                                                       rng::Engine& gen,
                                                       std::uint64_t m,
                                                       std::uint64_t stride);

/// Render a trace as a Table (balls, probes, max, min, psi, ln_phi).
[[nodiscard]] io::Table trace_table(const std::vector<TracePoint>& points);

}  // namespace bbb::sim
