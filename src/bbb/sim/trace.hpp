#pragma once
/// \file trace.hpp
/// Time-series recording for streaming allocators: snapshot the load
/// metrics every `stride` balls. This is how the smoothness claims
/// (Corollary 3.5 vs. Lemma 4.2) become a curve over t rather than a single
/// end-of-run number.

#include <cstdint>
#include <vector>

#include "bbb/core/metrics.hpp"
#include "bbb/io/table.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::sim {

/// One snapshot of a running allocation.
struct TracePoint {
  std::uint64_t balls = 0;
  std::uint64_t probes = 0;
  std::uint32_t max_load = 0;
  std::uint32_t min_load = 0;
  double psi = 0.0;
  double log_phi = 0.0;
};

/// Drive a streaming allocator for m balls, snapshotting every `stride`
/// balls (and always at t = m). Works with any class exposing
/// place(Engine&), state() -> LoadVector-like, and probes().
template <typename Allocator>
std::vector<TracePoint> trace_allocation(Allocator& alloc, rng::Engine& gen,
                                         std::uint64_t m, std::uint64_t stride) {
  std::vector<TracePoint> points;
  if (stride == 0) stride = 1;
  points.reserve(static_cast<std::size_t>(m / stride) + 2);
  for (std::uint64_t i = 1; i <= m; ++i) {
    alloc.place(gen);
    if (i % stride == 0 || i == m) {
      TracePoint p;
      p.balls = alloc.state().balls();
      p.probes = alloc.probes();
      const auto& loads = alloc.state().loads();
      const core::LoadMetrics metrics = core::compute_metrics(loads, p.balls);
      p.max_load = metrics.max;
      p.min_load = metrics.min;
      p.psi = metrics.psi;
      p.log_phi = metrics.log_phi;
      points.push_back(p);
      if (i == m) break;
    }
  }
  return points;
}

/// Render a trace as a Table (balls, probes, max, min, psi, ln_phi).
[[nodiscard]] io::Table trace_table(const std::vector<TracePoint>& points);

}  // namespace bbb::sim
