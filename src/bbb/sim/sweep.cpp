#include "bbb/sim/sweep.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace bbb::sim {

std::vector<std::uint64_t> geometric_range(std::uint64_t lo, std::uint64_t hi,
                                           double factor) {
  if (lo == 0) throw std::invalid_argument("geometric_range: lo must be positive");
  if (!(factor > 1.0)) throw std::invalid_argument("geometric_range: factor must be > 1");
  if (hi < lo) throw std::invalid_argument("geometric_range: hi < lo");
  std::vector<std::uint64_t> out;
  double v = static_cast<double>(lo);
  while (v < static_cast<double>(hi)) {
    // Round to nearest, then clamp into [.., hi]: above ~2^53 the double
    // grid is coarser than the integers, so the rounded value can exceed
    // hi (and a double >= 2^63 is outside llround's domain entirely) —
    // emitting it unclamped would make the range non-monotonic at the top.
    const double rounded = std::round(v);
    std::uint64_t iv;
    if (rounded >=
        static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
      iv = hi;
    } else {
      iv = std::min(static_cast<std::uint64_t>(rounded), hi);
    }
    if (out.empty() || iv != out.back()) out.push_back(iv);
    v *= factor;
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

std::vector<std::uint64_t> linear_range(std::uint64_t lo, std::uint64_t hi,
                                        std::uint64_t step) {
  if (step == 0) throw std::invalid_argument("linear_range: step must be positive");
  if (hi < lo) throw std::invalid_argument("linear_range: hi < lo");
  std::vector<std::uint64_t> out;
  for (std::uint64_t v = lo; v <= hi; v += step) {
    out.push_back(v);
    if (hi - v < step) break;  // avoid overflow at the top of the range
  }
  return out;
}

std::vector<std::uint64_t> pow2_range(std::uint32_t lo_exp, std::uint32_t hi_exp) {
  if (hi_exp < lo_exp) throw std::invalid_argument("pow2_range: hi_exp < lo_exp");
  if (hi_exp > 62) throw std::invalid_argument("pow2_range: hi_exp > 62");
  std::vector<std::uint64_t> out;
  out.reserve(hi_exp - lo_exp + 1);
  for (std::uint32_t e = lo_exp; e <= hi_exp; ++e) {
    out.push_back(std::uint64_t{1} << e);
  }
  return out;
}

std::vector<RunSummary> run_sweep(const std::vector<ExperimentConfig>& configs,
                                  par::ThreadPool& pool) {
  std::vector<RunSummary> out;
  out.reserve(configs.size());
  for (const auto& cfg : configs) out.push_back(run_experiment(cfg, pool));
  return out;
}

std::vector<RunSummary> run_sweep(const std::vector<ExperimentConfig>& configs) {
  par::ThreadPool pool;
  return run_sweep(configs, pool);
}

}  // namespace bbb::sim
