#include "bbb/sim/trace.hpp"

namespace bbb::sim {

io::Table trace_table(const std::vector<TracePoint>& points) {
  io::Table table({"balls", "probes", "max", "min", "psi", "ln_phi"});
  for (const TracePoint& p : points) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(p.balls));
    table.add_int(static_cast<std::int64_t>(p.probes));
    table.add_int(p.max_load);
    table.add_int(p.min_load);
    table.add_num(p.psi, 1);
    table.add_num(p.log_phi, 3);
  }
  return table;
}

}  // namespace bbb::sim
