#include "bbb/sim/trace.hpp"

namespace bbb::sim {

std::vector<TracePoint> trace_allocation(core::StreamingAllocator& alloc,
                                         rng::Engine& gen, std::uint64_t m,
                                         std::uint64_t stride) {
  std::vector<TracePoint> points;
  if (stride == 0) stride = 1;
  points.reserve(static_cast<std::size_t>(m / stride) + 2);
  // The trace loop is the engine's only consumer: let probing rules read
  // the raw word stream ahead and prefetch candidates (placements and
  // every snapshot metric are bit-identical; see core/probe.hpp). Revoked
  // on every exit — normal or throwing — so the caller-owned allocator
  // never serves this engine's buffered residue to a different engine.
  struct ExclusiveGuard {
    core::StreamingAllocator& alloc;
    ~ExclusiveGuard() { alloc.set_engine_exclusive(false); }
  } guard{alloc};
  alloc.set_engine_exclusive(true);
  const core::BinState& state = alloc.state();
  for (std::uint64_t i = 1; i <= m; ++i) {
    (void)alloc.place(gen);
    if (i % stride == 0 || i == m) {
      TracePoint p;
      p.balls = state.balls();
      p.probes = alloc.probes();
      p.max_load = state.max_load();
      p.min_load = state.min_load();
      p.psi = state.psi();
      p.log_phi = state.log_phi();
      points.push_back(p);
      if (i == m) break;
    }
  }
  return points;
}

io::Table trace_table(const std::vector<TracePoint>& points) {
  io::Table table({"balls", "probes", "max", "min", "psi", "ln_phi"});
  for (const TracePoint& p : points) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(p.balls));
    table.add_int(static_cast<std::int64_t>(p.probes));
    table.add_int(p.max_load);
    table.add_int(p.min_load);
    table.add_num(p.psi, 1);
    table.add_num(p.log_phi, 3);
  }
  return table;
}

}  // namespace bbb::sim
