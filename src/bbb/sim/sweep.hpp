#pragma once
/// \file sweep.hpp
/// Parameter-sweep helpers: value grids plus a driver that runs a list of
/// experiments (reusing one pool) — the backbone of every bench binary.

#include <cstdint>
#include <vector>

#include "bbb/par/thread_pool.hpp"
#include "bbb/sim/runner.hpp"

namespace bbb::sim {

/// {lo, lo*factor, ...} up to and including hi (hi appended if overshot).
/// \throws std::invalid_argument if lo == 0, factor <= 1, or hi < lo.
[[nodiscard]] std::vector<std::uint64_t> geometric_range(std::uint64_t lo,
                                                         std::uint64_t hi,
                                                         double factor);

/// {lo, lo+step, ...} up to and including hi.
/// \throws std::invalid_argument if step == 0 or hi < lo.
[[nodiscard]] std::vector<std::uint64_t> linear_range(std::uint64_t lo, std::uint64_t hi,
                                                      std::uint64_t step);

/// Powers of two from 2^lo_exp to 2^hi_exp inclusive.
/// \throws std::invalid_argument if hi_exp < lo_exp or hi_exp > 62.
[[nodiscard]] std::vector<std::uint64_t> pow2_range(std::uint32_t lo_exp,
                                                    std::uint32_t hi_exp);

/// Run every config in order on a shared pool.
[[nodiscard]] std::vector<RunSummary> run_sweep(
    const std::vector<ExperimentConfig>& configs, par::ThreadPool& pool);

/// Overload owning a transient pool.
[[nodiscard]] std::vector<RunSummary> run_sweep(
    const std::vector<ExperimentConfig>& configs);

}  // namespace bbb::sim
