#pragma once
/// \file parallel_for.hpp
/// Index-range parallelism on top of ThreadPool: static block partitioning
/// (deterministic work assignment) and a map-reduce helper whose reduction
/// order is fixed by index, not by completion time — so floating-point
/// reductions are bit-identical across thread counts.

#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#include "bbb/par/thread_pool.hpp"

namespace bbb::par {

/// Invoke body(i) for i in [begin, end). Blocks until complete.
/// Exceptions from bodies are captured and the first is rethrown.
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body);

/// Map each index through `map` into a pre-sized results vector, then fold
/// the results in index order. Deterministic regardless of scheduling.
template <typename T>
std::vector<T> parallel_map(ThreadPool& pool, std::uint64_t count,
                            const std::function<T(std::uint64_t)>& map) {
  std::vector<T> results(count);
  parallel_for(pool, 0, count, [&](std::uint64_t i) { results[i] = map(i); });
  return results;
}

}  // namespace bbb::par
