#pragma once
/// \file thread_pool.hpp
/// A fixed-size worker pool with a simple FIFO task queue.
///
/// The Monte-Carlo runner distributes independent replicates across workers.
/// Determinism is preserved because the replicate-to-seed mapping is fixed
/// ahead of scheduling (see bbb/rng/streams.hpp) — the pool only affects
/// *when* a replicate runs, never *what* it computes.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bbb::par {

/// Fixed worker pool. Tasks are void() callables; exceptions thrown by a
/// task terminate the program (tasks are expected to capture-and-report).
class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Thread-safe.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Resolve a requested thread count: 0 -> hardware_concurrency, min 1.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace bbb::par
