#include "bbb/par/parallel_for.hpp"

#include <atomic>
#include <mutex>

namespace bbb::par {

void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                  const std::function<void(std::uint64_t)>& body) {
  if (begin >= end) return;
  const std::uint64_t total = end - begin;
  const std::uint64_t workers = pool.num_threads();
  // One block per worker; blocks differ in size by at most 1.
  const std::uint64_t blocks = total < workers ? total : workers;
  const std::uint64_t base = total / blocks;
  const std::uint64_t rem = total % blocks;

  std::mutex err_mutex;
  std::exception_ptr first_error;

  std::uint64_t lo = begin;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t len = base + (b < rem ? 1 : 0);
    const std::uint64_t hi = lo + len;
    pool.submit([&, lo, hi] {
      try {
        for (std::uint64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::scoped_lock lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    lo = hi;
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bbb::par
