#include "bbb/par/thread_pool.hpp"

#include <algorithm>

namespace bbb::par {

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve_threads(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace bbb::par
