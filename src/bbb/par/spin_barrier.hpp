#pragma once
/// \file spin_barrier.hpp
/// A reusable (cyclic) barrier for the shard workers' round phases.
///
/// std::barrier would do, but its completion-step machinery and
/// implementation-defined blocking are more than the shard engine wants:
/// the workers synchronize ~5 times per round and otherwise never sleep,
/// so the right primitive is a generation-counted spin barrier that
/// *yields* while waiting. Yielding matters more than raw spin speed
/// here: the engine must degrade gracefully when there are more shards
/// than hardware threads (CI machines, the single-core container this
/// repo is grown in) — a hard spin would livelock the very thread it is
/// waiting for, a yield hands it the core.
///
/// Memory ordering: the generation bump is a release store and waiters
/// re-read it with acquire loads, so everything written before
/// arrive_and_wait() on any thread is visible after it on every thread —
/// the property the shard engine's "drain rings until empty after the
/// barrier" pattern relies on (all pushes of the previous phase are
/// visible, so empty means complete).

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>

namespace bbb::par {

class SpinBarrier {
 public:
  /// \throws std::invalid_argument if parties == 0.
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {
    if (parties == 0) {
      throw std::invalid_argument("SpinBarrier: parties must be positive");
    }
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block (yielding) until all `parties` threads have arrived, then
  /// release them together. Reusable immediately: a thread may re-arrive
  /// for the next phase while stragglers of this one are still waking —
  /// the arrival counter was reset before their generation ticked.
  void arrive_and_wait() noexcept {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      std::this_thread::yield();
    }
  }

  /// Abort-aware arrival for structured tear-down: behaves like
  /// arrive_and_wait(), but a waiter also returns (false) as soon as
  /// `abort` reads true. An aborted waiter leaves its arrival counted, so
  /// the barrier is NOT reusable after any false return — the abort flag
  /// must mean "every party is on its way out" (the shard engine sets it
  /// exactly once, when a worker dies, and all workers then unwind).
  [[nodiscard]] bool arrive_and_wait(const std::atomic<bool>& abort) noexcept {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
      return !abort.load(std::memory_order_relaxed);
    }
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (abort.load(std::memory_order_relaxed)) return false;
      std::this_thread::yield();
    }
    return !abort.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t parties() const noexcept { return parties_; }

  /// Completed phases — a monotone clock the stress tests assert on.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  const std::uint32_t parties_;
  alignas(64) std::atomic<std::uint32_t> arrived_{0};
  alignas(64) std::atomic<std::uint64_t> generation_{0};
};

}  // namespace bbb::par
