#pragma once
/// \file spsc_ring.hpp
/// Bounded lock-free single-producer / single-consumer ring — the message
/// channel of the sharded allocation engine (src/bbb/shard/). One thread
/// may push, one thread may pop; under that contract every operation is
/// wait-free (a bounded number of instructions, no CAS loops).
///
/// Design (the classic cache-friendly SPSC layout):
///   * power-of-two capacity, free-running 64-bit head/tail indices
///     (`index & mask` addresses a slot; the indices themselves never
///     wrap in any realistic run);
///   * producer and consumer indices live on their own cache lines, and
///     each side keeps a *cached* copy of the other side's index so the
///     hot path touches only its own line — the shared atomic is re-read
///     only when the cached value says full/empty (the "batched SPSC"
///     refinement; on x86 this makes push/pop a handful of plain loads
///     and one release store);
///   * payloads are constructed in place with placement new, so move-only
///     types (std::unique_ptr, owning buffers) travel through the ring;
///   * the destructor destroys any undrained payloads — dropping a ring
///     mid-conversation leaks nothing (tested, including under TSan).
///
/// Synchronization contract: `try_push`/`push_some` publish the payload
/// with a release store of the tail; `try_pop`/`pop_some` acquire it.
/// Cross-thread visibility therefore needs no external locking, but the
/// single-producer/single-consumer roles are the caller's promise — two
/// concurrent producers race on the tail by design (that is what keeps
/// the ring wait-free). The shard engine's T*T ring mesh gives every
/// (producer, consumer) pair its own ring so the promise holds trivially.
///
/// `size()` is exact when called by the producer or the consumer (the
/// only torn quantity is the other side's in-flight index, which can only
/// make the result stale, not invalid); it is a diagnostic, not a
/// synchronization primitive — shard.ring.highwater samples it at round
/// boundaries.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bbb::par {

/// Size in bytes of the destructive-interference unit the ring pads to.
/// std::hardware_destructive_interference_size is not implemented
/// everywhere; 64 is correct for every x86-64 and most AArch64 parts.
inline constexpr std::size_t kCacheLineSize = 64;

/// Smallest power of two >= v (and >= 1). 64-bit, constexpr so ring
/// capacities can be computed at compile time in tests.
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

template <typename T>
class SpscRing {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SpscRing payloads must be nothrow-move-constructible: a "
                "throwing move would tear a half-published slot");
  static_assert(std::is_nothrow_destructible_v<T>,
                "SpscRing drains payloads in its destructor");

 public:
  /// A ring holding at least `min_capacity` elements (rounded up to the
  /// next power of two, minimum 2 so full != empty is representable).
  explicit SpscRing(std::size_t min_capacity)
      : mask_(next_pow2(min_capacity < 2 ? 2 : min_capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Destroys every undrained payload. Both sides must have finished
  /// (joined) before destruction — the drain itself is single-threaded.
  ~SpscRing() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = head_.load(std::memory_order_relaxed); i != tail; ++i) {
      slot(i)->~T();
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. False when the ring is full (the element is NOT
  /// consumed from the caller: `v` is moved only on success).
  [[nodiscard]] bool try_push(T& v) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    ::new (static_cast<void*>(slot(tail))) T(std::move(v));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Rvalue convenience: `ring.try_push(Msg{...})`. The temporary is lost
  /// on failure, which is fine for the trivially-copyable message types
  /// the shard engine sends (callers that care pass an lvalue).
  [[nodiscard]] bool try_push(T&& v) noexcept {
    T tmp(std::move(v));
    return try_push(tmp);
  }

  /// Producer side, batched: push up to `count` elements from `src`,
  /// refreshing the consumer index once. Returns the number pushed
  /// (elements [0, returned) are moved-from). Equivalent to that many
  /// try_push calls (property-tested in tests/shard/spsc_ring_test.cpp).
  std::size_t push_some(T* src, std::size_t count) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t room = capacity() - (tail - cached_head_);
    if (room < count) {
      cached_head_ = head_.load(std::memory_order_acquire);
      room = capacity() - (tail - cached_head_);
    }
    const std::size_t todo = count < room ? count : static_cast<std::size_t>(room);
    for (std::size_t i = 0; i < todo; ++i) {
      ::new (static_cast<void*>(slot(tail + i))) T(std::move(src[i]));
    }
    tail_.store(tail + todo, std::memory_order_release);
    return todo;
  }

  /// Consumer side. False when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    T* s = slot(head);
    out = std::move(*s);
    s->~T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: pop up to `max` elements into `out`,
  /// refreshing the producer index once. Returns the number popped.
  std::size_t pop_some(T* out, std::size_t max) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - head;
    if (avail < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
    }
    const std::size_t todo = max < avail ? max : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < todo; ++i) {
      T* s = slot(head + i);
      out[i] = std::move(*s);
      s->~T();
    }
    head_.store(head + todo, std::memory_order_release);
    return todo;
  }

  /// Elements currently in flight. Exact from either endpoint thread,
  /// possibly stale from anywhere else; diagnostics only.
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  struct alignas(alignof(T)) Slot {
    unsigned char bytes[sizeof(T)];
  };

  [[nodiscard]] T* slot(std::uint64_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(slots_[i & mask_].bytes));
  }

  std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;

  // Producer line: tail plus the producer's cached view of head.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Consumer line: head plus the consumer's cached view of tail.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
};

}  // namespace bbb::par
