#include "bbb/model/holes.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/core/protocol.hpp"

namespace bbb::model {

std::vector<HolesPoint> holes_trajectory(std::uint64_t m, ChoiceVector& choices,
                                         std::uint64_t stride) {
  if (m == 0) throw std::invalid_argument("holes_trajectory: m must be positive");
  if (stride == 0) stride = 1;
  const std::uint32_t n = choices.n();
  const auto cap = static_cast<std::uint32_t>(core::ceil_div(m, n) + 1);
  const std::uint32_t bound = cap - 1;  // accept iff load <= ceil(m/n)

  std::vector<std::uint32_t> loads(n, 0);
  std::uint64_t holes = static_cast<std::uint64_t>(cap) * n;
  std::uint64_t placed = 0;
  std::vector<HolesPoint> points;

  for (std::uint64_t t = 1; placed < m; ++t) {
    const std::uint32_t bin = choices.next();
    if (loads[bin] <= bound) {
      ++loads[bin];
      --holes;
      ++placed;
    }
    if (t % stride == 0 || placed == m) {
      points.push_back({t, holes, placed});
    }
  }
  return points;
}

std::uint64_t theorem41_probe_budget(std::uint64_t m, std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("theorem41_probe_budget: n must be positive");
  const auto phi = static_cast<double>(core::ceil_div(m, n));
  const double alpha = phi + std::pow(phi, 0.75) + 1.0;
  return static_cast<std::uint64_t>(std::ceil(alpha * static_cast<double>(n)));
}

}  // namespace bbb::model
