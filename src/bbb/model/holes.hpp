#pragma once
/// \file holes.hpp
/// The holes process W_t from the proof of Theorem 4.1.
///
/// Fix capacity cap = ceil(m/n) + 1. A bin with l balls has cap - l holes;
/// W_t is the total number of holes after the first t entries of the choice
/// vector have been processed by threshold. The proof shows that after
/// T = (phi + phi^{3/4} + 1) n entries, W_T <= n w.h.p. — and W_t <= n means
/// all m balls are placed (threshold never fills past cap, so placed =
/// (cap) * n - W_t >= m).
///
/// This module records the W_t trajectory so the endgame of the proof can
/// be watched directly (bench_appendix_poisson).

#include <cstdint>
#include <vector>

#include "bbb/model/choice_vector.hpp"

namespace bbb::model {

/// One sampled point of the holes process.
struct HolesPoint {
  std::uint64_t t = 0;       ///< choice-vector entries processed
  std::uint64_t holes = 0;   ///< W_t
  std::uint64_t placed = 0;  ///< balls placed so far
};

/// Run threshold for m balls over `choices`, recording W_t every `stride`
/// processed entries (and at the final entry). The capacity is
/// ceil(m/n) + 1 as in the paper.
/// \throws std::invalid_argument if m == 0.
[[nodiscard]] std::vector<HolesPoint> holes_trajectory(std::uint64_t m,
                                                       ChoiceVector& choices,
                                                       std::uint64_t stride);

/// The paper's T = (phi + phi^{3/4} + 1) * n probe budget from Theorem 4.1,
/// with phi = m/n (rounded up to an integer phi as in the proof).
[[nodiscard]] std::uint64_t theorem41_probe_budget(std::uint64_t m, std::uint32_t n);

}  // namespace bbb::model
