#pragma once
/// \file poissonized.hpp
/// The Poissonized balls-into-bins model behind Lemma A.7 of the paper.
///
/// Exact model P1: m balls thrown independently and uniformly — bin loads
/// are a multinomial vector (sum exactly m). Poisson model P2: every bin's
/// load is an independent Poisson(m/n) variable (sum only m in expectation).
/// Lemma A.7 transfers event probabilities:
///   (1) Pr_P1[A] <= Pr_P2[A] * sqrt(n)          for any event A,
///   (2) Pr_P1[A] <= 4 * Pr_P2[A]                for increasing events A.
/// The proofs of Theorem 4.1 and Lemma 4.2 lean on exactly this; the module
/// samples both models so the transfer can be checked empirically
/// (bench_appendix_poisson, tests/model).

#include <cstdint>
#include <functional>
#include <vector>

#include "bbb/rng/xoshiro256.hpp"

namespace bbb::model {

/// Exact model P1: loads of n bins after m uniform throws.
[[nodiscard]] std::vector<std::uint32_t> exact_loads(std::uint64_t m, std::uint32_t n,
                                                     rng::Engine& gen);

/// Poisson model P2: n independent Poisson(lambda) loads.
[[nodiscard]] std::vector<std::uint32_t> poissonized_loads(double lambda,
                                                           std::uint32_t n,
                                                           rng::Engine& gen);

/// Truncated loads min(X_i, cap) — the threshold protocol's load vector as a
/// function of its access distribution (Section 4: L_i = min(X_i, phi+1)).
[[nodiscard]] std::vector<std::uint32_t> truncate_loads(
    const std::vector<std::uint32_t>& access, std::uint32_t cap);

/// Level counts K_j = #{i : loads[i] == j} for j = 0..max load — the
/// sufficient statistic both the exact and Poisson models share with the
/// law tier (law::OccupancyProfile), letting the cross-validation tests
/// compare a per-bin simulation against a level-count sampler cell by cell.
/// \throws std::invalid_argument if `loads` is empty.
[[nodiscard]] std::vector<std::uint64_t> level_counts_of(
    const std::vector<std::uint32_t>& loads);

/// Monte-Carlo probability of `event` under the exact model.
[[nodiscard]] double estimate_exact_probability(
    std::uint64_t m, std::uint32_t n, std::uint32_t trials, rng::Engine& gen,
    const std::function<bool(const std::vector<std::uint32_t>&)>& event);

/// Monte-Carlo probability of `event` under the Poisson model with
/// lambda = m/n.
[[nodiscard]] double estimate_poisson_probability(
    std::uint64_t m, std::uint32_t n, std::uint32_t trials, rng::Engine& gen,
    const std::function<bool(const std::vector<std::uint32_t>&)>& event);

}  // namespace bbb::model
