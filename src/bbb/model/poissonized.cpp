#include "bbb/model/poissonized.hpp"

#include <algorithm>
#include <stdexcept>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::model {

std::vector<std::uint32_t> exact_loads(std::uint64_t m, std::uint32_t n,
                                       rng::Engine& gen) {
  std::vector<std::uint32_t> loads(n, 0);
  for (std::uint64_t i = 0; i < m; ++i) {
    ++loads[rng::uniform_below(gen, n)];
  }
  return loads;
}

std::vector<std::uint32_t> poissonized_loads(double lambda, std::uint32_t n,
                                             rng::Engine& gen) {
  const rng::PoissonDist dist(lambda);
  std::vector<std::uint32_t> loads(n);
  for (auto& l : loads) l = static_cast<std::uint32_t>(dist(gen));
  return loads;
}

std::vector<std::uint32_t> truncate_loads(const std::vector<std::uint32_t>& access,
                                          std::uint32_t cap) {
  std::vector<std::uint32_t> out(access.size());
  std::transform(access.begin(), access.end(), out.begin(),
                 [cap](std::uint32_t x) { return std::min(x, cap); });
  return out;
}

std::vector<std::uint64_t> level_counts_of(const std::vector<std::uint32_t>& loads) {
  if (loads.empty()) throw std::invalid_argument("level_counts_of: empty loads");
  const std::uint32_t max = *std::max_element(loads.begin(), loads.end());
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(max) + 1, 0);
  for (const std::uint32_t l : loads) ++counts[l];
  return counts;
}

double estimate_exact_probability(
    std::uint64_t m, std::uint32_t n, std::uint32_t trials, rng::Engine& gen,
    const std::function<bool(const std::vector<std::uint32_t>&)>& event) {
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    if (event(exact_loads(m, n, gen))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

double estimate_poisson_probability(
    std::uint64_t m, std::uint32_t n, std::uint32_t trials, rng::Engine& gen,
    const std::function<bool(const std::vector<std::uint32_t>&)>& event) {
  const double lambda = static_cast<double>(m) / static_cast<double>(n);
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    if (event(poissonized_loads(lambda, n, gen))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace bbb::model
