#pragma once
/// \file choice_vector.hpp
/// The proof object of Theorem 4.1: an infinite vector C of i.i.d. uniform
/// bin choices fixed in advance. Ball 1 consumes entries until it is placed,
/// ball 2 continues from there, and so on — the protocol's allocation time
/// is exactly the number of entries consumed.
///
/// ChoiceVector materializes C lazily in blocks. Replaying the same
/// ChoiceVector reproduces the identical execution; running a protocol
/// against the on-demand engine or against a pre-drawn ChoiceVector with the
/// same seed gives bit-identical traces (tested) — the justification for
/// analyzing the fixed-C model in the proof.

#include <cstdint>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::model {

/// Lazily materialized infinite vector of uniform choices over [0, n).
class ChoiceVector {
 public:
  /// \param n bins; \param seed engine seed; \param block entries drawn per
  /// refill. \throws std::invalid_argument if n == 0 or block == 0.
  ChoiceVector(std::uint32_t n, std::uint64_t seed, std::size_t block = 4096);

  /// Entry C[i] (0-based). Materializes blocks on demand.
  [[nodiscard]] std::uint32_t at(std::uint64_t i);

  /// Next unconsumed entry (advances the cursor).
  [[nodiscard]] std::uint32_t next() { return at(cursor_++); }

  /// Rewind the consumption cursor (replay from the start).
  void rewind() noexcept { cursor_ = 0; }

  /// Entries consumed via next() so far — "allocation time" when a protocol
  /// is driven by this vector.
  [[nodiscard]] std::uint64_t consumed() const noexcept { return cursor_; }

  /// Entries materialized so far (>= consumed()).
  [[nodiscard]] std::uint64_t materialized() const noexcept { return entries_.size(); }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

 private:
  std::uint32_t n_;
  std::size_t block_;
  rng::Engine gen_;
  std::vector<std::uint32_t> entries_;
  std::uint64_t cursor_ = 0;
};

/// Drive the threshold protocol from a ChoiceVector (the proof's execution
/// model). Returns the final loads; `consumed()` on the vector afterwards is
/// the allocation time. \throws std::invalid_argument if m == 0 bins rules
/// are violated (n from the vector).
[[nodiscard]] std::vector<std::uint32_t> run_threshold_on_choices(
    std::uint64_t m, ChoiceVector& choices, std::uint32_t slack = 1);

}  // namespace bbb::model
