#include "bbb/model/choice_vector.hpp"

#include <stdexcept>

#include "bbb/core/protocol.hpp"

namespace bbb::model {

ChoiceVector::ChoiceVector(std::uint32_t n, std::uint64_t seed, std::size_t block)
    : n_(n), block_(block), gen_(seed) {
  if (n == 0) throw std::invalid_argument("ChoiceVector: n must be positive");
  if (block == 0) throw std::invalid_argument("ChoiceVector: block must be positive");
}

std::uint32_t ChoiceVector::at(std::uint64_t i) {
  while (i >= entries_.size()) {
    for (std::size_t k = 0; k < block_; ++k) {
      entries_.push_back(static_cast<std::uint32_t>(rng::uniform_below(gen_, n_)));
    }
  }
  return entries_[i];
}

std::vector<std::uint32_t> run_threshold_on_choices(std::uint64_t m,
                                                    ChoiceVector& choices,
                                                    std::uint32_t slack) {
  const std::uint32_t n = choices.n();
  std::vector<std::uint32_t> loads(n, 0);
  if (m == 0) return loads;
  const auto base = static_cast<std::uint32_t>(core::ceil_div(m, n));
  const std::uint32_t bound = slack == 0 ? (base == 0 ? 0 : base - 1) : base + slack - 1;
  for (std::uint64_t placed = 0; placed < m;) {
    const std::uint32_t bin = choices.next();
    if (loads[bin] <= bound) {
      ++loads[bin];
      ++placed;
    }
  }
  return loads;
}

}  // namespace bbb::model
