#include "bbb/model/stage_drift.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/core/metrics.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::model {

namespace {

// Phi at a stage boundary tau with the paper's stage form:
// Phi(l) = sum_i (1+eps)^{tau + 2 - l_i}.
double stage_phi(const std::vector<std::uint32_t>& loads, std::uint64_t tau) {
  const double log1pe = std::log1p(core::kPotentialEpsilon);
  double acc = 0.0;
  for (std::uint32_t l : loads) {
    acc += std::exp((static_cast<double>(tau) + 2.0 - static_cast<double>(l)) * log1pe);
  }
  return acc;
}

struct InstrumentedRun {
  // Runs `stages` stages of adaptive over n bins, invoking the callback at
  // the end of each stage with (tau, loads_before, loads_after, probes).
  template <typename Callback>
  static void run(std::uint32_t n, std::uint32_t stages, rng::Engine& gen,
                  Callback&& cb) {
    if (n == 0) throw std::invalid_argument("stage run: n must be positive");
    if (stages == 0) throw std::invalid_argument("stage run: stages must be positive");
    std::vector<std::uint32_t> loads(n, 0);
    for (std::uint32_t tau = 1; tau <= stages; ++tau) {
      const std::vector<std::uint32_t> before = loads;
      // Ball i in stage tau accepts bins with load <= ceil(i/n) = tau.
      std::uint64_t probes = 0;
      for (std::uint32_t b = 0; b < n; ++b) {
        for (;;) {
          const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
          ++probes;
          if (loads[bin] <= tau) {
            ++loads[bin];
            break;
          }
        }
      }
      cb(tau, before, loads, probes);
    }
  }
};

}  // namespace

std::vector<StageRecord> adaptive_stage_records(std::uint32_t n, std::uint32_t stages,
                                                rng::Engine& gen,
                                                std::uint32_t deep_hole) {
  std::vector<StageRecord> records;
  records.reserve(stages);
  InstrumentedRun::run(
      n, stages, gen,
      [&](std::uint32_t tau, const std::vector<std::uint32_t>& before,
          const std::vector<std::uint32_t>& after, std::uint64_t probes) {
        StageRecord rec;
        rec.stage = tau;
        // Phi "before" the stage is the end of stage tau-1 with exponent
        // (tau-1) + 2 - l; "after" uses exponent tau + 2 - l.
        rec.phi_before = stage_phi(before, tau - 1);
        rec.phi_after = stage_phi(after, tau);
        rec.drift = rec.phi_before > 0 ? rec.phi_after / rec.phi_before : 1.0;
        rec.probes = probes;
        std::uint64_t deep = 0, arrivals = 0;
        for (std::uint32_t i = 0; i < before.size(); ++i) {
          // Underloaded at the end of stage tau-1: load <= (tau-1) + 2 - C1.
          if (static_cast<std::int64_t>(before[i]) <=
              static_cast<std::int64_t>(tau) + 1 - static_cast<std::int64_t>(deep_hole)) {
            ++deep;
            arrivals += after[i] - before[i];
          }
        }
        rec.underloaded = deep;
        rec.mean_arrivals_deep =
            deep > 0 ? static_cast<double>(arrivals) / static_cast<double>(deep) : 0.0;
        records.push_back(rec);
      });
  return records;
}

std::vector<std::uint64_t> underloaded_arrival_histogram(std::uint32_t n,
                                                         std::uint32_t stages,
                                                         rng::Engine& gen,
                                                         std::uint32_t deep_hole,
                                                         std::uint32_t max_k) {
  std::vector<std::uint64_t> counts(max_k + 1, 0);
  InstrumentedRun::run(
      n, stages, gen,
      [&](std::uint32_t tau, const std::vector<std::uint32_t>& before,
          const std::vector<std::uint32_t>& after, std::uint64_t) {
        for (std::uint32_t i = 0; i < before.size(); ++i) {
          if (static_cast<std::int64_t>(before[i]) <=
              static_cast<std::int64_t>(tau) + 1 - static_cast<std::int64_t>(deep_hole)) {
            const std::uint32_t y = after[i] - before[i];
            ++counts[std::min(y, max_k)];
          }
        }
      });
  return counts;
}

}  // namespace bbb::model
