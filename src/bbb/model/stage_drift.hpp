#pragma once
/// \file stage_drift.hpp
/// The stage-level analysis machinery of Section 3 (Lemmas 3.2-3.4).
///
/// adaptive's proof divides the allocation into stages of n balls. For a
/// fixed load vector at the start of a stage it studies
///   * Y_i — the number of balls an *underloaded* bin (load <= tau + 2 - C1)
///     receives during the stage; Lemma 3.2: Pr[Y_i >= k] >=
///     Pr[Poi(199/198) >= k] - 2e-10, i.e. underloaded bins catch up;
///   * the exponential-potential drift: Lemma 3.4: E[Phi^{tau+1}] <=
///     (1 - kappa/2) Phi^tau whenever Phi^tau >= rho * n.
///
/// This module instruments an adaptive run to expose both quantities so
/// tests and bench_lemma34_drift can verify them empirically.

#include <cstdint>
#include <vector>

#include "bbb/rng/xoshiro256.hpp"

namespace bbb::model {

/// Per-stage record from an instrumented adaptive run.
struct StageRecord {
  std::uint64_t stage = 0;          ///< tau (1-based)
  double phi_before = 0.0;          ///< Phi at the start of the stage
  double phi_after = 0.0;           ///< Phi at the end of the stage
  double drift = 0.0;               ///< phi_after / phi_before
  std::uint64_t probes = 0;         ///< probes spent in this stage
  std::uint64_t underloaded = 0;    ///< bins with >= `deep_hole` holes at start
  double mean_arrivals_deep = 0.0;  ///< mean balls received by those bins
};

/// Run adaptive for `stages` stages of n balls each, recording the
/// exponential potential (paper's eps = 1/200, exponent tau + 2 - load)
/// before/after every stage and the arrivals into deeply-underloaded bins.
/// \param deep_hole bins with load <= tau + 2 - deep_hole count as
///        underloaded (the paper's C1); default 4.
/// \throws std::invalid_argument if n == 0 or stages == 0.
[[nodiscard]] std::vector<StageRecord> adaptive_stage_records(
    std::uint32_t n, std::uint32_t stages, rng::Engine& gen,
    std::uint32_t deep_hole = 4);

/// Empirical distribution of stage arrivals Y into underloaded bins,
/// aggregated over an instrumented run: counts[k] = number of
/// (stage, underloaded bin) pairs that received exactly k balls. Compare
/// with Poi(199/198) per Lemma 3.2.
[[nodiscard]] std::vector<std::uint64_t> underloaded_arrival_histogram(
    std::uint32_t n, std::uint32_t stages, rng::Engine& gen, std::uint32_t deep_hole = 4,
    std::uint32_t max_k = 16);

}  // namespace bbb::model
