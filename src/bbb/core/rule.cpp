#include "bbb/core/rule.hpp"

#include <stdexcept>
#include <utility>

namespace bbb::core {

PlacementRule::~PlacementRule() = default;

void PlacementRule::on_remove(BinState& /*state*/, std::uint32_t /*bin*/) {}

void PlacementRule::finalize(BinState& /*state*/, rng::Engine& /*gen*/) {}

std::uint32_t PlacementRule::place_one(BinState& state, std::uint32_t weight,
                                       rng::Engine& gen) {
  if (weight == 0) {
    throw std::invalid_argument("place_one: weight must be positive");
  }
  if (weight > 1 && !supports_weights()) {
    throw std::logic_error("rule '" + name() +
                           "' cannot place weighted balls atomically; the "
                           "driver must explode the chain into unit placements");
  }
  const std::uint32_t bin = do_place(state, weight, gen);
  total_placed_ += weight;
  return bin;
}

namespace {

void validate_rule_n(const PlacementRule& rule, std::uint32_t n) {
  const std::uint32_t bound = rule.bound_n();
  if (bound != 0 && bound != n) {
    throw std::invalid_argument("rule '" + rule.name() + "' was built for n = " +
                                std::to_string(bound) + ", not n = " +
                                std::to_string(n));
  }
}

}  // namespace

AllocationResult run_rule(PlacementRule& rule, std::uint64_t m, std::uint32_t n,
                          rng::Engine& gen) {
  validate_run_args(m, n);
  BinState state(n);
  return run_rule(rule, m, state, gen);
}

AllocationResult run_rule(PlacementRule& rule, std::uint64_t m, BinState& state,
                          rng::Engine& gen) {
  validate_run_args(m, state.n());
  validate_rule_n(rule, state.n());
  for (std::uint64_t i = 0; i < m; ++i) (void)rule.place_one(state, gen);
  rule.finalize(state, gen);
  AllocationResult res;
  res.loads = state.loads();
  res.balls = state.balls();
  res.probes = rule.probes();
  res.reallocations = rule.reallocations();
  res.rounds = rule.rounds();
  res.completed = rule.completed();
  return res;
}

StreamingAllocator::StreamingAllocator(std::uint32_t n,
                                       std::unique_ptr<PlacementRule> rule)
    : StreamingAllocator(BinState(n), std::move(rule)) {}

StreamingAllocator::StreamingAllocator(BinState state,
                                       std::unique_ptr<PlacementRule> rule,
                                       std::string name_prefix)
    : state_(std::move(state)),
      rule_(std::move(rule)),
      name_prefix_(std::move(name_prefix)) {
  if (!rule_) {
    throw std::invalid_argument("StreamingAllocator: rule must not be null");
  }
  validate_rule_n(*rule_, state_.n());
}

std::uint32_t StreamingAllocator::place_weighted(std::uint32_t weight,
                                                 rng::Engine& gen) {
  if (weight == 0) {
    throw std::invalid_argument("place_weighted: weight must be positive");
  }
  if (weight == 1 || rule_->supports_weights()) {
    return rule_->place_one(state_, weight, gen);
  }
  // Centralized unit-explode fallback for rules without atomic weighted
  // placement: w independent unit decisions.
  std::uint32_t bin = 0;
  for (std::uint32_t w = 0; w < weight; ++w) bin = rule_->place_one(state_, gen);
  return bin;
}

}  // namespace bbb::core
