#include "bbb/core/rule.hpp"

#include <stdexcept>
#include <utility>

namespace bbb::core {

PlacementRule::~PlacementRule() = default;

void PlacementRule::on_remove(BinState& /*state*/, std::uint32_t /*bin*/) {}

void PlacementRule::finalize(BinState& /*state*/, rng::Engine& /*gen*/) {}

void PlacementRule::set_engine_exclusive(bool /*exclusive*/) noexcept {}

const BatchPlacer* PlacementRule::batch_kernel() const noexcept { return nullptr; }

void PlacementRule::do_place_batch(BinState& state, std::uint64_t count,
                                   rng::Engine& gen, std::uint32_t* bins_out) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t bin = place_one(state, gen);
    if (bins_out != nullptr) bins_out[i] = bin;
  }
}

void PlacementRule::throw_bad_weight(std::uint32_t weight) const {
  if (weight == 0) {
    throw std::invalid_argument("place_one: weight must be positive");
  }
  throw std::logic_error("rule '" + name() +
                         "' cannot place weighted balls atomically; the "
                         "driver must explode the chain into unit placements");
}

namespace {

void validate_rule_n(const PlacementRule& rule, std::uint32_t n) {
  const std::uint32_t bound = rule.bound_n();
  if (bound != 0 && bound != n) {
    throw std::invalid_argument("rule '" + rule.name() + "' was built for n = " +
                                std::to_string(bound) + ", not n = " +
                                std::to_string(n));
  }
}

}  // namespace

AllocationResult run_rule(PlacementRule& rule, std::uint64_t m, std::uint32_t n,
                          rng::Engine& gen) {
  validate_run_args(m, n);
  BinState state(n);
  return run_rule(rule, m, state, gen);
}

AllocationResult run_rule(PlacementRule& rule, std::uint64_t m, BinState& state,
                          rng::Engine& gen) {
  validate_run_args(m, state.n());
  validate_rule_n(rule, state.n());
  // The batch loop is the engine's only consumer, so probing rules may
  // read the raw word stream ahead and prefetch candidate bins; consumed
  // words — and every allocation — are unchanged (see core/probe.hpp).
  // Revoked on every exit (including a throwing place_one): a caller who
  // reuses the rule with a different engine must not consume this
  // engine's buffered residue.
  struct ExclusiveGuard {
    PlacementRule& rule;
    ~ExclusiveGuard() { rule.set_engine_exclusive(false); }
  } guard{rule};
  rule.set_engine_exclusive(true);
  // One batched call: identical to the historical place_one loop for
  // every rule (the base do_place_batch IS that loop), and the entry
  // point of the vector batch kernel for the rules/states that have one.
  rule.place_batch(state, m, gen);
  rule.finalize(state, gen);
  AllocationResult res;
  // copy_loads works in either layout (same one copy the by-value member
  // always cost), so a compact-state batch run materializes its result
  // instead of throwing after all the placement work. The memory-lean
  // giant-scale path is the streaming one (sim/runner.cpp), not this.
  res.loads = state.copy_loads();
  res.balls = state.balls();
  res.probes = rule.probes();
  res.reallocations = rule.reallocations();
  res.rounds = rule.rounds();
  res.completed = rule.completed();
  return res;
}

StreamingAllocator::StreamingAllocator(std::uint32_t n,
                                       std::unique_ptr<PlacementRule> rule)
    : StreamingAllocator(BinState(n), std::move(rule)) {}

StreamingAllocator::StreamingAllocator(BinState state,
                                       std::unique_ptr<PlacementRule> rule,
                                       std::string name_prefix)
    : state_(std::move(state)),
      rule_(std::move(rule)),
      name_prefix_(std::move(name_prefix)) {
  if (!rule_) {
    throw std::invalid_argument("StreamingAllocator: rule must not be null");
  }
  validate_rule_n(*rule_, state_.n());
}

std::uint32_t StreamingAllocator::place_weighted(std::uint32_t weight,
                                                 rng::Engine& gen) {
  if (weight == 0) {
    throw std::invalid_argument("place_weighted: weight must be positive");
  }
  if (weight == 1 || rule_->supports_weights()) {
    return rule_->place_one(state_, weight, gen);
  }
  // Centralized unit-explode fallback for rules without atomic weighted
  // placement: w independent unit decisions.
  ++explode_fallbacks_;
  std::uint32_t bin = 0;
  for (std::uint32_t w = 0; w < weight; ++w) bin = rule_->place_one(state_, gen);
  return bin;
}

}  // namespace bbb::core
