#include "bbb/core/rule.hpp"

#include <stdexcept>
#include <utility>

namespace bbb::core {

PlacementRule::~PlacementRule() = default;

void PlacementRule::on_remove(BinState& /*state*/, std::uint32_t /*bin*/) {}

void PlacementRule::finalize(BinState& /*state*/, rng::Engine& /*gen*/) {}

namespace {

void validate_rule_n(const PlacementRule& rule, std::uint32_t n) {
  const std::uint32_t bound = rule.bound_n();
  if (bound != 0 && bound != n) {
    throw std::invalid_argument("rule '" + rule.name() + "' was built for n = " +
                                std::to_string(bound) + ", not n = " +
                                std::to_string(n));
  }
}

}  // namespace

AllocationResult run_rule(PlacementRule& rule, std::uint64_t m, std::uint32_t n,
                          rng::Engine& gen) {
  validate_run_args(m, n);
  validate_rule_n(rule, n);
  BinState state(n);
  for (std::uint64_t i = 0; i < m; ++i) (void)rule.place_one(state, gen);
  rule.finalize(state, gen);
  AllocationResult res;
  res.loads = state.loads();
  res.balls = state.balls();
  res.probes = rule.probes();
  res.reallocations = rule.reallocations();
  res.rounds = rule.rounds();
  res.completed = rule.completed();
  return res;
}

StreamingAllocator::StreamingAllocator(std::uint32_t n,
                                       std::unique_ptr<PlacementRule> rule)
    : state_(n), rule_(std::move(rule)) {
  if (!rule_) {
    throw std::invalid_argument("StreamingAllocator: rule must not be null");
  }
  validate_rule_n(*rule_, n);
}

}  // namespace bbb::core
