#pragma once
/// \file rule.hpp
/// The single streaming core every protocol in the library is expressed
/// in: a `PlacementRule` places one ball at a time into a shared
/// `BinState` (`place_one`), carrying only its *rule-local* state (memory
/// cache, threshold phase, recorded choices, cuckoo residents). Batch and
/// dynamic execution are two drivers over the same vocabulary:
///
///   * batch — `run_rule` (and every `Protocol::run`) loops `place_one`
///     over m fresh balls and reads the result off the BinState;
///   * dynamic — `StreamingAllocator` pairs one rule with one BinState and
///     adds `remove()` so the dyn engine can interleave departures.
///
/// Contract of `place_one`:
///   * places exactly one ball of the given integer weight (state.balls()
///     grows by the weight), except for rules that can fail an insertion
///     (cuckoo exhausting its eviction budget) — those leave the net count
///     unchanged and record the failure in `completed()`;
///   * draws randomness only through `gen`, in a deterministic order —
///     the batch-equivalence suite (tests/dyn/batch_equivalence_test.cpp)
///     pins streaming ≡ batch bit-for-bit for every rule with
///     `batch_equivalent() == true`;
///   * counts every random bin choice in `probes()` (the paper's
///     allocation time).
///
/// Three self-describing traits keep the drivers honest:
///   * `batch_equivalent()` — false for rules whose batch form is not the
///     plain place_one loop: batched (round-synchronous LW rounds) and
///     self-balancing (post-placement balancing sweeps in `finalize`);
///   * `stable_ball_identity()` — false for reallocation-based rules
///     (cuckoo) that move balls after placement; the dyn engine then
///     selects departure victims by bin occupancy instead of ball
///     identity, because a recorded "ball b sits in bin i" goes stale;
///   * `supports_weights()` — true for rules that can commit a whole
///     weight-w chain to one bin as a single atomic decision (one-choice,
///     greedy[d], left[d]). place_one with weight > 1 throws for every
///     other rule; the drivers (the dyn engine, `place_weighted`) then
///     fall back to exploding the chain into unit placements — that
///     fallback lives here and in dyn/engine.cpp, not per-rule.

#include <cstdint>
#include <memory>
#include <string>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

class BatchPlacer;
class ProbeLookahead;

/// One streaming decision rule. Instances are single-run: a rule carries
/// placement state (probe counters, caches) and must not be shared across
/// BinStates or replicates.
class PlacementRule {
 public:
  virtual ~PlacementRule();

  /// Spec-canonical identifier that round-trips through make_rule /
  /// make_protocol, e.g. "adaptive", "greedy[2]", "memory[1,1]".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Place one unit ball; returns the bin the arriving ball landed in.
  std::uint32_t place_one(BinState& state, rng::Engine& gen) {
    return place_one(state, 1, gen);
  }

  /// Place one ball of integer weight `weight` as a single atomic decision
  /// (the whole chain lands in the returned bin). Inline: this is the hot
  /// loop's entry point, and the wrapper must not cost a cross-TU call.
  /// \throws std::invalid_argument if weight == 0, std::logic_error if
  ///         weight > 1 and the rule does not `supports_weights()` — the
  ///         caller must explode the chain into unit placements instead.
  std::uint32_t place_one(BinState& state, std::uint32_t weight, rng::Engine& gen) {
    if (weight == 0 || (weight > 1 && !supports_weights())) {
      throw_bad_weight(weight);
    }
    const std::uint32_t bin = do_place(state, weight, gen);
    total_placed_ += weight;
    return bin;
  }

  /// Place `count` unit balls as one call — placements, counters, and
  /// randomness consumption are bit-identical to `count` place_one calls
  /// (pinned in tests/core/batch_kernel_test.cpp). Rules with a batch
  /// kernel (one-choice, greedy[2], left[2] — see core/batch_kernel.hpp)
  /// place vector waves when the state is compact with uniform unit
  /// capacities and the engine-exclusivity promise is in force; every
  /// other rule/state combination runs the plain place_one loop. When
  /// `bins_out` is non-null it receives each ball's chosen bin (the
  /// caller provides room for `count` entries).
  void place_batch(BinState& state, std::uint64_t count, rng::Engine& gen,
                   std::uint32_t* bins_out = nullptr) {
    do_place_batch(state, count, gen, bins_out);
  }

  /// Driver promise that this rule is the engine's *only* consumer until
  /// further notice (a batch place_one loop, the tracer, a benchmark — but
  /// NOT the dyn engine, which draws workload events and victim picks from
  /// the same engine between placements). Rules with a probe lookahead
  /// (one-choice, greedy[d], left[d]) then read the raw word stream ahead
  /// and prefetch upcoming candidate bins; consumed words and therefore
  /// all allocation results stay bit-for-bit identical — only the engine's
  /// final position moves (see core/probe.hpp). Revoking the promise
  /// (`false`) discards any undrained read-ahead, so a driver that hands
  /// the rule a *different* engine afterwards never sees the old engine's
  /// buffered words. Default: ignored.
  virtual void set_engine_exclusive(bool exclusive) noexcept;

  /// Called by the drivers *after* `state.remove_ball(bin)` so rules with
  /// per-ball bookkeeping (cuckoo residents, recorded choice pairs) can
  /// drop one ball of that bin. Default: nothing to maintain.
  virtual void on_remove(BinState& state, std::uint32_t bin);

  /// Batch-only post-placement pass (self-balancing sweeps). Streaming
  /// drivers never call this. Default: nothing.
  virtual void finalize(BinState& state, rng::Engine& gen);

  /// True when `Protocol::run` is exactly the place_one loop, so an
  /// arrivals-only stream reproduces the batch result bit-for-bit.
  [[nodiscard]] virtual bool batch_equivalent() const noexcept { return true; }

  /// False for rules that relocate balls after placement (cuckoo): the
  /// dyn engine then picks departure victims by bin, not by ball.
  [[nodiscard]] virtual bool stable_ball_identity() const noexcept { return true; }

  /// True for rules whose decision is independent of the arriving weight
  /// modulo the final add (one-choice, greedy[d], left[d]) and can
  /// therefore commit a weight-w chain to one bin atomically. Rules whose
  /// acceptance logic is per-unit (threshold bounds, cuckoo buckets, ...)
  /// return false and rely on the drivers' unit-explode fallback.
  [[nodiscard]] virtual bool supports_weights() const noexcept { return false; }

  /// Rules constructed against a specific n (group partitions, resident
  /// tables, fixed bounds, skewed samplers) report it so the drivers can
  /// reject a mismatched BinState instead of indexing out of bounds.
  /// 0 = the rule works with any n.
  [[nodiscard]] virtual std::uint32_t bound_n() const noexcept { return 0; }

  /// Random bin choices drawn so far — the paper's allocation time.
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Total weight ever placed (monotone; a weight-w chain counts w; the
  /// BinState's balls() is the net count).
  [[nodiscard]] std::uint64_t total_placed() const noexcept { return total_placed_; }
  /// Post-placement ball moves (cuckoo kicks, self-balancing switches).
  [[nodiscard]] std::uint64_t reallocations() const noexcept { return reallocations_; }
  /// Synchronous rounds / balancing passes used (0 for one-shot rules).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  /// False once any placement failed or a pass budget was exhausted.
  [[nodiscard]] bool completed() const noexcept { return completed_; }

  /// The rule's probe lookahead, for post-run counter harvesting
  /// (refills, discarded words); nullptr for rules without one. The obs
  /// layer reads it after the work — never on the placement path.
  [[nodiscard]] virtual const ProbeLookahead* lookahead() const noexcept {
    return nullptr;
  }

  /// The rule's batch placement kernel, for post-run counter harvesting
  /// (waves, fast/fallback balls); nullptr for rules without one.
  [[nodiscard]] virtual const BatchPlacer* batch_kernel() const noexcept;

 protected:
  /// The batch decision loop behind place_batch. The default is literally
  /// `count` place_one calls — so total_placed_ advances ball by ball,
  /// which rules whose acceptance bound reads it as the running ball index
  /// (doubling-threshold's guess clock, stale-adaptive's broadcast clock)
  /// depend on mid-batch. Kernel-capable rules override it to place waves
  /// when eligible; overrides must leave every counter (total_placed_
  /// included) and the consumed randomness exactly as the loop would.
  virtual void do_place_batch(BinState& state, std::uint64_t count,
                              rng::Engine& gen, std::uint32_t* bins_out);

  /// The decision rule proper: pick a bin, mutate `state` (adding the full
  /// `weight` there), count probes. Rules without `supports_weights()` are
  /// only ever called with weight == 1 (guarded in place_one).
  virtual std::uint32_t do_place(BinState& state, std::uint32_t weight,
                                 rng::Engine& gen) = 0;

  /// Cold throw path shared by the inline place_one wrapper.
  [[noreturn]] void throw_bad_weight(std::uint32_t weight) const;

  std::uint64_t probes_ = 0;
  std::uint64_t total_placed_ = 0;
  std::uint64_t reallocations_ = 0;
  std::uint64_t rounds_ = 0;
  bool completed_ = true;
};

/// The thin batch adapter: m balls through `rule` into a fresh BinState,
/// then `finalize`, then the counters read back into an AllocationResult.
/// Every sequential `Protocol::run` in core/protocols/ is this function.
[[nodiscard]] AllocationResult run_rule(PlacementRule& rule, std::uint64_t m,
                                        std::uint32_t n, rng::Engine& gen);

/// Batch adapter over a caller-provided state — how heterogeneous
/// capacities enter a batch run (`capacities=...:` protocol specs build
/// the capacitated BinState and drive the same loop). `state` is used as
/// given (not cleared); the result reads the state after `finalize`.
[[nodiscard]] AllocationResult run_rule(PlacementRule& rule, std::uint64_t m,
                                        BinState& state, rng::Engine& gen);

/// One rule bound to one BinState — the streaming front-end applications
/// and the dyn engine embed. place() allocates one ball with the rule's
/// decision logic; remove() processes one departure.
class StreamingAllocator {
 public:
  /// \throws std::invalid_argument if n == 0 (via BinState).
  StreamingAllocator(std::uint32_t n, std::unique_ptr<PlacementRule> rule);

  /// Adopt a pre-built (possibly heterogeneous-capacity) state.
  /// `name_prefix` is prepended to the rule name so capacitated specs
  /// round-trip (e.g. "capacities=1,2,4,8:greedy[2]").
  StreamingAllocator(BinState state, std::unique_ptr<PlacementRule> rule,
                     std::string name_prefix = "");

  [[nodiscard]] std::string name() const { return name_prefix_ + rule_->name(); }

  /// Allocate one unit ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen) { return rule_->place_one(state_, gen); }

  /// Allocate `count` unit balls in one call — bit-identical to `count`
  /// place() calls, vectorized when the rule has a batch kernel and the
  /// state/exclusivity eligibility holds (see PlacementRule::place_batch).
  void place_batch(std::uint64_t count, rng::Engine& gen) {
    rule_->place_batch(state_, count, gen);
  }

  /// Forward the engine-exclusivity promise to the rule (see
  /// PlacementRule::set_engine_exclusive). Call only when nothing else
  /// draws from the engine between place() calls.
  void set_engine_exclusive(bool exclusive) noexcept {
    rule_->set_engine_exclusive(exclusive);
  }

  /// Run the rule's batch-only post-placement pass (self-balancing
  /// sweeps) — how a streaming driver reproduces `Protocol::run` exactly
  /// for rules whose batch form is the place loop plus finalize.
  void finalize(rng::Engine& gen) { rule_->finalize(state_, gen); }

  /// Allocate one weight-w ball. Atomic (whole chain into the returned
  /// bin) when the rule supports weights; otherwise the centralized
  /// unit-explode fallback places w independent unit balls and returns the
  /// last bin chosen.
  std::uint32_t place_weighted(std::uint32_t weight, rng::Engine& gen);

  /// Process one departure from `bin`, keeping the rule's bookkeeping in
  /// step. \throws std::invalid_argument if the bin is empty.
  void remove(std::uint32_t bin) {
    state_.remove_ball(bin);
    rule_->on_remove(state_, bin);
  }

  [[nodiscard]] const BinState& state() const noexcept { return state_; }
  [[nodiscard]] const PlacementRule& rule() const noexcept { return *rule_; }
  [[nodiscard]] PlacementRule& rule() noexcept { return *rule_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return rule_->probes(); }
  /// Balls ever placed (monotone; state().balls() is the net count).
  [[nodiscard]] std::uint64_t total_placed() const noexcept {
    return rule_->total_placed();
  }
  /// Weighted chains the rule could not commit atomically, exploded into
  /// unit placements here — core.weighted.explode_fallbacks.
  [[nodiscard]] std::uint64_t explode_fallbacks() const noexcept {
    return explode_fallbacks_;
  }

 private:
  BinState state_;
  std::unique_ptr<PlacementRule> rule_;
  std::string name_prefix_;
  std::uint64_t explode_fallbacks_ = 0;
};

}  // namespace bbb::core
