#pragma once
/// \file concurrent_adaptive.hpp
/// A lock-free shared-memory implementation of the adaptive protocol for
/// multi-threaded dispatchers.
///
/// Why this is correct: the acceptance bound of adaptive for ball i is
/// ceil(i/n), which is *constant within a stage of n balls* — so a bound
/// computed from a ball counter that lags by up to n placements is
/// identical to the fresh one (see stale_adaptive.hpp for the sequential
/// proof of this). With T concurrent placers the counter snapshot a thread
/// reads lags by at most T in-flight placements; for T <= n the computed
/// bound is therefore the exact sequential bound, and a CAS on the bin's
/// load enforces "observed load <= bound" atomically with the increment.
/// Consequences:
///   * max load <= ceil(m/n) + 1 holds under any interleaving;
///   * termination holds (the stale bound is >= ceil(i/n) - 1 and a bin at
///     that level always exists by pigeonhole);
///   * the *set* of outcomes matches sequential adaptive in distribution,
///     though not bit-for-bit (thread interleaving reorders probes).
///
/// The load array uses one cache line per counter group; this simulator is
/// about correctness under concurrency, not about NUMA placement.
///
/// Notation: n bins fixed at construction; with i = balls(), the next
/// placement is the paper's ball i+1, and a bin accepts it iff its load is
/// at most floor(i/n) + 1 = ceil((i+1)/n) — the integer form of the
/// Figure 1 rule "load < (i+1)/n + 1" at slack 1.
///
/// Invariants (checked in tests/core/concurrent_adaptive_test.cpp):
///   * sum of loads_snapshot() == balls() once all placers have returned;
///   * max load <= ceil(balls()/n) + 1 under any interleaving;
///   * probes() >= balls().

#include <atomic>
#include <cstdint>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

/// Thread-safe adaptive allocator: any number of threads may call place()
/// concurrently, each with its own engine.
class ConcurrentAdaptiveAllocator {
 public:
  /// \throws std::invalid_argument if n == 0.
  explicit ConcurrentAdaptiveAllocator(std::uint32_t n);

  ConcurrentAdaptiveAllocator(const ConcurrentAdaptiveAllocator&) = delete;
  ConcurrentAdaptiveAllocator& operator=(const ConcurrentAdaptiveAllocator&) = delete;

  /// Place one ball; returns the chosen bin. Lock-free (CAS loop on the
  /// target bin plus a relaxed counter increment).
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  /// Balls placed so far (exact once all placers have returned).
  [[nodiscard]] std::uint64_t balls() const noexcept {
    return balls_.load(std::memory_order_acquire);
  }
  /// Probes drawn so far (exact once all placers have returned).
  [[nodiscard]] std::uint64_t probes() const noexcept {
    return probes_.load(std::memory_order_acquire);
  }
  /// Load of one bin (racy while placers run; exact afterwards).
  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    return loads_[bin].load(std::memory_order_acquire);
  }
  /// Snapshot of all loads (exact once all placers have returned).
  [[nodiscard]] std::vector<std::uint32_t> loads_snapshot() const;

 private:
  std::vector<std::atomic<std::uint32_t>> loads_;
  std::atomic<std::uint64_t> balls_{0};
  std::atomic<std::uint64_t> probes_{0};
};

}  // namespace bbb::core
