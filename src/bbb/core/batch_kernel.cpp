#include "bbb/core/batch_kernel.hpp"

#include "bbb/core/simd/batch_ops.hpp"

namespace bbb::core {

namespace {

/// Engine64 source chaining wave buffer → lookahead → engine: the exact
/// live path consumes precisely the words the fast path would have, in
/// the same FIFO order, then falls through to fresh draws.
class FifoSource {
 public:
  FifoSource(const std::uint64_t* words, std::uint32_t& pos, std::uint32_t fill,
             ProbeLookahead& lookahead, rng::Engine& gen) noexcept
      : words_(words), pos_(pos), fill_(fill), lookahead_(lookahead), gen_(gen) {}

  [[nodiscard]] std::uint64_t operator()() {
    return pos_ != fill_ ? words_[pos_++] : lookahead_.next(gen_);
  }

  static constexpr std::uint64_t min() noexcept { return rng::Engine::min(); }
  static constexpr std::uint64_t max() noexcept { return rng::Engine::max(); }

 private:
  const std::uint64_t* words_;
  std::uint32_t& pos_;
  std::uint32_t fill_;
  ProbeLookahead& lookahead_;
  rng::Engine& gen_;
};

/// Lemire rejection threshold for `bound`: a raw word is a rejection
/// candidate iff low64(word * bound) < threshold (2^64 mod bound; 0 for
/// powers of two, where uniform_below never rejects).
[[nodiscard]] std::uint64_t reject_threshold(std::uint32_t bound) noexcept {
  const auto b = static_cast<std::uint64_t>(bound);
  return (0 - b) % b;
}

/// Fill/map/prefetch proceed in chunks of this many words rather than
/// whole waves: by the time the commit walk touches a chunk's lanes, the
/// later chunks' serial RNG chains have aged its prefetches by hundreds
/// of cycles — enough to cover an L3 round trip. Whole-wave scheduling
/// issues the first prefetch immediately before its first use and the
/// walk eats the full miss latency.
constexpr std::uint32_t kMapChunk = 128;

}  // namespace

void BatchPlacer::ensure_scratch() {
  if (!words_.empty()) return;
  words_.resize(kWaveWords + 2);  // tie bit is read at k+2 with k+2 <= fill
  // + 4: the greedy[2] walk speculatively preloads candidate bins at
  // k + 4 before knowing whether the current ball ties. Entries past the
  // mapped fill are zero (or stale bins from a prior wave) — always valid
  // bin indices, and the preload is discarded at the wave boundary.
  bins_.resize(kWaveWords + 4);
}

void BatchPlacer::place_one_choice(BinState& state, std::uint64_t count,
                                   ProbeLookahead& lookahead, rng::Engine& gen,
                                   std::uint64_t& probes, std::uint32_t* out) {
  if (count == 0) return;
  ensure_scratch();
  ++batches_;
  const std::uint32_t n = state.n();
  const simd::MapStream stream{n, 0, reject_threshold(n)};
  const std::uint8_t* lanes = state.compact_lanes();
  const simd::SimdOps& ops = simd::active_ops();
  std::uint64_t placed_total = 0;
  while (placed_total < count) {
    ++waves_;
    const std::uint64_t remaining = count - placed_total;
    const auto quota = static_cast<std::uint32_t>(
        remaining < kWaveWords ? remaining : kWaveWords);
    const std::uint32_t fill = quota;  // exactly one word per ball
    bool reject = false;
    for (std::uint32_t c = 0; c < fill; c += kMapChunk) {
      const std::uint32_t stop = c + kMapChunk < fill ? c + kMapChunk : fill;
      lookahead.next_block(gen, words_.data() + c, stop - c);
      reject |= ops.map_words(words_.data() + c, stop - c, stream, stream,
                              bins_.data() + c);
      for (std::uint32_t i = c; i < stop; ++i) state.prefetch(bins_[i]);
    }
    std::uint32_t placed = 0;
    if (!reject) {
      // One-choice reads no loads to decide, so the commit reads the
      // live lane per ball — duplicates within the wave are naturally
      // serialized, and the rare near-promotion bin takes the exact
      // add_ball (same FP order, plus the side-table handling).
      // Local pointer: the commit's byte stores alias the member
      // vectors' data pointers under TBAA, so spelling bins_[...] would
      // reload the pointer every ball.
      const std::uint32_t* bins = bins_.data();
      BinState::BatchMetrics m = state.batch_begin();
      for (; placed < quota; ++placed) {
        const std::uint32_t bin = bins[placed];
        const std::uint8_t l = lanes[bin];
        if (l <= kFastLoadMax) [[likely]] {
          state.batch_add_unit_lane(m, bin, l);
        } else {
          state.batch_end(m);  // exact path mutates the checked-out counters
          state.add_ball(bin);
          m = state.batch_begin();
        }
        if (out != nullptr) out[placed_total + placed] = bin;
      }
      state.batch_end(m);
      probes += quota;
      fast_balls_ += quota;
    } else {
      // A rejection candidate shifts every later word's meaning: replay
      // the whole wave through uniform_below over the buffered words.
      fallback_balls_ += quota;
      std::uint32_t k = 0;
      FifoSource src(words_.data(), k, fill, lookahead, gen);
      for (; placed < quota; ++placed) {
        const auto bin = static_cast<std::uint32_t>(rng::uniform_below(src, n));
        ++probes;
        state.add_ball(bin);
        if (out != nullptr) out[placed_total + placed] = bin;
      }
    }
    placed_total += quota;
  }
  // Every path consumes at least one word per ball, so the wave buffer is
  // always drained exactly: no residue to hand back.
}

void BatchPlacer::place_greedy2(BinState& state, std::uint64_t count,
                                ProbeLookahead& lookahead, rng::Engine& gen,
                                std::uint64_t& probes, std::uint32_t* out) {
  if (count == 0) return;
  ensure_scratch();
  ++batches_;
  const std::uint32_t n = state.n();
  const simd::MapStream stream{n, 0, reject_threshold(n)};
  const std::uint8_t* lanes = state.compact_lanes();
  const simd::SimdOps& ops = simd::active_ops();
  std::uint64_t placed_total = 0;
  std::uint32_t res = 0;  // words_[0, res): drawn by a prior wave, unconsumed
  while (placed_total < count) {
    ++waves_;
    const std::uint64_t remaining = count - placed_total;
    const std::uint32_t room = (kWaveWords - res) / 2;
    const auto quota =
        static_cast<std::uint32_t>(remaining < room ? remaining : room);
    const std::uint32_t fill = res + 2 * quota;
    // Residue words carried over from the prior wave get remapped (and
    // re-screened: an unconsumed rejection candidate must keep tripping
    // the fallback) before the chunked fill takes over. Both map streams
    // are the same bound here, so chunk parity is immaterial.
    bool reject = ops.map_words(words_.data(), res, stream, stream, bins_.data());
    for (std::uint32_t c = res; c < fill; c += kMapChunk) {
      const std::uint32_t stop = c + kMapChunk < fill ? c + kMapChunk : fill;
      lookahead.next_block(gen, words_.data() + c, stop - c);
      reject |= ops.map_words(words_.data() + c, stop - c, stream, stream,
                              bins_.data() + c);
      for (std::uint32_t i = c; i < stop; ++i) state.prefetch(bins_[i]);
    }
    std::uint32_t k = 0;
    std::uint32_t placed = 0;
    if (!reject) {
      // The commit walk reads the live lane slab, so an in-wave
      // duplicate simply sees the earlier ball's placement — exactly the
      // scalar stream's view. The winner is c1 unless c2 is strictly
      // less loaded, or on a tie when the tie word selects c2
      // (uniform_below(gen, 2) in least_loaded_of's two-choice path).
      // Local pointers: the commit's byte stores alias the member
      // vectors' data pointers under TBAA, so spelling bins_[...] /
      // words_[...] would reload both pointers every ball.
      const std::uint32_t* bins = bins_.data();
      const std::uint64_t* words = words_.data();
      BinState::BatchMetrics m = state.batch_begin();
      // The walk is latency-bound on the serial chain
      //   k -> lanes[bins[k]] -> eq -> k', not throughput: each ball's
      // cursor advance (2 or 3 words) waits on its tie test. Speculation
      // breaks the chain: while ball i resolves, preload the candidate
      // bins and lanes for BOTH possible cursor positions (k+2 no-tie,
      // k+3 tie) — three loads each, all independent of eq — then pick
      // with selects once eq lands. Preloaded lanes are one commit stale,
      // so each ball patches them against the previous ball's (bin, new
      // lane) before use; the exact-path commit reloads its lane so the
      // patch value is right even across a side-table promotion. The
      // preload may read bins_[k+4] past fill — always a valid (zeroed or
      // prior-wave) bin index, discarded at the wave boundary.
      std::uint32_t pb = 0xFFFFFFFFu;  // previous commit: bin, new lane
      std::uint32_t pl = 0;            // (no bin matches the sentinel)
      std::uint32_t cb0 = bins[k];
      std::uint32_t cb1 = bins[k + 1];
      std::uint32_t cl0 = lanes[cb0];
      std::uint32_t cl1 = lanes[cb1];
      while (placed < quota) {
        if (k + 2 > fill) break;  // second candidate word not drawn yet
        const std::uint32_t b0 = cb0;
        const std::uint32_t b1 = cb1;
        const std::uint32_t l0 = b0 == pb ? pl : cl0;
        const std::uint32_t l1 = b1 == pb ? pl : cl1;
        std::uint32_t load0 = l0;
        std::uint32_t load1 = l1;
        if ((l0 | l1) > kFastLoadMax) [[unlikely]] {
          load0 = state.load(b0);  // side-table-aware true loads
          load1 = state.load(b1);
        }
        const std::uint32_t eq = load0 == load1 ? 1u : 0u;
        if (k + 2 + eq > fill) break;  // tie word not drawn: next wave
        const auto tb = static_cast<std::uint32_t>(~words[k + 2] >> 63);
        // sel is random data: the sign-bit subtraction keeps the select
        // arithmetic (the `<` spelling if-converts into a ~30%-taken
        // branch that mispredicts its way to ~5 cycles a ball).
        const std::uint32_t lt = (load1 - load0) >> 31;
        const std::uint32_t sel = lt | (eq & tb);
        // Speculative next-ball preloads; issue before the commit so the
        // loads overlap the bookkeeping.
        const std::uint32_t nb2 = bins[k + 2];
        const std::uint32_t nb3 = bins[k + 3];
        const std::uint32_t nb4 = bins[k + 4];
        const std::uint32_t nl2 = lanes[nb2];
        const std::uint32_t nl3 = lanes[nb3];
        const std::uint32_t nl4 = lanes[nb4];
        const std::uint32_t bin = sel != 0 ? b1 : b0;
        const std::uint32_t lane = sel != 0 ? l1 : l0;
        if (lane <= kFastLoadMax) [[likely]] {
          state.batch_add_unit_lane(m, bin, lane);
          pb = bin;
          pl = lane + 1;
        } else {
          state.batch_end(m);  // exact path mutates the checked-out counters
          state.add_ball(bin);
          m = state.batch_begin();
          pb = bin;
          pl = lanes[bin];  // fresh: add_ball may have promoted the lane
        }
        if (out != nullptr) out[placed_total + placed] = bin;
        ++placed;
        k += 2 + eq;
        // eq is random data too: XOR-masked blends instead of ?: (which
        // GCC if-converts into a ~46%-taken branch at the loop tail,
        // mispredicting away the speculation win).
        const std::uint32_t emask = 0u - eq;
        cb0 = nb2 ^ ((nb2 ^ nb3) & emask);
        cl0 = nl2 ^ ((nl2 ^ nl3) & emask);
        cb1 = nb3 ^ ((nb3 ^ nb4) & emask);
        cl1 = nl3 ^ ((nl3 ^ nl4) & emask);
      }
      state.batch_end(m);
      probes += 2ULL * placed;
      fast_balls_ += placed;
    } else {
      // The exact scalar path replays the whole quota on the very same
      // words. A walk that merely ran out of words (ties consume 3, the
      // wave provisions 2 per ball) is NOT a fallback: the shortfall
      // rolls into the next wave's quota.
      fallback_balls_ += quota;
      FifoSource src(words_.data(), k, fill, lookahead, gen);
      while (placed < quota) {
        const std::uint32_t best = least_loaded_of(
            src, n, 2, probes,
            [&state](std::uint32_t b) { return state.load(b); });
        state.add_ball(best);
        if (out != nullptr) out[placed_total + placed] = best;
        ++placed;
      }
    }
    // Residue invariant: fill = res + 2*quota and every committed ball
    // consumed >= 2 words, so fill - k <= 2. (A zero-ball wave — quota 1
    // whose tie word lies beyond the wave — leaves res = 2 and retries
    // with a deeper buffer, so progress is guaranteed.)
    res = fill - k;
    for (std::uint32_t i = 0; i < res; ++i) words_[i] = words_[k + i];
    placed_total += placed;
  }
  if (res != 0) lookahead.push_residue(words_.data(), res);
}

void BatchPlacer::place_left2(BinState& state, std::uint64_t count,
                              ProbeLookahead& lookahead, rng::Engine& gen,
                              std::uint64_t& probes, std::uint32_t* out) {
  if (count == 0) return;
  ensure_scratch();
  ++batches_;
  const std::uint32_t n = state.n();
  // LeftDRule::group_range with d = 2: group 0 = [0, n/2), group 1 =
  // [n/2, n). left[2] consumes exactly two words per ball (deterministic
  // tie-break), so within a wave the word at index i belongs to group
  // i % 2 — waves always start ball-aligned and never leave residue,
  // which is precisely map_words' even/odd stream split.
  const std::uint32_t s0 = n / 2;
  const std::uint32_t s1 = n - s0;
  const simd::MapStream even{s0, 0, reject_threshold(s0)};
  const simd::MapStream odd{s1, s0, reject_threshold(s1)};
  const std::uint8_t* lanes = state.compact_lanes();
  const simd::SimdOps& ops = simd::active_ops();
  std::uint64_t placed_total = 0;
  while (placed_total < count) {
    ++waves_;
    const std::uint64_t remaining = count - placed_total;
    const std::uint32_t room = kWaveWords / 2;
    const auto quota =
        static_cast<std::uint32_t>(remaining < room ? remaining : room);
    const std::uint32_t fill = 2 * quota;
    // Chunk starts are multiples of kMapChunk (even), so the even/odd
    // stream split survives the chunked map calls.
    bool reject = false;
    for (std::uint32_t c = 0; c < fill; c += kMapChunk) {
      const std::uint32_t stop = c + kMapChunk < fill ? c + kMapChunk : fill;
      lookahead.next_block(gen, words_.data() + c, stop - c);
      reject |= ops.map_words(words_.data() + c, stop - c, even, odd,
                              bins_.data() + c);
      for (std::uint32_t i = c; i < stop; ++i) state.prefetch(bins_[i]);
    }
    std::uint32_t k = 0;
    std::uint32_t placed = 0;
    if (!reject) {
      // Vöcking's always-go-left tie-break against the live slab: the
      // right candidate wins only on a strictly smaller load.
      // Same local-pointer hoist as the greedy[2] walk.
      const std::uint32_t* bins = bins_.data();
      BinState::BatchMetrics m = state.batch_begin();
      for (; placed < quota; ++placed, k += 2) {
        const std::uint32_t b0 = bins[k];
        const std::uint32_t b1 = bins[k + 1];
        const std::uint32_t l0 = lanes[b0];
        const std::uint32_t l1 = lanes[b1];
        std::uint32_t load0 = l0;
        std::uint32_t load1 = l1;
        if ((l0 | l1) > kFastLoadMax) [[unlikely]] {
          load0 = state.load(b0);  // side-table-aware true loads
          load1 = state.load(b1);
        }
        // Sign-bit subtraction for the same reason as the greedy[2] walk:
        // keep the random select branchless.
        const std::uint32_t sel = (load1 - load0) >> 31;
        const std::uint32_t bin = sel != 0 ? b1 : b0;
        const std::uint32_t lane = sel != 0 ? l1 : l0;
        if (lane <= kFastLoadMax) [[likely]] {
          state.batch_add_unit_lane(m, bin, lane);
        } else {
          state.batch_end(m);  // exact path mutates the checked-out counters
          state.add_ball(bin);
          m = state.batch_begin();
        }
        if (out != nullptr) out[placed_total + placed] = bin;
      }
      state.batch_end(m);
      probes += 2ULL * placed;
      fast_balls_ += placed;
    } else {
      fallback_balls_ += quota;
      FifoSource src(words_.data(), k, fill, lookahead, gen);
      for (; placed < quota; ++placed) {
        // The exact live decision, word for word LeftDRule::do_place's
        // uniform path: one draw per group, strict `<` comparison.
        const auto c0 = static_cast<std::uint32_t>(rng::uniform_below(src, s0));
        const auto c1 =
            s0 + static_cast<std::uint32_t>(rng::uniform_below(src, s1));
        const std::uint32_t l0 = state.load(c0);
        const std::uint32_t l1 = state.load(c1);
        const std::uint32_t best = l1 < l0 ? c1 : c0;
        probes += 2;
        state.add_ball(best);
        if (out != nullptr) out[placed_total + placed] = best;
      }
    }
    placed_total += quota;
  }
}

}  // namespace bbb::core
