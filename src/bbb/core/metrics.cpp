#include "bbb/core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bbb::core {

namespace {
void require_nonempty(std::span<const std::uint32_t> loads, const char* fn) {
  if (loads.empty()) {
    throw std::invalid_argument(std::string(fn) + ": empty load vector");
  }
}
}  // namespace

std::uint32_t max_load(std::span<const std::uint32_t> loads) {
  require_nonempty(loads, "max_load");
  return *std::max_element(loads.begin(), loads.end());
}

std::uint32_t min_load(std::span<const std::uint32_t> loads) {
  require_nonempty(loads, "min_load");
  return *std::min_element(loads.begin(), loads.end());
}

std::uint32_t load_gap(std::span<const std::uint32_t> loads) {
  require_nonempty(loads, "load_gap");
  auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  return *hi - *lo;
}

double quadratic_potential(std::span<const std::uint32_t> loads, std::uint64_t balls) {
  require_nonempty(loads, "quadratic_potential");
  const double avg =
      static_cast<double>(balls) / static_cast<double>(loads.size());
  double acc = 0.0;
  for (std::uint32_t l : loads) {
    const double d = static_cast<double>(l) - avg;
    acc += d * d;
  }
  return acc;
}

double exponential_potential(std::span<const std::uint32_t> loads, std::uint64_t balls,
                             double eps) {
  require_nonempty(loads, "exponential_potential");
  const double avg =
      static_cast<double>(balls) / static_cast<double>(loads.size());
  const double log1pe = std::log1p(eps);
  double acc = 0.0;
  for (std::uint32_t l : loads) {
    acc += std::exp((avg + 2.0 - static_cast<double>(l)) * log1pe);
  }
  return acc;
}

double log_exponential_potential(std::span<const std::uint32_t> loads,
                                 std::uint64_t balls,
                                 double eps) {
  require_nonempty(loads, "log_exponential_potential");
  const double avg =
      static_cast<double>(balls) / static_cast<double>(loads.size());
  const double log1pe = std::log1p(eps);
  // log-sum-exp with the max exponent factored out; the max exponent comes
  // from the *least* loaded bin.
  const std::uint32_t lmin = min_load(loads);
  const double emax = (avg + 2.0 - static_cast<double>(lmin)) * log1pe;
  double acc = 0.0;
  for (std::uint32_t l : loads) {
    acc += std::exp((avg + 2.0 - static_cast<double>(l)) * log1pe - emax);
  }
  return emax + std::log(acc);
}

std::uint64_t total_holes(std::span<const std::uint32_t> loads, std::uint32_t capacity) {
  require_nonempty(loads, "total_holes");
  std::uint64_t holes = 0;
  for (std::uint32_t l : loads) {
    if (l < capacity) holes += capacity - l;
  }
  return holes;
}

std::uint64_t empty_bins(std::span<const std::uint32_t> loads) {
  require_nonempty(loads, "empty_bins");
  std::uint64_t k = 0;
  for (std::uint32_t l : loads) {
    if (l == 0) ++k;
  }
  return k;
}

stats::IntHistogram load_histogram(std::span<const std::uint32_t> loads) {
  stats::IntHistogram h;
  for (std::uint32_t l : loads) h.add(static_cast<std::int64_t>(l));
  return h;
}

NormalizedLoadMetrics compute_normalized_metrics(
    std::span<const std::uint32_t> loads, std::span<const std::uint32_t> capacities,
    std::uint64_t balls) {
  require_nonempty(loads, "compute_normalized_metrics");
  if (loads.size() != capacities.size()) {
    throw std::invalid_argument(
        "compute_normalized_metrics: loads and capacities differ in size");
  }
  std::uint64_t total_capacity = 0;
  for (std::uint32_t c : capacities) {
    if (c == 0) {
      throw std::invalid_argument("compute_normalized_metrics: zero capacity");
    }
    total_capacity += c;
  }
  NormalizedLoadMetrics m;
  m.norm_average = static_cast<double>(balls) / static_cast<double>(total_capacity);
  m.max_norm = 0.0;
  m.min_norm = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double norm =
        static_cast<double>(loads[i]) / static_cast<double>(capacities[i]);
    m.max_norm = std::max(m.max_norm, norm);
    m.min_norm = std::min(m.min_norm, norm);
    const double d = norm - m.norm_average;
    m.weighted_psi += static_cast<double>(capacities[i]) * d * d;
  }
  m.gap_norm = m.max_norm - m.min_norm;
  return m;
}

LoadMetrics compute_metrics(std::span<const std::uint32_t> loads, std::uint64_t balls) {
  require_nonempty(loads, "compute_metrics");
  LoadMetrics m;
  m.max = max_load(loads);
  m.min = min_load(loads);
  m.gap = m.max - m.min;
  m.psi = quadratic_potential(loads, balls);
  m.log_phi = log_exponential_potential(loads, balls);
  m.average = static_cast<double>(balls) / static_cast<double>(loads.size());
  return m;
}

}  // namespace bbb::core
