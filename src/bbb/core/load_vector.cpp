#include "bbb/core/load_vector.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbb::core {

LoadVector::LoadVector(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("LoadVector: n must be positive");
  loads_.assign(n, 0);
}

void LoadVector::clear() noexcept {
  std::fill(loads_.begin(), loads_.end(), 0u);
  balls_ = 0;
}

}  // namespace bbb::core
