#include "bbb/core/spec.hpp"

#include <limits>
#include <stdexcept>

namespace bbb::core {

namespace {

/// Comma-separated unsigned integer list, shared by the bracket-args and
/// `capacities=` grammars: digits-only tokens (stoull would happily wrap
/// "-1" to 2^64 - 1 and accept leading whitespace or '+', all of which
/// should read as malformed), trailing commas rejected, empty list ok
/// (callers that need at least one element say so themselves). `what`
/// names the element in errors ("integer", "capacity").
std::vector<std::uint64_t> parse_uint_list(const std::string& list,
                                           const std::string& spec,
                                           const std::string& kind,
                                           const char* what) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const auto comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument(kind + " spec '" + spec + "': bad " + what + " '" +
                                  tok + "'");
    }
    try {
      out.push_back(std::stoull(tok));
    } catch (const std::exception&) {  // out_of_range for values >= 2^64
      throw std::invalid_argument(kind + " spec '" + spec + "': bad " + what + " '" +
                                  tok + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
    // A trailing comma ("greedy[2,]") promises another element that never
    // comes; interior empty tokens are caught by the digits check above.
    if (pos == list.size()) {
      throw std::invalid_argument(kind + " spec '" + spec + "': bad " + what + " ''");
    }
  }
  return out;
}

}  // namespace

ParsedSpec parse_spec(const std::string& spec, const std::string& kind) {
  ParsedSpec out;
  const auto bracket = spec.find('[');
  if (bracket == std::string::npos) {
    out.name = spec;
    return out;
  }
  if (spec.back() != ']') {
    throw std::invalid_argument(kind + " spec '" + spec + "': missing ']'");
  }
  out.name = spec.substr(0, bracket);
  out.args = parse_uint_list(spec.substr(bracket + 1, spec.size() - bracket - 2),
                             spec, kind, "integer");
  return out;
}

std::uint64_t spec_arg(const ParsedSpec& parsed, std::size_t i, const std::string& spec,
                       const std::string& kind) {
  if (i >= parsed.args.size()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': missing argument " +
                                std::to_string(i + 1));
  }
  return parsed.args[i];
}

std::uint64_t spec_optional_arg(const ParsedSpec& parsed, std::uint64_t fallback,
                                const std::string& spec, const std::string& kind) {
  if (parsed.args.empty()) return fallback;
  if (parsed.args.size() > 1) {
    throw std::invalid_argument(kind + " spec '" + spec + "': too many arguments");
  }
  return parsed.args[0];
}

std::uint32_t spec_arg_u32(const ParsedSpec& parsed, std::size_t i,
                           const std::string& spec, const std::string& kind) {
  const std::uint64_t v = spec_arg(parsed, i, spec, kind);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': argument " +
                                std::to_string(i + 1) + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t spec_optional_arg_u32(const ParsedSpec& parsed, std::uint32_t fallback,
                                    const std::string& spec, const std::string& kind) {
  const std::uint64_t v = spec_optional_arg(parsed, fallback, spec, kind);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': argument out of range");
  }
  return static_cast<std::uint32_t>(v);
}

SpecPrefix split_spec_prefix(const std::string& spec, const std::string& kind) {
  SpecPrefix out;
  out.rest = spec;
  constexpr const char* kWeighted = "weighted:";
  constexpr const char* kCapacities = "capacities=";
  constexpr const char* kShards = "shards[";
  for (;;) {
    if (out.rest.rfind(kShards, 0) == 0) {
      // Only a full "shards[t]:" head is a modifier; a bare "shards[8]"
      // (no terminating "]:") falls through to the name[args] parser and
      // its unknown-protocol error.
      const auto close = out.rest.find("]:");
      if (close == std::string::npos) break;
      if (out.shards != 0) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': duplicate 'shards[t]:' prefix");
      }
      const std::string tok =
          out.rest.substr(std::string(kShards).size(),
                          close - std::string(kShards).size());
      if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': bad shard count '" + tok + "'");
      }
      std::uint64_t value = 0;
      try {
        value = std::stoull(tok);
      } catch (const std::exception&) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': bad shard count '" + tok + "'");
      }
      if (value == 0 || value > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument(kind + " spec '" + spec + "': shard count '" +
                                    tok + "' out of range");
      }
      out.shards = static_cast<std::uint32_t>(value);
      out.rest.erase(0, close + 2);
      continue;
    }
    if (out.rest.rfind(kWeighted, 0) == 0) {
      if (out.weighted) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': duplicate 'weighted:' prefix");
      }
      out.weighted = true;
      out.rest.erase(0, std::string(kWeighted).size());
      continue;
    }
    if (out.rest.rfind(kCapacities, 0) == 0) {
      if (!out.capacities.empty()) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': duplicate 'capacities=' prefix");
      }
      const auto colon = out.rest.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': 'capacities=' prefix missing ':'");
      }
      const std::string list =
          out.rest.substr(std::string(kCapacities).size(),
                          colon - std::string(kCapacities).size());
      const std::vector<std::uint64_t> values =
          parse_uint_list(list, spec, kind, "capacity");
      if (values.empty()) {
        throw std::invalid_argument(kind + " spec '" + spec +
                                    "': empty capacity list");
      }
      for (const std::uint64_t v : values) {
        if (v == 0 || v > std::numeric_limits<std::uint32_t>::max()) {
          throw std::invalid_argument(kind + " spec '" + spec + "': capacity '" +
                                      std::to_string(v) + "' out of range");
        }
        out.capacities.push_back(static_cast<std::uint32_t>(v));
      }
      out.rest.erase(0, colon + 1);
      continue;
    }
    break;
  }
  if (out.rest.empty()) {
    throw std::invalid_argument(kind + " spec '" + spec +
                                "': nothing after the modifier prefixes");
  }
  return out;
}

std::vector<std::uint32_t> expand_capacities(const std::vector<std::uint32_t>& profile,
                                             std::uint32_t n) {
  if (profile.empty()) {
    throw std::invalid_argument("expand_capacities: empty capacity profile");
  }
  if (n == 0) throw std::invalid_argument("expand_capacities: n must be positive");
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = profile[i % profile.size()];
  return out;
}

std::string capacities_prefix(const std::vector<std::uint32_t>& profile) {
  std::string out = "capacities=";
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(profile[i]);
  }
  out += ':';
  return out;
}

}  // namespace bbb::core
