#include "bbb/core/spec.hpp"

#include <limits>
#include <stdexcept>

namespace bbb::core {

ParsedSpec parse_spec(const std::string& spec, const std::string& kind) {
  ParsedSpec out;
  const auto bracket = spec.find('[');
  if (bracket == std::string::npos) {
    out.name = spec;
    return out;
  }
  if (spec.back() != ']') {
    throw std::invalid_argument(kind + " spec '" + spec + "': missing ']'");
  }
  out.name = spec.substr(0, bracket);
  const std::string args = spec.substr(bracket + 1, spec.size() - bracket - 2);
  std::size_t pos = 0;
  while (pos < args.size()) {
    const auto comma = args.find(',', pos);
    const std::string tok =
        args.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    // Digits only: stoull would happily wrap "-1" to 2^64 - 1 and accept
    // leading whitespace or '+', all of which should read as malformed.
    if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument(kind + " spec '" + spec + "': bad integer '" + tok +
                                  "'");
    }
    try {
      out.args.push_back(std::stoull(tok));
    } catch (const std::exception&) {  // out_of_range for values >= 2^64
      throw std::invalid_argument(kind + " spec '" + spec + "': bad integer '" + tok +
                                  "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
    // A trailing comma ("greedy[2,]") promises another argument that never
    // comes; interior empty tokens are caught by the digits check above.
    if (pos == args.size()) {
      throw std::invalid_argument(kind + " spec '" + spec + "': bad integer ''");
    }
  }
  return out;
}

std::uint64_t spec_arg(const ParsedSpec& parsed, std::size_t i, const std::string& spec,
                       const std::string& kind) {
  if (i >= parsed.args.size()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': missing argument " +
                                std::to_string(i + 1));
  }
  return parsed.args[i];
}

std::uint64_t spec_optional_arg(const ParsedSpec& parsed, std::uint64_t fallback,
                                const std::string& spec, const std::string& kind) {
  if (parsed.args.empty()) return fallback;
  if (parsed.args.size() > 1) {
    throw std::invalid_argument(kind + " spec '" + spec + "': too many arguments");
  }
  return parsed.args[0];
}

std::uint32_t spec_arg_u32(const ParsedSpec& parsed, std::size_t i,
                           const std::string& spec, const std::string& kind) {
  const std::uint64_t v = spec_arg(parsed, i, spec, kind);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': argument " +
                                std::to_string(i + 1) + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t spec_optional_arg_u32(const ParsedSpec& parsed, std::uint32_t fallback,
                                    const std::string& spec, const std::string& kind) {
  const std::uint64_t v = spec_optional_arg(parsed, fallback, spec, kind);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(kind + " spec '" + spec + "': argument out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace bbb::core
