#pragma once
/// \file protocol.hpp
/// The batch-allocation interface all protocols implement, and the result
/// record every experiment consumes.
///
/// Two layers of API, both fed by the same streaming core (core/rule.hpp):
///  * streaming rules (`PlacementRule::place_one` places one ball into a
///    shared `BinState`) — what an application embeds and the dyn engine
///    drives;
///  * `Protocol` (this file) — type-erased batch interface the simulator
///    sweeps over: `run(m, n, gen)` allocates m balls into n fresh bins,
///    implemented as the place_one loop (`run_rule`) for every sequential
///    protocol.
///
/// Notation (Section 2 of the paper): m balls, n bins, average load m/n;
/// `AllocationResult::probes` is the paper's *allocation time* — the total
/// number of random bin choices drawn, the cost measure of Theorems 3.1
/// and 4.1.
///
/// Invariants every implementation upholds (property-tested across all
/// protocols in tests/protocols/invariants_test.cpp):
///   * loads.size() == n and sum(loads) == balls;
///   * balls == m whenever completed is true;
///   * probes >= balls for probing protocols (each placement consumes at
///     least one random choice);
///   * run() is const and state-free between calls — identical (m, n,
///     engine state) triples reproduce identical results.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

/// Everything a single protocol execution produces.
struct AllocationResult {
  std::vector<std::uint32_t> loads;  ///< final load of each bin
  std::uint64_t balls = 0;           ///< balls successfully placed
  std::uint64_t probes = 0;          ///< random bin choices = "allocation time"
  std::uint64_t reallocations = 0;   ///< post-placement ball moves (CRS, cuckoo)
  std::uint64_t rounds = 0;          ///< synchronous rounds (parallel protocols)
  bool completed = true;             ///< false if a bound (rounds/kicks) was hit
};

/// Abstract batch protocol. Implementations are immutable and reusable:
/// `run` owns no state between calls, so one instance can serve many
/// replicates concurrently (each with its own engine).
class Protocol {
 public:
  virtual ~Protocol();

  /// Short stable identifier, e.g. "adaptive", "greedy[2]".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocate m balls into n fresh bins using randomness from `gen`.
  /// \throws std::invalid_argument if n == 0.
  [[nodiscard]] virtual AllocationResult run(std::uint64_t m, std::uint32_t n,
                                             rng::Engine& gen) const = 0;
};

/// ceil(m/n) in exact integer arithmetic — the quantity the paper's
/// thresholds compare against (`load < i/n + 1` over integers is
/// `load <= ceil(i/n)`). Formulated without the textbook `(m + n - 1) / n`,
/// which wraps for m near UINT64_MAX; exact over the full uint64 domain
/// (boundary-tested in tests/core/protocol_test.cpp).
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t m,
                                               std::uint32_t n) noexcept {
  return m / n + (m % n != 0 ? 1 : 0);
}

/// Shared argument validation for run() implementations.
void validate_run_args(std::uint64_t m, std::uint32_t n);

}  // namespace bbb::core
