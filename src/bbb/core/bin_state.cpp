#include "bbb/core/bin_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "bbb/core/metrics.hpp"

namespace bbb::core {

namespace {

// Levels above this are computed by std::pow instead of extending the
// (1+eps)^{-l} cache, so one huge weighted add cannot allocate an
// unbounded cache. (1/1.005)^{2^20} underflows to 0 long before this.
constexpr std::uint32_t kPowCacheMax = 1u << 20;

}  // namespace

BinState::BinState(std::uint32_t n)
    : phi_weight_(static_cast<double>(n)),
      pow_neg_(1, 1.0),
      nonempty_pos_(n, 0),
      total_capacity_(n) {
  if (n == 0) throw std::invalid_argument("BinState: n must be positive");
  loads_.assign(n, 0);
  levels_.reset(n);
}

BinState::BinState(std::vector<std::uint32_t> capacities)
    : BinState(capacities.empty()
                   ? 0
                   : static_cast<std::uint32_t>(capacities.size())) {
  capacities_ = std::move(capacities);
  init_capacity_classes();
}

void BinState::init_capacity_classes() {
  total_capacity_ = 0;
  std::map<std::uint32_t, std::uint32_t> bins_of;  // capacity -> #bins
  for (const std::uint32_t c : capacities_) {
    if (c == 0) throw std::invalid_argument("BinState: capacities must be >= 1");
    total_capacity_ += c;
    ++bins_of[c];
  }
  classes_.clear();
  classes_.reserve(bins_of.size());
  std::map<std::uint32_t, std::uint32_t> class_index;  // capacity -> class id
  for (const auto& [c, bins] : bins_of) {
    class_index[c] = static_cast<std::uint32_t>(classes_.size());
    CapacityClass cls;
    cls.capacity = c;
    cls.bins = bins;
    cls.levels.reset(bins);
    classes_.push_back(std::move(cls));
  }
  class_of_.resize(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    class_of_[i] = class_index[capacities_[i]];
  }
  if (classes_.size() > 1) {
    std::vector<double> weights(capacities_.begin(), capacities_.end());
    cap_sampler_.emplace(weights);
  }
}

double BinState::pow_neg(std::uint32_t l) const {
  if (l >= kPowCacheMax) {
    return std::pow(1.0 + kPotentialEpsilon, -static_cast<double>(l));
  }
  // (1+eps)^{-l}, extended one level at a time so lookups stay O(1): loads
  // move by the event's weight per event, and each level is computed once.
  while (pow_neg_.size() <= l) {
    pow_neg_.push_back(pow_neg_.back() / (1.0 + kPotentialEpsilon));
  }
  return pow_neg_[l];
}

void BinState::add_ball(std::uint32_t bin, std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("BinState::add_ball: weight must be positive");
  }
  const std::uint32_t l = loads_[bin];
  if (l > std::numeric_limits<std::uint32_t>::max() - weight) {
    throw std::invalid_argument("BinState::add_ball: bin " + std::to_string(bin) +
                                " load would overflow 32 bits");
  }
  const std::uint32_t nl = l + weight;
  loads_[bin] = nl;
  balls_ += weight;

  levels_.move_up(l, nl);
  // (l+w)^2 - l^2 = (2l + w) w, exact in 64 bits while S2 itself fits.
  const std::uint64_t sq_delta =
      (2ULL * l + weight) * static_cast<std::uint64_t>(weight);
  sum_sq_ += sq_delta;
  phi_weight_ += pow_neg(nl) - pow_neg(l);
  if (!classes_.empty()) {
    CapacityClass& cls = classes_[class_of_[bin]];
    cls.levels.move_up(l, nl);
    cls.sum_sq += sq_delta;
  }

  if (l == 0) {
    nonempty_pos_[bin] = static_cast<std::uint32_t>(nonempty_.size());
    nonempty_.push_back(bin);
  }
}

void BinState::remove_ball(std::uint32_t bin, std::uint32_t weight) {
  if (weight == 0) {
    throw std::invalid_argument("BinState::remove_ball: weight must be positive");
  }
  const std::uint32_t l = loads_[bin];
  if (l < weight) {
    throw std::invalid_argument("BinState::remove_ball: bin " + std::to_string(bin) +
                                " holds " + std::to_string(l) + " < weight " +
                                std::to_string(weight));
  }
  const std::uint32_t nl = l - weight;
  loads_[bin] = nl;
  balls_ -= weight;

  levels_.move_down(l, nl);
  // l^2 - (l-w)^2 = (2l - w) w.
  const std::uint64_t sq_delta =
      (2ULL * l - weight) * static_cast<std::uint64_t>(weight);
  sum_sq_ -= sq_delta;
  phi_weight_ += pow_neg(nl) - pow_neg(l);
  if (!classes_.empty()) {
    CapacityClass& cls = classes_[class_of_[bin]];
    cls.levels.move_down(l, nl);
    cls.sum_sq -= sq_delta;
  }

  if (nl == 0) {
    const std::uint32_t pos = nonempty_pos_[bin];
    const std::uint32_t last = nonempty_.back();
    nonempty_[pos] = last;
    nonempty_pos_[last] = pos;
    nonempty_.pop_back();
  }
}

double BinState::psi() const noexcept {
  const auto t = static_cast<double>(balls_);
  return static_cast<double>(sum_sq_) - t * t / static_cast<double>(loads_.size());
}

double BinState::log_phi() const noexcept {
  return std::log(phi_weight_) + (average() + 2.0) * std::log1p(kPotentialEpsilon);
}

std::uint32_t BinState::sample_capacity_proportional(rng::Engine& gen) const {
  if (!cap_sampler_.has_value()) {
    return static_cast<std::uint32_t>(rng::uniform_below(gen, loads_.size()));
  }
  return (*cap_sampler_)(gen);
}

double BinState::max_norm_load() const noexcept {
  if (classes_.empty()) return static_cast<double>(levels_.max);
  double best = 0.0;
  for (const CapacityClass& cls : classes_) {
    const double v =
        static_cast<double>(cls.levels.max) / static_cast<double>(cls.capacity);
    if (v > best) best = v;
  }
  return best;
}

double BinState::min_norm_load() const noexcept {
  if (classes_.empty()) return static_cast<double>(levels_.min);
  double best = std::numeric_limits<double>::infinity();
  for (const CapacityClass& cls : classes_) {
    const double v =
        static_cast<double>(cls.levels.min) / static_cast<double>(cls.capacity);
    if (v < best) best = v;
  }
  return best;
}

double BinState::weighted_psi() const noexcept {
  const auto t = static_cast<double>(balls_);
  const double centering = t * t / static_cast<double>(total_capacity_);
  if (classes_.empty()) return static_cast<double>(sum_sq_) - centering;
  double sum = 0.0;
  for (const CapacityClass& cls : classes_) {
    sum += static_cast<double>(cls.sum_sq) / static_cast<double>(cls.capacity);
  }
  return sum - centering;
}

std::uint32_t BinState::bins_with_load_at_least(std::uint32_t k) const noexcept {
  if (k == 0) return n();
  std::uint32_t count = 0;
  for (std::size_t l = k; l < levels_.count.size(); ++l) count += levels_.count[l];
  return count;
}

std::uint32_t BinState::sample_nonempty(rng::Engine& gen) const {
  if (nonempty_.empty()) {
    throw std::logic_error("BinState::sample_nonempty: every bin is empty");
  }
  return nonempty_[rng::uniform_below(gen, nonempty_.size())];
}

void BinState::clear() noexcept {
  std::fill(loads_.begin(), loads_.end(), 0u);
  balls_ = 0;
  levels_.reset(n());
  sum_sq_ = 0;
  phi_weight_ = static_cast<double>(n());
  nonempty_.clear();
  // Reset the bin->index slots too: a stale entry is never read by the
  // add/remove protocol, but "cleared == freshly constructed" is the
  // contract, and any future reader of the index must not see garbage.
  std::fill(nonempty_pos_.begin(), nonempty_pos_.end(), 0u);
  for (CapacityClass& cls : classes_) {
    cls.levels.reset(cls.bins);
    cls.sum_sq = 0;
  }
}

}  // namespace bbb::core
