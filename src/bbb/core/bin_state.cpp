#include "bbb/core/bin_state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "bbb/core/metrics.hpp"

namespace bbb::core {

BinState::BinState(std::uint32_t n)
    : level_count_(1, n),
      phi_weight_(static_cast<double>(n)),
      pow_neg_(1, 1.0),
      nonempty_pos_(n, 0) {
  if (n == 0) throw std::invalid_argument("BinState: n must be positive");
  loads_.assign(n, 0);
}

double BinState::pow_neg(std::uint32_t l) const {
  // (1+eps)^{-l}, extended one level at a time so lookups stay O(1): loads
  // only ever move by one level per event.
  while (pow_neg_.size() <= l) {
    pow_neg_.push_back(pow_neg_.back() / (1.0 + kPotentialEpsilon));
  }
  return pow_neg_[l];
}

void BinState::add_ball(std::uint32_t bin) {
  const std::uint32_t l = loads_[bin];
  ++loads_[bin];
  ++balls_;

  if (level_count_.size() <= static_cast<std::size_t>(l) + 1) {
    level_count_.resize(static_cast<std::size_t>(l) + 2, 0);
  }
  --level_count_[l];
  ++level_count_[l + 1];
  if (l + 1 > max_) max_ = l + 1;
  // The moved bin was the last one at the minimum level: the new minimum is
  // one level up (where this bin now sits), so min never skips a level.
  if (l == min_ && level_count_[l] == 0) ++min_;

  sum_sq_ += 2ULL * l + 1;
  phi_weight_ += pow_neg(l + 1) - pow_neg(l);

  if (l == 0) {
    nonempty_pos_[bin] = static_cast<std::uint32_t>(nonempty_.size());
    nonempty_.push_back(bin);
  }
}

void BinState::remove_ball(std::uint32_t bin) {
  const std::uint32_t l = loads_[bin];
  if (l == 0) {
    throw std::invalid_argument("BinState::remove_ball: bin " + std::to_string(bin) +
                                " is empty");
  }
  --loads_[bin];
  --balls_;

  --level_count_[l];
  ++level_count_[l - 1];
  if (l - 1 < min_) min_ = l - 1;
  // The moved bin was the last one at the maximum level; it now occupies
  // level l - 1, so the maximum drops by exactly one.
  if (l == max_ && level_count_[l] == 0) --max_;

  sum_sq_ -= 2ULL * l - 1;
  phi_weight_ += pow_neg(l - 1) - pow_neg(l);

  if (l == 1) {
    const std::uint32_t pos = nonempty_pos_[bin];
    const std::uint32_t last = nonempty_.back();
    nonempty_[pos] = last;
    nonempty_pos_[last] = pos;
    nonempty_.pop_back();
  }
}

double BinState::psi() const noexcept {
  const auto t = static_cast<double>(balls_);
  return static_cast<double>(sum_sq_) - t * t / static_cast<double>(loads_.size());
}

double BinState::log_phi() const noexcept {
  return std::log(phi_weight_) + (average() + 2.0) * std::log1p(kPotentialEpsilon);
}

std::uint32_t BinState::bins_with_load_at_least(std::uint32_t k) const noexcept {
  if (k == 0) return n();
  std::uint32_t count = 0;
  for (std::size_t l = k; l < level_count_.size(); ++l) count += level_count_[l];
  return count;
}

std::uint32_t BinState::sample_nonempty(rng::Engine& gen) const {
  if (nonempty_.empty()) {
    throw std::logic_error("BinState::sample_nonempty: every bin is empty");
  }
  return nonempty_[rng::uniform_below(gen, nonempty_.size())];
}

void BinState::clear() noexcept {
  std::fill(loads_.begin(), loads_.end(), 0u);
  balls_ = 0;
  level_count_.assign(1, n());
  max_ = 0;
  min_ = 0;
  sum_sq_ = 0;
  phi_weight_ = static_cast<double>(n());
  nonempty_.clear();
}

}  // namespace bbb::core
