#include "bbb/core/bin_state.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "bbb/core/metrics.hpp"

namespace bbb::core {

namespace {

// Levels above this are computed by std::pow instead of extending the
// (1+eps)^{-l} cache, so one huge weighted add cannot allocate an
// unbounded cache. (1/1.005)^{2^20} underflows to 0 long before this.
constexpr std::uint32_t kPowCacheMax = 1u << 20;

}  // namespace

std::string_view to_string(StateLayout layout) noexcept {
  return layout == StateLayout::kWide ? "wide" : "compact";
}

StateLayout parse_state_layout(std::string_view text) {
  if (text == "wide") return StateLayout::kWide;
  if (text == "compact") return StateLayout::kCompact;
  throw std::invalid_argument("unknown state layout '" + std::string(text) +
                              "' (expected wide|compact)");
}

BinState::BinState(std::uint32_t n, StateLayout layout)
    : n_(n),
      layout_(layout),
      phi_weight_(static_cast<double>(n)),
      pow_neg_(1, 1.0),
      total_capacity_(n) {
  if (n == 0) throw std::invalid_argument("BinState: n must be positive");
  if (layout_ == StateLayout::kWide) {
    loads_.assign(n, 0);
    nonempty_pos_.assign(n, 0);
  } else {
    lanes_.assign(n, 0);
  }
  levels_.reset(n);
}

BinState::BinState(std::vector<std::uint32_t> capacities, StateLayout layout)
    : BinState(capacities.empty() ? 0
                                  : static_cast<std::uint32_t>(capacities.size()),
               layout) {
  capacities_ = std::move(capacities);
  init_capacity_classes();
}

void BinState::init_capacity_classes() {
  total_capacity_ = 0;
  std::map<std::uint32_t, std::uint32_t> bins_of;  // capacity -> #bins
  for (const std::uint32_t c : capacities_) {
    if (c == 0) throw std::invalid_argument("BinState: capacities must be >= 1");
    total_capacity_ += c;
    ++bins_of[c];
  }
  classes_.clear();
  classes_.reserve(bins_of.size());
  std::map<std::uint32_t, std::uint32_t> class_index;  // capacity -> class id
  for (const auto& [c, bins] : bins_of) {
    class_index[c] = static_cast<std::uint32_t>(classes_.size());
    CapacityClass cls;
    cls.capacity = c;
    cls.bins = bins;
    cls.levels.reset(bins);
    classes_.push_back(std::move(cls));
  }
  class_of_.resize(capacities_.size());
  for (std::size_t i = 0; i < capacities_.size(); ++i) {
    class_of_[i] = class_index[capacities_[i]];
  }
  if (classes_.size() > 1) {
    std::vector<double> weights(capacities_.begin(), capacities_.end());
    cap_sampler_.emplace(weights);
  }
}

double BinState::pow_neg_slow(std::uint32_t l) const {
  if (l >= kPowCacheMax) {
    return std::pow(1.0 + kPotentialEpsilon, -static_cast<double>(l));
  }
  // (1+eps)^{-l}, extended one level at a time so lookups stay O(1): loads
  // move by the event's weight per event, and each level is computed once.
  while (pow_neg_.size() <= l) {
    pow_neg_.push_back(pow_neg_.back() / (1.0 + kPotentialEpsilon));
  }
  return pow_neg_[l];
}

std::uint32_t BinState::overflow_load(std::uint32_t bin) const noexcept {
  const auto it = overflow_.find(bin);
  return it != overflow_.end() ? it->second : kCompactLaneMax;
}

void BinState::overflow_store(std::uint32_t bin, std::uint32_t nl) {
  if (overflow_.insert_or_assign(bin, nl).second) ++compact_promotions_;
}

void BinState::overflow_erase(std::uint32_t bin) {
  if (overflow_.erase(bin) == 1) ++compact_demotions_;
}

void BinState::throw_zero_weight(const char* fn) {
  throw std::invalid_argument("BinState::" + std::string(fn) +
                              ": weight must be positive");
}

void BinState::throw_add_overflow(std::uint32_t bin) {
  throw std::invalid_argument("BinState::add_ball: bin " + std::to_string(bin) +
                              " load would overflow 32 bits");
}

void BinState::throw_remove_underflow(std::uint32_t bin, std::uint32_t l,
                                      std::uint32_t weight) {
  throw std::invalid_argument("BinState::remove_ball: bin " + std::to_string(bin) +
                              " holds " + std::to_string(l) + " < weight " +
                              std::to_string(weight));
}

const std::vector<std::uint32_t>& BinState::loads() const {
  if (layout_ != StateLayout::kWide) {
    throw std::logic_error(
        "BinState::loads: the compact layout keeps no 32-bit load vector; "
        "use copy_loads() or load(bin)");
  }
  return loads_;
}

std::vector<std::uint32_t> BinState::copy_loads() const {
  if (layout_ == StateLayout::kWide) return loads_;
  std::vector<std::uint32_t> out(lanes_.begin(), lanes_.end());
  for (const auto& [bin, l] : overflow_) out[bin] = l;
  return out;
}

double BinState::psi() const noexcept {
  const auto t = static_cast<double>(balls_);
  return static_cast<double>(sum_sq_) - t * t / static_cast<double>(n_);
}

double BinState::log_phi() const noexcept {
  return std::log(phi_weight_) + (average() + 2.0) * std::log1p(kPotentialEpsilon);
}

std::uint32_t BinState::sample_capacity_proportional(rng::Engine& gen) const {
  if (!cap_sampler_.has_value()) {
    return static_cast<std::uint32_t>(rng::uniform_below(gen, n_));
  }
  return (*cap_sampler_)(gen);
}

double BinState::max_norm_load() const noexcept {
  if (classes_.empty()) return static_cast<double>(levels_.max);
  double best = 0.0;
  for (const CapacityClass& cls : classes_) {
    const double v =
        static_cast<double>(cls.levels.max) / static_cast<double>(cls.capacity);
    if (v > best) best = v;
  }
  return best;
}

double BinState::min_norm_load() const noexcept {
  if (classes_.empty()) return static_cast<double>(levels_.min);
  double best = std::numeric_limits<double>::infinity();
  for (const CapacityClass& cls : classes_) {
    const double v =
        static_cast<double>(cls.levels.min) / static_cast<double>(cls.capacity);
    if (v < best) best = v;
  }
  return best;
}

double BinState::weighted_psi() const noexcept {
  const auto t = static_cast<double>(balls_);
  const double centering = t * t / static_cast<double>(total_capacity_);
  if (classes_.empty()) return static_cast<double>(sum_sq_) - centering;
  double sum = 0.0;
  for (const CapacityClass& cls : classes_) {
    sum += static_cast<double>(cls.sum_sq) / static_cast<double>(cls.capacity);
  }
  return sum - centering;
}

std::uint32_t BinState::bins_with_load_at_least(std::uint32_t k) const noexcept {
  if (k == 0) return n();
  std::uint32_t count = 0;
  for (std::size_t l = k; l < levels_.count.size(); ++l) count += levels_.count[l];
  return count;
}

std::uint32_t BinState::sample_nonempty(rng::Engine& gen) const {
  if (layout_ != StateLayout::kWide) {
    throw std::logic_error(
        "BinState::sample_nonempty: the compact layout maintains no "
        "nonempty-bin index; use the wide layout for workloads that serve "
        "uniformly random busy bins");
  }
  if (nonempty_.empty()) {
    throw std::logic_error("BinState::sample_nonempty: every bin is empty");
  }
  return nonempty_[rng::uniform_below(gen, nonempty_.size())];
}

void BinState::clear() noexcept {
  if (layout_ == StateLayout::kWide) {
    std::fill(loads_.begin(), loads_.end(), 0u);
  } else {
    std::fill(lanes_.begin(), lanes_.end(), std::uint8_t{0});
    overflow_.clear();
    compact_promotions_ = 0;
    compact_demotions_ = 0;
  }
  balls_ = 0;
  levels_.reset(n());
  sum_sq_ = 0;
  phi_weight_ = static_cast<double>(n());
  nonempty_.clear();
  // Reset the bin->index slots too: a stale entry is never read by the
  // add/remove protocol, but "cleared == freshly constructed" is the
  // contract, and any future reader of the index must not see garbage.
  std::fill(nonempty_pos_.begin(), nonempty_pos_.end(), 0u);
  for (CapacityClass& cls : classes_) {
    cls.levels.reset(cls.bins);
    cls.sum_sq = 0;
  }
}

}  // namespace bbb::core
