#pragma once
/// \file batch_kernel.hpp
/// The batch placement kernel: places waves of balls against the compact
/// 8-bit BinState slab with one bulk RNG block per wave, a vectorized
/// word->bin map + rejection scan (core/simd/), and a lean metric
/// commit — bit-identical to the scalar place_one stream (pinned in
/// tests/core/batch_kernel_test.cpp).
///
/// ## Wave anatomy
///
/// Per wave the kernel (a) drains the rule's ProbeLookahead then draws
/// fresh engine words into a buffer, (b) maps every buffered word to the
/// bin it will address if consumed as a candidate with the ISA backend's
/// `map_words` (Lemire's multiply is position-independent, the same
/// trick the lookahead's prefetch uses), which simultaneously screens
/// the whole wave for Lemire rejection candidates, (c) prefetches every
/// mapped lane, and (d) walks the buffer committing balls against the
/// *live* lane slab. Steps (a)-(c) run in kMapChunk-word chunks so each
/// chunk's lane prefetches age behind the next chunk's serial RNG fill,
/// and the walk (d) is branchless on random data — load compares, tie
/// selects, and the data-dependent cursor advance are all arithmetic,
/// with the next ball's candidates preloaded for both possible advances
/// before the current ball's tie resolves (see place_greedy2).
///
/// Reading the live lanes is what makes in-wave duplicates a non-event:
/// two balls probing the same bin serialize through the slab exactly as
/// the scalar stream would — no snapshot to go stale, no conflict
/// detection pass. The only wave-level validation left is the rejection
/// scan (probability ~ fill * n / 2^64 per wave — astronomically rare,
/// but a rejected draw shifts every later word's meaning, so the whole
/// wave replays through the exact scalar path over the same buffered
/// words: a FIFO source chaining buffer -> lookahead -> engine).
/// A ball whose candidate lane is near the 255 side-table promotion
/// (> kFastLoadMax) takes the exact add_ball in place — per ball, not
/// per wave. Validation failures cost speed, never correctness.
///
/// The fast commit is `batch_add_unit_lane` — the weight-1 add_ball
/// replayed in identical FP order, so Ψ and lnΦ stay bit-equal.
///
/// ## Randomness-consumption bookkeeping
///
/// greedy[2] consumes 2 words per ball plus a tie word when the candidate
/// loads are equal, so the word→ball assignment is data-dependent; the
/// commit walk tracks it exactly (cursor advances 2 + eq, tie bit read
/// at k + 2). left[2] consumes exactly 2 words per ball (Vöcking's
/// tie-break is deterministic), one-choice exactly one. Words drawn into
/// a wave but not consumed (at most 2, when ties exhaust the buffer
/// mid-ball) are handed back to the ProbeLookahead (`push_residue`), so
/// a place_one following a place_batch sees exactly the word a pure
/// place_one stream would — the engine-exclusivity contract of
/// core/probe.hpp, which is also why eligibility requires the lookahead
/// to be engaged.
///
/// Families: one-choice, greedy[2], left[2] on compact uniform-capacity
/// states. greedy[d>2] and left[d>2] interleave data-dependent tie draws
/// (greedy) or more than two group streams per ball (left) and route
/// through the base place_one loop; heterogeneous capacities carry
/// per-class metric state the lean commit does not maintain, so they are
/// ineligible by construction (see `eligible`).

#include <cstdint>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/probe.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

/// Wave-at-a-time placement over a compact BinState. One instance per
/// rule (scratch buffers are reused across calls; counters accumulate).
class BatchPlacer {
 public:
  /// Words buffered per wave. 256 words is ~128 greedy[2] balls: deep
  /// enough that the bulk map + prefetch pass runs far ahead of the
  /// commit walk (4x the lookahead's distance), shallow enough that the
  /// word block and its bin map stay resident in L1.
  static constexpr std::uint32_t kWaveWords = 256;

  /// Highest lane value the fast commit accepts: the new load l+1 must
  /// stay strictly below the 255 promotion threshold, and lane 255 means
  /// the real load lives in the overflow side-table — both route that
  /// ball through the exact add_ball.
  static constexpr std::uint8_t kFastLoadMax = 253;

  /// True when the kernel may place on this state: compact layout (the
  /// 8-bit slab is the vector operand), uniform unit capacities (the lean
  /// commit maintains no per-class metrics), and an engaged lookahead
  /// (the engine-exclusivity promise that licenses drawing words ahead).
  [[nodiscard]] static bool eligible(const BinState& state,
                                     const ProbeLookahead& lookahead) noexcept {
    return state.layout() == StateLayout::kCompact &&
           state.capacities().empty() && lookahead.enabled();
  }

  /// Place `count` one-choice balls (1 word each). `probes` is the rule's
  /// probe counter; `out`, when non-null, receives each ball's bin.
  void place_one_choice(BinState& state, std::uint64_t count,
                        ProbeLookahead& lookahead, rng::Engine& gen,
                        std::uint64_t& probes, std::uint32_t* out);

  /// Place `count` greedy[2] balls (2 words + 1 per tie).
  void place_greedy2(BinState& state, std::uint64_t count,
                     ProbeLookahead& lookahead, rng::Engine& gen,
                     std::uint64_t& probes, std::uint32_t* out);

  /// Place `count` left[2] balls (exactly 2 words each; group 0 is
  /// [0, n/2), group 1 is [n/2, n), matching LeftDRule::group_range).
  void place_left2(BinState& state, std::uint64_t count,
                   ProbeLookahead& lookahead, rng::Engine& gen,
                   std::uint64_t& probes, std::uint32_t* out);

  /// Kernel-path place_batch calls — core.batch.batches.
  [[nodiscard]] std::uint64_t batches() const noexcept { return batches_; }
  /// Waves processed (fast or fallback) — core.batch.waves.
  [[nodiscard]] std::uint64_t waves() const noexcept { return waves_; }
  /// Balls committed by the wave walk — core.batch.fast_balls.
  [[nodiscard]] std::uint64_t fast_balls() const noexcept { return fast_balls_; }
  /// Balls replayed through the exact scalar path (a wave holding a
  /// Lemire rejection candidate) — core.batch.fallback_balls.
  [[nodiscard]] std::uint64_t fallback_balls() const noexcept {
    return fallback_balls_;
  }

 private:
  void ensure_scratch();

  std::vector<std::uint64_t> words_;  // kWaveWords + 2 (tie-bit overread pad)
  std::vector<std::uint32_t> bins_;

  std::uint64_t batches_ = 0;
  std::uint64_t waves_ = 0;
  std::uint64_t fast_balls_ = 0;
  std::uint64_t fallback_balls_ = 0;
};

}  // namespace bbb::core
