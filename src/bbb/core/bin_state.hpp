#pragma once
/// \file bin_state.hpp
/// THE bin-load state of the library: n bins, each holding a count of
/// balls, plus the bookkeeping that makes every Section-2 metric
/// incremental per event — no full rescan, batch or dynamic alike.
///
/// This type unifies what used to be two states (the bare `LoadVector`
/// the batch protocols filled and the dyn layer's `DynState`): every
/// decision rule in core/protocols/ now streams balls into one `BinState`
/// via `PlacementRule::place_one`, and every consumer (batch adapter,
/// dynamic engine, tracer) reads the same O(1) metrics.
///
/// Balls carry integer *weights* (a chain of w jobs placed as one atomic
/// decision is `add_ball(bin, w)`), and bins carry integer *capacities*
/// c_i (a server twice as fast as its neighbor has twice the capacity).
/// Unit weights and uniform capacities — the paper's setting — are the
/// defaults and cost nothing extra.
///
/// Notation: this is the paper's load vector l = (l_1, ..., l_n) after t
/// units of weight have been placed; `balls()` is t, `average()` is t/n
/// (the centering used by the potentials Ψ and Φ in metrics.hpp). With
/// capacities, C = sum c_i and the normalized load of bin i is l_i/c_i;
/// `norm_average()` is t/C. Incremental bookkeeping:
///   - level counts (number of bins at each load) give max/min/gap in
///     O(1 + w) per event, because one event moves one bin w levels (the
///     min/max rescans are bounded by the level distance moved, so the
///     cost stays O(1) amortized per unit of weight);
///   - S2 = sum l_i^2 gives Psi = S2 - t^2/n;
///   - per-capacity-class S2_c = sum_{c_i = c} l_i^2 gives the weighted
///     potential Psi_w = sum l_i^2/c_i - t^2/C in exact integer parts;
///   - per-class level counts give max/min of l_i/c_i in O(#classes);
///   - W = sum (1+eps)^{-l_i} gives ln Phi = ln W + (t/n + 2) ln(1+eps);
///   - the nonempty-bin index supports O(1) "serve a uniformly random
///     busy queue" departures (the supermarket service event);
///   - a Walker alias table over the capacities gives O(1) probes
///     proportional to c_i (`sample_capacity_proportional`).
///
/// Invariants (property-tested in tests/core/bin_state_test.cpp and,
/// against the naive metrics.hpp recomputation under random weighted
/// add/remove interleavings, in tests/dyn/allocator_test.cpp):
///   * balls() == sum of load(i) over all bins whenever control is
///     outside add_ball/remove_ball;
///   * every incremental metric equals the batch recomputation from
///     core/metrics.hpp after any interleaving of add/remove;
///   * clear() is indistinguishable from fresh construction.

#include <cstdint>
#include <optional>
#include <vector>

#include "bbb/rng/alias_table.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

/// Bin loads plus incremental metrics. Mutators are O(1) amortized per
/// unit of weight moved; metric reads are O(1) (normalized max/min/gap:
/// O(#distinct capacities)).
class BinState {
 public:
  /// Uniform-capacity state (the paper's setting: every c_i = 1).
  /// \param n number of bins. \throws std::invalid_argument if n == 0.
  explicit BinState(std::uint32_t n);

  /// Heterogeneous-capacity state: bin i has capacity capacities[i] >= 1.
  /// \throws std::invalid_argument if empty or any capacity is 0.
  explicit BinState(std::vector<std::uint32_t> capacities);

  /// Place one unit ball into `bin`, updating every derived metric.
  void add_ball(std::uint32_t bin) { add_ball(bin, 1); }

  /// Place one ball of integer weight `weight` into `bin` as a single
  /// atomic event (the whole chain lands together).
  /// \throws std::invalid_argument if weight == 0 or the bin load would
  ///         overflow 32 bits.
  void add_ball(std::uint32_t bin, std::uint32_t weight);

  /// Remove one unit ball from `bin`. \throws std::invalid_argument if empty.
  void remove_ball(std::uint32_t bin) { remove_ball(bin, 1); }

  /// Remove `weight` units from `bin` as one event.
  /// \throws std::invalid_argument if weight == 0 or weight > load(bin).
  void remove_ball(std::uint32_t bin, std::uint32_t weight);

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    return loads_[bin];
  }
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  /// Total weight in the system (== sum of loads; unit balls each count 1).
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }

  /// Average load balls/n.
  [[nodiscard]] double average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(loads_.size());
  }

  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return loads_;
  }

  [[nodiscard]] std::uint32_t max_load() const noexcept { return levels_.max; }
  [[nodiscard]] std::uint32_t min_load() const noexcept { return levels_.min; }
  [[nodiscard]] std::uint32_t gap() const noexcept { return levels_.max - levels_.min; }

  /// Quadratic potential Psi = sum (l_i - t/n)^2 = S2 - t^2/n.
  [[nodiscard]] double psi() const noexcept;

  /// ln Phi with the paper's eps = 1/200, maintained incrementally.
  [[nodiscard]] double log_phi() const noexcept;

  // -- capacities ----------------------------------------------------------

  /// True when every bin has the same capacity (probing proportional to
  /// capacity degenerates to uniform). The default constructor's state is
  /// always uniform.
  [[nodiscard]] bool uniform_capacity() const noexcept { return classes_.size() <= 1; }

  /// Capacity of `bin` (1 for the uniform default constructor).
  [[nodiscard]] std::uint32_t capacity(std::uint32_t bin) const noexcept {
    return capacities_.empty() ? 1 : capacities_[bin];
  }

  /// Per-bin capacities; empty when constructed uniform (all c_i = 1).
  [[nodiscard]] const std::vector<std::uint32_t>& capacities() const noexcept {
    return capacities_;
  }

  /// C = sum c_i (== n for the uniform default).
  [[nodiscard]] std::uint64_t total_capacity() const noexcept { return total_capacity_; }

  /// A random bin drawn proportionally to capacity: P(i) = c_i / C.
  /// Uniform capacities use one `uniform_below` draw (bit-for-bit the
  /// classic uniform probe); heterogeneous capacities use the O(1) Walker
  /// alias table built at construction.
  [[nodiscard]] std::uint32_t sample_capacity_proportional(rng::Engine& gen) const;

  // -- capacity-normalized metrics -----------------------------------------

  /// Normalized average t/C — the target every l_i/c_i converges to under
  /// capacity-proportional placement.
  [[nodiscard]] double norm_average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(total_capacity_);
  }

  /// max_i l_i/c_i. O(#distinct capacities) per read.
  [[nodiscard]] double max_norm_load() const noexcept;
  /// min_i l_i/c_i. O(#distinct capacities) per read.
  [[nodiscard]] double min_norm_load() const noexcept;
  /// max_i l_i/c_i - min_i l_i/c_i.
  [[nodiscard]] double norm_gap() const noexcept {
    return max_norm_load() - min_norm_load();
  }

  /// Capacity-weighted quadratic potential
  ///   Psi_w = sum c_i (l_i/c_i - t/C)^2 = sum l_i^2/c_i - t^2/C,
  /// the heterogeneous generalization of psi() (equal to it when every
  /// c_i = 1). Maintained from exact per-class integer sums.
  [[nodiscard]] double weighted_psi() const noexcept;

  // -- level / nonempty structure ------------------------------------------

  /// Number of bins with load >= k (suffix sum over level counts; O(max
  /// load), intended for snapshots, not per-event hot paths with large k).
  [[nodiscard]] std::uint32_t bins_with_load_at_least(std::uint32_t k) const noexcept;

  /// level_counts()[l] = number of bins with load exactly l. May carry
  /// trailing zero entries above max_load().
  [[nodiscard]] const std::vector<std::uint32_t>& level_counts() const noexcept {
    return levels_.count;
  }

  [[nodiscard]] std::uint32_t nonempty_bins() const noexcept {
    return static_cast<std::uint32_t>(nonempty_.size());
  }

  /// A uniformly random bin among those with load > 0 — the supermarket
  /// model's "one busy server completes a job" event.
  /// \throws std::logic_error if every bin is empty.
  [[nodiscard]] std::uint32_t sample_nonempty(rng::Engine& gen) const;

  /// Reset to the all-empty state (loads, ball count, and every metric);
  /// capacities are part of the system, not the load, and are kept. A
  /// cleared state is indistinguishable from a freshly constructed one
  /// (property-tested in tests/core/bin_state_test.cpp).
  void clear() noexcept;

 private:
  /// Histogram of bin loads for one group of bins, with incremental
  /// max/min. A move of one bin from level `from` to `to` rescans at most
  /// |to - from| levels, so cost is O(1) amortized per unit of weight.
  struct LevelTracker {
    std::vector<std::uint32_t> count;  // count[l] = #bins of the group at load l
    std::uint32_t max = 0;
    std::uint32_t min = 0;

    void reset(std::uint32_t bins) {
      count.assign(1, bins);
      max = 0;
      min = 0;
    }
    void move_up(std::uint32_t from, std::uint32_t to) {
      if (count.size() <= to) count.resize(static_cast<std::size_t>(to) + 1, 0);
      --count[from];
      ++count[to];
      if (to > max) max = to;
      // The moved bin was the last one at the minimum level: the next
      // occupied level is at most `to` (where this bin now sits).
      if (from == min && count[from] == 0) {
        while (count[min] == 0) ++min;
      }
    }
    void move_down(std::uint32_t from, std::uint32_t to) {
      --count[from];
      ++count[to];
      if (to < min) min = to;
      // Symmetric: the next occupied level going down is at least `to`.
      if (from == max && count[from] == 0) {
        while (count[max] == 0) --max;
      }
    }
  };

  /// Bins sharing one capacity value, tracked together so l_i/c_i extremes
  /// and the weighted potential stay incremental.
  struct CapacityClass {
    std::uint32_t capacity = 1;
    std::uint32_t bins = 0;
    LevelTracker levels;
    std::uint64_t sum_sq = 0;  // sum l_i^2 over this class
  };

  void init_capacity_classes();
  [[nodiscard]] double pow_neg(std::uint32_t l) const;

  std::vector<std::uint32_t> loads_;
  std::uint64_t balls_ = 0;
  LevelTracker levels_;  // all bins together: max/min/gap and tail counts
  std::uint64_t sum_sq_ = 0;  // S2 = sum l_i^2 (exact while it fits 64 bits)
  double phi_weight_;         // W = sum (1+eps)^{-l_i}
  mutable std::vector<double> pow_neg_;      // cache of (1+eps)^{-l}
  std::vector<std::uint32_t> nonempty_;      // bin ids with load > 0
  std::vector<std::uint32_t> nonempty_pos_;  // bin -> index in nonempty_

  std::vector<std::uint32_t> capacities_;  // empty = uniform c_i = 1
  std::uint64_t total_capacity_;
  std::vector<std::uint32_t> class_of_;  // bin -> index into classes_
  std::vector<CapacityClass> classes_;   // one entry per distinct capacity
  std::optional<rng::AliasTable> cap_sampler_;  // only when heterogeneous
};

}  // namespace bbb::core
