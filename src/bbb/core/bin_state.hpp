#pragma once
/// \file bin_state.hpp
/// THE bin-load state of the library: n bins, each holding a count of
/// balls, plus the bookkeeping that makes every Section-2 metric
/// incremental per event — no full rescan, batch or dynamic alike.
///
/// This type unifies what used to be two states (the bare `LoadVector`
/// the batch protocols filled and the dyn layer's `DynState`): every
/// decision rule in core/protocols/ now streams balls into one `BinState`
/// via `PlacementRule::place_one`, and every consumer (batch adapter,
/// dynamic engine, tracer) reads the same O(1) metrics.
///
/// Balls carry integer *weights* (a chain of w jobs placed as one atomic
/// decision is `add_ball(bin, w)`), and bins carry integer *capacities*
/// c_i (a server twice as fast as its neighbor has twice the capacity).
/// Unit weights and uniform capacities — the paper's setting — are the
/// defaults and cost nothing extra.
///
/// Storage layouts (the giant-scale tier): the per-bin load array comes in
/// two interchangeable representations selected at construction:
///   * `StateLayout::kWide` (default) — one 32-bit word per bin plus the
///     nonempty-bin index that O(1) "serve a random busy queue" departures
///     need. Identical to the historical layout, bit for bit.
///   * `StateLayout::kCompact` — one 8-bit lane per bin; the rare bin whose
///     load reaches `kCompactLaneMax` (255) is *promoted* to a 32-bit
///     overflow side-table and demoted again when its load drops back
///     below. n = 2^30 bins fit in ~1 GiB instead of the wide layout's
///     ~12 GiB (loads + nonempty index). Right-sized for the m = O(n)
///     regimes giant runs live in; if *most* bins exceed load 254 (say
///     m >= 200n) the side-table dominates and wide is the better pick.
///     Two API features are unavailable:
///     `loads()` (borrow the wide vector; use `copy_loads()` or `load()`)
///     and `sample_nonempty` (no id index is maintained) throw
///     std::logic_error. Every metric — max/min/gap/Ψ/lnΦ/level counts,
///     weighted and capacitated forms — is maintained by the same
///     incremental code and is bit-identical to the wide layout
///     (property-tested in tests/core/bin_state_layout_test.cpp).
///
/// Notation: this is the paper's load vector l = (l_1, ..., l_n) after t
/// units of weight have been placed; `balls()` is t, `average()` is t/n
/// (the centering used by the potentials Ψ and Φ in metrics.hpp). With
/// capacities, C = sum c_i and the normalized load of bin i is l_i/c_i;
/// `norm_average()` is t/C. Incremental bookkeeping:
///   - level counts (number of bins at each load) give max/min/gap in
///     O(1 + w) per event, because one event moves one bin w levels (the
///     min/max rescans are bounded by the level distance moved, so the
///     cost stays O(1) amortized per unit of weight);
///   - S2 = sum l_i^2 gives Psi = S2 - t^2/n;
///   - per-capacity-class S2_c = sum_{c_i = c} l_i^2 gives the weighted
///     potential Psi_w = sum l_i^2/c_i - t^2/C in exact integer parts;
///   - per-class level counts give max/min of l_i/c_i in O(#classes);
///   - W = sum (1+eps)^{-l_i} gives ln Phi = ln W + (t/n + 2) ln(1+eps);
///   - the nonempty-bin count is read off level 0 in O(1); the wide
///     layout's nonempty-bin *index* additionally supports O(1) "serve a
///     uniformly random busy queue" departures (the supermarket service
///     event);
///   - a Walker alias table over the capacities gives O(1) probes
///     proportional to c_i (`sample_capacity_proportional`).
///
/// The mutators and `load()` are defined inline here — they are the
/// innermost statements of every protocol's hot loop, and keeping them
/// header-visible lets the probe loops compile into one placement kernel
/// (bench_micro_protocols measures the difference at n = 10^7).
///
/// Invariants (property-tested in tests/core/bin_state_test.cpp, in
/// tests/core/bin_state_layout_test.cpp for wide-vs-compact lockstep, and
/// against the naive metrics.hpp recomputation under random weighted
/// add/remove interleavings in tests/dyn/allocator_test.cpp):
///   * balls() == sum of load(i) over all bins whenever control is
///     outside add_ball/remove_ball;
///   * every incremental metric equals the batch recomputation from
///     core/metrics.hpp after any interleaving of add/remove;
///   * compact and wide layouts driven through the same event sequence
///     agree on load(i) and every metric at every step;
///   * clear() is indistinguishable from fresh construction.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bbb/rng/alias_table.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

class BatchPlacer;

/// How BinState stores the per-bin load array. See the file comment.
enum class StateLayout : std::uint8_t {
  kWide,     ///< 32-bit loads + nonempty-bin index (historical default)
  kCompact,  ///< 8-bit lanes + 32-bit overflow side-table; ~1 byte per bin
};

/// Canonical spelling ("wide" / "compact") for CLIs and JSON records.
[[nodiscard]] std::string_view to_string(StateLayout layout) noexcept;

/// Parse "wide" / "compact". \throws std::invalid_argument otherwise.
[[nodiscard]] StateLayout parse_state_layout(std::string_view text);

/// Bin loads plus incremental metrics. Mutators are O(1) amortized per
/// unit of weight moved; metric reads are O(1) (normalized max/min/gap:
/// O(#distinct capacities)).
class BinState {
 public:
  /// Loads below this stay in a compact layout's 8-bit lane; a bin whose
  /// load reaches it is promoted to the 32-bit overflow side-table (and
  /// demoted when it drops back below).
  static constexpr std::uint32_t kCompactLaneMax = 255;

  /// Uniform-capacity state (the paper's setting: every c_i = 1).
  /// \param n number of bins. \throws std::invalid_argument if n == 0.
  explicit BinState(std::uint32_t n, StateLayout layout = StateLayout::kWide);

  /// Heterogeneous-capacity state: bin i has capacity capacities[i] >= 1.
  /// \throws std::invalid_argument if empty or any capacity is 0.
  explicit BinState(std::vector<std::uint32_t> capacities,
                    StateLayout layout = StateLayout::kWide);

  [[nodiscard]] StateLayout layout() const noexcept { return layout_; }

  /// Place one unit ball into `bin`, updating every derived metric.
  void add_ball(std::uint32_t bin) { add_ball(bin, 1); }

  /// Place one ball of integer weight `weight` into `bin` as a single
  /// atomic event (the whole chain lands together).
  /// \throws std::invalid_argument if weight == 0 or the bin load would
  ///         overflow 32 bits.
  void add_ball(std::uint32_t bin, std::uint32_t weight) {
    if (weight == 0) throw_zero_weight("add_ball");
    const std::uint32_t l = load(bin);
    if (l > std::numeric_limits<std::uint32_t>::max() - weight) {
      throw_add_overflow(bin);
    }
    const std::uint32_t nl = l + weight;
    store_load(bin, nl);
    balls_ += weight;

    levels_.move_up(l, nl);
    // (l+w)^2 - l^2 = (2l + w) w, exact in 64 bits while S2 itself fits.
    const std::uint64_t sq_delta =
        (2ULL * l + weight) * static_cast<std::uint64_t>(weight);
    sum_sq_ += sq_delta;
    phi_weight_ += pow_neg(nl) - pow_neg(l);
    if (!classes_.empty()) {
      CapacityClass& cls = classes_[class_of_[bin]];
      cls.levels.move_up(l, nl);
      cls.sum_sq += sq_delta;
    }

    if (l == 0 && layout_ == StateLayout::kWide) {
      nonempty_pos_[bin] = static_cast<std::uint32_t>(nonempty_.size());
      nonempty_.push_back(bin);
    }
  }

  /// Remove one unit ball from `bin`. \throws std::invalid_argument if empty.
  void remove_ball(std::uint32_t bin) { remove_ball(bin, 1); }

  /// Remove `weight` units from `bin` as one event.
  /// \throws std::invalid_argument if weight == 0 or weight > load(bin).
  void remove_ball(std::uint32_t bin, std::uint32_t weight) {
    if (weight == 0) throw_zero_weight("remove_ball");
    const std::uint32_t l = load(bin);
    if (l < weight) throw_remove_underflow(bin, l, weight);
    const std::uint32_t nl = l - weight;
    store_load(bin, nl);
    balls_ -= weight;

    levels_.move_down(l, nl);
    // l^2 - (l-w)^2 = (2l - w) w.
    const std::uint64_t sq_delta =
        (2ULL * l - weight) * static_cast<std::uint64_t>(weight);
    sum_sq_ -= sq_delta;
    phi_weight_ += pow_neg(nl) - pow_neg(l);
    if (!classes_.empty()) {
      CapacityClass& cls = classes_[class_of_[bin]];
      cls.levels.move_down(l, nl);
      cls.sum_sq -= sq_delta;
    }

    if (nl == 0 && layout_ == StateLayout::kWide) {
      const std::uint32_t pos = nonempty_pos_[bin];
      const std::uint32_t last = nonempty_.back();
      nonempty_[pos] = last;
      nonempty_pos_[last] = pos;
      nonempty_.pop_back();
    }
  }

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    if (layout_ == StateLayout::kWide) return loads_[bin];
    const std::uint8_t lane = lanes_[bin];
    return lane < kCompactLaneMax ? lane : overflow_load(bin);
  }

  /// Hint the CPU to pull bin `bin`'s load slot (and, in the wide layout,
  /// its nonempty-index slot) into cache. The probe lookahead in
  /// core/probe.hpp issues this for upcoming candidates so the d random
  /// reads per ball overlap instead of serializing on DRAM.
  void prefetch(std::uint32_t bin) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (layout_ == StateLayout::kWide) {
      __builtin_prefetch(loads_.data() + bin, 1, 3);
      __builtin_prefetch(nonempty_pos_.data() + bin, 1, 3);
    } else {
      __builtin_prefetch(lanes_.data() + bin, 1, 3);
    }
#else
    (void)bin;
#endif
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  /// Total weight in the system (== sum of loads; unit balls each count 1).
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }

  /// Average load balls/n.
  [[nodiscard]] double average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(n_);
  }

  /// Borrow the wide layout's load vector (zero-copy).
  /// \throws std::logic_error in the compact layout — the 32-bit vector
  ///         does not exist there; use copy_loads() or load() instead.
  [[nodiscard]] const std::vector<std::uint32_t>& loads() const;

  /// Materialize the loads as a fresh 32-bit vector; works in any layout.
  /// O(n) — snapshot/test use, not hot paths.
  [[nodiscard]] std::vector<std::uint32_t> copy_loads() const;

  [[nodiscard]] std::uint32_t max_load() const noexcept { return levels_.max; }
  [[nodiscard]] std::uint32_t min_load() const noexcept { return levels_.min; }
  [[nodiscard]] std::uint32_t gap() const noexcept { return levels_.max - levels_.min; }

  /// Quadratic potential Psi = sum (l_i - t/n)^2 = S2 - t^2/n.
  [[nodiscard]] double psi() const noexcept;

  /// ln Phi with the paper's eps = 1/200, maintained incrementally.
  [[nodiscard]] double log_phi() const noexcept;

  // -- raw potential parts (for merging partitioned states) ----------------

  /// The exact integer part S2 = sum l_i^2 of psi(). A state partitioned
  /// across shards merges as sum_s S2_s - t^2/n — bit-identical to the
  /// unpartitioned psi() (the shard engine's merged reads rely on this).
  [[nodiscard]] std::uint64_t sum_squares() const noexcept { return sum_sq_; }

  /// The raw potential weight W = sum (1+eps)^{-l_i} behind log_phi();
  /// additive across a bin partition the same way.
  [[nodiscard]] double phi_weight() const noexcept { return phi_weight_; }

  // -- capacities ----------------------------------------------------------

  /// True when every bin has the same capacity (probing proportional to
  /// capacity degenerates to uniform). The default constructor's state is
  /// always uniform.
  [[nodiscard]] bool uniform_capacity() const noexcept { return classes_.size() <= 1; }

  /// Capacity of `bin` (1 for the uniform default constructor).
  [[nodiscard]] std::uint32_t capacity(std::uint32_t bin) const noexcept {
    return capacities_.empty() ? 1 : capacities_[bin];
  }

  /// Per-bin capacities; empty when constructed uniform (all c_i = 1).
  [[nodiscard]] const std::vector<std::uint32_t>& capacities() const noexcept {
    return capacities_;
  }

  /// C = sum c_i (== n for the uniform default).
  [[nodiscard]] std::uint64_t total_capacity() const noexcept { return total_capacity_; }

  /// A random bin drawn proportionally to capacity: P(i) = c_i / C.
  /// Uniform capacities use one `uniform_below` draw (bit-for-bit the
  /// classic uniform probe); heterogeneous capacities use the O(1) Walker
  /// alias table built at construction.
  [[nodiscard]] std::uint32_t sample_capacity_proportional(rng::Engine& gen) const;

  // -- capacity-normalized metrics -----------------------------------------

  /// Normalized average t/C — the target every l_i/c_i converges to under
  /// capacity-proportional placement.
  [[nodiscard]] double norm_average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(total_capacity_);
  }

  /// max_i l_i/c_i. O(#distinct capacities) per read.
  [[nodiscard]] double max_norm_load() const noexcept;
  /// min_i l_i/c_i. O(#distinct capacities) per read.
  [[nodiscard]] double min_norm_load() const noexcept;
  /// max_i l_i/c_i - min_i l_i/c_i.
  [[nodiscard]] double norm_gap() const noexcept {
    return max_norm_load() - min_norm_load();
  }

  /// Capacity-weighted quadratic potential
  ///   Psi_w = sum c_i (l_i/c_i - t/C)^2 = sum l_i^2/c_i - t^2/C,
  /// the heterogeneous generalization of psi() (equal to it when every
  /// c_i = 1). Maintained from exact per-class integer sums.
  [[nodiscard]] double weighted_psi() const noexcept;

  // -- level / nonempty structure ------------------------------------------

  /// Number of bins with load >= k (suffix sum over level counts; O(max
  /// load), intended for snapshots, not per-event hot paths with large k).
  [[nodiscard]] std::uint32_t bins_with_load_at_least(std::uint32_t k) const noexcept;

  /// level_counts()[l] = number of bins with load exactly l. May carry
  /// trailing zero entries above max_load().
  [[nodiscard]] const std::vector<std::uint32_t>& level_counts() const noexcept {
    return levels_.count;
  }

  /// Bins with load > 0, read off level 0 in O(1) (any layout).
  [[nodiscard]] std::uint32_t nonempty_bins() const noexcept {
    return n_ - levels_.count[0];
  }

  /// A uniformly random bin among those with load > 0 — the supermarket
  /// model's "one busy server completes a job" event.
  /// \throws std::logic_error if every bin is empty, or in the compact
  ///         layout (which maintains no nonempty-bin id index).
  [[nodiscard]] std::uint32_t sample_nonempty(rng::Engine& gen) const;

  /// Reset to the all-empty state (loads, ball count, and every metric);
  /// capacities are part of the system, not the load, and are kept. A
  /// cleared state is indistinguishable from a freshly constructed one
  /// (property-tested in tests/core/bin_state_test.cpp).
  void clear() noexcept;

  // -- layout diagnostics ----------------------------------------------------

  /// Compact layout: bins promoted into the 32-bit overflow side-table
  /// (load reached kCompactLaneMax) — state.compact.promotions. Always 0
  /// in the wide layout. Reset by clear() like every other derived count.
  [[nodiscard]] std::uint64_t compact_promotions() const noexcept {
    return compact_promotions_;
  }
  /// Compact layout: promotions undone (load dropped back below the lane
  /// ceiling) — state.compact.demotions.
  [[nodiscard]] std::uint64_t compact_demotions() const noexcept {
    return compact_demotions_;
  }

 private:
  /// The batch placement kernel (core/batch_kernel.hpp) commits validated
  /// waves through batch_add_unit_lane and reads the lane slab directly.
  friend class BatchPlacer;

  /// Register-resident view of every counter the lean batch commit
  /// touches. The commit walk stores through the 8-bit lane slab, and
  /// byte stores alias *everything* under TBAA — with the counters live
  /// in BinState members the compiler must reload data pointers, sizes,
  /// and accumulators from memory on every ball. Checking them out into
  /// this struct for the duration of a wave walk lets them live in
  /// registers; batch_end() writes them back. While a checkout is live
  /// the BinState members are stale: any exact-path call (add_ball) must
  /// be bracketed by batch_end / batch_begin.
  struct BatchMetrics {
    std::uint32_t* count;       // levels_.count.data()
    std::uint32_t count_size;   // levels_.count.size()
    std::uint64_t balls;
    std::uint64_t sum_sq;
    double phi;
    const double* pow_tab;      // pow_neg_.data(), valid through lane 255
  };

  /// Check the lean-commit counters out of the state. Also pre-extends
  /// the (1+eps)^{-l} cache through every load the fast path can produce
  /// (new load <= kCompactLaneMax - 1) so the commit indexes it
  /// guard-free; the cache is private and extends by the exact recurrence
  /// pow_neg_slow uses, so no observable value changes whether that
  /// happens here or lazily.
  [[nodiscard]] BatchMetrics batch_begin() {
    if (pow_neg_.size() < kCompactLaneMax) {
      (void)pow_neg_slow(kCompactLaneMax - 1);
    }
    return BatchMetrics{levels_.count.data(),
                        static_cast<std::uint32_t>(levels_.count.size()),
                        balls_,
                        sum_sq_,
                        phi_weight_,
                        pow_neg_.data()};
  }

  /// Write a checkout back. count/count_size need no reconciliation (the
  /// histogram vector itself only changes through batch_grow_levels,
  /// which updates both sides), but min/max do: the lean commit does not
  /// track them per ball — they are re-derived here from histogram
  /// occupancy. A batch walk only adds balls, so min moves up or stays,
  /// and the scan down from the top of the (grow-to-fit) histogram stops
  /// at or above the old max; both scans are bounded by the lane range.
  void batch_end(const BatchMetrics& m) noexcept {
    balls_ = m.balls;
    sum_sq_ = m.sum_sq;
    phi_weight_ = m.phi;
    while (levels_.count[levels_.min] == 0) ++levels_.min;
    auto hi = static_cast<std::uint32_t>(levels_.count.size()) - 1;
    while (levels_.count[hi] == 0) --hi;
    levels_.max = hi;
  }

  /// Cold path of the lean commit's grow-to-fit: the histogram keeps the
  /// exact length the scalar move_up would give it (its length is part of
  /// the observable state the lockstep tests compare).
  void batch_grow_levels(BatchMetrics& m, std::uint32_t need) {
    levels_.count.resize(need, 0);
    m.count = levels_.count.data();
    m.count_size = need;
  }

  /// Lean weight-1 commit for the batch kernel: add_ball with every
  /// branch the kernel's wave validation already discharged removed.
  /// Preconditions (validated per wave, never re-checked here): compact
  /// layout, uniform capacities (classes_ empty), m is the live checkout,
  /// and l == lanes_[bin] with l + 1 < kCompactLaneMax (no promotion,
  /// no side-table). The metric updates replay add_ball's exact FP
  /// operation order so Ψ and lnΦ stay bit-identical to the scalar
  /// stream. Inlined unit-weight move_up: when the last min-level bin
  /// moves up the next occupied level is exactly l + 1 — one step, never
  /// a scan.
  void batch_add_unit_lane(BatchMetrics& m, std::uint32_t bin,
                           std::uint32_t l) {
    lanes_[bin] = static_cast<std::uint8_t>(l + 1);
    ++m.balls;
    if (l + 1 >= m.count_size) [[unlikely]] {
      batch_grow_levels(m, l + 2);
    }
    --m.count[l];
    ++m.count[l + 1];
    m.sum_sq += 2ULL * l + 1;  // (2l + w) w with w = 1
    m.phi += m.pow_tab[l + 1] - m.pow_tab[l];
  }

  /// The compact lane slab — the batch kernel's vector operand (snapshot
  /// gathers and the saturation guard). Compact layout only.
  [[nodiscard]] const std::uint8_t* compact_lanes() const noexcept {
    return lanes_.data();
  }

  /// Histogram of bin loads for one group of bins, with incremental
  /// max/min. A move of one bin from level `from` to `to` rescans at most
  /// |to - from| levels, so cost is O(1) amortized per unit of weight.
  struct LevelTracker {
    std::vector<std::uint32_t> count;  // count[l] = #bins of the group at load l
    std::uint32_t max = 0;
    std::uint32_t min = 0;

    void reset(std::uint32_t bins) {
      count.assign(1, bins);
      max = 0;
      min = 0;
    }
    void move_up(std::uint32_t from, std::uint32_t to) {
      if (count.size() <= to) count.resize(static_cast<std::size_t>(to) + 1, 0);
      --count[from];
      ++count[to];
      if (to > max) max = to;
      // The moved bin was the last one at the minimum level: the next
      // occupied level is at most `to` (where this bin now sits).
      if (from == min && count[from] == 0) {
        while (count[min] == 0) ++min;
      }
    }
    void move_down(std::uint32_t from, std::uint32_t to) {
      --count[from];
      ++count[to];
      if (to < min) min = to;
      // Symmetric: the next occupied level going down is at least `to`.
      if (from == max && count[from] == 0) {
        while (count[max] == 0) --max;
      }
    }
  };

  /// Bins sharing one capacity value, tracked together so l_i/c_i extremes
  /// and the weighted potential stay incremental.
  struct CapacityClass {
    std::uint32_t capacity = 1;
    std::uint32_t bins = 0;
    LevelTracker levels;
    std::uint64_t sum_sq = 0;  // sum l_i^2 over this class
  };

  void init_capacity_classes();

  /// (1+eps)^{-l}: cached lookup inline, cache extension / std::pow spill
  /// out of line (one cold call per previously unseen level).
  [[nodiscard]] double pow_neg(std::uint32_t l) const {
    if (l < pow_neg_.size()) [[likely]] return pow_neg_[l];
    return pow_neg_slow(l);
  }
  [[nodiscard]] double pow_neg_slow(std::uint32_t l) const;

  /// Write the new load of `bin`. Wide: one store. Compact: lane store,
  /// promoting to / demoting from the overflow side-table at
  /// kCompactLaneMax (the cold side-table touch is out of line).
  void store_load(std::uint32_t bin, std::uint32_t nl) {
    if (layout_ == StateLayout::kWide) {
      loads_[bin] = nl;
      return;
    }
    if (nl < kCompactLaneMax) [[likely]] {
      if (lanes_[bin] == kCompactLaneMax) overflow_erase(bin);
      lanes_[bin] = static_cast<std::uint8_t>(nl);
    } else {
      lanes_[bin] = static_cast<std::uint8_t>(kCompactLaneMax);
      overflow_store(bin, nl);
    }
  }

  [[nodiscard]] std::uint32_t overflow_load(std::uint32_t bin) const noexcept;
  void overflow_store(std::uint32_t bin, std::uint32_t nl);
  void overflow_erase(std::uint32_t bin);

  [[noreturn]] static void throw_zero_weight(const char* fn);
  [[noreturn]] static void throw_add_overflow(std::uint32_t bin);
  [[noreturn]] static void throw_remove_underflow(std::uint32_t bin, std::uint32_t l,
                                                  std::uint32_t weight);

  std::uint32_t n_ = 0;
  StateLayout layout_ = StateLayout::kWide;
  std::vector<std::uint32_t> loads_;  // wide layout only
  std::vector<std::uint8_t> lanes_;   // compact layout only
  /// Compact layout: loads of the (rare) bins promoted past the 8-bit lane.
  std::unordered_map<std::uint32_t, std::uint32_t> overflow_;
  std::uint64_t balls_ = 0;
  LevelTracker levels_;  // all bins together: max/min/gap and tail counts
  std::uint64_t sum_sq_ = 0;  // S2 = sum l_i^2 (exact while it fits 64 bits)
  double phi_weight_;         // W = sum (1+eps)^{-l_i}
  mutable std::vector<double> pow_neg_;      // cache of (1+eps)^{-l}
  std::vector<std::uint32_t> nonempty_;      // wide: bin ids with load > 0
  std::vector<std::uint32_t> nonempty_pos_;  // wide: bin -> index in nonempty_

  std::vector<std::uint32_t> capacities_;  // empty = uniform c_i = 1
  std::uint64_t total_capacity_;
  std::vector<std::uint32_t> class_of_;  // bin -> index into classes_
  std::vector<CapacityClass> classes_;   // one entry per distinct capacity
  std::optional<rng::AliasTable> cap_sampler_;  // only when heterogeneous

  // Cold side-table traffic counters, appended last so the hot members
  // above keep their pre-instrumentation offsets (a mid-class insertion
  // measurably shifted the compact streaming path's cache-line layout).
  std::uint64_t compact_promotions_ = 0;  // side-table inserts (cold path)
  std::uint64_t compact_demotions_ = 0;   // side-table erases (cold path)
};

}  // namespace bbb::core
