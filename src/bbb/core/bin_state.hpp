#pragma once
/// \file bin_state.hpp
/// THE bin-load state of the library: n bins, each holding a count of
/// balls, plus the bookkeeping that makes every Section-2 metric
/// incremental per event — no full rescan, batch or dynamic alike.
///
/// This type unifies what used to be two states (the bare `LoadVector`
/// the batch protocols filled and the dyn layer's `DynState`): every
/// decision rule in core/protocols/ now streams balls into one `BinState`
/// via `PlacementRule::place_one`, and every consumer (batch adapter,
/// dynamic engine, tracer) reads the same O(1) metrics.
///
/// Notation: this is the paper's load vector l = (l_1, ..., l_n) after t
/// placements; `balls()` is t, `average()` is t/n (the centering used by
/// the potentials Ψ and Φ in metrics.hpp). Incremental bookkeeping:
///   - level counts (number of bins at each load) give max/min/gap in
///     O(1) worst case, because one event moves one bin one level;
///   - S2 = sum l_i^2 gives Psi = S2 - t^2/n;
///   - W = sum (1+eps)^{-l_i} gives ln Phi = ln W + (t/n + 2) ln(1+eps);
///   - the nonempty-bin index supports O(1) "serve a uniformly random
///     busy queue" departures (the supermarket service event).
///
/// Invariants (property-tested in tests/core/bin_state_test.cpp and,
/// against the naive metrics.hpp recomputation under random add/remove
/// interleavings, in tests/dyn/allocator_test.cpp):
///   * balls() == sum of load(i) over all bins whenever control is
///     outside add_ball/remove_ball;
///   * every incremental metric equals the batch recomputation from
///     core/metrics.hpp after any interleaving of add/remove.

#include <cstdint>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::core {

/// Bin loads plus incremental metrics. All mutators are O(1) worst case.
class BinState {
 public:
  /// \param n number of bins. \throws std::invalid_argument if n == 0.
  explicit BinState(std::uint32_t n);

  /// Place one ball into `bin`, updating every derived metric.
  void add_ball(std::uint32_t bin);

  /// Remove one ball from `bin`. \throws std::invalid_argument if empty.
  void remove_ball(std::uint32_t bin);

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    return loads_[bin];
  }
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }

  /// Average load balls/n.
  [[nodiscard]] double average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(loads_.size());
  }

  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return loads_;
  }

  [[nodiscard]] std::uint32_t max_load() const noexcept { return max_; }
  [[nodiscard]] std::uint32_t min_load() const noexcept { return min_; }
  [[nodiscard]] std::uint32_t gap() const noexcept { return max_ - min_; }

  /// Quadratic potential Psi = sum (l_i - t/n)^2 = S2 - t^2/n.
  [[nodiscard]] double psi() const noexcept;

  /// ln Phi with the paper's eps = 1/200, maintained incrementally.
  [[nodiscard]] double log_phi() const noexcept;

  /// Number of bins with load >= k (suffix sum over level counts; O(max
  /// load), intended for snapshots, not per-event hot paths with large k).
  [[nodiscard]] std::uint32_t bins_with_load_at_least(std::uint32_t k) const noexcept;

  /// level_counts()[l] = number of bins with load exactly l. May carry
  /// trailing zero entries above max_load().
  [[nodiscard]] const std::vector<std::uint32_t>& level_counts() const noexcept {
    return level_count_;
  }

  [[nodiscard]] std::uint32_t nonempty_bins() const noexcept {
    return static_cast<std::uint32_t>(nonempty_.size());
  }

  /// A uniformly random bin among those with load > 0 — the supermarket
  /// model's "one busy server completes a job" event.
  /// \throws std::logic_error if every bin is empty.
  [[nodiscard]] std::uint32_t sample_nonempty(rng::Engine& gen) const;

  /// Reset to the all-empty state (loads, ball count, and every metric).
  void clear() noexcept;

 private:
  std::vector<std::uint32_t> loads_;
  std::uint64_t balls_ = 0;
  std::vector<std::uint32_t> level_count_;  // level_count_[l] = #bins at load l
  std::uint32_t max_ = 0;
  std::uint32_t min_ = 0;
  std::uint64_t sum_sq_ = 0;  // S2 = sum l_i^2 (exact while it fits 64 bits)
  double phi_weight_;         // W = sum (1+eps)^{-l_i}
  mutable std::vector<double> pow_neg_;      // cache of (1+eps)^{-l}
  std::vector<std::uint32_t> nonempty_;      // bin ids with load > 0
  std::vector<std::uint32_t> nonempty_pos_;  // bin -> index in nonempty_

  [[nodiscard]] double pow_neg(std::uint32_t l) const;
};

}  // namespace bbb::core
