#include "bbb/core/concurrent_adaptive.hpp"

#include <stdexcept>

namespace bbb::core {

ConcurrentAdaptiveAllocator::ConcurrentAdaptiveAllocator(std::uint32_t n)
    : loads_(n) {
  if (n == 0) {
    throw std::invalid_argument("ConcurrentAdaptiveAllocator: n must be positive");
  }
  for (auto& l : loads_) l.store(0, std::memory_order_relaxed);
}

std::vector<std::uint32_t> ConcurrentAdaptiveAllocator::loads_snapshot() const {
  std::vector<std::uint32_t> out(loads_.size());
  for (std::size_t i = 0; i < loads_.size(); ++i) {
    out[i] = loads_[i].load(std::memory_order_acquire);
  }
  return out;
}

std::uint32_t ConcurrentAdaptiveAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = this->n();
  std::uint64_t local_probes = 0;
  for (;;) {
    // Bound from the counter snapshot. The snapshot can lag the true count
    // by the number of in-flight placements; by the stage-constancy of
    // ceil(i/n) the computed bound equals the sequential bound whenever the
    // lag is below n (see file comment).
    const std::uint64_t placed = balls_.load(std::memory_order_relaxed);
    const auto bound = static_cast<std::uint32_t>(placed / n) + 1;

    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    ++local_probes;
    std::uint32_t observed = loads_[bin].load(std::memory_order_relaxed);
    // CAS loop: accept only if the observed (and hence committed) load is
    // within the bound at the instant of the increment.
    while (observed <= bound) {
      if (loads_[bin].compare_exchange_weak(observed, observed + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        balls_.fetch_add(1, std::memory_order_acq_rel);
        probes_.fetch_add(local_probes, std::memory_order_relaxed);
        return bin;
      }
      // observed was refreshed by the failed CAS; retry while still under
      // the bound, otherwise fall through and sample a new bin.
    }
  }
}

}  // namespace bbb::core
