#pragma once
/// \file spec.hpp
/// The shared "name[a,b,...]" spec-string grammar used by every registry
/// in the library: batch protocols (core/protocols/registry.hpp),
/// streaming allocators and workloads (dyn/). One parser, one error
/// format, so the grammars cannot drift apart.
///
/// Specs may carry *modifier prefixes* peeled off the front before the
/// name[args] core:
///   capacities=c0,c1,...:rest   heterogeneous bins — the capacity profile
///                               is cycled over the n bins of the run
///                               (protocol/allocator registries);
///   weighted:rest               atomic weighted arrivals — a whole chain
///                               lands in one bin (workload registry);
///   shards[t]:rest              the sharded multi-core engine — t worker
///                               threads over an SPSC ring mesh, exactly
///                               distribution-equal to the sequential rule
///                               (protocol registry; see shard/engine.hpp).

#include <cstdint>
#include <string>
#include <vector>

namespace bbb::core {

/// A parsed spec: a name plus optional bracketed integer arguments.
struct ParsedSpec {
  std::string name;
  std::vector<std::uint64_t> args;
};

/// Split "name[a,b]" into name and integer args; "name" alone gives no
/// args. `kind` names the registry in error messages ("protocol",
/// "allocator", "workload").
/// \throws std::invalid_argument for a missing ']' or non-integer args.
[[nodiscard]] ParsedSpec parse_spec(const std::string& spec, const std::string& kind);

/// Argument i of a parsed spec.
/// \throws std::invalid_argument if the spec has fewer than i + 1 args.
[[nodiscard]] std::uint64_t spec_arg(const ParsedSpec& parsed, std::size_t i,
                                     const std::string& spec,
                                     const std::string& kind);

/// For slack-style specs taking zero or one argument: the single argument,
/// or `fallback` when none was given.
/// \throws std::invalid_argument if more than one argument was given.
[[nodiscard]] std::uint64_t spec_optional_arg(const ParsedSpec& parsed,
                                              std::uint64_t fallback,
                                              const std::string& spec,
                                              const std::string& kind);

/// spec_arg with a uint32 range check — for parameters (d, slack, bounds)
/// that feed 32-bit protocol knobs, where silent truncation of an
/// out-of-range value would build a very different protocol than asked.
/// \throws std::invalid_argument if the value exceeds UINT32_MAX.
[[nodiscard]] std::uint32_t spec_arg_u32(const ParsedSpec& parsed, std::size_t i,
                                         const std::string& spec,
                                         const std::string& kind);

/// spec_optional_arg with the same uint32 range check.
[[nodiscard]] std::uint32_t spec_optional_arg_u32(const ParsedSpec& parsed,
                                                  std::uint32_t fallback,
                                                  const std::string& spec,
                                                  const std::string& kind);

/// Modifier prefixes split off the front of a spec (see file comment).
/// `rest` is the remaining name[args] core.
struct SpecPrefix {
  std::vector<std::uint32_t> capacities;  ///< empty = no capacities= prefix
  bool weighted = false;                  ///< weighted: prefix present
  std::uint32_t shards = 0;               ///< 0 = no shards[t]: prefix
  std::string rest;
};

/// Peel `weighted:`, `capacities=...:`, and `shards[t]:` prefixes (in any
/// order, each at most once) off `spec`.
/// \throws std::invalid_argument for malformed prefixes (empty or
///         non-integer capacity lists, zero capacities or shard counts,
///         duplicates).
[[nodiscard]] SpecPrefix split_spec_prefix(const std::string& spec,
                                           const std::string& kind);

/// Cycle a capacity profile over n bins: bin i gets profile[i % size].
/// \throws std::invalid_argument if the profile is empty or n == 0.
[[nodiscard]] std::vector<std::uint32_t> expand_capacities(
    const std::vector<std::uint32_t>& profile, std::uint32_t n);

/// Render a profile back to its canonical prefix, "capacities=1,2,4:".
[[nodiscard]] std::string capacities_prefix(const std::vector<std::uint32_t>& profile);

}  // namespace bbb::core
