#include "bbb/core/protocol.hpp"

#include <stdexcept>

namespace bbb::core {

Protocol::~Protocol() = default;

void validate_run_args(std::uint64_t m, std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("Protocol::run: n must be positive");
  // m == 0 is legal and yields an empty allocation; protocols must handle it.
  (void)m;
}

}  // namespace bbb::core
