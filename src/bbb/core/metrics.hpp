#pragma once
/// \file metrics.hpp
/// Load-distribution metrics from Section 2 of the paper:
///
///   quadratic potential   Psi(l) = sum_i (l_i - t/n)^2
///   exponential potential Phi(l) = sum_i (1+eps)^(t/n + 2 - l_i), eps = 1/200
///
/// plus max/min/gap, hole counts, and the load histogram. Phi can reach
/// 2^Omega(n^{1/8}) for threshold at m = n^2 (Lemma 4.2), so we also expose
/// a log-domain evaluation that cannot overflow.
///
/// Notation: l_i is the load of bin i after t of the m balls have been
/// placed into the n bins; every function takes the load span plus `balls`
/// (= t) so potentials center on the exact average t/n. gap = max_i l_i -
/// min_i l_i — Corollary 3.5 bounds it by O(log n) for adaptive.
///
/// Invariants: Psi >= 0 with equality iff all loads equal t/n; Phi >= n
/// (the exponents sum to 2n, so by convexity Phi >= n(1+eps)^2 > n);
/// log_exponential_potential == log(exponential_potential) whenever the
/// latter is finite.

#include <cstdint>
#include <span>
#include <vector>

#include "bbb/stats/histogram.hpp"

namespace bbb::core {

/// The epsilon the paper fixes for the exponential potential.
inline constexpr double kPotentialEpsilon = 1.0 / 200.0;

/// Largest bin load. \throws std::invalid_argument on empty input.
[[nodiscard]] std::uint32_t max_load(std::span<const std::uint32_t> loads);

/// Smallest bin load. \throws std::invalid_argument on empty input.
[[nodiscard]] std::uint32_t min_load(std::span<const std::uint32_t> loads);

/// max - min load.
[[nodiscard]] std::uint32_t load_gap(std::span<const std::uint32_t> loads);

/// Quadratic potential Psi with t = balls (the paper's t/n centering).
[[nodiscard]] double quadratic_potential(std::span<const std::uint32_t> loads,
                                         std::uint64_t balls);

/// Exponential potential Phi in the linear domain. May overflow to +inf for
/// very unbalanced vectors — prefer log_exponential_potential for analysis.
[[nodiscard]] double exponential_potential(std::span<const std::uint32_t> loads,
                                           std::uint64_t balls,
                                           double eps = kPotentialEpsilon);

/// ln(Phi), evaluated stably via log-sum-exp. Never overflows.
[[nodiscard]] double log_exponential_potential(std::span<const std::uint32_t> loads,
                                               std::uint64_t balls,
                                               double eps = kPotentialEpsilon);

/// Total holes w.r.t. capacity ceil(m/n)+1 — the quantity W_t that drives
/// the proof of Theorem 4.1 (a bin with l balls has cap - l holes).
[[nodiscard]] std::uint64_t total_holes(std::span<const std::uint32_t> loads,
                                        std::uint32_t capacity);

/// Number of bins with load zero.
[[nodiscard]] std::uint64_t empty_bins(std::span<const std::uint32_t> loads);

/// Exact histogram of the load values.
[[nodiscard]] stats::IntHistogram load_histogram(std::span<const std::uint32_t> loads);

/// One-shot summary of everything above (single pass where possible).
struct LoadMetrics {
  std::uint32_t max = 0;
  std::uint32_t min = 0;
  std::uint32_t gap = 0;
  double psi = 0.0;      ///< quadratic potential
  double log_phi = 0.0;  ///< ln of exponential potential
  double average = 0.0;  ///< balls / n
};

[[nodiscard]] LoadMetrics compute_metrics(std::span<const std::uint32_t> loads,
                                          std::uint64_t balls);

/// Capacity-normalized metrics for heterogeneous bins: with capacities c_i
/// and C = sum c_i, the normalized load of bin i is l_i/c_i and the
/// capacity-weighted potential is Psi_w = sum c_i (l_i/c_i - t/C)^2. These
/// are the batch (full-rescan) definitions BinState's incremental
/// bookkeeping is property-tested against; with every c_i = 1 they reduce
/// to the unweighted metrics above.
struct NormalizedLoadMetrics {
  double max_norm = 0.0;      ///< max_i l_i/c_i
  double min_norm = 0.0;      ///< min_i l_i/c_i
  double gap_norm = 0.0;      ///< max - min of l_i/c_i
  double weighted_psi = 0.0;  ///< sum c_i (l_i/c_i - t/C)^2
  double norm_average = 0.0;  ///< t / C
};

/// \throws std::invalid_argument if the spans are empty, differ in size,
///         or any capacity is zero.
[[nodiscard]] NormalizedLoadMetrics compute_normalized_metrics(
    std::span<const std::uint32_t> loads, std::span<const std::uint32_t> capacities,
    std::uint64_t balls);

}  // namespace bbb::core
