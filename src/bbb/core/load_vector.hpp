#pragma once
/// \file load_vector.hpp
/// The bin-load state shared by every allocator: n bins, each holding a
/// count of balls. Kept deliberately small — protocol hot loops touch this
/// through inline accessors only.
///
/// Notation: this is the paper's load vector l = (l_1, ..., l_n) after t
/// placements; `balls()` is t, `average()` is t/n (the centering used by
/// the potentials Ψ and Φ in metrics.hpp).
///
/// Invariant: balls() == sum of load(i) over all bins at every point where
/// control is outside add_ball/remove_ball — both mutators update a load
/// and the ball count together.

#include <cstdint>
#include <vector>

namespace bbb::core {

/// Bin loads plus the running ball count.
class LoadVector {
 public:
  /// \param n number of bins. \throws std::invalid_argument if n == 0.
  explicit LoadVector(std::uint32_t n);

  /// Place one ball into bin `bin` (unchecked in release hot paths; bounds
  /// are validated by the allocators that own the sampling).
  void add_ball(std::uint32_t bin) noexcept {
    ++loads_[bin];
    ++balls_;
  }

  /// Remove one ball from bin `bin`. Precondition: load(bin) > 0.
  void remove_ball(std::uint32_t bin) noexcept {
    --loads_[bin];
    --balls_;
  }

  [[nodiscard]] std::uint32_t load(std::uint32_t bin) const noexcept {
    return loads_[bin];
  }
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(loads_.size());
  }
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }

  /// Average load balls/n.
  [[nodiscard]] double average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(loads_.size());
  }

  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return loads_;
  }

  /// Reset all loads to zero.
  void clear() noexcept;

 private:
  std::vector<std::uint32_t> loads_;
  std::uint64_t balls_ = 0;
};

}  // namespace bbb::core
