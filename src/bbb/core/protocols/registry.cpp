#include "bbb/core/protocols/registry.hpp"

#include <stdexcept>

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/batched.hpp"
#include "bbb/core/protocols/cuckoo.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/doubling_threshold.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/memory_dk.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/protocols/self_balancing.hpp"
#include "bbb/core/protocols/skewed_adaptive.hpp"
#include "bbb/core/protocols/stale_adaptive.hpp"
#include "bbb/core/protocols/threshold.hpp"

namespace bbb::core {

namespace {

// Split "name[a,b]" into name and integer args. "name" alone gives no args.
struct Spec {
  std::string name;
  std::vector<std::uint64_t> args;
};

Spec parse_spec(const std::string& spec) {
  Spec out;
  const auto bracket = spec.find('[');
  if (bracket == std::string::npos) {
    out.name = spec;
    return out;
  }
  if (spec.back() != ']') {
    throw std::invalid_argument("protocol spec '" + spec + "': missing ']'");
  }
  out.name = spec.substr(0, bracket);
  std::string args = spec.substr(bracket + 1, spec.size() - bracket - 2);
  std::size_t pos = 0;
  while (pos < args.size()) {
    const auto comma = args.find(',', pos);
    const std::string tok =
        args.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    try {
      std::size_t used = 0;
      out.args.push_back(std::stoull(tok, &used));
      if (used != tok.size()) throw std::invalid_argument("junk");
    } catch (const std::exception&) {
      throw std::invalid_argument("protocol spec '" + spec + "': bad integer '" + tok +
                                  "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::uint32_t arg_at(const Spec& s, std::size_t i, const std::string& spec) {
  if (i >= s.args.size()) {
    throw std::invalid_argument("protocol spec '" + spec + "': missing argument " +
                                std::to_string(i + 1));
  }
  return static_cast<std::uint32_t>(s.args[i]);
}

// The slack-style specs accept zero or one argument.
std::uint32_t optional_slack(const Spec& s, const std::string& spec) {
  if (s.args.empty()) return 1;
  if (s.args.size() > 1) {
    throw std::invalid_argument("protocol spec '" + spec + "': too many arguments");
  }
  return static_cast<std::uint32_t>(s.args[0]);
}

}  // namespace

std::unique_ptr<Protocol> make_protocol(const std::string& spec) {
  const Spec s = parse_spec(spec);
  if (s.name == "one-choice") {
    if (!s.args.empty()) {
      throw std::invalid_argument("protocol spec '" + spec + "': takes no arguments");
    }
    return std::make_unique<OneChoiceProtocol>();
  }
  if (s.name == "greedy") return std::make_unique<DChoiceProtocol>(arg_at(s, 0, spec));
  if (s.name == "left") return std::make_unique<LeftDProtocol>(arg_at(s, 0, spec));
  if (s.name == "memory") {
    return std::make_unique<MemoryDKProtocol>(arg_at(s, 0, spec), arg_at(s, 1, spec));
  }
  if (s.name == "threshold") {
    return std::make_unique<ThresholdProtocol>(optional_slack(s, spec));
  }
  if (s.name == "doubling-threshold") {
    if (s.args.size() > 1) {
      throw std::invalid_argument("protocol spec '" + spec + "': too many arguments");
    }
    return std::make_unique<DoublingThresholdProtocol>(s.args.empty() ? 0 : s.args[0]);
  }
  if (s.name == "adaptive") {
    return std::make_unique<AdaptiveProtocol>(optional_slack(s, spec));
  }
  if (s.name == "stale-adaptive") {
    return std::make_unique<StaleAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "skewed-adaptive") {
    return std::make_unique<SkewedAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "batched") {
    BatchedProtocol::Params p;
    if (!s.args.empty()) p.capacity = static_cast<std::uint32_t>(s.args[0]);
    return std::make_unique<BatchedProtocol>(p);
  }
  if (s.name == "self-balancing") {
    if (!s.args.empty()) {
      throw std::invalid_argument("protocol spec '" + spec + "': takes no arguments");
    }
    return std::make_unique<SelfBalancingProtocol>();
  }
  if (s.name == "cuckoo") {
    CuckooTable::Params p;
    p.d = arg_at(s, 0, spec);
    p.bucket_size = arg_at(s, 1, spec);
    return std::make_unique<CuckooProtocol>(p);
  }
  throw std::invalid_argument("unknown protocol '" + s.name + "'");
}

std::vector<std::string> protocol_specs() {
  return {"one-choice",     "greedy[d]",  "left[d]",          "memory[d,k]",
          "threshold",      "threshold[slack]", "doubling-threshold[guess]",
          "adaptive",       "adaptive[slack]",
          "stale-adaptive[delta]", "skewed-adaptive[s*100]", "batched[capacity]",
          "self-balancing", "cuckoo[d,k]"};
}

}  // namespace bbb::core
