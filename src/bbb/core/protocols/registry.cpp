#include "bbb/core/protocols/registry.hpp"

#include <stdexcept>

#include "bbb/core/spec.hpp"

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/batched.hpp"
#include "bbb/core/protocols/cuckoo.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/doubling_threshold.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/memory_dk.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/protocols/self_balancing.hpp"
#include "bbb/core/protocols/skewed_adaptive.hpp"
#include "bbb/core/protocols/stale_adaptive.hpp"
#include "bbb/core/protocols/threshold.hpp"

namespace bbb::core {

namespace {

constexpr const char* kKind = "protocol";

std::uint32_t arg_at(const ParsedSpec& s, std::size_t i, const std::string& spec) {
  return spec_arg_u32(s, i, spec, kKind);
}

// The slack-style specs accept zero or one argument.
std::uint32_t optional_slack(const ParsedSpec& s, const std::string& spec) {
  return spec_optional_arg_u32(s, 1, spec, kKind);
}

}  // namespace

std::unique_ptr<Protocol> make_protocol(const std::string& spec) {
  const ParsedSpec s = parse_spec(spec, kKind);
  if (s.name == "one-choice") {
    if (!s.args.empty()) {
      throw std::invalid_argument("protocol spec '" + spec + "': takes no arguments");
    }
    return std::make_unique<OneChoiceProtocol>();
  }
  if (s.name == "greedy") return std::make_unique<DChoiceProtocol>(arg_at(s, 0, spec));
  if (s.name == "left") return std::make_unique<LeftDProtocol>(arg_at(s, 0, spec));
  if (s.name == "memory") {
    return std::make_unique<MemoryDKProtocol>(arg_at(s, 0, spec), arg_at(s, 1, spec));
  }
  if (s.name == "threshold") {
    return std::make_unique<ThresholdProtocol>(optional_slack(s, spec));
  }
  if (s.name == "doubling-threshold") {
    if (s.args.size() > 1) {
      throw std::invalid_argument("protocol spec '" + spec + "': too many arguments");
    }
    return std::make_unique<DoublingThresholdProtocol>(s.args.empty() ? 0 : s.args[0]);
  }
  if (s.name == "adaptive") {
    return std::make_unique<AdaptiveProtocol>(optional_slack(s, spec));
  }
  if (s.name == "stale-adaptive") {
    return std::make_unique<StaleAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "skewed-adaptive") {
    return std::make_unique<SkewedAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "batched") {
    BatchedProtocol::Params p;
    if (!s.args.empty()) p.capacity = static_cast<std::uint32_t>(s.args[0]);
    return std::make_unique<BatchedProtocol>(p);
  }
  if (s.name == "self-balancing") {
    if (!s.args.empty()) {
      throw std::invalid_argument("protocol spec '" + spec + "': takes no arguments");
    }
    return std::make_unique<SelfBalancingProtocol>();
  }
  if (s.name == "cuckoo") {
    CuckooTable::Params p;
    p.d = arg_at(s, 0, spec);
    p.bucket_size = arg_at(s, 1, spec);
    return std::make_unique<CuckooProtocol>(p);
  }
  throw std::invalid_argument("unknown protocol '" + s.name + "'");
}

std::vector<std::string> protocol_specs() {
  return {"one-choice",     "greedy[d]",  "left[d]",          "memory[d,k]",
          "threshold",      "threshold[slack]", "doubling-threshold[guess]",
          "adaptive",       "adaptive[slack]",
          "stale-adaptive[delta]", "skewed-adaptive[s*100]", "batched[capacity]",
          "self-balancing", "cuckoo[d,k]"};
}

}  // namespace bbb::core
