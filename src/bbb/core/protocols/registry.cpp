#include "bbb/core/protocols/registry.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "bbb/core/spec.hpp"

#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/batched.hpp"
#include "bbb/core/protocols/cuckoo.hpp"
#include "bbb/core/protocols/d_choice.hpp"
#include "bbb/core/protocols/doubling_threshold.hpp"
#include "bbb/core/protocols/left_d.hpp"
#include "bbb/core/protocols/memory_dk.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/protocols/self_balancing.hpp"
#include "bbb/core/protocols/skewed_adaptive.hpp"
#include "bbb/core/protocols/stale_adaptive.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/shard/engine.hpp"

namespace bbb::core {

namespace {

constexpr const char* kKind = "protocol";

std::uint32_t arg_at(const ParsedSpec& s, std::size_t i, const std::string& spec) {
  return spec_arg_u32(s, i, spec, kKind);
}

// The slack-style specs accept zero or one argument.
std::uint32_t optional_slack(const ParsedSpec& s, const std::string& spec) {
  return spec_optional_arg_u32(s, 1, spec, kKind);
}

void reject_args(const ParsedSpec& s, const std::string& spec) {
  if (!s.args.empty()) {
    throw std::invalid_argument("protocol spec '" + spec + "': takes no arguments");
  }
}

// batched takes zero or one argument; both factories share the parse so
// the grammar cannot drift between the batch and streaming sides.
std::uint32_t batched_capacity(const ParsedSpec& s, const std::string& spec) {
  return spec_optional_arg_u32(s, 2, spec, kKind);
}

/// Batch wrapper for specs that exist only as rules (the adaptive-net /
/// adaptive-total spellings): run() binds the rule to (n, m) and drives
/// the shared place_one loop.
class StreamingSpecProtocol final : public Protocol {
 public:
  using Factory =
      std::function<std::unique_ptr<PlacementRule>(std::uint32_t, std::uint64_t)>;

  StreamingSpecProtocol(std::string name, Factory factory)
      : name_(std::move(name)), factory_(std::move(factory)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override {
    validate_run_args(m, n);
    const auto rule = factory_(n, m);
    return run_rule(*rule, m, n, gen);
  }

 private:
  std::string name_;
  Factory factory_;
};

std::string slack_name(const std::string& base, std::uint32_t slack) {
  return slack == 1 ? base : base + "[" + std::to_string(slack) + "]";
}

/// Batch wrapper for `capacities=...:spec`: run() cycles the profile over
/// the n bins, builds the inner rule bound to (n, m), and drives the shared
/// place_one loop over the capacitated BinState. Note the one rule whose
/// batch form is not that loop: a capacitated `batched[...]` runs the
/// capacity-bounded *streaming* form, not the round-synchronous LW rounds.
class CapacitatedProtocol final : public Protocol {
 public:
  CapacitatedProtocol(std::vector<std::uint32_t> profile, std::string inner_spec,
                      std::string inner_name)
      : profile_(std::move(profile)),
        inner_spec_(std::move(inner_spec)),
        inner_name_(std::move(inner_name)) {}

  [[nodiscard]] std::string name() const override {
    return capacities_prefix(profile_) + inner_name_;
  }

  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override {
    validate_run_args(m, n);
    BinState state(expand_capacities(profile_, n));
    const auto rule = make_rule(inner_spec_, n, m);
    auto result = run_rule(*rule, m, state, gen);
    return result;
  }

 private:
  std::vector<std::uint32_t> profile_;
  std::string inner_spec_;
  std::string inner_name_;
};

void reject_weighted_prefix(const SpecPrefix& prefix, const std::string& spec) {
  if (prefix.weighted) {
    throw std::invalid_argument("protocol spec '" + spec +
                                "': 'weighted:' is a workload modifier, not a "
                                "protocol one");
  }
}

}  // namespace

std::unique_ptr<Protocol> make_protocol(const std::string& spec) {
  const SpecPrefix prefix = split_spec_prefix(spec, kKind);
  reject_weighted_prefix(prefix, spec);
  if (prefix.shards != 0) {
    if (!prefix.capacities.empty()) {
      // The shard engine partitions a *uniform* state; a capacitated
      // sharded run would need per-shard capacity profiles it cannot cut.
      throw std::invalid_argument("protocol spec '" + spec +
                                  "': 'shards[t]:' cannot combine with "
                                  "'capacities='");
    }
    shard::ShardOptions opt;
    opt.shards = prefix.shards;
    return std::make_unique<shard::ShardedProtocol>(prefix.rest, opt);
  }
  if (!prefix.capacities.empty()) {
    // Validate the inner spec eagerly (and capture its canonical name).
    auto inner = make_protocol(prefix.rest);
    return std::make_unique<CapacitatedProtocol>(prefix.capacities, prefix.rest,
                                                 inner->name());
  }
  const ParsedSpec s = parse_spec(spec, kKind);
  if (s.name == "one-choice") {
    reject_args(s, spec);
    return std::make_unique<OneChoiceProtocol>();
  }
  if (s.name == "greedy") return std::make_unique<DChoiceProtocol>(arg_at(s, 0, spec));
  if (s.name == "left") return std::make_unique<LeftDProtocol>(arg_at(s, 0, spec));
  if (s.name == "memory") {
    return std::make_unique<MemoryDKProtocol>(arg_at(s, 0, spec), arg_at(s, 1, spec));
  }
  if (s.name == "threshold") {
    return std::make_unique<ThresholdProtocol>(optional_slack(s, spec));
  }
  if (s.name == "doubling-threshold") {
    if (s.args.size() > 1) {
      throw std::invalid_argument("protocol spec '" + spec + "': too many arguments");
    }
    return std::make_unique<DoublingThresholdProtocol>(s.args.empty() ? 0 : s.args[0]);
  }
  if (s.name == "adaptive") {
    return std::make_unique<AdaptiveProtocol>(optional_slack(s, spec));
  }
  if (s.name == "adaptive-net" || s.name == "adaptive-total") {
    const std::uint32_t slack = optional_slack(s, spec);
    const AdaptiveCount count =
        s.name == "adaptive-net" ? AdaptiveCount::kNet : AdaptiveCount::kTotal;
    const std::string base = s.name;
    return std::make_unique<StreamingSpecProtocol>(
        slack_name(base, slack),
        [slack, count, base](std::uint32_t /*n*/, std::uint64_t /*m*/) {
          return std::make_unique<AdaptiveRule>(slack, count, base);
        });
  }
  if (s.name == "stale-adaptive") {
    return std::make_unique<StaleAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "skewed-adaptive") {
    return std::make_unique<SkewedAdaptiveProtocol>(arg_at(s, 0, spec));
  }
  if (s.name == "batched") {
    BatchedProtocol::Params p;
    p.capacity = batched_capacity(s, spec);
    return std::make_unique<BatchedProtocol>(p);
  }
  if (s.name == "self-balancing") {
    reject_args(s, spec);
    return std::make_unique<SelfBalancingProtocol>();
  }
  if (s.name == "cuckoo") {
    CuckooRule::Params p;
    p.d = arg_at(s, 0, spec);
    p.bucket_size = arg_at(s, 1, spec);
    return std::make_unique<CuckooProtocol>(p);
  }
  throw std::invalid_argument("unknown protocol '" + s.name + "'");
}

std::unique_ptr<PlacementRule> make_rule(const std::string& spec, std::uint32_t n,
                                         std::uint64_t m_hint) {
  const SpecPrefix prefix = split_spec_prefix(spec, kKind);
  reject_weighted_prefix(prefix, spec);
  if (prefix.shards != 0) {
    // A rule is one shard's decision logic; the engine owning the worker
    // threads and the ring mesh is a different object.
    throw std::invalid_argument(
        "protocol spec '" + spec +
        "': 'shards[t]:' builds a multi-threaded engine, not a streaming "
        "rule — run it via make_protocol (or shard::ShardedAllocator)");
  }
  if (!prefix.capacities.empty()) {
    // A bare rule has no state to carry the capacities; pairing it with a
    // uniform BinState would silently drop them.
    throw std::invalid_argument(
        "protocol spec '" + spec +
        "': 'capacities=' needs the matching state — build the pair through "
        "make_streaming_allocator (or run via make_protocol)");
  }
  const ParsedSpec s = parse_spec(spec, kKind);
  if (s.name == "one-choice") {
    reject_args(s, spec);
    return std::make_unique<OneChoiceRule>();
  }
  if (s.name == "greedy") return std::make_unique<DChoiceRule>(arg_at(s, 0, spec));
  if (s.name == "left") return std::make_unique<LeftDRule>(n, arg_at(s, 0, spec));
  if (s.name == "memory") {
    return std::make_unique<MemoryDKRule>(arg_at(s, 0, spec), arg_at(s, 1, spec));
  }
  if (s.name == "threshold") {
    // No hint: provision for a net population of n balls, so threshold[c]
    // accepts load <= ceil(n/n) + c - 1 = c.
    return std::make_unique<ThresholdRule>(n, m_hint == 0 ? n : m_hint,
                                           optional_slack(s, spec));
  }
  if (s.name == "doubling-threshold") {
    if (s.args.size() > 1) {
      throw std::invalid_argument("protocol spec '" + spec + "': too many arguments");
    }
    return std::make_unique<DoublingThresholdRule>(n, s.args.empty() ? 0 : s.args[0]);
  }
  if (s.name == "adaptive" || s.name == "adaptive-net" || s.name == "adaptive-total") {
    const AdaptiveCount count =
        s.name == "adaptive-net" ? AdaptiveCount::kNet : AdaptiveCount::kTotal;
    return std::make_unique<AdaptiveRule>(optional_slack(s, spec), count, s.name);
  }
  if (s.name == "stale-adaptive") {
    return std::make_unique<StaleAdaptiveRule>(n, arg_at(s, 0, spec));
  }
  if (s.name == "skewed-adaptive") {
    return std::make_unique<SkewedAdaptiveRule>(
        n, static_cast<double>(arg_at(s, 0, spec)) / 100.0);
  }
  if (s.name == "batched") {
    return std::make_unique<BatchedRule>(batched_capacity(s, spec));
  }
  if (s.name == "self-balancing") {
    reject_args(s, spec);
    return std::make_unique<SelfBalancingRule>();
  }
  if (s.name == "cuckoo") {
    CuckooRule::Params p;
    p.d = arg_at(s, 0, spec);
    p.bucket_size = arg_at(s, 1, spec);
    return std::make_unique<CuckooRule>(n, p);
  }
  throw std::invalid_argument("unknown protocol '" + s.name + "'");
}

std::unique_ptr<StreamingAllocator> make_streaming_allocator(const std::string& spec,
                                                             std::uint32_t n,
                                                             std::uint64_t m_hint,
                                                             StateLayout layout) {
  const SpecPrefix prefix = split_spec_prefix(spec, kKind);
  reject_weighted_prefix(prefix, spec);
  if (prefix.shards != 0) {
    throw std::invalid_argument(
        "protocol spec '" + spec +
        "': 'shards[t]:' builds a multi-threaded engine, not a streaming "
        "allocator — run it via make_protocol (or shard::ShardedAllocator)");
  }
  auto rule = make_rule(prefix.rest, n, m_hint);
  if (prefix.capacities.empty()) {
    return std::make_unique<StreamingAllocator>(BinState(n, layout), std::move(rule));
  }
  return std::make_unique<StreamingAllocator>(
      BinState(expand_capacities(prefix.capacities, n), layout), std::move(rule),
      capacities_prefix(prefix.capacities));
}

std::vector<std::string> protocol_specs() {
  return {"one-choice",
          "greedy[d]",
          "left[d]",
          "memory[d,k]",
          "threshold",
          "threshold[slack]",
          "doubling-threshold[guess]",
          "adaptive",
          "adaptive[slack]",
          "adaptive-net",
          "adaptive-net[slack]",
          "adaptive-total",
          "adaptive-total[slack]",
          "stale-adaptive[delta]",
          "skewed-adaptive[s*100]",
          "batched[capacity]",
          "self-balancing",
          "cuckoo[d,k]",
          "capacities=c0,c1,...:spec",
          "shards[t]:spec"};
}

}  // namespace bbb::core
