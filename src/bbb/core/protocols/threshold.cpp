#include "bbb/core/protocols/threshold.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

ThresholdAllocator::ThresholdAllocator(std::uint32_t n, std::uint64_t m,
                                       std::uint32_t slack)
    : state_(n), m_(m) {
  // Acceptance: load < m/n + slack over integers <=> load <= ceil(m/n) + slack - 1.
  // slack == 0 (bound ceil(m/n) - 1) can deadlock once every bin holds
  // exactly ceil(m/n): reject it for m > 0 when m is a multiple of n and the
  // last stage would need a hole that may not exist. We allow slack == 0 —
  // the bound below still guarantees termination because the first m balls
  // leave total load m - 1 < n * ceil(m/n), i.e. some bin is below average —
  // except the degenerate m == 0 case where bound would underflow.
  if (slack == 0 && m == 0) {
    throw std::invalid_argument("ThresholdAllocator: slack 0 needs m > 0");
  }
  const auto base = static_cast<std::uint32_t>(ceil_div(m, n));
  bound_ = slack == 0 ? (base == 0 ? 0 : base - 1) : base + (slack - 1);
}

std::uint32_t ThresholdAllocator::place(rng::Engine& gen) {
  if (state_.balls() >= m_) {
    throw std::logic_error("ThresholdAllocator: all m balls already placed");
  }
  const std::uint32_t bin =
      probe_until(gen, state_.n(), probes_,
                  [this](std::uint32_t b) { return state_.load(b) <= bound_; });
  state_.add_ball(bin);
  return bin;
}

ThresholdProtocol::ThresholdProtocol(std::uint32_t slack) : slack_(slack) {}

std::string ThresholdProtocol::name() const {
  return slack_ == 1 ? "threshold" : "threshold[" + std::to_string(slack_) + "]";
}

AllocationResult ThresholdProtocol::run(std::uint64_t m, std::uint32_t n,
                                        rng::Engine& gen) const {
  validate_run_args(m, n);
  AllocationResult res;
  if (m == 0) {
    res.loads.assign(n, 0);
    return res;
  }
  ThresholdAllocator alloc(n, m, slack_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
