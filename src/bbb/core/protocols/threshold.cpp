#include "bbb/core/protocols/threshold.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

ThresholdRule::ThresholdRule(std::uint32_t n, std::uint64_t m, std::uint32_t slack)
    : n_(n), m_(m), slack_(slack) {
  if (n == 0) throw std::invalid_argument("ThresholdRule: n must be positive");
  // Acceptance: load < m/n + slack over integers <=> load <= ceil(m/n) + slack - 1.
  // slack == 0 (bound ceil(m/n) - 1) still guarantees termination for the
  // first m balls, because m - 1 already placed balls cannot fill all n
  // bins to ceil(m/n) — except the degenerate m == 0 case where the bound
  // would underflow.
  if (slack == 0 && m == 0) {
    throw std::invalid_argument("ThresholdRule: slack 0 needs m > 0");
  }
  const auto base = static_cast<std::uint32_t>(ceil_div(m, n));
  bound_ = slack == 0 ? (base == 0 ? 0 : base - 1) : base + (slack - 1);
}

std::string ThresholdRule::name() const {
  return slack_ == 1 ? "threshold" : "threshold[" + std::to_string(slack_) + "]";
}

std::uint32_t ThresholdRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  // A fixed bound cannot adapt: once every bin exceeds it the probe loop
  // would never terminate. Detect that state in O(1) instead of spinning.
  if (state.min_load() > bound_) {
    throw std::logic_error("ThresholdRule: every bin is above the acceptance bound " +
                           std::to_string(bound_));
  }
  const std::uint32_t bin =
      probe_until(gen, state.n(), probes_,
                  [this, &state](std::uint32_t b) { return state.load(b) <= bound_; });
  state.add_ball(bin);
  return bin;
}

ThresholdProtocol::ThresholdProtocol(std::uint32_t slack) : slack_(slack) {}

std::string ThresholdProtocol::name() const {
  return slack_ == 1 ? "threshold" : "threshold[" + std::to_string(slack_) + "]";
}

AllocationResult ThresholdProtocol::run(std::uint64_t m, std::uint32_t n,
                                        rng::Engine& gen) const {
  validate_run_args(m, n);
  // m == 0 with slack 0 must stay legal at the batch API (nothing to
  // place), so skip rule construction for the empty run.
  if (m == 0) {
    AllocationResult res;
    res.loads.assign(n, 0);
    return res;
  }
  ThresholdRule rule(n, m, slack_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
