#pragma once
/// \file left_d.hpp
/// left[d] (Vöcking): the bins are split into d contiguous groups of
/// (nearly) equal size; each ball samples one uniform bin per group and
/// joins the least loaded, with ties broken *asymmetrically* toward the
/// leftmost group. This seemingly small change improves the max load to
/// m/n + ln ln n / (d ln phi_d) + O(1), where phi_d is the generalized
/// golden ratio — exponentially better in d than greedy[d]'s ln d.

#include <utility>
#include <vector>

#include "bbb/core/batch_kernel.hpp"
#include "bbb/core/probe.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/rng/alias_table.hpp"

namespace bbb::core {

/// Streaming left[d] rule. Bound to a fixed n (the group partition). On a
/// heterogeneous-capacity state the per-group probe is proportional to
/// capacity within the group (one alias table per group, built lazily from
/// the first state seen — rules are single-run) and the comparison uses
/// normalized loads l/c, still with Vöcking's strict always-go-left ties.
class LeftDRule final : public PlacementRule {
 public:
  /// \throws std::invalid_argument if n == 0, d == 0, or d > n.
  LeftDRule(std::uint32_t n, std::uint32_t d);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t bound_n() const noexcept override { return n_; }
  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }
  [[nodiscard]] bool supports_weights() const noexcept override { return true; }

  /// Half-open bin range [first, last) of group g (for tests).
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> group_range(
      std::uint32_t g) const;

  void set_engine_exclusive(bool exclusive) noexcept override {
    lookahead_.set_enabled(exclusive);
  }
  [[nodiscard]] const ProbeLookahead* lookahead() const noexcept override {
    return &lookahead_;
  }
  [[nodiscard]] const BatchPlacer* batch_kernel() const noexcept override {
    return &batch_;
  }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;
  /// d == 2 on an eligible compact state runs the wave kernel (exactly
  /// two words per ball, deterministic tie-break — see
  /// core/batch_kernel.hpp); other d stay on the place_one loop.
  void do_place_batch(BinState& state, std::uint64_t count, rng::Engine& gen,
                      std::uint32_t* bins_out) override;

 private:
  std::uint32_t n_;
  std::uint32_t d_;
  ProbeLookahead lookahead_;
  BatchPlacer batch_;
  std::vector<rng::AliasTable> group_samplers_;  // lazily built, heterogeneous only
  const BinState* sampled_state_ = nullptr;      // the state the tables were built for
};

/// Batch protocol wrapper: left[d].
class LeftDProtocol final : public Protocol {
 public:
  /// \throws std::invalid_argument if d == 0.
  explicit LeftDProtocol(std::uint32_t d);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t d_;
};

}  // namespace bbb::core
