#include "bbb/core/protocols/one_choice.hpp"

namespace bbb::core {

AllocationResult OneChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                        rng::Engine& gen) const {
  validate_run_args(m, n);
  OneChoiceAllocator alloc(n);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
