#include "bbb/core/protocols/one_choice.hpp"

namespace bbb::core {

std::uint32_t OneChoiceRule::do_place(BinState& state, rng::Engine& gen) {
  ++probes_;
  const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, state.n()));
  state.add_ball(bin);
  return bin;
}

AllocationResult OneChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                        rng::Engine& gen) const {
  OneChoiceRule rule;
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
