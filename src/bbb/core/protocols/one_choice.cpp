#include "bbb/core/protocols/one_choice.hpp"

namespace bbb::core {

std::uint32_t OneChoiceRule::do_place(BinState& state, std::uint32_t weight,
                                      rng::Engine& gen) {
  ++probes_;
  // Uniform capacities keep the classic single uniform draw (bit-for-bit
  // the historical randomness stream); heterogeneous capacities probe
  // proportionally to c_i through the state's alias table.
  std::uint32_t bin;
  if (state.uniform_capacity()) {
    const std::uint32_t n = state.n();
    lookahead_.top_up(gen, 1, [&state, n](std::uint32_t, std::uint64_t word) {
      state.prefetch(lemire_map(word, n));
    });
    LookaheadSource src(lookahead_, gen);
    bin = static_cast<std::uint32_t>(rng::uniform_below(src, n));
  } else {
    bin = state.sample_capacity_proportional(gen);
  }
  state.add_ball(bin, weight);
  return bin;
}

void OneChoiceRule::do_place_batch(BinState& state, std::uint64_t count,
                                   rng::Engine& gen, std::uint32_t* bins_out) {
  if (BatchPlacer::eligible(state, lookahead_)) {
    batch_.place_one_choice(state, count, lookahead_, gen, probes_, bins_out);
    total_placed_ += count;
    return;
  }
  PlacementRule::do_place_batch(state, count, gen, bins_out);
}

AllocationResult OneChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                        rng::Engine& gen) const {
  OneChoiceRule rule;
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
