#pragma once
/// \file skewed_adaptive.hpp
/// adaptive with a *biased* probe distribution — what happens when the
/// "choose a bin uniformly at random" primitive is really a hash with a
/// skewed range (Zipf(s) over the bins).
///
/// The acceptance rule is distribution-free, so the paper's max-load bound
/// ceil(m/n) + 1 survives arbitrary skew by construction. What breaks is
/// the *allocation time*: rarely-probed bins fill only when everything else
/// is saturated, so probes blow up with s (each stage's endgame must find
/// the cold bins through the biased sampler). bench_ablation_skew measures
/// the degradation curve; the takeaway is that Theorem 3.1's O(m) leans on
/// near-uniform sampling while the load guarantee does not.

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/rng/zipf.hpp"

namespace bbb::core {

/// Streaming adaptive rule probing bins ~ Zipf(s).
class SkewedAdaptiveRule final : public PlacementRule {
 public:
  /// \param n bins; \param s Zipf exponent (0 = uniform = plain adaptive).
  /// \throws std::invalid_argument if n == 0 or s < 0.
  SkewedAdaptiveRule(std::uint32_t n, double s);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t bound_n() const noexcept override { return n_; }
  [[nodiscard]] double s() const noexcept { return zipf_.s(); }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t n_;
  rng::ZipfDist zipf_;
  std::uint32_t bound_ = 1;
  std::uint32_t stage_fill_ = 0;
};

/// Batch wrapper: skewed-adaptive[s*100] in registry specs (integer arg).
class SkewedAdaptiveProtocol final : public Protocol {
 public:
  /// \param s_times_100 Zipf exponent scaled by 100 (e.g. 50 -> s = 0.5).
  explicit SkewedAdaptiveProtocol(std::uint32_t s_times_100);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t s_times_100_;
};

}  // namespace bbb::core
