#pragma once
/// \file stale_adaptive.hpp
/// adaptive with a *stale* ball counter — an extension probing the paper's
/// one informational assumption.
///
/// The paper notes that "during the execution of adaptive, each ball must
/// know how many balls have been already placed" (comparable to the memory
/// model of Mitzenmacher et al.). In a distributed deployment that counter
/// arrives by broadcast and lags. StaleAdaptive models it: the acceptance
/// bound is computed from the last *published* ball count, and the count is
/// only re-published every `delta` placements.
///
/// Result (delta <= n) — stronger than one might expect: the execution is
/// *bit-identical* to fresh adaptive. The acceptance bound ceil(i/n) is
/// constant within each stage of n balls, so any counter that lags by less
/// than a full stage still computes the same bound for every ball
/// (proved in tests/protocols/stale_adaptive_test.cpp over a delta sweep;
/// demonstrated in bench_ablation_stale). In other words, the paper's
/// "each ball must know how many balls have been already placed" only
/// requires the count to within n — broadcasting once per stage is free.
///
/// delta > n is rejected: the stale bound could lag a full stage, where
/// neither the pigeonhole termination argument nor the identity holds.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming adaptive allocator with a counter published every delta balls.
class StaleAdaptiveAllocator {
 public:
  /// \param n bins; \param delta publication interval (1 = fresh counter,
  /// i.e. plain adaptive). \throws std::invalid_argument if n == 0,
  /// delta == 0, or delta > n (termination would no longer be guaranteed).
  StaleAdaptiveAllocator(std::uint32_t n, std::uint32_t delta);

  /// Place one ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// The acceptance bound currently in force (from the stale counter).
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }
  /// Ball count as of the last publication.
  [[nodiscard]] std::uint64_t published_count() const noexcept { return published_; }

 private:
  LoadVector state_;
  std::uint32_t delta_;
  std::uint64_t published_ = 0;
  std::uint32_t bound_ = 1;  // bound for the first ball: ceil(1/n) = 1
  std::uint64_t probes_ = 0;
};

/// Batch wrapper: stale-adaptive[delta].
class StaleAdaptiveProtocol final : public Protocol {
 public:
  explicit StaleAdaptiveProtocol(std::uint32_t delta);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t delta_;
};

}  // namespace bbb::core
