#pragma once
/// \file stale_adaptive.hpp
/// adaptive with a *stale* ball counter — an extension probing the paper's
/// one informational assumption.
///
/// The paper notes that "during the execution of adaptive, each ball must
/// know how many balls have been already placed" (comparable to the memory
/// model of Mitzenmacher et al.). In a distributed deployment that counter
/// arrives by broadcast and lags. StaleAdaptive models it: the acceptance
/// bound is computed from the last *published* placement count, and the
/// count is only re-published every `delta` placements.
///
/// Result (delta <= n) — stronger than one might expect: the execution is
/// *bit-identical* to fresh adaptive. The acceptance bound ceil(i/n) is
/// constant within each stage of n balls, so any counter that lags by less
/// than a full stage still computes the same bound for every ball
/// (proved in tests/protocols/stale_adaptive_test.cpp over a delta sweep;
/// demonstrated in bench_ablation_stale). In other words, the paper's
/// "each ball must know how many balls have been already placed" only
/// requires the count to within n — broadcasting once per stage is free.
///
/// delta > n is rejected: the stale bound could lag a full stage, where
/// neither the pigeonhole termination argument nor the identity holds.
///
/// Under departures the published clock keeps counting *placements* (the
/// broadcast counter is monotone); like the adaptive total-count variant,
/// the bound therefore drifts upward under sustained churn.

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming adaptive rule with a counter published every delta placements.
class StaleAdaptiveRule final : public PlacementRule {
 public:
  /// \param n bins; \param delta publication interval (1 = fresh counter,
  /// i.e. plain adaptive). \throws std::invalid_argument if n == 0,
  /// delta == 0, or delta > n (termination would no longer be guaranteed).
  StaleAdaptiveRule(std::uint32_t n, std::uint32_t delta);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t bound_n() const noexcept override { return n_; }
  /// The acceptance bound currently in force (from the stale counter).
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }
  /// Placement count as of the last publication.
  [[nodiscard]] std::uint64_t published_count() const noexcept { return published_; }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t n_;
  std::uint32_t delta_;
  std::uint64_t published_ = 0;
  std::uint32_t bound_ = 1;  // bound for the first ball: ceil(1/n) = 1
};

/// Batch wrapper: stale-adaptive[delta].
class StaleAdaptiveProtocol final : public Protocol {
 public:
  explicit StaleAdaptiveProtocol(std::uint32_t delta);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t delta_;
};

}  // namespace bbb::core
