#include "bbb/core/protocols/adaptive.hpp"

#include "bbb/core/probe.hpp"

namespace bbb::core {

AdaptiveAllocator::AdaptiveAllocator(std::uint32_t n, std::uint32_t slack)
    : state_(n), slack_(slack) {
  // Ball 1 has ceil(1/n) = 1, so its bound is 1 + slack - 1 = slack
  // (slack >= 1), or 0 for the slack == 0 coupon-collector variant.
  bound_ = slack_ == 0 ? 0 : slack_;
}

std::uint32_t AdaptiveAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = state_.n();
  const std::uint32_t bin = probe_until(
      gen, n, probes_, [this](std::uint32_t b) { return state_.load(b) <= bound_; });
  state_.add_ball(bin);
  // ceil(i/n) bumps by one each time a full stage of n balls completes.
  if (++stage_fill_ == n) {
    stage_fill_ = 0;
    ++bound_;
  }
  return bin;
}

AdaptiveProtocol::AdaptiveProtocol(std::uint32_t slack) : slack_(slack) {}

std::string AdaptiveProtocol::name() const {
  return slack_ == 1 ? "adaptive" : "adaptive[" + std::to_string(slack_) + "]";
}

AllocationResult AdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                       rng::Engine& gen) const {
  validate_run_args(m, n);
  AdaptiveAllocator alloc(n, slack_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
