#include "bbb/core/protocols/adaptive.hpp"

#include <utility>

#include "bbb/core/probe.hpp"

namespace bbb::core {

AdaptiveRule::AdaptiveRule(std::uint32_t slack, AdaptiveCount count, std::string base)
    : slack_(slack), count_(count), base_(std::move(base)) {
  // Ball 1 has ceil(1/n) = 1, so its bound is 1 + slack - 1 = slack
  // (slack >= 1), or 0 for the slack == 0 coupon-collector variant.
  bound_ = slack_ == 0 ? 0 : slack_;
}

std::string AdaptiveRule::name() const {
  return slack_ == 1 ? base_ : base_ + "[" + std::to_string(slack_) + "]";
}

std::uint64_t AdaptiveRule::accept_bound(const BinState& state) const noexcept {
  if (count_ == AdaptiveCount::kTotal) return bound_;
  const std::uint64_t i = state.balls() + 1;
  const std::uint64_t base = ceil_div(i, state.n());
  // base >= 1 since i >= 1, so the slack-0 variant never underflows.
  return slack_ == 0 ? base - 1 : base + slack_ - 1;
}

std::uint32_t AdaptiveRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  const std::uint32_t n = state.n();
  const std::uint64_t bound = accept_bound(state);
  const std::uint32_t bin =
      probe_until(gen, n, probes_,
                  [&state, bound](std::uint32_t b) { return state.load(b) <= bound; });
  state.add_ball(bin);
  // ceil(i/n) bumps by one each time a full stage of n placements
  // completes (only the total counter advances by stages; the net bound is
  // recomputed from the live count each ball).
  if (++stage_fill_ == n) {
    stage_fill_ = 0;
    ++bound_;
  }
  return bin;
}

AdaptiveProtocol::AdaptiveProtocol(std::uint32_t slack) : slack_(slack) {}

std::string AdaptiveProtocol::name() const {
  return slack_ == 1 ? "adaptive" : "adaptive[" + std::to_string(slack_) + "]";
}

AllocationResult AdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                       rng::Engine& gen) const {
  AdaptiveRule rule(slack_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
