#include "bbb/core/protocols/d_choice.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

DChoiceRule::DChoiceRule(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceRule: d must be positive");
}

std::string DChoiceRule::name() const { return "greedy[" + std::to_string(d_) + "]"; }

std::uint32_t DChoiceRule::do_place(BinState& state, rng::Engine& gen) {
  const std::uint32_t best = least_loaded_of(
      gen, state.n(), d_, probes_, [&state](std::uint32_t b) { return state.load(b); });
  state.add_ball(best);
  return best;
}

DChoiceProtocol::DChoiceProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceProtocol: d must be positive");
}

std::string DChoiceProtocol::name() const {
  return "greedy[" + std::to_string(d_) + "]";
}

AllocationResult DChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                      rng::Engine& gen) const {
  DChoiceRule rule(d_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
