#include "bbb/core/protocols/d_choice.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

DChoiceRule::DChoiceRule(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceRule: d must be positive");
}

std::string DChoiceRule::name() const { return "greedy[" + std::to_string(d_) + "]"; }

std::uint32_t DChoiceRule::do_place(BinState& state, std::uint32_t weight,
                                    rng::Engine& gen) {
  std::uint32_t best;
  if (state.uniform_capacity()) {
    // Keep >= 2d words buffered so a ball's candidates plus its worst-case
    // d-1 tie-break draws never hit a mid-ball refill; every buffered word
    // is speculatively prefetched as the candidate bin it maps to (words
    // consumed as tie-breaks prefetched a harmless bogus bin).
    const std::uint32_t n = state.n();
    lookahead_.top_up(gen, 2 * d_, [&state, n](std::uint32_t, std::uint64_t word) {
      state.prefetch(lemire_map(word, n));
    });
    LookaheadSource src(lookahead_, gen);
    best = least_loaded_of(src, n, d_, probes_,
                           [&state](std::uint32_t b) { return state.load(b); });
  } else {
    // Heterogeneous capacities: probe proportionally to c_i and join the
    // candidate with the least *normalized* load l/c — the weighted
    // two-choice rule that equalizes l_i/c_i instead of raw loads.
    best = least_norm_loaded_of(
        gen, d_, probes_,
        [&state](rng::Engine& g) { return state.sample_capacity_proportional(g); },
        [&state](std::uint32_t b) { return state.load(b); },
        [&state](std::uint32_t b) { return state.capacity(b); });
  }
  state.add_ball(best, weight);
  return best;
}

void DChoiceRule::do_place_batch(BinState& state, std::uint64_t count,
                                 rng::Engine& gen, std::uint32_t* bins_out) {
  if (d_ == 2 && BatchPlacer::eligible(state, lookahead_)) {
    batch_.place_greedy2(state, count, lookahead_, gen, probes_, bins_out);
    total_placed_ += count;
    return;
  }
  PlacementRule::do_place_batch(state, count, gen, bins_out);
}

DChoiceProtocol::DChoiceProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceProtocol: d must be positive");
}

std::string DChoiceProtocol::name() const {
  return "greedy[" + std::to_string(d_) + "]";
}

AllocationResult DChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                      rng::Engine& gen) const {
  DChoiceRule rule(d_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
