#include "bbb/core/protocols/d_choice.hpp"

#include <stdexcept>

namespace bbb::core {

DChoiceAllocator::DChoiceAllocator(std::uint32_t n, std::uint32_t d) : state_(n), d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceAllocator: d must be positive");
}

std::uint32_t DChoiceAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = state_.n();
  // First candidate.
  auto best = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
  std::uint32_t best_load = state_.load(best);
  std::uint32_t ties = 1;  // candidates seen with the current best load
  for (std::uint32_t j = 1; j < d_; ++j) {
    const auto c = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const std::uint32_t l = state_.load(c);
    if (l < best_load) {
      best = c;
      best_load = l;
      ties = 1;
    } else if (l == best_load) {
      // Reservoir-style uniform tie-break across all tied candidates.
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) best = c;
    }
  }
  probes_ += d_;
  state_.add_ball(best);
  return best;
}

DChoiceProtocol::DChoiceProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceProtocol: d must be positive");
}

std::string DChoiceProtocol::name() const {
  return "greedy[" + std::to_string(d_) + "]";
}

AllocationResult DChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                      rng::Engine& gen) const {
  validate_run_args(m, n);
  DChoiceAllocator alloc(n, d_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
