#include "bbb/core/protocols/d_choice.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

DChoiceAllocator::DChoiceAllocator(std::uint32_t n, std::uint32_t d) : state_(n), d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceAllocator: d must be positive");
}

std::uint32_t DChoiceAllocator::place(rng::Engine& gen) {
  const std::uint32_t best = least_loaded_of(
      gen, state_.n(), d_, probes_, [this](std::uint32_t b) { return state_.load(b); });
  state_.add_ball(best);
  return best;
}

DChoiceProtocol::DChoiceProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("DChoiceProtocol: d must be positive");
}

std::string DChoiceProtocol::name() const {
  return "greedy[" + std::to_string(d_) + "]";
}

AllocationResult DChoiceProtocol::run(std::uint64_t m, std::uint32_t n,
                                      rng::Engine& gen) const {
  validate_run_args(m, n);
  DChoiceAllocator alloc(n, d_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
