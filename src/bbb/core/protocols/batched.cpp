#include "bbb/core/protocols/batched.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bbb/core/probe.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

BatchedRule::BatchedRule(std::uint32_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("BatchedRule: capacity must be positive");
  }
}

std::string BatchedRule::name() const {
  return "batched[" + std::to_string(capacity_) + "]";
}

std::uint32_t BatchedRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  // Every bin full and nobody departing: the capacity bound can never
  // admit another ball. Detect in O(1) instead of spinning.
  if (state.min_load() >= capacity_) {
    throw std::logic_error("BatchedRule: every bin is at capacity " +
                           std::to_string(capacity_));
  }
  const std::uint32_t bin = probe_until(
      gen, state.n(), probes_,
      [this, &state](std::uint32_t b) { return state.load(b) < capacity_; });
  state.add_ball(bin);
  return bin;
}

BatchedProtocol::BatchedProtocol(Params params) : params_(params) {
  if (params_.capacity == 0 || params_.max_rounds == 0 || params_.max_fanout == 0) {
    throw std::invalid_argument("BatchedProtocol: capacity/max_rounds/max_fanout > 0");
  }
}

std::string BatchedProtocol::name() const {
  return "batched[" + std::to_string(params_.capacity) + "]";
}

AllocationResult BatchedProtocol::run(std::uint64_t m, std::uint32_t n,
                                      rng::Engine& gen) const {
  validate_run_args(m, n);
  if (m > static_cast<std::uint64_t>(params_.capacity) * n) {
    throw std::invalid_argument(
        "BatchedProtocol: m exceeds capacity * n, allocation impossible");
  }

  AllocationResult res;
  res.loads.assign(n, 0);
  if (m == 0) return res;

  std::vector<std::uint64_t> unplaced(m);
  for (std::uint64_t i = 0; i < m; ++i) unplaced[i] = i;
  std::vector<char> placed(m, 0);

  // Per-bin requester lists, rebuilt each round. `touched` tracks which bins
  // to clear so a sparse late round does not pay O(n).
  std::vector<std::vector<std::uint64_t>> requesters(n);
  std::vector<std::uint32_t> touched;
  touched.reserve(std::min<std::uint64_t>(n, 4 * m));

  std::uint32_t fanout = 1;
  for (std::uint32_t round = 1; round <= params_.max_rounds; ++round) {
    res.rounds = round;

    for (std::uint32_t b : touched) requesters[b].clear();
    touched.clear();

    // Request phase: every unplaced ball contacts `fanout` uniform bins.
    for (std::uint64_t ball : unplaced) {
      for (std::uint32_t j = 0; j < fanout; ++j) {
        const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
        ++res.probes;
        if (requesters[bin].empty()) touched.push_back(bin);
        requesters[bin].push_back(ball);
      }
    }

    // Accept phase. Bins decide in an arbitrary fixed order (the order they
    // were first contacted); each shuffles its requesters and admits the
    // first still-unplaced ones up to its spare capacity. A ball accepted
    // by an earlier bin is skipped by later bins, which models the ball
    // acknowledging exactly one acceptance.
    for (std::uint32_t bin : touched) {
      auto& req = requesters[bin];
      std::uint32_t spare =
          params_.capacity > res.loads[bin] ? params_.capacity - res.loads[bin] : 0;
      if (spare == 0) continue;
      // Fisher-Yates shuffle for a uniformly random acceptance order.
      for (std::size_t i = req.size(); i > 1; --i) {
        const std::size_t j = rng::uniform_below(gen, i);
        std::swap(req[i - 1], req[j]);
      }
      for (std::uint64_t ball : req) {
        if (placed[ball]) continue;  // duplicate request or accepted elsewhere
        placed[ball] = 1;
        ++res.loads[bin];
        ++res.balls;
        if (--spare == 0) break;
      }
    }

    if (res.balls == m) {
      res.completed = true;
      return res;
    }

    std::erase_if(unplaced, [&](std::uint64_t ball) { return placed[ball] != 0; });
    fanout = std::min(fanout * 2, params_.max_fanout);
  }

  res.completed = unplaced.empty();
  return res;
}

}  // namespace bbb::core
