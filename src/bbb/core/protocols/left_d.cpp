#include "bbb/core/protocols/left_d.hpp"

#include <stdexcept>

namespace bbb::core {

LeftDAllocator::LeftDAllocator(std::uint32_t n, std::uint32_t d) : state_(n), d_(d) {
  if (d == 0) throw std::invalid_argument("LeftDAllocator: d must be positive");
  if (d > n) throw std::invalid_argument("LeftDAllocator: d must be <= n");
}

std::pair<std::uint32_t, std::uint32_t> LeftDAllocator::group_range(
    std::uint32_t g) const {
  if (g >= d_) throw std::invalid_argument("LeftDAllocator: group out of range");
  // Group g covers [g*n/d, (g+1)*n/d) with 64-bit intermediate products, so
  // group sizes differ by at most one bin.
  const std::uint64_t n = state_.n();
  const auto first = static_cast<std::uint32_t>(g * n / d_);
  const auto last =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(g) + 1) * n / d_);
  return {first, last};
}

std::uint32_t LeftDAllocator::place(rng::Engine& gen) {
  // Sample one bin per group, left to right. The strict `<` comparison
  // implements Vöcking's always-go-left tie-breaking: an equal load in a
  // later (righter) group never displaces the current best.
  std::uint32_t best = 0;
  std::uint32_t best_load = 0;
  for (std::uint32_t g = 0; g < d_; ++g) {
    const auto [first, last] = group_range(g);
    const auto c = static_cast<std::uint32_t>(
        first + rng::uniform_below(gen, last - first));
    const std::uint32_t l = state_.load(c);
    if (g == 0 || l < best_load) {
      best = c;
      best_load = l;
    }
  }
  probes_ += d_;
  state_.add_ball(best);
  return best;
}

LeftDProtocol::LeftDProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("LeftDProtocol: d must be positive");
}

std::string LeftDProtocol::name() const { return "left[" + std::to_string(d_) + "]"; }

AllocationResult LeftDProtocol::run(std::uint64_t m, std::uint32_t n,
                                    rng::Engine& gen) const {
  validate_run_args(m, n);
  LeftDAllocator alloc(n, d_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
