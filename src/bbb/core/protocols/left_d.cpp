#include "bbb/core/protocols/left_d.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

LeftDRule::LeftDRule(std::uint32_t n, std::uint32_t d) : n_(n), d_(d) {
  if (n == 0) throw std::invalid_argument("LeftDRule: n must be positive");
  if (d == 0) throw std::invalid_argument("LeftDRule: d must be positive");
  if (d > n) throw std::invalid_argument("LeftDRule: d must be <= n");
}

std::string LeftDRule::name() const { return "left[" + std::to_string(d_) + "]"; }

std::pair<std::uint32_t, std::uint32_t> LeftDRule::group_range(std::uint32_t g) const {
  if (g >= d_) throw std::invalid_argument("LeftDRule: group out of range");
  // Group g covers [g*n/d, (g+1)*n/d) with 64-bit intermediate products, so
  // group sizes differ by at most one bin.
  const std::uint64_t n = n_;
  const auto first = static_cast<std::uint32_t>(g * n / d_);
  const auto last =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(g) + 1) * n / d_);
  return {first, last};
}

std::uint32_t LeftDRule::do_place(BinState& state, std::uint32_t weight,
                                  rng::Engine& gen) {
  const bool uniform = state.uniform_capacity();
  if (!uniform && sampled_state_ != &state) {
    // First placement on a heterogeneous state (or the rule was pointed at
    // a different state, contract-violating but cheap to survive): one
    // capacity alias table per group, rebuilt whenever the driven state
    // changes so the probes always follow *this* state's capacities.
    group_samplers_.clear();
    group_samplers_.reserve(d_);
    const auto& caps = state.capacities();
    for (std::uint32_t g = 0; g < d_; ++g) {
      const auto [first, last] = group_range(g);
      group_samplers_.emplace_back(
          std::vector<double>(caps.begin() + first, caps.begin() + last));
    }
    sampled_state_ = &state;
  }
  if (uniform) {
    // left[d] consumes exactly d words per ball (Vöcking's tie-break is
    // deterministic — no tie draws), so a buffered word's group is its
    // queue offset mod d; prefetch maps each word within that group's
    // range. Lemire rejections (astronomically rare) shift the phase and
    // merely mis-prefetch until the next refill.
    lookahead_.top_up(gen, d_, [this, &state](std::uint32_t offset,
                                              std::uint64_t word) {
      const auto [first, last] = group_range(offset % d_);
      state.prefetch(first + lemire_map(word, last - first));
    });
  }
  LookaheadSource src(lookahead_, gen);
  // Sample one bin per group, left to right. The strict `<` comparison
  // implements Vöcking's always-go-left tie-breaking: an equal (normalized)
  // load in a later (righter) group never displaces the current best.
  std::uint32_t best = 0;
  std::uint32_t best_load = 0;
  std::uint32_t best_cap = 1;
  for (std::uint32_t g = 0; g < d_; ++g) {
    const auto [first, last] = group_range(g);
    const auto c = static_cast<std::uint32_t>(
        uniform ? first + rng::uniform_below(src, last - first)
                : first + group_samplers_[g](gen));
    const std::uint32_t l = state.load(c);
    const std::uint32_t cc = state.capacity(c);
    if (g == 0 || norm_load_less(l, cc, best_load, best_cap)) {
      best = c;
      best_load = l;
      best_cap = cc;
    }
  }
  probes_ += d_;
  state.add_ball(best, weight);
  return best;
}

void LeftDRule::do_place_batch(BinState& state, std::uint64_t count,
                               rng::Engine& gen, std::uint32_t* bins_out) {
  if (d_ == 2 && BatchPlacer::eligible(state, lookahead_)) {
    batch_.place_left2(state, count, lookahead_, gen, probes_, bins_out);
    total_placed_ += count;
    return;
  }
  PlacementRule::do_place_batch(state, count, gen, bins_out);
}

LeftDProtocol::LeftDProtocol(std::uint32_t d) : d_(d) {
  if (d == 0) throw std::invalid_argument("LeftDProtocol: d must be positive");
}

std::string LeftDProtocol::name() const { return "left[" + std::to_string(d_) + "]"; }

AllocationResult LeftDProtocol::run(std::uint64_t m, std::uint32_t n,
                                    rng::Engine& gen) const {
  validate_run_args(m, n);
  LeftDRule rule(n, d_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
