#include "bbb/core/protocols/memory_dk.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbb::core {

MemoryDKRule::MemoryDKRule(std::uint32_t d, std::uint32_t k) : d_(d), k_(k) {
  if (d == 0) throw std::invalid_argument("MemoryDKRule: d must be positive");
  if (k == 0) throw std::invalid_argument("MemoryDKRule: k must be positive");
  memory_.reserve(k);
  candidates_.reserve(d + k);
}

std::string MemoryDKRule::name() const {
  return "memory[" + std::to_string(d_) + "," + std::to_string(k_) + "]";
}

std::uint32_t MemoryDKRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  candidates_.clear();
  for (std::uint32_t j = 0; j < d_; ++j) {
    candidates_.push_back(
        static_cast<std::uint32_t>(rng::uniform_below(gen, state.n())));
  }
  probes_ += d_;
  // Remembered bins join the candidate set; duplicates are harmless (the
  // min scan just sees them twice).
  candidates_.insert(candidates_.end(), memory_.begin(), memory_.end());

  // Least-loaded candidate wins, uniform tie-break.
  std::uint32_t best = candidates_[0];
  std::uint32_t best_load = state.load(best);
  std::uint32_t ties = 1;
  for (std::size_t i = 1; i < candidates_.size(); ++i) {
    const std::uint32_t c = candidates_[i];
    const std::uint32_t l = state.load(c);
    if (l < best_load) {
      best = c;
      best_load = l;
      ties = 1;
    } else if (l == best_load) {
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) best = c;
    }
  }
  state.add_ball(best);

  // New memory: the k least-loaded *distinct* candidates post-placement.
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());
  std::sort(candidates_.begin(), candidates_.end(),
            [&state](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t la = state.load(a);
              const std::uint32_t lb = state.load(b);
              return la != lb ? la < lb : a < b;
            });
  memory_.assign(candidates_.begin(),
                 candidates_.begin() + std::min<std::size_t>(k_, candidates_.size()));
  return best;
}

MemoryDKProtocol::MemoryDKProtocol(std::uint32_t d, std::uint32_t k) : d_(d), k_(k) {
  if (d == 0 || k == 0) {
    throw std::invalid_argument("MemoryDKProtocol: d and k must be positive");
  }
}

std::string MemoryDKProtocol::name() const {
  return "memory[" + std::to_string(d_) + "," + std::to_string(k_) + "]";
}

AllocationResult MemoryDKProtocol::run(std::uint64_t m, std::uint32_t n,
                                       rng::Engine& gen) const {
  MemoryDKRule rule(d_, k_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
