#pragma once
/// \file doubling_threshold.hpp
/// The *wrong* fix for threshold's known-m requirement, included to make
/// the paper's design point concrete.
///
/// threshold needs m up-front. The folklore remedy is guess-and-double:
/// run threshold with a guess M, and when M balls have arrived, double M
/// and continue. This keeps O(m) allocation time, but the acceptance bound
/// jumps to ceil(M/n) for the *current* guess M, which can be nearly 2m/n —
/// so the final max load degrades to roughly 2·ceil(m/n) + 1 whenever m
/// lands just past a doubling boundary. adaptive (threshold i/n + 1) is the
/// correct fix: same O(m) time, bound ceil(m/n) + 1 for every m, no
/// schedule cliff. bench_ablation_unknown_m measures the gap.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming guess-and-double threshold allocator.
class DoublingThresholdAllocator {
 public:
  /// \param n bins; \param initial_guess starting M (defaults to n).
  /// \throws std::invalid_argument if n == 0 or initial_guess == 0.
  explicit DoublingThresholdAllocator(std::uint32_t n, std::uint64_t initial_guess = 0);

  /// Place one ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Current guess M (doubles each time the ball count reaches it).
  [[nodiscard]] std::uint64_t guess() const noexcept { return guess_; }
  /// Acceptance bound in force: load <= ceil(M/n).
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }

 private:
  LoadVector state_;
  std::uint64_t guess_;
  std::uint32_t bound_;
  std::uint64_t probes_ = 0;
};

/// Batch wrapper: doubling-threshold[initial_guess] (0 = default n).
class DoublingThresholdProtocol final : public Protocol {
 public:
  explicit DoublingThresholdProtocol(std::uint64_t initial_guess = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint64_t initial_guess_;
};

}  // namespace bbb::core
