#pragma once
/// \file doubling_threshold.hpp
/// The *wrong* fix for threshold's known-m requirement, included to make
/// the paper's design point concrete.
///
/// threshold needs m up-front. The folklore remedy is guess-and-double:
/// run threshold with a guess M, and when M balls have arrived, double M
/// and continue. This keeps O(m) allocation time, but the acceptance bound
/// jumps to ceil(M/n) for the *current* guess M, which can be nearly 2m/n —
/// so the final max load degrades to roughly 2·ceil(m/n) + 1 whenever m
/// lands just past a doubling boundary. adaptive (threshold i/n + 1) is the
/// correct fix: same O(m) time, bound ceil(m/n) + 1 for every m, no
/// schedule cliff. bench_ablation_unknown_m measures the gap.
///
/// Under departures the guess doubles on the *total* number of balls ever
/// placed (the schedule is a monotone clock, like the paper's ball index),
/// so sustained churn keeps widening the bound — the same pathology the
/// adaptive total-count variant exhibits, measured in bench_dyn_churn.

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming guess-and-double threshold rule.
class DoublingThresholdRule final : public PlacementRule {
 public:
  /// \param n bins; \param initial_guess starting M (0 = default n).
  /// \throws std::invalid_argument if n == 0.
  explicit DoublingThresholdRule(std::uint32_t n, std::uint64_t initial_guess = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t bound_n() const noexcept override { return n_; }
  /// Current guess M (doubles each time the placement count reaches it).
  [[nodiscard]] std::uint64_t guess() const noexcept { return guess_; }
  /// Acceptance bound in force: load <= ceil(M/n).
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t n_;
  std::uint64_t initial_guess_;
  std::uint64_t guess_;
  std::uint32_t bound_;
};

/// Batch wrapper: doubling-threshold[initial_guess] (0 = default n).
class DoublingThresholdProtocol final : public Protocol {
 public:
  explicit DoublingThresholdProtocol(std::uint64_t initial_guess = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint64_t initial_guess_;
};

}  // namespace bbb::core
