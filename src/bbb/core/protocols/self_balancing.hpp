#pragma once
/// \file self_balancing.hpp
/// Self-balancing allocation after Czumaj, Riley & Scheideler (RANDOM'03):
/// an initial greedy[2] pass records both bin choices of every ball, then
/// iterative *self-balancing steps* let balls switch to their alternative
/// choice whenever that strictly improves balance (alternative load at
/// least 2 below the current bin — after the move the maximum of the pair
/// has strictly decreased). CRS prove the fixpoint reaches max load
/// ceil(m/n) (+1 in a parameter regime) with O(m) + poly(n) reallocations.
///
/// As a streaming rule: `place_one` is the recorded greedy[2] step (the
/// recorded choice pairs are the rule-local placement state), and the
/// balancing sweeps run in `finalize` — a batch-only post-pass, so
/// `batch_equivalent() == false`. Under the dyn engine the rule behaves
/// as greedy[2] with per-ball bookkeeping that departures retire.
///
/// AllocationResult::reallocations counts ball moves,
/// AllocationResult::rounds counts full passes over the balls, and
/// completed == false if `max_passes` elapsed before the fixpoint.

#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming rule: greedy[2] placement recording both choices per ball;
/// finalize() runs the CRS balancing sweeps to a fixpoint.
class SelfBalancingRule final : public PlacementRule {
 public:
  /// \param max_passes bound on full self-balancing sweeps in finalize().
  /// \throws std::invalid_argument if max_passes == 0.
  explicit SelfBalancingRule(std::uint32_t max_passes = 64);

  [[nodiscard]] std::string name() const override { return "self-balancing"; }
  [[nodiscard]] bool batch_equivalent() const noexcept override { return false; }

  void on_remove(BinState& state, std::uint32_t bin) override;
  void finalize(BinState& state, rng::Engine& gen) override;

  [[nodiscard]] std::uint32_t max_passes() const noexcept { return max_passes_; }
  /// High-water mark of simultaneously tracked balls. Departed balls'
  /// slots are recycled, so long steady-state churn runs stay O(max
  /// population) in memory — tested in tests/dyn/allocator_test.cpp.
  [[nodiscard]] std::uint64_t tracked_balls() const noexcept {
    return current_.size();
  }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t max_passes_;
  // Per-ball bookkeeping, indexed by slot. On the batch path slots are
  // assigned in arrival order and never freed, so the finalize sweep
  // visits balls in the original CRS order; under the streaming driver a
  // departed ball's slot goes on the free list for the next arrival.
  std::vector<std::uint32_t> choice_a_;
  std::vector<std::uint32_t> choice_b_;
  std::vector<std::uint32_t> current_;
  std::vector<char> alive_;
  std::vector<std::uint64_t> free_slots_;
  // bin -> live balls currently sitting there (maintained only until
  // finalize; departures pop the most recent resident of the bin).
  std::vector<std::vector<std::uint64_t>> residents_;
};

/// Batch protocol: greedy[2] placement + local switching to a fixpoint.
class SelfBalancingProtocol final : public Protocol {
 public:
  /// \param max_passes bound on full self-balancing sweeps.
  /// \throws std::invalid_argument if max_passes == 0.
  explicit SelfBalancingProtocol(std::uint32_t max_passes = 64);

  [[nodiscard]] std::string name() const override { return "self-balancing"; }
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

  [[nodiscard]] std::uint32_t max_passes() const noexcept { return max_passes_; }

 private:
  std::uint32_t max_passes_;
};

}  // namespace bbb::core
