#pragma once
/// \file self_balancing.hpp
/// Self-balancing allocation after Czumaj, Riley & Scheideler (RANDOM'03):
/// an initial greedy[2] pass records both bin choices of every ball, then
/// iterative *self-balancing steps* let balls switch to their alternative
/// choice whenever that strictly improves balance (alternative load at
/// least 2 below the current bin — after the move the maximum of the pair
/// has strictly decreased). CRS prove the fixpoint reaches max load
/// ceil(m/n) (+1 in a parameter regime) with O(m) + poly(n) reallocations.
///
/// AllocationResult::reallocations counts ball moves,
/// AllocationResult::rounds counts full passes over the balls, and
/// completed == false if `max_passes` elapsed before the fixpoint.

#include "bbb/core/protocol.hpp"

namespace bbb::core {

/// Batch protocol: greedy[2] placement + local switching to a fixpoint.
class SelfBalancingProtocol final : public Protocol {
 public:
  /// \param max_passes bound on full self-balancing sweeps.
  /// \throws std::invalid_argument if max_passes == 0.
  explicit SelfBalancingProtocol(std::uint32_t max_passes = 64);

  [[nodiscard]] std::string name() const override { return "self-balancing"; }
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

  [[nodiscard]] std::uint32_t max_passes() const noexcept { return max_passes_; }

 private:
  std::uint32_t max_passes_;
};

}  // namespace bbb::core
