#pragma once
/// \file adaptive.hpp
/// The adaptive protocol — the paper's primary contribution (Figure 1).
///
/// The i-th ball (1-based) samples uniform bins until it finds one with load
/// strictly less than i/n + 1, and is placed there. Unlike threshold, the
/// acceptance bound follows the number of balls placed *so far*, so m never
/// needs to be known in advance, and the load vector stays smooth the whole
/// way through:
///   * max load <= ceil(m/n) + 1 by construction;
///   * Theorem 3.1: expected allocation time O(m);
///   * Corollary 3.5: E[Phi] = O(n), E[Psi] = O(n) and max-min gap
///     O(log n) w.h.p. at every stage — versus threshold's polynomial gap
///     (Lemma 4.2).
///
/// Integer form: load < i/n + 1 over integer loads <=> load <= ceil(i/n).
/// The bound therefore bumps by one exactly when a stage of n balls
/// completes; the total-count variant tracks it incrementally (no division
/// per ball). A generalized integer `slack` c gives acceptance load <=
/// ceil(i/n)+(c-1); c = 0 is the "no +1" variant the paper notes
/// degenerates to a coupon collector with Theta(m log n) allocation time.
///
/// Under *departures* (the dyn engine) the ball index i becomes ambiguous —
/// the paper never faces this fork. `AdaptiveCount` names both readings:
///   * kTotal — i = balls ever placed, the literal Figure 1 counter. The
///     bound is monotone and goes vacuous under sustained churn.
///   * kNet — i = balls currently in the system; the bound stays tight
///     forever. Identical to kTotal on arrivals-only streams, so both are
///     batch-equivalent to the adaptive protocol (bench_dyn_churn measures
///     the separation once balls leave).

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Which ball index feeds the acceptance bound (see file comment).
enum class AdaptiveCount : std::uint8_t { kTotal, kNet };

/// Streaming adaptive rule: what applications embed when the total number
/// of jobs is unknown (dispatchers, hash tables that grow).
class AdaptiveRule final : public PlacementRule {
 public:
  /// \param slack integer slack c, default 1 (the paper);
  /// \param count which ball index feeds the bound (default the paper's
  ///        total counter); \param base spec-canonical name stem
  ///        ("adaptive", "adaptive-net", "adaptive-total").
  explicit AdaptiveRule(std::uint32_t slack = 1,
                        AdaptiveCount count = AdaptiveCount::kTotal,
                        std::string base = "adaptive");

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AdaptiveCount count_mode() const noexcept { return count_; }

  /// Acceptance bound the *next* ball will use (load <= bound accepted).
  [[nodiscard]] std::uint64_t accept_bound(const BinState& state) const noexcept;

 protected:
  /// Always terminates: for slack >= 1 a below-average bin always
  /// qualifies; for slack == 0 the bound ceil(i/n) - 1 still admits at
  /// least one bin because the i - 1 (or fewer) balls present cannot fill
  /// all n bins to ceil(i/n).
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t slack_;
  AdaptiveCount count_;
  std::string base_;
  // kTotal only: the bound for ball total_placed()+1, bumped incrementally
  // each time a stage of n placements completes (no division per ball).
  std::uint64_t bound_;
  std::uint32_t stage_fill_ = 0;
};

/// Batch protocol wrapper: adaptive (slack 1 = the paper's Figure 1).
class AdaptiveProtocol final : public Protocol {
 public:
  explicit AdaptiveProtocol(std::uint32_t slack = 1);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t slack_;
};

}  // namespace bbb::core
