#pragma once
/// \file adaptive.hpp
/// The adaptive protocol — the paper's primary contribution (Figure 1).
///
/// The i-th ball (1-based) samples uniform bins until it finds one with load
/// strictly less than i/n + 1, and is placed there. Unlike threshold, the
/// acceptance bound follows the number of balls placed *so far*, so m never
/// needs to be known in advance, and the load vector stays smooth the whole
/// way through:
///   * max load <= ceil(m/n) + 1 by construction;
///   * Theorem 3.1: expected allocation time O(m);
///   * Corollary 3.5: E[Phi] = O(n), E[Psi] = O(n) and max-min gap
///     O(log n) w.h.p. at every stage — versus threshold's polynomial gap
///     (Lemma 4.2).
///
/// Integer form: load < i/n + 1 over integer loads <=> load <= ceil(i/n).
/// The bound therefore bumps by one exactly when a stage of n balls
/// completes; the allocator tracks it incrementally (no division per ball).
/// A generalized integer `slack` c gives acceptance load <= ceil(i/n)+(c-1);
/// c = 0 is the "no +1" variant the paper notes degenerates to a coupon
/// collector with Theta(m log n) allocation time.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming adaptive allocator: the class applications embed when the
/// total number of jobs is unknown (dispatchers, hash tables that grow).
class AdaptiveAllocator {
 public:
  /// \param n bins; \param slack integer slack c, default 1 (the paper).
  /// \throws std::invalid_argument if n == 0.
  explicit AdaptiveAllocator(std::uint32_t n, std::uint32_t slack = 1);

  /// Place one ball; returns the chosen bin. Always terminates: for slack
  /// >= 1 a below-average bin always qualifies; for slack == 0 the bound
  /// ceil(i/n) - 1 still admits at least one bin because i - 1 already
  /// placed balls cannot fill all n bins to ceil(i/n).
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Acceptance bound the *next* ball will use (load <= bound accepted).
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }
  /// Balls placed so far.
  [[nodiscard]] std::uint64_t balls() const noexcept { return state_.balls(); }

 private:
  LoadVector state_;
  std::uint32_t slack_;
  std::uint32_t bound_;            // bound for ball index balls()+1
  std::uint32_t stage_fill_ = 0;   // balls placed in the current stage of n
  std::uint64_t probes_ = 0;
};

/// Batch protocol wrapper: adaptive (slack 1 = the paper's Figure 1).
class AdaptiveProtocol final : public Protocol {
 public:
  explicit AdaptiveProtocol(std::uint32_t slack = 1);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t slack_;
};

}  // namespace bbb::core
