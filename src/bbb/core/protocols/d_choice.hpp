#pragma once
/// \file d_choice.hpp
/// greedy[d] (Azar, Broder, Karlin, Upfal): each ball samples d bins
/// independently and uniformly (with replacement) and joins the least
/// loaded, ties broken uniformly at random among the tied candidates.
/// Max load: m/n + ln ln n / ln d + O(1) (Berenbrink et al. 2006).
/// Allocation time: exactly d probes per ball.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming greedy[d] allocator.
class DChoiceAllocator {
 public:
  /// \throws std::invalid_argument if n == 0 or d == 0.
  DChoiceAllocator(std::uint32_t n, std::uint32_t d);

  /// Place one ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }

 private:
  LoadVector state_;
  std::uint32_t d_;
  std::uint64_t probes_ = 0;
};

/// Batch protocol wrapper: greedy[d].
class DChoiceProtocol final : public Protocol {
 public:
  /// \throws std::invalid_argument if d == 0.
  explicit DChoiceProtocol(std::uint32_t d);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t d_;
};

}  // namespace bbb::core
