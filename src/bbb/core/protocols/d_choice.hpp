#pragma once
/// \file d_choice.hpp
/// greedy[d] (Azar, Broder, Karlin, Upfal): each ball samples d bins
/// independently and uniformly (with replacement) and joins the least
/// loaded, ties broken uniformly at random among the tied candidates.
/// Max load: m/n + ln ln n / ln d + O(1) (Berenbrink et al. 2006).
/// Allocation time: exactly d probes per ball.

#include "bbb/core/batch_kernel.hpp"
#include "bbb/core/probe.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming greedy[d] rule. Under an exclusive engine the uniform-probe
/// path reads the raw word stream ahead and prefetches upcoming candidate
/// bins (bit-identical placements, see core/probe.hpp); for d == 2,
/// place_batch on an eligible compact state runs the wave kernel
/// (core/batch_kernel.hpp — d > 2 interleaves data-dependent reservoir
/// tie draws with the candidate words and stays on the place_one loop).
class DChoiceRule final : public PlacementRule {
 public:
  /// \throws std::invalid_argument if d == 0.
  explicit DChoiceRule(std::uint32_t d);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t d() const noexcept { return d_; }
  [[nodiscard]] bool supports_weights() const noexcept override { return true; }
  void set_engine_exclusive(bool exclusive) noexcept override {
    lookahead_.set_enabled(exclusive);
  }
  [[nodiscard]] const ProbeLookahead* lookahead() const noexcept override {
    return &lookahead_;
  }
  [[nodiscard]] const BatchPlacer* batch_kernel() const noexcept override {
    return &batch_;
  }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;
  void do_place_batch(BinState& state, std::uint64_t count, rng::Engine& gen,
                      std::uint32_t* bins_out) override;

 private:
  std::uint32_t d_;
  ProbeLookahead lookahead_;
  BatchPlacer batch_;
};

/// Batch protocol wrapper: greedy[d].
class DChoiceProtocol final : public Protocol {
 public:
  /// \throws std::invalid_argument if d == 0.
  explicit DChoiceProtocol(std::uint32_t d);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t d_;
};

}  // namespace bbb::core
