#pragma once
/// \file registry.hpp
/// String-spec factory for the one rule vocabulary spanning batch and
/// dynamic execution. A spec is a name plus optional bracketed integer
/// arguments; both factories parse the same grammar:
///
///   * `make_rule(spec, n, m_hint)` builds the streaming decision rule —
///     what the dyn engine, the tracer, and every embedding application
///     consume;
///   * `make_protocol(spec)` builds the batch `Protocol` wrapper whose
///     run() drives the same rule over m fresh balls (bit-for-bit equal
///     to the place_one loop for every rule with batch_equivalent()).
///
/// `Protocol::name()` / `PlacementRule::name()` of every built instance
/// parses back to an equivalent object (round-trip property, tested).
///
/// Recognized specs:
///   one-choice
///   greedy[d]            e.g. greedy[2]
///   left[d]              e.g. left[4]
///   memory[d,k]          e.g. memory[1,1]
///   threshold            = threshold[1]
///   threshold[slack]
///   doubling-threshold[guess]   guess-and-double unknown-m variant (0 = n)
///   adaptive             = adaptive[1]
///   adaptive[slack]
///   adaptive-net         = adaptive-net[1]; bound from the net ball count
///   adaptive-net[slack]
///   adaptive-total       = adaptive-total[1]; explicit total-count variant
///   adaptive-total[slack]
///   stale-adaptive[delta]
///   skewed-adaptive[s*100]   Zipf(s) probe bias, s scaled by 100
///   batched[capacity]
///   self-balancing
///   cuckoo[d,k]          e.g. cuckoo[2,4]
///
/// Any spec may carry a heterogeneous-capacity prefix
///   capacities=c0,c1,...:spec    e.g. capacities=1,2,4,8:greedy[2]
/// the profile is cycled over the run's n bins (bin i gets c_{i mod k}).
/// The probe-based rules one-choice / greedy[d] / left[d] then probe
/// proportionally to capacity and compare normalized loads l_i/c_i; every
/// other rule runs its classic uniform-probe logic over the capacitated
/// state (the uniform-probe baseline on unequal servers).
///
/// A spec may instead carry the sharded-engine prefix
///   shards[t]:spec               e.g. shards[4]:greedy[2]
/// which runs the rule on t worker threads over the SPSC ring mesh of
/// shard/engine.hpp — exactly distribution-equal to the sequential rule
/// (t = 1 is bit-identical). Cannot combine with `capacities=`; t > 1
/// supports one-choice / greedy[d] / left[d].
///
/// The three adaptive spellings are identical on arrivals-only streams;
/// net and total only diverge once departures arrive (see adaptive.hpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Build a batch protocol from a spec string.
/// \throws std::invalid_argument for unknown names or malformed/missing args.
[[nodiscard]] std::unique_ptr<Protocol> make_protocol(const std::string& spec);

/// Build a streaming rule from a spec string for a system of n bins.
/// `m_hint` provisions rules that need the total ball count up-front
/// (threshold's fixed bound); 0 means unknown, which falls back to m = n —
/// i.e. `threshold[c]` with no hint accepts load <= c. All other rules
/// ignore the hint. Rules read capacities off the BinState they are driven
/// against, so a `capacities=` prefix is rejected here: build the matching
/// state + rule pair through make_streaming_allocator (or make_protocol).
/// \throws std::invalid_argument for unknown names, malformed args, or
///         parameters invalid at this n (left[d] with d > n, ...).
[[nodiscard]] std::unique_ptr<PlacementRule> make_rule(const std::string& spec,
                                                       std::uint32_t n,
                                                       std::uint64_t m_hint = 0);

/// Build a rule *and* its matching BinState from a spec that may carry a
/// `capacities=` prefix; the profile is cycled over the n bins. The
/// allocator's name() round-trips the full spec (prefix included).
/// `layout` selects the BinState storage (StateLayout::kCompact for the
/// giant-scale tier; metrics and placements are bit-identical either way,
/// but compact states reject sample_nonempty — see bin_state.hpp).
/// \throws std::invalid_argument as make_rule, or for a malformed prefix.
[[nodiscard]] std::unique_ptr<StreamingAllocator> make_streaming_allocator(
    const std::string& spec, std::uint32_t n, std::uint64_t m_hint = 0,
    StateLayout layout = StateLayout::kWide);

/// All recognized spec shapes, for --help / --list output.
[[nodiscard]] std::vector<std::string> protocol_specs();

}  // namespace bbb::core
