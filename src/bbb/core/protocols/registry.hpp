#pragma once
/// \file registry.hpp
/// String-spec protocol factory so benches and examples can take protocols
/// on the command line. A spec is a name plus optional bracketed integer
/// arguments; `Protocol::name()` of every built protocol parses back to an
/// equivalent protocol (round-trip property, tested).
///
/// Recognized specs:
///   one-choice
///   greedy[d]            e.g. greedy[2]
///   left[d]              e.g. left[4]
///   memory[d,k]          e.g. memory[1,1]
///   threshold            = threshold[1]
///   threshold[slack]
///   doubling-threshold[guess]   guess-and-double unknown-m variant (0 = n)
///   adaptive             = adaptive[1]
///   adaptive[slack]
///   stale-adaptive[delta]
///   skewed-adaptive[s*100]   Zipf(s) probe bias, s scaled by 100
///   batched[capacity]
///   self-balancing
///   cuckoo[d,k]          e.g. cuckoo[2,4]

#include <memory>
#include <string>
#include <vector>

#include "bbb/core/protocol.hpp"

namespace bbb::core {

/// Build a protocol from a spec string.
/// \throws std::invalid_argument for unknown names or malformed/missing args.
[[nodiscard]] std::unique_ptr<Protocol> make_protocol(const std::string& spec);

/// All recognized spec shapes, for --help output.
[[nodiscard]] std::vector<std::string> protocol_specs();

}  // namespace bbb::core
