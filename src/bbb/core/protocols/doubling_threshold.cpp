#include "bbb/core/protocols/doubling_threshold.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

DoublingThresholdRule::DoublingThresholdRule(std::uint32_t n,
                                             std::uint64_t initial_guess)
    : n_(n), initial_guess_(initial_guess),
      guess_(initial_guess == 0 ? n : initial_guess) {
  if (n == 0) {
    throw std::invalid_argument("DoublingThresholdRule: n must be positive");
  }
  bound_ = static_cast<std::uint32_t>(ceil_div(guess_, n));
}

std::string DoublingThresholdRule::name() const {
  return "doubling-threshold[" + std::to_string(initial_guess_) + "]";
}

std::uint32_t DoublingThresholdRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  const std::uint32_t n = state.n();
  // Guess exhausted: double and recompute the bound before placing. The
  // clock is the monotone total placement count, not the net population.
  while (total_placed() >= guess_) {
    guess_ *= 2;
    bound_ = static_cast<std::uint32_t>(ceil_div(guess_, n));
  }
  const std::uint32_t bin = probe_until(
      gen, n, probes_,
      [this, &state](std::uint32_t b) { return state.load(b) <= bound_; });
  state.add_ball(bin);
  return bin;
}

DoublingThresholdProtocol::DoublingThresholdProtocol(std::uint64_t initial_guess)
    : initial_guess_(initial_guess) {}

std::string DoublingThresholdProtocol::name() const {
  return "doubling-threshold[" + std::to_string(initial_guess_) + "]";
}

AllocationResult DoublingThresholdProtocol::run(std::uint64_t m, std::uint32_t n,
                                                rng::Engine& gen) const {
  DoublingThresholdRule rule(n, initial_guess_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
