#include "bbb/core/protocols/doubling_threshold.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

DoublingThresholdAllocator::DoublingThresholdAllocator(std::uint32_t n,
                                                       std::uint64_t initial_guess)
    : state_(n), guess_(initial_guess == 0 ? n : initial_guess) {
  bound_ = static_cast<std::uint32_t>(ceil_div(guess_, n));
}

std::uint32_t DoublingThresholdAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = state_.n();
  // Guess exhausted: double and recompute the bound before placing.
  while (state_.balls() >= guess_) {
    guess_ *= 2;
    bound_ = static_cast<std::uint32_t>(ceil_div(guess_, n));
  }
  const std::uint32_t bin = probe_until(
      gen, n, probes_, [this](std::uint32_t b) { return state_.load(b) <= bound_; });
  state_.add_ball(bin);
  return bin;
}

DoublingThresholdProtocol::DoublingThresholdProtocol(std::uint64_t initial_guess)
    : initial_guess_(initial_guess) {}

std::string DoublingThresholdProtocol::name() const {
  return "doubling-threshold[" + std::to_string(initial_guess_) + "]";
}

AllocationResult DoublingThresholdProtocol::run(std::uint64_t m, std::uint32_t n,
                                                rng::Engine& gen) const {
  validate_run_args(m, n);
  DoublingThresholdAllocator alloc(n, initial_guess_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
