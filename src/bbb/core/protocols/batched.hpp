#pragma once
/// \file batched.hpp
/// Synchronous parallel allocation in the spirit of Lenzen & Wattenhofer
/// (STOC'11), the parallel line of work the paper's introduction surveys:
/// balls and bins act in rounds instead of sequentially.
///
/// Round r: every still-unplaced ball sends requests to k_r bins chosen
/// independently and uniformly at random (k_1 = 1 and k doubles each round,
/// capped at `max_fanout`). Every bin with spare capacity accepts a uniform
/// random subset of its requesters, up to `capacity` total balls; everyone
/// else retries next round. With capacity 2 and m = n this places all balls
/// within log* n + O(1)-ish rounds using O(n) messages, max load 2.
///
/// The protocol cannot place more than capacity * n balls; configurations
/// violating that are rejected up-front.

#include "bbb/core/protocol.hpp"

namespace bbb::core {

/// Batch-only protocol (there is no meaningful one-ball streaming form).
class BatchedProtocol final : public Protocol {
 public:
  struct Params {
    std::uint32_t capacity = 2;     ///< max balls a bin will accept in total
    std::uint32_t max_rounds = 64;  ///< give up after this many rounds
    std::uint32_t max_fanout = 64;  ///< cap on per-ball requests per round
  };

  /// \throws std::invalid_argument if capacity == 0, max_rounds == 0, or
  ///         max_fanout == 0.
  explicit BatchedProtocol(Params params);
  BatchedProtocol() : BatchedProtocol(Params{}) {}

  [[nodiscard]] std::string name() const override;

  /// AllocationResult::rounds is the number of rounds used;
  /// AllocationResult::probes counts every request message;
  /// completed == false if max_rounds elapsed with balls still unplaced
  /// (res.balls then reports how many were placed).
  /// \throws std::invalid_argument if m > capacity * n (impossible).
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace bbb::core
