#pragma once
/// \file batched.hpp
/// Synchronous parallel allocation in the spirit of Lenzen & Wattenhofer
/// (STOC'11), the parallel line of work the paper's introduction surveys:
/// balls and bins act in rounds instead of sequentially.
///
/// Round r: every still-unplaced ball sends requests to k_r bins chosen
/// independently and uniformly at random (k_1 = 1 and k doubles each round,
/// capped at `max_fanout`). Every bin with spare capacity accepts a uniform
/// random subset of its requesters, up to `capacity` total balls; everyone
/// else retries next round. With capacity 2 and m = n this places all balls
/// within log* n + O(1)-ish rounds using O(n) messages, max load 2.
///
/// The protocol cannot place more than capacity * n balls; configurations
/// violating that are rejected up-front.
///
/// Streaming reading (`BatchedRule`): one ball at a time there are no
/// rounds, so the rule keeps the defining ingredient — the hard per-bin
/// `capacity` — and probes uniform bins until one with spare capacity
/// accepts. This is the capacity-bounded retry a serving system would run;
/// departures re-open capacity, and a fully saturated system is detected
/// in O(1) and reported by throwing instead of spinning. Because the batch
/// form is round-synchronous over the whole ball set, batched is the one
/// rule whose `Protocol::run` is *not* the place_one loop
/// (`batch_equivalent() == false`).

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming capacity-bounded rule: accept any probed bin with load <
/// capacity.
class BatchedRule final : public PlacementRule {
 public:
  /// \throws std::invalid_argument if capacity == 0.
  explicit BatchedRule(std::uint32_t capacity);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool batch_equivalent() const noexcept override { return false; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

 protected:
  /// \throws std::logic_error once every bin is at capacity (no departure
  /// has re-opened space — the fixed-capacity deadlock).
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t capacity_;
};

/// Batch protocol: the synchronous LW rounds (see file comment).
class BatchedProtocol final : public Protocol {
 public:
  struct Params {
    std::uint32_t capacity = 2;     ///< max balls a bin will accept in total
    std::uint32_t max_rounds = 64;  ///< give up after this many rounds
    std::uint32_t max_fanout = 64;  ///< cap on per-ball requests per round
  };

  /// \throws std::invalid_argument if capacity == 0, max_rounds == 0, or
  ///         max_fanout == 0.
  explicit BatchedProtocol(Params params);
  BatchedProtocol() : BatchedProtocol(Params{}) {}

  [[nodiscard]] std::string name() const override;

  /// AllocationResult::rounds is the number of rounds used;
  /// AllocationResult::probes counts every request message;
  /// completed == false if max_rounds elapsed with balls still unplaced
  /// (res.balls then reports how many were placed).
  /// \throws std::invalid_argument if m > capacity * n (impossible).
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace bbb::core
