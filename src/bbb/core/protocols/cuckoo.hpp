#pragma once
/// \file cuckoo.hpp
/// d-ary cuckoo hashing with buckets of size k (related-work §1 of the
/// paper): m items, each with d uniformly random candidate buckets out of
/// n, buckets hold at most k items. Insertion places into the first
/// candidate with space; if all candidates are full, a random-walk eviction
/// kicks a random resident of a random candidate bucket and re-inserts it.
///
/// This is the reallocation-based end of the design space the paper
/// contrasts against: perfect bucket bounds, but insertions can cascade
/// (and fail outright above the load threshold — see Dietzfelbinger et al.
/// for the exact thresholds).
///
/// As a streaming rule the eviction walk relocates *other* balls after
/// they were placed, so ball identity is not stable
/// (`stable_ball_identity() == false`): the dyn engine selects departure
/// victims by bin occupancy, and `on_remove` retires one resident of that
/// bucket. An insertion that exhausts its eviction budget parks the last
/// displaced item (the net count does not grow) and clears `completed()`.

#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming d-ary cuckoo rule. Items are dense ids assigned by insert
/// order; the bucket occupancies live in the shared BinState.
class CuckooRule final : public PlacementRule {
 public:
  struct Params {
    std::uint32_t d = 2;            ///< candidate buckets per item
    std::uint32_t bucket_size = 4;  ///< k, items a bucket can hold
    std::uint32_t max_kicks = 500;  ///< eviction budget per insert
  };

  /// \throws std::invalid_argument if n == 0, d == 0, bucket_size == 0,
  ///         max_kicks == 0, or d > n.
  CuckooRule(std::uint32_t n, Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool stable_ball_identity() const noexcept override { return false; }
  [[nodiscard]] std::uint32_t bound_n() const noexcept override {
    return static_cast<std::uint32_t>(residents_.size());
  }

  /// Items that failed to place (eviction budget exhausted).
  [[nodiscard]] std::uint64_t stash() const noexcept { return stash_; }
  /// Evictions performed so far (== reallocations()).
  [[nodiscard]] std::uint64_t moves() const noexcept { return reallocations_; }
  /// High-water mark of simultaneously tracked items. Departed and parked
  /// item ids are recycled, so long steady-state churn runs stay O(max
  /// population) in memory, not O(total insertions) — tested in
  /// tests/dyn/allocator_test.cpp.
  [[nodiscard]] std::uint64_t tracked_items() const noexcept {
    return choices_.size() / params_.d;
  }

  void on_remove(BinState& state, std::uint32_t bin) override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 protected:
  /// Insert one item. Returns the bucket the *arriving* item ended in; on
  /// failure (budget exhausted) the net ball count is unchanged, the last
  /// displaced item is parked, completed() turns false, and the returned
  /// bucket is where the arriving item last rested (the parked item can be
  /// the arriving one, in which case it is in no bucket at all).
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  [[nodiscard]] std::uint32_t choice(std::uint64_t item,
                                     std::uint32_t j) const noexcept {
    return choices_[item * params_.d + j];
  }

  Params params_;
  std::vector<std::vector<std::uint64_t>> residents_;  // item ids per bucket
  std::vector<std::uint32_t> choices_;                 // d per item, flattened
  std::vector<std::uint64_t> free_ids_;                // recycled item ids
  std::uint64_t stash_ = 0;
};

/// Batch protocol wrapper: inserts m items; completed == false if any
/// insertion failed. reallocations reports evictions.
class CuckooProtocol final : public Protocol {
 public:
  explicit CuckooProtocol(CuckooRule::Params params);
  CuckooProtocol() : CuckooProtocol(CuckooRule::Params{}) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  CuckooRule::Params params_;
};

}  // namespace bbb::core
