#pragma once
/// \file cuckoo.hpp
/// d-ary cuckoo hashing with buckets of size k (related-work §1 of the
/// paper): m items, each with d uniformly random candidate buckets out of
/// n, buckets hold at most k items. Insertion places into the first
/// candidate with space; if all candidates are full, a random-walk eviction
/// kicks a random resident of a random candidate bucket and re-inserts it.
///
/// This is the reallocation-based end of the design space the paper
/// contrasts against: perfect bucket bounds, but insertions can cascade
/// (and fail outright above the load threshold — see Dietzfelbinger et al.
/// for the exact thresholds).

#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming cuckoo table. Items are dense ids assigned by insert order.
class CuckooTable {
 public:
  struct Params {
    std::uint32_t d = 2;           ///< candidate buckets per item
    std::uint32_t bucket_size = 4; ///< k, items a bucket can hold
    std::uint32_t max_kicks = 500; ///< eviction budget per insert
  };

  /// \throws std::invalid_argument if n == 0, d == 0, bucket_size == 0,
  ///         max_kicks == 0, or d > n.
  CuckooTable(std::uint32_t n, Params params);

  /// Insert one item. Returns true on success; false if the eviction budget
  /// was exhausted (the table is left consistent: the failed item and every
  /// displaced item are all stored — failure means the *last* displaced
  /// item could not be placed and is parked in `stash()`).
  bool insert(rng::Engine& gen);

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(bucket_len_.size());
  }
  [[nodiscard]] std::uint64_t items() const noexcept { return items_; }
  /// Bucket occupancy (loads in balls-into-bins terms).
  [[nodiscard]] const std::vector<std::uint32_t>& loads() const noexcept {
    return bucket_len_;
  }
  /// Items that failed to place (insert() returned false).
  [[nodiscard]] std::uint64_t stash() const noexcept { return stash_; }
  /// Random bucket choices drawn so far.
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// Evictions performed so far.
  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  /// Occupied fraction m / (n * k).
  [[nodiscard]] double load_factor() const noexcept;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  [[nodiscard]] std::uint32_t choice(std::uint64_t item, std::uint32_t j) const noexcept {
    return choices_[item * params_.d + j];
  }

  Params params_;
  std::vector<std::uint32_t> bucket_len_;              // items per bucket
  std::vector<std::vector<std::uint64_t>> residents_;  // item ids per bucket
  std::vector<std::uint32_t> choices_;                 // d per item, flattened
  std::uint64_t items_ = 0;
  std::uint64_t stash_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t moves_ = 0;
};

/// Batch protocol wrapper: inserts m items; completed == false if any
/// insertion failed. reallocations reports evictions.
class CuckooProtocol final : public Protocol {
 public:
  explicit CuckooProtocol(CuckooTable::Params params);
  CuckooProtocol() : CuckooProtocol(CuckooTable::Params{}) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  CuckooTable::Params params_;
};

}  // namespace bbb::core
