#include "bbb/core/protocols/self_balancing.hpp"

#include <stdexcept>
#include <vector>

#include "bbb/rng/engine.hpp"

namespace bbb::core {

SelfBalancingProtocol::SelfBalancingProtocol(std::uint32_t max_passes)
    : max_passes_(max_passes) {
  if (max_passes == 0) {
    throw std::invalid_argument("SelfBalancingProtocol: max_passes must be positive");
  }
}

AllocationResult SelfBalancingProtocol::run(std::uint64_t m, std::uint32_t n,
                                            rng::Engine& gen) const {
  validate_run_args(m, n);
  AllocationResult res;
  res.loads.assign(n, 0);
  if (m == 0) return res;

  // Phase 1: greedy[2], remembering both choices of every ball.
  std::vector<std::uint32_t> choice_a(m), choice_b(m);
  std::vector<std::uint32_t> current(m);  // which bin the ball sits in
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto a = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const auto b = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    res.probes += 2;
    choice_a[i] = a;
    choice_b[i] = b;
    std::uint32_t pick;
    if (res.loads[a] < res.loads[b]) {
      pick = a;
    } else if (res.loads[b] < res.loads[a]) {
      pick = b;
    } else {
      pick = rng::uniform_below(gen, 2) == 0 ? a : b;
    }
    current[i] = pick;
    ++res.loads[pick];
  }
  res.balls = m;

  // Phase 2: self-balancing sweeps. A move is made when the alternative
  // choice is at least 2 lighter, so every move strictly decreases
  // max(load_src, load_dst) — the passes monotonically descend and must
  // reach a fixpoint.
  for (std::uint32_t pass = 1; pass <= max_passes_; ++pass) {
    res.rounds = pass;
    bool moved = false;
    for (std::uint64_t i = 0; i < m; ++i) {
      const std::uint32_t cur = current[i];
      const std::uint32_t alt = choice_a[i] == cur ? choice_b[i] : choice_a[i];
      if (res.loads[alt] + 1 < res.loads[cur]) {
        --res.loads[cur];
        ++res.loads[alt];
        current[i] = alt;
        ++res.reallocations;
        moved = true;
      }
    }
    if (!moved) {
      res.completed = true;
      return res;
    }
  }
  res.completed = false;  // max_passes hit before fixpoint
  return res;
}

}  // namespace bbb::core
