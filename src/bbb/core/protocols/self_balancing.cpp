#include "bbb/core/protocols/self_balancing.hpp"

#include <stdexcept>

#include "bbb/rng/engine.hpp"

namespace bbb::core {

SelfBalancingRule::SelfBalancingRule(std::uint32_t max_passes)
    : max_passes_(max_passes) {
  if (max_passes == 0) {
    throw std::invalid_argument("SelfBalancingRule: max_passes must be positive");
  }
}

std::uint32_t SelfBalancingRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  if (residents_.size() != state.n()) residents_.resize(state.n());
  // greedy[2], remembering both choices of this ball. The draw order (a,
  // b, then one tie-break word) matches the original CRS phase 1 so the
  // batch results are bit-identical to the pre-refactor protocol.
  const auto a = static_cast<std::uint32_t>(rng::uniform_below(gen, state.n()));
  const auto b = static_cast<std::uint32_t>(rng::uniform_below(gen, state.n()));
  probes_ += 2;
  std::uint32_t pick;
  if (state.load(a) < state.load(b)) {
    pick = a;
  } else if (state.load(b) < state.load(a)) {
    pick = b;
  } else {
    pick = rng::uniform_below(gen, 2) == 0 ? a : b;
  }
  std::uint64_t ball;
  if (free_slots_.empty()) {
    ball = choice_a_.size();
    choice_a_.push_back(a);
    choice_b_.push_back(b);
    current_.push_back(pick);
    alive_.push_back(1);
  } else {
    ball = free_slots_.back();
    free_slots_.pop_back();
    choice_a_[ball] = a;
    choice_b_[ball] = b;
    current_[ball] = pick;
    alive_[ball] = 1;
  }
  residents_[pick].push_back(ball);
  state.add_ball(pick);
  return pick;
}

void SelfBalancingRule::on_remove(BinState& /*state*/, std::uint32_t bin) {
  // Retire the most recently placed live ball of that bin and recycle its
  // slot (batch runs never remove, so the sweep order there is untouched).
  if (residents_.size() <= bin || residents_[bin].empty()) return;
  const std::uint64_t ball = residents_[bin].back();
  residents_[bin].pop_back();
  alive_[ball] = 0;
  free_slots_.push_back(ball);
}

void SelfBalancingRule::finalize(BinState& state, rng::Engine& /*gen*/) {
  if (state.balls() == 0) return;  // nothing to balance; rounds stays 0
  // Self-balancing sweeps. A move is made when the alternative choice is
  // at least 2 lighter, so every move strictly decreases
  // max(load_src, load_dst) — the passes monotonically descend and must
  // reach a fixpoint.
  for (std::uint32_t pass = 1; pass <= max_passes_; ++pass) {
    rounds_ = pass;
    bool moved = false;
    for (std::uint64_t i = 0; i < current_.size(); ++i) {
      if (!alive_[i]) continue;
      const std::uint32_t cur = current_[i];
      const std::uint32_t alt = choice_a_[i] == cur ? choice_b_[i] : choice_a_[i];
      if (state.load(alt) + 1 < state.load(cur)) {
        state.remove_ball(cur);
        state.add_ball(alt);
        current_[i] = alt;
        ++reallocations_;
        moved = true;
      }
    }
    if (!moved) return;
  }
  completed_ = false;  // max_passes hit before fixpoint
}

SelfBalancingProtocol::SelfBalancingProtocol(std::uint32_t max_passes)
    : max_passes_(max_passes) {
  if (max_passes == 0) {
    throw std::invalid_argument("SelfBalancingProtocol: max_passes must be positive");
  }
}

AllocationResult SelfBalancingProtocol::run(std::uint64_t m, std::uint32_t n,
                                            rng::Engine& gen) const {
  SelfBalancingRule rule(max_passes_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
