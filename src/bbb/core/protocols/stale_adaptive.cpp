#include "bbb/core/protocols/stale_adaptive.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

StaleAdaptiveRule::StaleAdaptiveRule(std::uint32_t n, std::uint32_t delta)
    : n_(n), delta_(delta) {
  if (n == 0) throw std::invalid_argument("StaleAdaptiveRule: n must be positive");
  if (delta == 0) {
    throw std::invalid_argument("StaleAdaptiveRule: delta must be positive");
  }
  if (delta > n) {
    throw std::invalid_argument(
        "StaleAdaptiveRule: delta must be <= n (else the stale bound can "
        "lag more than one stage and termination is no longer guaranteed)");
  }
}

std::string StaleAdaptiveRule::name() const {
  return "stale-adaptive[" + std::to_string(delta_) + "]";
}

std::uint32_t StaleAdaptiveRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  const std::uint32_t n = state.n();
  const std::uint32_t bin = probe_until(
      gen, n, probes_,
      [this, &state](std::uint32_t b) { return state.load(b) <= bound_; });
  state.add_ball(bin);
  // total_placed() still counts the previous placements only (the wrapper
  // increments after do_place returns), so the ball just placed is number
  // total_placed() + 1 — the monotone broadcast clock.
  const std::uint64_t placed = total_placed() + 1;
  if (placed - published_ >= delta_) {
    published_ = placed;
    // Bound for the next ball under the published count p:
    // ceil((p+1)/n) = p/n + 1 in integer arithmetic.
    bound_ = static_cast<std::uint32_t>(published_ / n) + 1;
  }
  return bin;
}

StaleAdaptiveProtocol::StaleAdaptiveProtocol(std::uint32_t delta) : delta_(delta) {
  if (delta == 0) {
    throw std::invalid_argument("StaleAdaptiveProtocol: delta must be positive");
  }
}

std::string StaleAdaptiveProtocol::name() const {
  return "stale-adaptive[" + std::to_string(delta_) + "]";
}

AllocationResult StaleAdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                            rng::Engine& gen) const {
  validate_run_args(m, n);
  StaleAdaptiveRule rule(n, delta_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
