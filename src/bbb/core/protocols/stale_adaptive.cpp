#include "bbb/core/protocols/stale_adaptive.hpp"

#include <stdexcept>

#include "bbb/core/probe.hpp"

namespace bbb::core {

StaleAdaptiveAllocator::StaleAdaptiveAllocator(std::uint32_t n, std::uint32_t delta)
    : state_(n), delta_(delta) {
  if (delta == 0) {
    throw std::invalid_argument("StaleAdaptiveAllocator: delta must be positive");
  }
  if (delta > n) {
    throw std::invalid_argument(
        "StaleAdaptiveAllocator: delta must be <= n (else the stale bound can "
        "lag more than one stage and termination is no longer guaranteed)");
  }
}

std::uint32_t StaleAdaptiveAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = state_.n();
  const std::uint32_t bin = probe_until(
      gen, n, probes_, [this](std::uint32_t b) { return state_.load(b) <= bound_; });
  state_.add_ball(bin);
  if (state_.balls() - published_ >= delta_) {
    published_ = state_.balls();
    // Bound for the next ball under the published count p:
    // ceil((p+1)/n) = p/n + 1 in integer arithmetic.
    bound_ = static_cast<std::uint32_t>(published_ / n) + 1;
  }
  return bin;
}

StaleAdaptiveProtocol::StaleAdaptiveProtocol(std::uint32_t delta) : delta_(delta) {
  if (delta == 0) {
    throw std::invalid_argument("StaleAdaptiveProtocol: delta must be positive");
  }
}

std::string StaleAdaptiveProtocol::name() const {
  return "stale-adaptive[" + std::to_string(delta_) + "]";
}

AllocationResult StaleAdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                            rng::Engine& gen) const {
  validate_run_args(m, n);
  StaleAdaptiveAllocator alloc(n, delta_);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
