#pragma once
/// \file memory_dk.hpp
/// The (d,k)-memory protocol (Mitzenmacher, Prabhakar, Shah 2002): each ball
/// examines d fresh uniform bins plus the k best bins remembered from the
/// previous ball, joins the least loaded of the d+k, and the k least loaded
/// of the candidate set (after placement) are remembered for the next ball.
/// For d = k = 1 and m = n the max load is ln ln n / (2 ln phi_2) + O(1),
/// matching Vöcking's lower bound — with only d probes of *fresh* randomness
/// per ball, so allocation time Theta(m) for constant d.
///
/// The memory cache is the canonical example of *rule-local placement
/// state*: it remembers bin ids, not balls, so it survives departures
/// unchanged (the loads are re-read from the BinState at each decision).

#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming (d,k)-memory rule.
class MemoryDKRule final : public PlacementRule {
 public:
  /// \throws std::invalid_argument if d == 0 or k == 0.
  MemoryDKRule(std::uint32_t d, std::uint32_t k);

  [[nodiscard]] std::string name() const override;
  /// Currently remembered bins (size <= k; empty before the first ball).
  [[nodiscard]] const std::vector<std::uint32_t>& memory() const noexcept {
    return memory_;
  }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t d_;
  std::uint32_t k_;
  std::vector<std::uint32_t> memory_;
  std::vector<std::uint32_t> candidates_;  // scratch, avoids per-ball allocs
};

/// Batch protocol wrapper: memory(d,k).
class MemoryDKProtocol final : public Protocol {
 public:
  /// \throws std::invalid_argument if d == 0 or k == 0.
  MemoryDKProtocol(std::uint32_t d, std::uint32_t k);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t d_;
  std::uint32_t k_;
};

}  // namespace bbb::core
