#include "bbb/core/protocols/cuckoo.hpp"

#include <algorithm>
#include <stdexcept>

namespace bbb::core {

CuckooTable::CuckooTable(std::uint32_t n, Params params) : params_(params) {
  if (n == 0) throw std::invalid_argument("CuckooTable: n must be positive");
  if (params_.d == 0 || params_.bucket_size == 0 || params_.max_kicks == 0) {
    throw std::invalid_argument("CuckooTable: d/bucket_size/max_kicks must be positive");
  }
  if (params_.d > n) throw std::invalid_argument("CuckooTable: d must be <= n");
  bucket_len_.assign(n, 0);
  residents_.resize(n);
}

double CuckooTable::load_factor() const noexcept {
  return static_cast<double>(items_) /
         (static_cast<double>(n()) * static_cast<double>(params_.bucket_size));
}

bool CuckooTable::insert(rng::Engine& gen) {
  const std::uint64_t id = items_;
  // Draw and remember this item's d candidate buckets (its "hash values").
  for (std::uint32_t j = 0; j < params_.d; ++j) {
    choices_.push_back(static_cast<std::uint32_t>(rng::uniform_below(gen, n())));
    ++probes_;
  }
  ++items_;

  std::uint64_t wanderer = id;
  for (std::uint32_t kick = 0; kick <= params_.max_kicks; ++kick) {
    // Any candidate with space takes the wanderer.
    bool placed = false;
    for (std::uint32_t j = 0; j < params_.d; ++j) {
      const std::uint32_t b = choice(wanderer, j);
      if (bucket_len_[b] < params_.bucket_size) {
        residents_[b].push_back(wanderer);
        ++bucket_len_[b];
        placed = true;
        break;
      }
    }
    if (placed) return true;
    if (kick == params_.max_kicks) break;

    // Random walk: evict a random resident of a random candidate bucket.
    const auto jr = static_cast<std::uint32_t>(rng::uniform_below(gen, params_.d));
    const std::uint32_t b = choice(wanderer, jr);
    auto& bucket = residents_[b];
    const std::size_t victim_slot = rng::uniform_below(gen, bucket.size());
    std::swap(bucket[victim_slot], bucket.back());
    const std::uint64_t victim = bucket.back();
    bucket.back() = wanderer;  // wanderer takes the victim's slot
    wanderer = victim;
    ++moves_;
  }
  // Budget exhausted: the current wanderer has nowhere to go. Park it.
  ++stash_;
  return false;
}

CuckooProtocol::CuckooProtocol(CuckooTable::Params params) : params_(params) {
  if (params_.d == 0 || params_.bucket_size == 0 || params_.max_kicks == 0) {
    throw std::invalid_argument(
        "CuckooProtocol: d/bucket_size/max_kicks must be positive");
  }
}

std::string CuckooProtocol::name() const {
  return "cuckoo[" + std::to_string(params_.d) + "," +
         std::to_string(params_.bucket_size) + "]";
}

AllocationResult CuckooProtocol::run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const {
  validate_run_args(m, n);
  CuckooTable table(n, params_);
  bool all_ok = true;
  for (std::uint64_t i = 0; i < m; ++i) {
    all_ok = table.insert(gen) && all_ok;
  }
  AllocationResult res;
  res.loads = table.loads();
  res.balls = m - table.stash();
  res.probes = table.probes();
  res.reallocations = table.moves();
  res.completed = all_ok;
  return res;
}

}  // namespace bbb::core
