#include "bbb/core/protocols/cuckoo.hpp"

#include <stdexcept>

namespace bbb::core {

CuckooRule::CuckooRule(std::uint32_t n, Params params) : params_(params) {
  if (n == 0) throw std::invalid_argument("CuckooRule: n must be positive");
  if (params_.d == 0 || params_.bucket_size == 0 || params_.max_kicks == 0) {
    throw std::invalid_argument("CuckooRule: d/bucket_size/max_kicks must be positive");
  }
  if (params_.d > n) throw std::invalid_argument("CuckooRule: d must be <= n");
  residents_.resize(n);
}

std::string CuckooRule::name() const {
  return "cuckoo[" + std::to_string(params_.d) + "," +
         std::to_string(params_.bucket_size) + "]";
}

std::uint32_t CuckooRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  // Reuse the id of a departed/parked item when one is available, so the
  // per-item choice table stays O(max population) under churn instead of
  // growing with every insertion ever made.
  std::uint64_t id;
  if (free_ids_.empty()) {
    id = choices_.size() / params_.d;
    choices_.resize(choices_.size() + params_.d);
  } else {
    id = free_ids_.back();
    free_ids_.pop_back();
  }
  // Draw and remember this item's d candidate buckets (its "hash values").
  for (std::uint32_t j = 0; j < params_.d; ++j) {
    choices_[id * params_.d + j] =
        static_cast<std::uint32_t>(rng::uniform_below(gen, state.n()));
    ++probes_;
  }

  // Track where the *arriving* item rests: it settles wherever it lands
  // whenever it is the wanderer (directly, or by taking a victim's slot),
  // and a later kick of this same walk can revisit its bucket and evict
  // it again — so the position is updated every time wanderer == id.
  std::uint32_t arrival_bin = choice(id, 0);
  std::uint64_t wanderer = id;
  for (std::uint32_t kick = 0; kick <= params_.max_kicks; ++kick) {
    // Any candidate with space takes the wanderer.
    bool placed = false;
    for (std::uint32_t j = 0; j < params_.d; ++j) {
      const std::uint32_t b = choice(wanderer, j);
      if (state.load(b) < params_.bucket_size) {
        residents_[b].push_back(wanderer);
        state.add_ball(b);
        if (wanderer == id) arrival_bin = b;
        placed = true;
        break;
      }
    }
    if (placed) return arrival_bin;
    if (kick == params_.max_kicks) break;

    // Random walk: evict a random resident of a random candidate bucket.
    // The bucket's occupancy is unchanged (wanderer in, victim out), so
    // the BinState needs no update here.
    const auto jr = static_cast<std::uint32_t>(rng::uniform_below(gen, params_.d));
    const std::uint32_t b = choice(wanderer, jr);
    auto& bucket = residents_[b];
    const std::size_t victim_slot = rng::uniform_below(gen, bucket.size());
    std::swap(bucket[victim_slot], bucket.back());
    const std::uint64_t victim = bucket.back();
    bucket.back() = wanderer;  // wanderer takes the victim's slot
    if (wanderer == id) arrival_bin = b;
    wanderer = victim;
    ++reallocations_;
  }
  // Budget exhausted: the current wanderer has nowhere to go. Park it —
  // the arriving item is stored but another item fell out, so the net
  // count is unchanged and no ball is added to the state. Its id slot is
  // free for the next arrival.
  ++stash_;
  completed_ = false;
  free_ids_.push_back(wanderer);
  return arrival_bin;
}

void CuckooRule::on_remove(BinState& /*state*/, std::uint32_t bin) {
  // A departure drained one item of this bucket; retire the most recent
  // resident (items are interchangeable at the occupancy level) and
  // recycle its id.
  if (!residents_[bin].empty()) {
    free_ids_.push_back(residents_[bin].back());
    residents_[bin].pop_back();
  }
}

CuckooProtocol::CuckooProtocol(CuckooRule::Params params) : params_(params) {
  if (params_.d == 0 || params_.bucket_size == 0 || params_.max_kicks == 0) {
    throw std::invalid_argument(
        "CuckooProtocol: d/bucket_size/max_kicks must be positive");
  }
}

std::string CuckooProtocol::name() const {
  return "cuckoo[" + std::to_string(params_.d) + "," +
         std::to_string(params_.bucket_size) + "]";
}

AllocationResult CuckooProtocol::run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const {
  validate_run_args(m, n);
  CuckooRule rule(n, params_);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
