#include "bbb/core/protocols/skewed_adaptive.hpp"

namespace bbb::core {

SkewedAdaptiveAllocator::SkewedAdaptiveAllocator(std::uint32_t n, double s)
    : state_(n), zipf_(n, s) {}

std::uint32_t SkewedAdaptiveAllocator::place(rng::Engine& gen) {
  const std::uint32_t n = state_.n();
  for (;;) {
    const std::uint32_t bin = zipf_(gen);
    ++probes_;
    if (state_.load(bin) <= bound_) {
      state_.add_ball(bin);
      if (++stage_fill_ == n) {
        stage_fill_ = 0;
        ++bound_;
      }
      return bin;
    }
  }
}

SkewedAdaptiveProtocol::SkewedAdaptiveProtocol(std::uint32_t s_times_100)
    : s_times_100_(s_times_100) {}

std::string SkewedAdaptiveProtocol::name() const {
  return "skewed-adaptive[" + std::to_string(s_times_100_) + "]";
}

AllocationResult SkewedAdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                             rng::Engine& gen) const {
  validate_run_args(m, n);
  SkewedAdaptiveAllocator alloc(n, static_cast<double>(s_times_100_) / 100.0);
  for (std::uint64_t i = 0; i < m; ++i) alloc.place(gen);
  AllocationResult res;
  res.loads = alloc.state().loads();
  res.balls = m;
  res.probes = alloc.probes();
  return res;
}

}  // namespace bbb::core
