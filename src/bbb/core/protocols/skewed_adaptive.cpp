#include "bbb/core/protocols/skewed_adaptive.hpp"

namespace bbb::core {

SkewedAdaptiveRule::SkewedAdaptiveRule(std::uint32_t n, double s)
    : n_(n), zipf_(n, s) {}

std::string SkewedAdaptiveRule::name() const {
  // The registry spec carries s scaled by 100; reconstruct it for the
  // round-trip (s() values come from integer/100 so this is exact).
  const auto s100 = static_cast<std::uint32_t>(zipf_.s() * 100.0 + 0.5);
  return "skewed-adaptive[" + std::to_string(s100) + "]";
}

std::uint32_t SkewedAdaptiveRule::do_place(BinState& state, std::uint32_t /*weight*/,
                                    rng::Engine& gen) {
  const std::uint32_t n = state.n();
  for (;;) {
    const std::uint32_t bin = zipf_(gen);
    ++probes_;
    if (state.load(bin) <= bound_) {
      state.add_ball(bin);
      if (++stage_fill_ == n) {
        stage_fill_ = 0;
        ++bound_;
      }
      return bin;
    }
  }
}

SkewedAdaptiveProtocol::SkewedAdaptiveProtocol(std::uint32_t s_times_100)
    : s_times_100_(s_times_100) {}

std::string SkewedAdaptiveProtocol::name() const {
  return "skewed-adaptive[" + std::to_string(s_times_100_) + "]";
}

AllocationResult SkewedAdaptiveProtocol::run(std::uint64_t m, std::uint32_t n,
                                             rng::Engine& gen) const {
  validate_run_args(m, n);
  SkewedAdaptiveRule rule(n, static_cast<double>(s_times_100_) / 100.0);
  return run_rule(rule, m, n, gen);
}

}  // namespace bbb::core
