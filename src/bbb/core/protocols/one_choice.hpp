#pragma once
/// \file one_choice.hpp
/// The classical single-choice process: each ball goes to one uniformly
/// random bin. Baseline for every comparison — max load is
/// log n / log log n * (1 + o(1)) at m = n (Raab & Steger) and
/// m/n + Theta(sqrt((m/n) log n)) in the heavily loaded case.

#include "bbb/core/batch_kernel.hpp"
#include "bbb/core/probe.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming single-choice rule (stateless beyond the base counters and
/// the probe lookahead). Probes uniformly on uniform-capacity states and
/// proportionally to c_i on heterogeneous ones; weight-w chains commit
/// atomically. Under an exclusive engine the uniform probe reads the raw
/// word stream ahead and prefetches upcoming bins (bit-identical
/// placements, see core/probe.hpp); place_batch on an eligible compact
/// state runs the wave kernel (core/batch_kernel.hpp).
class OneChoiceRule final : public PlacementRule {
 public:
  [[nodiscard]] std::string name() const override { return "one-choice"; }
  [[nodiscard]] bool supports_weights() const noexcept override { return true; }
  void set_engine_exclusive(bool exclusive) noexcept override {
    lookahead_.set_enabled(exclusive);
  }
  [[nodiscard]] const ProbeLookahead* lookahead() const noexcept override {
    return &lookahead_;
  }
  [[nodiscard]] const BatchPlacer* batch_kernel() const noexcept override {
    return &batch_;
  }

 protected:
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;
  void do_place_batch(BinState& state, std::uint64_t count, rng::Engine& gen,
                      std::uint32_t* bins_out) override;

 private:
  ProbeLookahead lookahead_;
  BatchPlacer batch_;
};

/// Batch protocol wrapper.
class OneChoiceProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "one-choice"; }
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;
};

}  // namespace bbb::core
