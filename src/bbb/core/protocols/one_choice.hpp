#pragma once
/// \file one_choice.hpp
/// The classical single-choice process: each ball goes to one uniformly
/// random bin. Baseline for every comparison — max load is
/// log n / log log n * (1 + o(1)) at m = n (Raab & Steger) and
/// m/n + Theta(sqrt((m/n) log n)) in the heavily loaded case.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming single-choice allocator.
class OneChoiceAllocator {
 public:
  /// \throws std::invalid_argument if n == 0.
  explicit OneChoiceAllocator(std::uint32_t n) : state_(n) {}

  /// Place one ball; returns the chosen bin.
  std::uint32_t place(rng::Engine& gen) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, state_.n()));
    state_.add_ball(bin);
    ++probes_;
    return bin;
  }

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }

 private:
  LoadVector state_;
  std::uint64_t probes_ = 0;
};

/// Batch protocol wrapper.
class OneChoiceProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "one-choice"; }
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;
};

}  // namespace bbb::core
