#pragma once
/// \file threshold.hpp
/// The threshold protocol (Czumaj & Stemann 2001; Figure 2 of the paper):
/// every ball repeatedly samples uniform bins until it finds one with load
/// strictly less than m/n + 1, and is placed there. The max load is
/// ceil(m/n) + 1 by construction; Theorem 4.1 of the paper shows the
/// allocation time is m + O(m^{3/4} n^{1/4}) w.h.p. for every m >= n.
///
/// Integer form of the acceptance test: for integer loads,
///   load < m/n + 1   <=>   load <= ceil(m/n),
/// so the hot loop is a single integer comparison. A generalized integer
/// `slack` c replaces the test with load <= ceil(m/n) + (c-1):
///   c = 1 is the paper's protocol; c = 0 demands a *perfectly* tight
///   allocation (max load ceil(m/n)) at coupon-collector cost; larger c
///   trades balance for fewer probes.

#include "bbb/core/load_vector.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Streaming threshold allocator. Needs the total ball count m up-front
/// (that is the protocol's defining limitation vs. adaptive).
class ThresholdAllocator {
 public:
  /// \param n bins; \param m total balls that will be placed;
  /// \param slack integer slack c (see file comment), default 1 (paper).
  /// \throws std::invalid_argument if n == 0, or if slack == 0 with m == 0.
  ThresholdAllocator(std::uint32_t n, std::uint64_t m, std::uint32_t slack = 1);

  /// Place one ball; returns the chosen bin. Loops until an acceptable bin
  /// is sampled; each sample counts one probe.
  /// \throws std::logic_error if all m balls were already placed (the
  ///         acceptance bound guarantees termination only for the first m).
  std::uint32_t place(rng::Engine& gen);

  [[nodiscard]] const LoadVector& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  /// The integer acceptance bound: a bin is accepted iff load <= bound.
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }
  [[nodiscard]] std::uint64_t m() const noexcept { return m_; }

 private:
  LoadVector state_;
  std::uint64_t m_;
  std::uint32_t bound_;
  std::uint64_t probes_ = 0;
};

/// Batch protocol wrapper: threshold (slack 1 = the paper's Figure 2).
class ThresholdProtocol final : public Protocol {
 public:
  explicit ThresholdProtocol(std::uint32_t slack = 1);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t slack_;
};

}  // namespace bbb::core
