#pragma once
/// \file threshold.hpp
/// The threshold protocol (Czumaj & Stemann 2001; Figure 2 of the paper):
/// every ball repeatedly samples uniform bins until it finds one with load
/// strictly less than m/n + 1, and is placed there. The max load is
/// ceil(m/n) + 1 by construction; Theorem 4.1 of the paper shows the
/// allocation time is m + O(m^{3/4} n^{1/4}) w.h.p. for every m >= n.
///
/// Integer form of the acceptance test: for integer loads,
///   load < m/n + 1   <=>   load <= ceil(m/n),
/// so the hot loop is a single integer comparison. A generalized integer
/// `slack` c replaces the test with load <= ceil(m/n) + (c-1):
///   c = 1 is the paper's protocol; c = 0 demands a *perfectly* tight
///   allocation (max load ceil(m/n)) at coupon-collector cost; larger c
///   trades balance for fewer probes.
///
/// The rule needs the total ball count m up-front — that is the
/// protocol's defining limitation vs. adaptive. Under the dyn engine the
/// registry supplies an *m hint* (target net population; defaults to n
/// when unknown), the bound stays fixed, and departures can re-open
/// capacity; if the population ever exceeds what the fixed bound admits,
/// place_one detects the deadlock in O(1) and throws instead of spinning.

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"

namespace bbb::core {

/// Streaming threshold rule with the fixed acceptance bound derived from
/// (m, n, slack).
class ThresholdRule final : public PlacementRule {
 public:
  /// \param n bins; \param m total balls the bound is provisioned for;
  /// \param slack integer slack c (see file comment), default 1 (paper).
  /// \throws std::invalid_argument if n == 0, or if slack == 0 with m == 0.
  ThresholdRule(std::uint32_t n, std::uint64_t m, std::uint32_t slack = 1);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t bound_n() const noexcept override { return n_; }
  /// The integer acceptance bound: a bin is accepted iff load <= bound.
  [[nodiscard]] std::uint32_t accept_bound() const noexcept { return bound_; }
  [[nodiscard]] std::uint64_t m() const noexcept { return m_; }

 protected:
  /// \throws std::logic_error if every bin already exceeds the bound (the
  /// fixed bound cannot admit another ball — the deadlock adaptive avoids).
  std::uint32_t do_place(BinState& state, std::uint32_t weight,
                         rng::Engine& gen) override;

 private:
  std::uint32_t n_;
  std::uint64_t m_;
  std::uint32_t slack_;
  std::uint32_t bound_;
};

/// Batch protocol wrapper: threshold (slack 1 = the paper's Figure 2).
class ThresholdProtocol final : public Protocol {
 public:
  explicit ThresholdProtocol(std::uint32_t slack = 1);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] AllocationResult run(std::uint64_t m, std::uint32_t n,
                                     rng::Engine& gen) const override;

 private:
  std::uint32_t slack_;
};

}  // namespace bbb::core
