#pragma once
/// \file batch_ops.hpp
/// The ISA boundary of the batch placement kernel: a tiny table of pure
/// byte-array primitives (`SimdOps`) that each backend TU implements with
/// its own vector width, selected once at runtime by CPUID dispatch.
///
/// The kernel (core/batch_kernel.hpp) is organised so that *everything*
/// ISA-specific is a pure function over contiguous arrays with exact
/// integer semantics — no placement decision, cursor arithmetic, or
/// metric update lives behind this boundary. Backends therefore cannot
/// disagree: `map_words` has one mathematical definition, and the
/// lockstep suite (tests/core/batch_kernel_test.cpp) pins every compiled
/// backend against the scalar reference byte for byte. This is also the
/// seam where a GPU backend would slot in: a device kernel that consumes
/// the same word block and emits the same bin array plugs in below the
/// dispatch without touching a decision rule.
///
/// Backends compiled per build (see src/CMakeLists.txt):
///   * scalar    — portable C++, always built; the reference semantics.
///   * avx2      — 4 words per step (vpmuludq cross-products, sign-bias
///                 trick for the unsigned 64-bit rejection compare).
///   * avx512bw  — 8 words per step, rejection compares straight to mask
///                 registers (vpcmpuq), vpmovqd bin packing.
/// `BBB_SIMD=OFF` builds only the scalar TU; the `BBB_SIMD_MAX`
/// environment variable (scalar|avx2|avx512bw) clamps dispatch below the
/// detected ISA at runtime — both paths are exercised by the CI
/// simd-matrix job.

#include <cstdint>
#include <string_view>

namespace bbb::core::simd {

/// Instruction-set tier of a batch-kernel backend, ordered by preference.
enum class SimdTier : std::uint8_t {
  kScalar = 0,    ///< portable C++ reference backend
  kAvx2 = 1,      ///< AVX2: 4 words per vector step
  kAvx512bw = 2,  ///< AVX-512: 8 words per step, compares into mask registers
};

/// Canonical spelling ("scalar" / "avx2" / "avx512bw") for CLIs, JSON
/// records (bbb-bench-v3 `machine.simd`), and the BBB_SIMD_MAX variable.
[[nodiscard]] std::string_view to_string(SimdTier tier) noexcept;

/// Parse a canonical tier name. \throws std::invalid_argument otherwise.
[[nodiscard]] SimdTier parse_simd_tier(std::string_view text);

/// One Lemire mapping stream: a raw 64-bit word maps into the bin range
/// [base, base + bound) as base + high64(word * bound), and is a
/// rejection candidate iff low64(word * bound) < threshold. Callers pass
/// threshold = 2^64 mod bound (zero for powers of two, which therefore
/// never reject) — the exact `rng::uniform_below` criterion, so a wave
/// with no candidate word consumes randomness identically to the scalar
/// stream.
struct MapStream {
  std::uint32_t bound;      ///< range size (bins in the stream's group)
  std::uint32_t base;       ///< first bin of the group
  std::uint64_t threshold;  ///< 2^64 mod bound
};

/// The per-ISA primitive table. All functions have exact integer
/// semantics; every backend must produce byte-identical outputs.
struct SimdOps {
  SimdTier tier = SimdTier::kScalar;

  /// Vectorized word->bin map + rejection scan over `words[0, count)`:
  /// even-indexed words map through `even`, odd-indexed through `odd`
  /// (the two are identical for one-choice and greedy[2]; left[2]'s
  /// alternating group draws use base/bound per parity). Writes
  /// bins[i] and returns true iff ANY word is a rejection candidate —
  /// in which case the caller must replay the wave through the exact
  /// scalar path, because a rejected draw shifts the meaning of every
  /// later word.
  bool (*map_words)(const std::uint64_t* words, std::uint32_t count,
                    MapStream even, MapStream odd, std::uint32_t* bins);
};

/// The scalar reference backend (always compiled).
[[nodiscard]] const SimdOps& scalar_ops() noexcept;
#if defined(BBB_HAVE_AVX2_BACKEND)
/// The AVX2 backend (only when the build compiled it; callers go through
/// `active_ops`, which never returns a tier the CPU cannot run).
[[nodiscard]] const SimdOps& avx2_ops() noexcept;
#endif
#if defined(BBB_HAVE_AVX512BW_BACKEND)
/// The AVX-512BW backend (same caveat as avx2_ops).
[[nodiscard]] const SimdOps& avx512bw_ops() noexcept;
#endif

/// The dispatch decision: highest tier that is (a) compiled into this
/// build, (b) supported by the running CPU, (c) not excluded by the
/// BBB_SIMD_MAX environment variable, and (d) not excluded by
/// `set_simd_tier_override`. Detection and the environment are read once
/// and cached; the override is consulted on every call (test hook).
[[nodiscard]] const SimdOps& active_ops() noexcept;

/// Shorthand for active_ops().tier — what bbb_bench records as
/// `machine.simd` and the obs summary prints.
[[nodiscard]] SimdTier active_simd_tier() noexcept;

/// Test hook: clamp dispatch to at most `tier` for this process (pass
/// detection-capped tiers only; the lockstep suite sweeps every tier the
/// CPU actually supports). Call with no argument to restore CPU dispatch.
void set_simd_tier_override(SimdTier tier) noexcept;
void clear_simd_tier_override() noexcept;

/// Highest tier the running CPU supports among the compiled backends,
/// ignoring BBB_SIMD_MAX and the override — the ceiling a test sweep may
/// request via set_simd_tier_override.
[[nodiscard]] SimdTier detected_simd_tier() noexcept;

}  // namespace bbb::core::simd
