/// \file batch_ops_avx2.cpp
/// AVX2 backend: 4 words per step. Compiled with -mavx2 (see
/// src/CMakeLists.txt) and only ever invoked after CPUID dispatch
/// confirmed AVX2, so no function-level target attributes are needed.
///
/// high64(w * b) with b < 2^32 decomposes into 32x32 cross products:
/// with w = hi * 2^32 + lo, the full product is (hi*b) * 2^32 + lo*b, so
///   high64 = (hi*b + (lo*b >> 32)) >> 32        (no u64 overflow)
///   low64  = (hi*b << 32) + lo*b                (mod 2^64)
/// — two vpmuludq per vector. AVX2 has no unsigned 64-bit compare, so
/// the rejection test low64 < threshold biases both sides by 2^63 and
/// uses the signed vpcmpgtq.

#include "bbb/core/simd/batch_ops.hpp"

#if defined(BBB_HAVE_AVX2_BACKEND)

#include <immintrin.h>

namespace bbb::core::simd {

namespace {

bool map_words_avx2(const std::uint64_t* words, std::uint32_t count,
                    MapStream even, MapStream odd, std::uint32_t* bins) {
  const auto e_bound = static_cast<long long>(even.bound);
  const auto o_bound = static_cast<long long>(odd.bound);
  const __m256i bound = _mm256_setr_epi64x(e_bound, o_bound, e_bound, o_bound);
  const __m256i base = _mm256_setr_epi64x(even.base, odd.base, even.base, odd.base);
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ULL << 63));
  const __m256i thresh = _mm256_xor_si256(
      _mm256_setr_epi64x(static_cast<long long>(even.threshold),
                         static_cast<long long>(odd.threshold),
                         static_cast<long long>(even.threshold),
                         static_cast<long long>(odd.threshold)),
      bias);
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  __m256i rej = _mm256_setzero_si256();
  std::uint32_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + k));
    const __m256i lo = _mm256_and_si256(w, mask32);
    const __m256i hi = _mm256_srli_epi64(w, 32);
    const __m256i plo = _mm256_mul_epu32(lo, bound);
    const __m256i phi = _mm256_mul_epu32(hi, bound);
    const __m256i low64 = _mm256_add_epi64(plo, _mm256_slli_epi64(phi, 32));
    const __m256i high =
        _mm256_srli_epi64(_mm256_add_epi64(phi, _mm256_srli_epi64(plo, 32)), 32);
    rej = _mm256_or_si256(
        rej, _mm256_cmpgt_epi64(thresh, _mm256_xor_si256(low64, bias)));
    const __m256i binq = _mm256_add_epi64(high, base);
    const __m256i packed = _mm256_permutevar8x32_epi32(binq, pack_idx);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bins + k),
                     _mm256_castsi256_si128(packed));
  }
  bool reject = _mm256_testz_si256(rej, rej) == 0;
  // Scalar tail (< 4 words), same semantics as the reference backend;
  // the vector loop always leaves k even, but index parity is what
  // selects the stream, so the tail re-derives it from i.
  for (; k < count; ++k) {
    const MapStream& s = (k & 1u) != 0 ? odd : even;
    const auto prod = static_cast<__uint128_t>(words[k]) * s.bound;
    bins[k] = s.base + static_cast<std::uint32_t>(prod >> 64);
    reject |= static_cast<std::uint64_t>(prod) < s.threshold;
  }
  return reject;
}

constexpr SimdOps kAvx2Ops{SimdTier::kAvx2, &map_words_avx2};

}  // namespace

const SimdOps& avx2_ops() noexcept { return kAvx2Ops; }

}  // namespace bbb::core::simd

#endif  // BBB_HAVE_AVX2_BACKEND
