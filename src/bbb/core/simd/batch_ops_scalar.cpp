/// \file batch_ops_scalar.cpp
/// Portable reference backend for the batch-kernel primitives — the
/// semantics every vector backend is pinned against. Also the dispatch
/// home: CPUID detection, the BBB_SIMD_MAX environment clamp, and the
/// test override all live here, in the one TU that is always built.

#include "bbb/core/simd/batch_ops.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bbb::core::simd {

namespace {

bool map_words_scalar(const std::uint64_t* words, std::uint32_t count,
                      MapStream even, MapStream odd, std::uint32_t* bins) {
  bool reject = false;
  for (std::uint32_t i = 0; i < count; ++i) {
    const MapStream& s = (i & 1u) != 0 ? odd : even;
    const auto prod = static_cast<__uint128_t>(words[i]) * s.bound;
    bins[i] = s.base + static_cast<std::uint32_t>(prod >> 64);
    reject |= static_cast<std::uint64_t>(prod) < s.threshold;
  }
  return reject;
}

constexpr SimdOps kScalarOps{SimdTier::kScalar, &map_words_scalar};

/// Highest tier both compiled into this build and supported by the CPU.
SimdTier detect() noexcept {
#if defined(BBB_HAVE_AVX512BW_BACKEND) || defined(BBB_HAVE_AVX2_BACKEND)
#if defined(__GNUC__) || defined(__clang__)
#if defined(BBB_HAVE_AVX512BW_BACKEND)
  if (__builtin_cpu_supports("avx512bw")) return SimdTier::kAvx512bw;
#endif
#if defined(BBB_HAVE_AVX2_BACKEND)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
#endif
#endif
  return SimdTier::kScalar;
}

/// BBB_SIMD_MAX read once: an unset/empty variable does not clamp; an
/// unknown value falls back to scalar (fail safe, never fail fast at
/// dispatch time — a typo must not crash a long run at its first batch).
SimdTier env_ceiling() noexcept {
  const char* env = std::getenv("BBB_SIMD_MAX");
  if (env == nullptr || *env == '\0') return SimdTier::kAvx512bw;
  const std::string_view text(env);
  if (text == "avx512bw") return SimdTier::kAvx512bw;
  if (text == "avx2") return SimdTier::kAvx2;
  return SimdTier::kScalar;
}

SimdTier cached_ceiling() noexcept {
  static const SimdTier tier = [] {
    const SimdTier detected = detect();
    const SimdTier ceiling = env_ceiling();
    return detected < ceiling ? detected : ceiling;
  }();
  return tier;
}

/// Test override: kAvx512bw + 1 encodes "no override". Relaxed atomics —
/// tests set it from one thread before driving kernels.
constexpr auto kNoOverride = static_cast<std::uint8_t>(3);
std::atomic<std::uint8_t> g_override{kNoOverride};

const SimdOps& ops_for(SimdTier tier) noexcept {
  switch (tier) {
#if defined(BBB_HAVE_AVX512BW_BACKEND)
    case SimdTier::kAvx512bw:
      return avx512bw_ops();
#endif
#if defined(BBB_HAVE_AVX2_BACKEND)
    case SimdTier::kAvx2:
      return avx2_ops();
#endif
    default:
      return kScalarOps;
  }
}

}  // namespace

std::string_view to_string(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kAvx512bw:
      return "avx512bw";
    case SimdTier::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

SimdTier parse_simd_tier(std::string_view text) {
  if (text == "scalar") return SimdTier::kScalar;
  if (text == "avx2") return SimdTier::kAvx2;
  if (text == "avx512bw") return SimdTier::kAvx512bw;
  throw std::invalid_argument("unknown SIMD tier '" + std::string(text) +
                              "' (expected scalar|avx2|avx512bw)");
}

const SimdOps& scalar_ops() noexcept { return kScalarOps; }

SimdTier detected_simd_tier() noexcept { return detect(); }

const SimdOps& active_ops() noexcept {
  SimdTier tier = cached_ceiling();
  const std::uint8_t override = g_override.load(std::memory_order_relaxed);
  if (override != kNoOverride) {
    const auto clamped = static_cast<SimdTier>(override);
    if (clamped < tier) tier = clamped;
  }
  return ops_for(tier);
}

SimdTier active_simd_tier() noexcept { return active_ops().tier; }

void set_simd_tier_override(SimdTier tier) noexcept {
  g_override.store(static_cast<std::uint8_t>(tier), std::memory_order_relaxed);
}

void clear_simd_tier_override() noexcept {
  g_override.store(kNoOverride, std::memory_order_relaxed);
}

}  // namespace bbb::core::simd
