/// \file batch_ops_avx512bw.cpp
/// AVX-512 backend: 8 words per step. The unsigned 64-bit rejection
/// compare goes straight to a mask register (vpcmpuq — no sign-bias
/// dance) and bins pack with a single vpmovqd. Compiled with
/// -mavx512f -mavx512bw -mavx512vl and only invoked after CPUID
/// dispatch confirmed AVX-512BW.
///
/// Same cross-product decomposition as the AVX2 backend: with
/// w = hi * 2^32 + lo and b < 2^32,
///   high64 = (hi*b + (lo*b >> 32)) >> 32
///   low64  = (hi*b << 32) + lo*b                (mod 2^64)

#include "bbb/core/simd/batch_ops.hpp"

#if defined(BBB_HAVE_AVX512BW_BACKEND)

#include <immintrin.h>

#if defined(__GNUC__) && !defined(__clang__)
// GCC expands unmasked AVX-512 intrinsics through
// _mm512_undefined_epi32(), tripping -Wmaybe-uninitialized at -O3
// (GCC PR105593). The passthrough lanes are never observable.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace bbb::core::simd {

namespace {

bool map_words_avx512(const std::uint64_t* words, std::uint32_t count,
                      MapStream even, MapStream odd, std::uint32_t* bins) {
  const auto eb = static_cast<long long>(even.bound);
  const auto ob = static_cast<long long>(odd.bound);
  const __m512i bound = _mm512_setr_epi64(eb, ob, eb, ob, eb, ob, eb, ob);
  const __m512i base = _mm512_setr_epi64(even.base, odd.base, even.base, odd.base,
                                         even.base, odd.base, even.base, odd.base);
  const auto et = static_cast<long long>(even.threshold);
  const auto ot = static_cast<long long>(odd.threshold);
  const __m512i thresh = _mm512_setr_epi64(et, ot, et, ot, et, ot, et, ot);
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFLL);
  __mmask8 rej = 0;
  std::uint32_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m512i w = _mm512_loadu_si512(words + k);
    const __m512i lo = _mm512_and_si512(w, mask32);
    const __m512i hi = _mm512_srli_epi64(w, 32);
    const __m512i plo = _mm512_mul_epu32(lo, bound);
    const __m512i phi = _mm512_mul_epu32(hi, bound);
    const __m512i low64 = _mm512_add_epi64(plo, _mm512_slli_epi64(phi, 32));
    const __m512i high =
        _mm512_srli_epi64(_mm512_add_epi64(phi, _mm512_srli_epi64(plo, 32)), 32);
    rej |= _mm512_cmplt_epu64_mask(low64, thresh);
    // maskz form: the plain cvt expands through _mm512_undefined_epi32,
    // which GCC 12 flags -Wmaybe-uninitialized.
    const __m256i packed =
        _mm512_maskz_cvtepi64_epi32(0xFF, _mm512_add_epi64(high, base));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bins + k), packed);
  }
  bool reject = rej != 0;
  // Scalar tail (< 8 words), same semantics as the reference backend;
  // index parity selects the stream.
  for (; k < count; ++k) {
    const MapStream& s = (k & 1u) != 0 ? odd : even;
    const auto prod = static_cast<__uint128_t>(words[k]) * s.bound;
    bins[k] = s.base + static_cast<std::uint32_t>(prod >> 64);
    reject |= static_cast<std::uint64_t>(prod) < s.threshold;
  }
  return reject;
}

constexpr SimdOps kAvx512bwOps{SimdTier::kAvx512bw, &map_words_avx512};

}  // namespace

const SimdOps& avx512bw_ops() noexcept { return kAvx512bwOps; }

}  // namespace bbb::core::simd

#endif  // BBB_HAVE_AVX512BW_BACKEND
