#pragma once
/// \file probe.hpp
/// The two probe loops every uniform-probing rule in the library shares.
/// Since the single-streaming-core refactor there is exactly one copy of
/// each decision rule (core/protocols/), driven by both the batch adapter
/// and the dyn engine; these helpers fix the randomness-consumption order
/// that the bit-for-bit pins below depend on.
///
/// Both helpers draw from the engine in a fixed order (one uniform_below
/// per probe, plus one per tie for the reservoir tie-break). Any change to
/// that order breaks the adaptive/threshold load pins at the bottom of
/// tests/rng/golden_test.cpp and the streaming-vs-batch pins in
/// tests/dyn/batch_equivalence_test.cpp — loudly.

#include <cstdint>

#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// Sample uniform bins until `accept(bin)` holds; returns the accepted bin
/// and adds one to `probes` per sample. The caller guarantees some bin is
/// acceptable (every threshold/adaptive termination argument lives at the
/// call site).
template <rng::Engine64 Engine, typename AcceptFn>
std::uint32_t probe_until(Engine& gen, std::uint32_t n, std::uint64_t& probes,
                          AcceptFn&& accept) {
  for (;;) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    ++probes;
    if (accept(bin)) return bin;
  }
}

/// Exact comparison of normalized loads l_a/c_a vs l_b/c_b by
/// cross-multiplication: both operands are uint32, so the uint64 products
/// cannot overflow and no floating-point tie ambiguity enters the
/// tie-break randomness stream.
[[nodiscard]] inline bool norm_load_less(std::uint32_t la, std::uint32_t ca,
                                         std::uint32_t lb, std::uint32_t cb) noexcept {
  return static_cast<std::uint64_t>(la) * cb < static_cast<std::uint64_t>(lb) * ca;
}

/// Capacity-proportional greedy[d] candidate scan: d candidates drawn by
/// `draw(gen)` (an alias-table capacity sampler), the least *normalized*
/// load l/c wins, ties (equal l/c, cross-multiplied exactly) broken
/// uniformly at random reservoir-style — the same randomness-consumption
/// shape as `least_loaded_of`. Adds exactly d to `probes`.
template <rng::Engine64 Engine, typename DrawFn, typename LoadFn, typename CapFn>
std::uint32_t least_norm_loaded_of(Engine& gen, std::uint32_t d, std::uint64_t& probes,
                                   DrawFn&& draw, LoadFn&& load, CapFn&& cap) {
  std::uint32_t best = draw(gen);
  std::uint32_t best_load = load(best);
  std::uint32_t best_cap = cap(best);
  std::uint32_t ties = 1;  // candidates seen with the current best l/c
  for (std::uint32_t j = 1; j < d; ++j) {
    const std::uint32_t c = draw(gen);
    const std::uint32_t l = load(c);
    const std::uint32_t cc = cap(c);
    if (norm_load_less(l, cc, best_load, best_cap)) {
      best = c;
      best_load = l;
      best_cap = cc;
      ties = 1;
    } else if (!norm_load_less(best_load, best_cap, l, cc)) {
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) {
        best = c;
        best_load = l;
        best_cap = cc;
      }
    }
  }
  probes += d;
  return best;
}

/// greedy[d] candidate scan: d uniform candidates with replacement, the
/// least loaded wins, ties broken uniformly at random among the tied
/// candidates (reservoir style — one extra draw per tie). Adds exactly d
/// to `probes`.
template <rng::Engine64 Engine, typename LoadFn>
std::uint32_t least_loaded_of(Engine& gen, std::uint32_t n, std::uint32_t d,
                              std::uint64_t& probes, LoadFn&& load) {
  auto best = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
  std::uint32_t best_load = load(best);
  std::uint32_t ties = 1;  // candidates seen with the current best load
  for (std::uint32_t j = 1; j < d; ++j) {
    const auto c = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const std::uint32_t l = load(c);
    if (l < best_load) {
      best = c;
      best_load = l;
      ties = 1;
    } else if (l == best_load) {
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) best = c;
    }
  }
  probes += d;
  return best;
}

}  // namespace bbb::core
