#pragma once
/// \file probe.hpp
/// The two probe loops every uniform-probing rule in the library shares,
/// plus the raw-word probe lookahead that makes them fast at giant n.
/// Since the single-streaming-core refactor there is exactly one copy of
/// each decision rule (core/protocols/), driven by both the batch adapter
/// and the dyn engine; these helpers fix the randomness-consumption order
/// that the bit-for-bit pins below depend on.
///
/// All helpers draw from the engine in a fixed order (one uniform_below
/// per probe, plus one per tie for the reservoir tie-break). Any change to
/// that order breaks the adaptive/threshold load pins at the bottom of
/// tests/rng/golden_test.cpp and the streaming-vs-batch pins in
/// tests/dyn/batch_equivalence_test.cpp — loudly.
///
/// ## Probe lookahead (the giant-scale hot-path trick)
///
/// At n >= 10^7 the load array no longer fits in cache, so the d random
/// reads per ball are DRAM misses; drawn and consumed one at a time they
/// serialize, and the placement loop runs at memory *latency* instead of
/// memory *bandwidth*. `ProbeLookahead` fixes that without changing a
/// single consumed random word: it buffers the engine's raw 64-bit output
/// stream a few dozen words ahead, and at refill time speculatively maps
/// each buffered word to the bin it will address if consumed as a
/// candidate probe (Lemire's multiply maps a word position-independently)
/// and issues a software prefetch for that bin's load slot. Consumption
/// stays strictly FIFO through `LookaheadSource`, so every uniform_below —
/// candidate, tie-break, or rejection retry — sees exactly the word it
/// would have seen drawing from the engine directly; tie-break words were
/// merely prefetched as a bogus bin (harmless). Allocation results are
/// bit-for-bit identical with the lookahead on or off.
///
/// The one observable difference: the engine is left *ahead* of where
/// straight-line consumption would leave it (buffered residue is
/// discarded). A driver must therefore only enable the lookahead while the
/// rule is the engine's sole consumer — `PlacementRule::set_engine_exclusive`
/// documents the contract; the batch adapter and tracer opt in, the dyn
/// engine (which interleaves workload draws on the same engine) does not.

#include <cstdint>

#include "bbb/rng/engine.hpp"

namespace bbb::core {

/// FIFO read-ahead over an engine's raw 64-bit stream with speculative
/// bin prefetching at refill. See the file comment for the contract.
class ProbeLookahead {
 public:
  /// Words buffered per refill — the prefetch distance. 64 words cover
  /// ~twenty greedy[2] balls, enough to hide DRAM latency behind the
  /// per-ball bookkeeping without thrashing L1.
  static constexpr std::uint32_t kCapacity = 64;

  /// Engage (or disengage) the read-ahead. Disengaging discards any
  /// undrained residue — those words were already drawn from the old
  /// engine, and serving them to a *different* engine later would make
  /// placements a function of the wrong seed. (Same observable effect as
  /// the documented "engine ends ahead of straight-line consumption".)
  void set_enabled(bool on) noexcept {
    if (!on) {
      discarded_words_ += fill_ - pos_;
      pos_ = fill_ = 0;
    }
    enabled_ = on;
  }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Buffer refills performed — ~one per kCapacity consumed words; the
  /// obs layer reports it as core.lookahead.refills.
  [[nodiscard]] std::uint64_t refills() const noexcept { return refills_; }
  /// Buffered words thrown away by disengaging (engine draws that never
  /// reached a uniform_below) — core.lookahead.discarded_words.
  [[nodiscard]] std::uint64_t discarded_words() const noexcept {
    return discarded_words_;
  }

  /// Next raw word: buffered residue first, then the live engine.
  template <rng::Engine64 Engine>
  [[nodiscard]] std::uint64_t next(Engine& gen) {
    return pos_ != fill_ ? buf_[pos_++] : gen();
  }

  /// Bulk form of `next`: exactly `count` words into `dst`, buffered
  /// residue first, then the live engine — the same word stream next()
  /// would deliver one call at a time. Splitting the drain from the draw
  /// lets the compiler keep the engine state in registers across the
  /// fresh-draw loop, which matters to the batch kernel's wave fill.
  template <rng::Engine64 Engine>
  void next_block(Engine& gen, std::uint64_t* dst, std::uint32_t count) {
    while (pos_ != fill_ && count != 0) {
      *dst++ = buf_[pos_++];
      --count;
    }
    if (count == 0) return;
    ++refills_;  // one bulk draw is one buffer-refill's worth of traffic
    for (; count != 0; --count) *dst++ = gen();
  }

  /// Hand back words the batch kernel (core/batch_kernel.hpp) drew ahead
  /// but did not consume (at most a partial ball's worth). They are
  /// served before any fresh engine draw, so a place_one following a
  /// place_batch sees exactly the word a pure place_one stream would.
  /// Precondition: the queue is empty (the kernel drains it before
  /// drawing fresh words) and count <= kCapacity.
  void push_residue(const std::uint64_t* words, std::uint32_t count) noexcept {
    pos_ = 0;
    fill_ = count;
    for (std::uint32_t k = 0; k < count; ++k) buf_[k] = words[k];
  }

  /// Ensure at least `need` words are buffered (no-op when disabled or
  /// already full enough); newly drawn words are reported to
  /// `prefetch(offset, word)` where `offset` counts from the front of the
  /// queue — rules with positional word meaning (left[d]'s per-group
  /// draws) recover the probe phase as offset % d.
  template <rng::Engine64 Engine, typename PrefetchFn>
  void top_up(Engine& gen, std::uint32_t need, PrefetchFn&& prefetch) {
    if (need > kCapacity) need = kCapacity;  // d > 32: best effort, still FIFO
    if (!enabled_ || fill_ - pos_ >= need) return;
    ++refills_;  // cold: reached once per ~kCapacity consumed words
    const std::uint32_t residue = fill_ - pos_;
    for (std::uint32_t k = 0; k < residue; ++k) buf_[k] = buf_[pos_ + k];
    pos_ = 0;
    fill_ = residue;
    while (fill_ < kCapacity) {
      const std::uint64_t word = gen();
      prefetch(fill_, word);
      buf_[fill_++] = word;
    }
  }

 private:
  std::uint64_t buf_[kCapacity];
  std::uint32_t pos_ = 0;
  std::uint32_t fill_ = 0;
  bool enabled_ = false;
  // Cold counters appended after the hot members (buf_/pos_/fill_ keep
  // their pre-instrumentation offsets; refills_ is touched once per
  // ~kCapacity consumed words, discarded_words_ only on disengage).
  std::uint64_t refills_ = 0;
  std::uint64_t discarded_words_ = 0;
};

/// Engine64 adapter that drains a ProbeLookahead in FIFO order, falling
/// through to the underlying engine when the buffer is dry — the word
/// sequence is exactly the engine's, so passing this to uniform_below /
/// least_loaded_of reproduces direct-draw results bit for bit.
template <rng::Engine64 Engine>
class LookaheadSource {
 public:
  LookaheadSource(ProbeLookahead& lookahead, Engine& gen) noexcept
      : lookahead_(lookahead), gen_(gen) {}

  [[nodiscard]] std::uint64_t operator()() { return lookahead_.next(gen_); }

  static constexpr std::uint64_t min() noexcept { return Engine::min(); }
  static constexpr std::uint64_t max() noexcept { return Engine::max(); }

 private:
  ProbeLookahead& lookahead_;
  Engine& gen_;
};

/// The bin a raw 64-bit word maps to under Lemire's multiply-shift for
/// bound `n` — rng::lemire_map (the same mapping uniform_below consumes,
/// one shared definition so prefetch targets cannot drift from consumed
/// values), narrowed to a bin index.
[[nodiscard]] inline std::uint32_t lemire_map(std::uint64_t word,
                                              std::uint32_t n) noexcept {
  return static_cast<std::uint32_t>(rng::lemire_map(word, n));
}

/// Sample uniform bins until `accept(bin)` holds; returns the accepted bin
/// and adds one to `probes` per sample. The caller guarantees some bin is
/// acceptable (every threshold/adaptive termination argument lives at the
/// call site).
template <rng::Engine64 Engine, typename AcceptFn>
std::uint32_t probe_until(Engine& gen, std::uint32_t n, std::uint64_t& probes,
                          AcceptFn&& accept) {
  for (;;) {
    const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    ++probes;
    if (accept(bin)) return bin;
  }
}

/// Exact comparison of normalized loads l_a/c_a vs l_b/c_b by
/// cross-multiplication: both operands are uint32, so the uint64 products
/// cannot overflow and no floating-point tie ambiguity enters the
/// tie-break randomness stream.
[[nodiscard]] inline bool norm_load_less(std::uint32_t la, std::uint32_t ca,
                                         std::uint32_t lb, std::uint32_t cb) noexcept {
  return static_cast<std::uint64_t>(la) * cb < static_cast<std::uint64_t>(lb) * ca;
}

/// Capacity-proportional greedy[d] candidate scan: d candidates drawn by
/// `draw(gen)` (an alias-table capacity sampler), the least *normalized*
/// load l/c wins, ties (equal l/c, cross-multiplied exactly) broken
/// uniformly at random reservoir-style — the same randomness-consumption
/// shape as `least_loaded_of`. Adds exactly d to `probes`.
template <rng::Engine64 Engine, typename DrawFn, typename LoadFn, typename CapFn>
std::uint32_t least_norm_loaded_of(Engine& gen, std::uint32_t d, std::uint64_t& probes,
                                   DrawFn&& draw, LoadFn&& load, CapFn&& cap) {
  std::uint32_t best = draw(gen);
  std::uint32_t best_load = load(best);
  std::uint32_t best_cap = cap(best);
  std::uint32_t ties = 1;  // candidates seen with the current best l/c
  for (std::uint32_t j = 1; j < d; ++j) {
    const std::uint32_t c = draw(gen);
    const std::uint32_t l = load(c);
    const std::uint32_t cc = cap(c);
    if (norm_load_less(l, cc, best_load, best_cap)) {
      best = c;
      best_load = l;
      best_cap = cc;
      ties = 1;
    } else if (!norm_load_less(best_load, best_cap, l, cc)) {
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) {
        best = c;
        best_load = l;
        best_cap = cc;
      }
    }
  }
  probes += d;
  return best;
}

/// greedy[d] candidate scan: d uniform candidates with replacement, the
/// least loaded wins, ties broken uniformly at random among the tied
/// candidates (reservoir style — one extra draw per tie). Adds exactly d
/// to `probes`.
template <rng::Engine64 Engine, typename LoadFn>
std::uint32_t least_loaded_of(Engine& gen, std::uint32_t n, std::uint32_t d,
                              std::uint64_t& probes, LoadFn&& load) {
  if (d == 2) {
    // The two-choice fast path: both candidates drawn before either load
    // is read (the loads then miss DRAM in parallel), and the min-select
    // reduced to one equality branch. Word-for-word the same randomness
    // as the generic loop below: c0, c1, then one tie-break draw iff the
    // loads are equal.
    const auto c0 = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const auto c1 = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const std::uint32_t l0 = load(c0);
    const std::uint32_t l1 = load(c1);
    probes += 2;
    if (l0 != l1) return l1 < l0 ? c1 : c0;
    return rng::uniform_below(gen, 2) == 0 ? c1 : c0;
  }
  auto best = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
  std::uint32_t best_load = load(best);
  std::uint32_t ties = 1;  // candidates seen with the current best load
  for (std::uint32_t j = 1; j < d; ++j) {
    const auto c = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
    const std::uint32_t l = load(c);
    if (l < best_load) {
      best = c;
      best_load = l;
      ties = 1;
    } else if (l == best_load) {
      ++ties;
      if (rng::uniform_below(gen, ties) == 0) best = c;
    }
  }
  probes += d;
  return best;
}

}  // namespace bbb::core
