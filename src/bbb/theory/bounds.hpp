#pragma once
/// \file bounds.hpp
/// Closed-form predictions from the paper (Table 1 and the theorems) and
/// classic balls-into-bins results. Benches print these next to measured
/// values; tests check the measured side tracks the predicted *shape*.

#include <cstdint>
#include <span>

namespace bbb::theory {

/// Harmonic number H_n = sum_{k=1..n} 1/k (exact summation up to 10^7,
/// asymptotic expansion ln n + gamma + 1/(2n) beyond).
[[nodiscard]] double harmonic(std::uint64_t n);

/// Expected coupon-collector time n * H_n: the allocation time of one
/// stage of adaptive when run with slack 0 ("threshold i/n" — the remark
/// under Figure 1 of the paper).
[[nodiscard]] double coupon_collector_time(std::uint64_t n);

/// Classic one-choice max load prediction: for m = n,
/// log n / log log n (Raab & Steger leading term); for m >> n log n,
/// m/n + sqrt(2 (m/n) ln n).
[[nodiscard]] double one_choice_max_load(std::uint64_t m, std::uint64_t n);

/// Weighted one-choice baseline on heterogeneous capacities: probing
/// proportionally to c_i (C = sum c_i), bin i receives Binomial(m, c_i/C)
/// balls, so its normalized load l_i/c_i concentrates at m/C with standard
/// deviation ~ sqrt(m/(C c_i)). The expected maximum normalized load in
/// the heavily loaded regime is therefore approximately
///   m/C + sqrt(2 (m/C) ln n / c_min),
/// the smallest-capacity class dominating the fluctuation term — the
/// number capacity-aware multi-choice rules are measured against.
/// \throws std::invalid_argument if capacities has fewer than 2 entries or
///         contains a zero.
[[nodiscard]] double weighted_one_choice_max_norm_load(
    std::uint64_t m, std::span<const std::uint32_t> capacities);

/// greedy[d] heavy-load max load (Berenbrink et al. 2006):
/// m/n + ln ln n / ln d. Requires d >= 2.
[[nodiscard]] double greedy_d_max_load(std::uint64_t m, std::uint64_t n, std::uint32_t d);

/// left[d] heavy-load max load (Vöcking; Berenbrink et al. 2006):
/// m/n + ln ln n / (d * ln phi_d). Requires d >= 2.
[[nodiscard]] double left_d_max_load(std::uint64_t m, std::uint64_t n, std::uint32_t d);

/// Both threshold and adaptive guarantee max load <= ceil(m/n) + 1.
[[nodiscard]] std::uint64_t paper_max_load_bound(std::uint64_t m, std::uint64_t n);

/// Theorem 4.1's allocation-time form for threshold:
/// m + constant * m^{3/4} * n^{1/4}.
[[nodiscard]] double threshold_time_bound(std::uint64_t m, std::uint64_t n,
                                          double constant = 1.0);

/// The overhead scale m^{3/4} n^{1/4} alone (for normalized plots).
[[nodiscard]] double threshold_overhead_scale(std::uint64_t m, std::uint64_t n);

/// Iterated logarithm log*(x): number of times ln must be applied before
/// the value drops to <= 1. The round complexity scale of
/// Lenzen–Wattenhofer parallel allocation.
[[nodiscard]] std::uint32_t log_star(double x);

/// Supermarket-model equilibrium tail (Luczak & McDiarmid; Vvedenskaya et
/// al.; Mitzenmacher): with Poisson arrivals at rate lambda*n, unit-rate
/// FIFO servers, and greedy[d] placement, the stationary fraction of bins
/// with load >= k tends to lambda^((d^k - 1)/(d - 1)) for d >= 2 — doubly
/// exponential in k — versus the geometric lambda^k of the d = 1 M/M/1
/// farm. Requires 0 < lambda < 1 and d >= 1.
[[nodiscard]] double supermarket_tail_fixed_point(double lambda, std::uint32_t d,
                                                  std::uint32_t k);

}  // namespace bbb::theory
