#include "bbb/theory/tails.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::theory {

double poisson_lower_tail_bound(double mu, double eps) {
  if (!(mu > 0.0)) throw std::invalid_argument("poisson_lower_tail_bound: mu > 0");
  if (!(eps > 0.0 && eps <= 1.0)) {
    throw std::invalid_argument("poisson_lower_tail_bound: eps in (0, 1]");
  }
  return std::exp(-eps * eps * mu / 2.0);
}

double poisson_upper_tail_bound(double mu, double eps) {
  if (!(mu > 0.0)) throw std::invalid_argument("poisson_upper_tail_bound: mu > 0");
  if (!(eps > 0.0)) throw std::invalid_argument("poisson_upper_tail_bound: eps > 0");
  // [e^eps (1+eps)^{-(1+eps)}]^mu, evaluated in the log domain.
  const double log_base = eps - (1.0 + eps) * std::log1p(eps);
  return std::exp(mu * log_base);
}

double hoeffding_bound(std::uint64_t n, double lambda) {
  if (n == 0) throw std::invalid_argument("hoeffding_bound: n > 0");
  if (lambda < 0.0) throw std::invalid_argument("hoeffding_bound: lambda >= 0");
  return std::min(1.0, 2.0 * std::exp(-lambda * lambda / static_cast<double>(n)));
}

double geometric_sum_tail_bound(std::uint64_t n, double eps) {
  if (n == 0) throw std::invalid_argument("geometric_sum_tail_bound: n > 0");
  if (!(eps > 0.0)) throw std::invalid_argument("geometric_sum_tail_bound: eps > 0");
  return std::exp(-eps * eps * static_cast<double>(n) / (2.0 * (1.0 + eps)));
}

double binomial_upper_tail_bound(std::uint64_t n, double p, double eps) {
  if (!(eps > 0.0)) throw std::invalid_argument("binomial_upper_tail_bound: eps > 0");
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_upper_tail_bound: p in (0, 1]");
  }
  const double np = static_cast<double>(n) * p;
  return std::exp(-std::min(eps, eps * eps) * np / 3.0);
}

}  // namespace bbb::theory
