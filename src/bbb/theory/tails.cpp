#include "bbb/theory/tails.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::theory {

double poisson_lower_tail_bound(double mu, double eps) {
  if (!(mu > 0.0)) throw std::invalid_argument("poisson_lower_tail_bound: mu > 0");
  if (!(eps > 0.0 && eps <= 1.0)) {
    throw std::invalid_argument("poisson_lower_tail_bound: eps in (0, 1]");
  }
  return std::exp(-eps * eps * mu / 2.0);
}

double poisson_upper_tail_bound(double mu, double eps) {
  if (!(mu > 0.0)) throw std::invalid_argument("poisson_upper_tail_bound: mu > 0");
  if (!(eps > 0.0)) throw std::invalid_argument("poisson_upper_tail_bound: eps > 0");
  // [e^eps (1+eps)^{-(1+eps)}]^mu, evaluated in the log domain.
  const double log_base = eps - (1.0 + eps) * std::log1p(eps);
  return std::exp(mu * log_base);
}

double hoeffding_bound(std::uint64_t n, double lambda) {
  if (n == 0) throw std::invalid_argument("hoeffding_bound: n > 0");
  if (lambda < 0.0) throw std::invalid_argument("hoeffding_bound: lambda >= 0");
  return std::min(1.0, 2.0 * std::exp(-lambda * lambda / static_cast<double>(n)));
}

double geometric_sum_tail_bound(std::uint64_t n, double eps) {
  if (n == 0) throw std::invalid_argument("geometric_sum_tail_bound: n > 0");
  if (!(eps > 0.0)) throw std::invalid_argument("geometric_sum_tail_bound: eps > 0");
  return std::exp(-eps * eps * static_cast<double>(n) / (2.0 * (1.0 + eps)));
}

double binomial_upper_tail_bound(std::uint64_t n, double p, double eps) {
  if (!(eps > 0.0)) throw std::invalid_argument("binomial_upper_tail_bound: eps > 0");
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_upper_tail_bound: p in (0, 1]");
  }
  const double np = static_cast<double>(n) * p;
  return std::exp(-std::min(eps, eps * eps) * np / 3.0);
}

namespace {

/// ds_k/dt for the truncated (1+beta)/d-choice system; s[k] holds s_k with
/// s[0] == 1 pinned (its derivative is forced to 0).
void fluid_derivative(const std::vector<double>& s, std::uint32_t d, double beta,
                      std::vector<double>& ds) {
  ds[0] = 0.0;
  for (std::size_t k = 1; k < s.size(); ++k) {
    const double one = s[k - 1] - s[k];
    double multi = one;
    if (d > 1) {
      multi = std::pow(s[k - 1], static_cast<double>(d)) -
              std::pow(s[k], static_cast<double>(d));
    }
    ds[k] = (1.0 - beta) * one + beta * multi;
  }
}

}  // namespace

std::vector<double> fluid_tail_curve(double t, std::uint32_t d, double beta,
                                     std::uint32_t k_max, std::uint32_t steps) {
  if (!(t >= 0.0)) throw std::invalid_argument("fluid_tail_curve: t >= 0");
  if (d == 0) throw std::invalid_argument("fluid_tail_curve: d >= 1");
  if (!(beta >= 0.0 && beta <= 1.0)) {
    throw std::invalid_argument("fluid_tail_curve: beta in [0, 1]");
  }
  if (k_max == 0) throw std::invalid_argument("fluid_tail_curve: k_max >= 1");
  if (steps == 0) {
    const double suggested = 512.0 * std::ceil(t);
    steps = suggested > 4096.0 ? static_cast<std::uint32_t>(suggested) : 4096;
  }

  std::vector<double> s(static_cast<std::size_t>(k_max) + 1, 0.0);
  s[0] = 1.0;
  if (t == 0.0) return {s.begin() + 1, s.end()};

  const double h = t / static_cast<double>(steps);
  std::vector<double> k1(s.size()), k2(s.size()), k3(s.size()), k4(s.size()),
      tmp(s.size());
  for (std::uint32_t step = 0; step < steps; ++step) {
    fluid_derivative(s, d, beta, k1);
    for (std::size_t i = 0; i < s.size(); ++i) tmp[i] = s[i] + 0.5 * h * k1[i];
    fluid_derivative(tmp, d, beta, k2);
    for (std::size_t i = 0; i < s.size(); ++i) tmp[i] = s[i] + 0.5 * h * k2[i];
    fluid_derivative(tmp, d, beta, k3);
    for (std::size_t i = 0; i < s.size(); ++i) tmp[i] = s[i] + h * k3[i];
    fluid_derivative(tmp, d, beta, k4);
    for (std::size_t i = 1; i < s.size(); ++i) {
      s[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
      // The exact solution lives in [0, s_{i-1}]; clip the integrator's
      // O(h^4) excursions so deep-tail values stay probabilities.
      s[i] = std::clamp(s[i], 0.0, s[i - 1]);
    }
  }
  return {s.begin() + 1, s.end()};
}

std::uint32_t fluid_max_load_estimate(std::span<const double> tails,
                                      std::uint64_t n) {
  if (tails.empty()) throw std::invalid_argument("fluid_max_load_estimate: empty");
  if (n == 0) throw std::invalid_argument("fluid_max_load_estimate: n >= 1");
  for (std::size_t k = 0; k < tails.size(); ++k) {
    if (static_cast<double>(n) * tails[k] < 0.5) {
      return static_cast<std::uint32_t>(k);  // tails[k] is s_{k+1}: max load k
    }
  }
  return static_cast<std::uint32_t>(tails.size()) + 1;
}

}  // namespace bbb::theory
