#include "bbb/theory/bounds.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/theory/phi_d.hpp"

namespace bbb::theory {

double harmonic(std::uint64_t n) {
  if (n == 0) return 0.0;
  if (n <= 10'000'000ULL) {
    double h = 0.0;
    // Sum smallest-first for accuracy.
    for (std::uint64_t k = n; k >= 1; --k) h += 1.0 / static_cast<double>(k);
    return h;
  }
  constexpr double kEulerGamma = 0.57721566490153286;
  const auto nd = static_cast<double>(n);
  return std::log(nd) + kEulerGamma + 1.0 / (2.0 * nd) - 1.0 / (12.0 * nd * nd);
}

double coupon_collector_time(std::uint64_t n) {
  return static_cast<double>(n) * harmonic(n);
}

double one_choice_max_load(std::uint64_t m, std::uint64_t n) {
  if (n < 2) throw std::invalid_argument("one_choice_max_load: n >= 2 required");
  const auto nd = static_cast<double>(n);
  const double avg = static_cast<double>(m) / nd;
  if (m <= n) {
    return std::log(nd) / std::log(std::log(nd));
  }
  return avg + std::sqrt(2.0 * avg * std::log(nd));
}

double weighted_one_choice_max_norm_load(std::uint64_t m,
                                         std::span<const std::uint32_t> capacities) {
  if (capacities.size() < 2) {
    throw std::invalid_argument(
        "weighted_one_choice_max_norm_load: n >= 2 required");
  }
  std::uint64_t total = 0;
  std::uint32_t c_min = capacities[0];
  for (const std::uint32_t c : capacities) {
    if (c == 0) {
      throw std::invalid_argument(
          "weighted_one_choice_max_norm_load: zero capacity");
    }
    total += c;
    if (c < c_min) c_min = c;
  }
  const auto nd = static_cast<double>(capacities.size());
  const double norm_avg = static_cast<double>(m) / static_cast<double>(total);
  return norm_avg +
         std::sqrt(2.0 * norm_avg * std::log(nd) / static_cast<double>(c_min));
}

double greedy_d_max_load(std::uint64_t m, std::uint64_t n, std::uint32_t d) {
  if (d < 2) throw std::invalid_argument("greedy_d_max_load: d >= 2 required");
  if (n < 3) throw std::invalid_argument("greedy_d_max_load: n >= 3 required");
  const auto nd = static_cast<double>(n);
  return static_cast<double>(m) / nd +
         std::log(std::log(nd)) / std::log(static_cast<double>(d));
}

double left_d_max_load(std::uint64_t m, std::uint64_t n, std::uint32_t d) {
  if (d < 2) throw std::invalid_argument("left_d_max_load: d >= 2 required");
  if (n < 3) throw std::invalid_argument("left_d_max_load: n >= 3 required");
  const auto nd = static_cast<double>(n);
  return static_cast<double>(m) / nd +
         std::log(std::log(nd)) /
             (static_cast<double>(d) * std::log(phi_d(d)));
}

std::uint64_t paper_max_load_bound(std::uint64_t m, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("paper_max_load_bound: n >= 1 required");
  return (m + n - 1) / n + 1;
}

double threshold_time_bound(std::uint64_t m, std::uint64_t n, double constant) {
  return static_cast<double>(m) + constant * threshold_overhead_scale(m, n);
}

double threshold_overhead_scale(std::uint64_t m, std::uint64_t n) {
  return std::pow(static_cast<double>(m), 0.75) * std::pow(static_cast<double>(n), 0.25);
}

std::uint32_t log_star(double x) {
  std::uint32_t k = 0;
  while (x > 1.0) {
    x = std::log(x);
    ++k;
    if (k > 64) break;  // unreachable for finite doubles; safety net
  }
  return k;
}

double supermarket_tail_fixed_point(double lambda, std::uint32_t d, std::uint32_t k) {
  if (!(lambda > 0.0) || lambda >= 1.0) {
    throw std::invalid_argument("supermarket_tail_fixed_point: 0 < lambda < 1 required");
  }
  if (d == 0) {
    throw std::invalid_argument("supermarket_tail_fixed_point: d >= 1 required");
  }
  if (k == 0) return 1.0;
  if (d == 1) return std::pow(lambda, static_cast<double>(k));
  // Exponent (d^k - 1)/(d - 1) in floating point: for large k it saturates
  // and lambda^exponent underflows to 0, which is the right answer.
  const double exponent =
      (std::pow(static_cast<double>(d), static_cast<double>(k)) - 1.0) /
      (static_cast<double>(d) - 1.0);
  return std::pow(lambda, exponent);
}

}  // namespace bbb::theory
