#include "bbb/theory/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::theory {

namespace {

void check_n(std::uint64_t n, const char* fn) {
  if (n == 0) throw std::invalid_argument(std::string(fn) + ": n must be positive");
}

// log of the Bin(m, 1/n) pmf at k.
double log_binomial_pmf(std::uint64_t m, std::uint64_t n, std::uint32_t k) {
  const auto md = static_cast<double>(m);
  const auto kd = static_cast<double>(k);
  const double log_choose =
      std::lgamma(md + 1.0) - std::lgamma(kd + 1.0) - std::lgamma(md - kd + 1.0);
  const double p = 1.0 / static_cast<double>(n);
  return log_choose + kd * std::log(p) + (md - kd) * std::log1p(-p);
}

}  // namespace

double expected_empty_bins(std::uint64_t m, std::uint64_t n) {
  check_n(n, "expected_empty_bins");
  const auto nd = static_cast<double>(n);
  return nd * std::exp(static_cast<double>(m) * std::log1p(-1.0 / nd));
}

double expected_bins_with_load(std::uint64_t m, std::uint64_t n, std::uint32_t k) {
  check_n(n, "expected_bins_with_load");
  if (k > m) return 0.0;
  if (n == 1) return k == m ? 1.0 : 0.0;
  return static_cast<double>(n) * std::exp(log_binomial_pmf(m, n, k));
}

double bin_load_at_least(std::uint64_t m, std::uint64_t n, std::uint32_t k) {
  check_n(n, "bin_load_at_least");
  if (k == 0) return 1.0;
  if (k > m) return 0.0;
  if (n == 1) return 1.0;  // the single bin holds all m >= k balls
  // Sum the pmf from k to m; terms decay geometrically past the mean, so
  // stop when they stop mattering.
  double acc = 0.0;
  for (std::uint64_t j = k; j <= m; ++j) {
    const double term = std::exp(log_binomial_pmf(m, n, static_cast<std::uint32_t>(j)));
    acc += term;
    if (term < 1e-18 * acc && j > m / n + k) break;
  }
  return std::min(acc, 1.0);
}

double max_load_union_bound(std::uint64_t m, std::uint64_t n, std::uint32_t k) {
  check_n(n, "max_load_union_bound");
  return std::min(1.0, static_cast<double>(n) * bin_load_at_least(m, n, k));
}

double expected_overflow_mass(std::uint64_t m, std::uint64_t n, std::uint32_t k) {
  check_n(n, "expected_overflow_mass");
  if (m == 0) return 0.0;
  // E[# balls in bins with final load >= k] = sum_{j >= k} j * E[#bins@j],
  // normalized by m.
  double mass = 0.0;
  for (std::uint64_t j = k; j <= m; ++j) {
    const double bins_at_j = expected_bins_with_load(m, n, static_cast<std::uint32_t>(j));
    mass += static_cast<double>(j) * bins_at_j;
    if (bins_at_j < 1e-18 && j > m / n + k) break;
  }
  return std::min(1.0, mass / static_cast<double>(m));
}

}  // namespace bbb::theory
