#pragma once
/// \file tails.hpp
/// The concentration inequalities from Appendix A of the paper, as
/// evaluatable upper bounds. The tests confirm each bound dominates the
/// empirical tail of the matching sampler — which is exactly how the
/// paper's proofs consume them.

#include <cstdint>

namespace bbb::theory {

/// Theorem A.4 lower tail: Pr[Poi(mu) <= (1-eps) mu] <= exp(-eps^2 mu / 2).
/// \throws std::invalid_argument if mu <= 0 or eps outside (0, 1].
[[nodiscard]] double poisson_lower_tail_bound(double mu, double eps);

/// Theorem A.4 upper tail: Pr[Poi(mu) >= (1+eps) mu] <= [e^eps (1+eps)^-(1+eps)]^mu.
/// \throws std::invalid_argument if mu <= 0 or eps <= 0.
[[nodiscard]] double poisson_upper_tail_bound(double mu, double eps);

/// Theorem A.2 (Hoeffding, binary variables):
/// Pr[|X - E X| >= lambda] <= 2 exp(-lambda^2 / n).
/// \throws std::invalid_argument if n == 0 or lambda < 0.
[[nodiscard]] double hoeffding_bound(std::uint64_t n, double lambda);

/// Theorem A.5 (sum of n iid geometrics, mean mu = n/delta):
/// Pr[X >= (1+eps) mu] <= exp(-eps^2 n / (2 (1+eps))).
/// \throws std::invalid_argument if n == 0 or eps <= 0.
[[nodiscard]] double geometric_sum_tail_bound(std::uint64_t n, double eps);

/// Multiplicative Chernoff for Bin(n, p), upper tail:
/// Pr[X >= (1+eps) np] <= exp(-min(eps, eps^2) np / 3).
/// \throws std::invalid_argument if eps <= 0 or p outside (0, 1].
[[nodiscard]] double binomial_upper_tail_bound(std::uint64_t n, double p, double eps);

}  // namespace bbb::theory
