#pragma once
/// \file tails.hpp
/// The concentration inequalities from Appendix A of the paper, as
/// evaluatable upper bounds. The tests confirm each bound dominates the
/// empirical tail of the matching sampler — which is exactly how the
/// paper's proofs consume them.

#include <cstdint>
#include <span>
#include <vector>

namespace bbb::theory {

/// Theorem A.4 lower tail: Pr[Poi(mu) <= (1-eps) mu] <= exp(-eps^2 mu / 2).
/// \throws std::invalid_argument if mu <= 0 or eps outside (0, 1].
[[nodiscard]] double poisson_lower_tail_bound(double mu, double eps);

/// Theorem A.4 upper tail: Pr[Poi(mu) >= (1+eps) mu] <= [e^eps (1+eps)^-(1+eps)]^mu.
/// \throws std::invalid_argument if mu <= 0 or eps <= 0.
[[nodiscard]] double poisson_upper_tail_bound(double mu, double eps);

/// Theorem A.2 (Hoeffding, binary variables):
/// Pr[|X - E X| >= lambda] <= 2 exp(-lambda^2 / n).
/// \throws std::invalid_argument if n == 0 or lambda < 0.
[[nodiscard]] double hoeffding_bound(std::uint64_t n, double lambda);

/// Theorem A.5 (sum of n iid geometrics, mean mu = n/delta):
/// Pr[X >= (1+eps) mu] <= exp(-eps^2 n / (2 (1+eps))).
/// \throws std::invalid_argument if n == 0 or eps <= 0.
[[nodiscard]] double geometric_sum_tail_bound(std::uint64_t n, double eps);

/// Multiplicative Chernoff for Bin(n, p), upper tail:
/// Pr[X >= (1+eps) np] <= exp(-min(eps, eps^2) np / 3).
/// \throws std::invalid_argument if eps <= 0 or p outside (0, 1].
[[nodiscard]] double binomial_upper_tail_bound(std::uint64_t n, double p, double eps);

// -- fluid-limit (n -> infinity) tail curves ---------------------------------
//
// The law tier's d-choice side: the Wormald/Mitzenmacher mean-field ODE for
// the (1+beta)/d-choice process. Let s_k(t) be the fraction of bins with
// load >= k after t*n balls. A ball lands in a bin of load exactly k-1 with
// probability (1-beta)(s_{k-1} - s_k) + beta(s_{k-1}^d - s_k^d) — uniform
// probe with probability 1-beta, least-loaded-of-d with probability beta —
// so in the n -> infinity limit
//     ds_k/dt = (1-beta)(s_{k-1} - s_k) + beta(s_{k-1}^d - s_k^d),  s_0 = 1.
// beta = 1 is pure greedy[d]; beta = 0 (or d = 1) is one-choice, where the
// solution is the Poisson tail s_k(t) = P(Poi(t) >= k) — the analytic pin
// tests/theory/tails_test.cpp checks the integrator against. Deviations at
// finite n are O(sqrt(s_k/n)) per level (law of large numbers), which the
// cross-validation suite in tests/law/ budgets for explicitly.

/// s_1..s_k_max at time t, integrated with classic RK4 on the truncated
/// system (s_0 pinned to 1; truncation at k_max is exact for the levels
/// returned since ds_k/dt never reads s_{k+1}). Index [k-1] holds s_k.
/// \param steps RK4 steps; 0 picks max(4096, 512 * ceil(t)).
/// \throws std::invalid_argument if t < 0, d == 0, beta outside [0, 1], or
///         k_max == 0.
[[nodiscard]] std::vector<double> fluid_tail_curve(double t, std::uint32_t d,
                                                   double beta, std::uint32_t k_max,
                                                   std::uint32_t steps = 0);

/// Fluid max-load estimate at n bins: the smallest k whose expected number
/// of bins n * s_k drops below 1/2 (k_max + 1 if the curve never does —
/// raise k_max). `tails` is fluid_tail_curve output (tails[k-1] = s_k).
/// \throws std::invalid_argument if tails is empty or n == 0.
[[nodiscard]] std::uint32_t fluid_max_load_estimate(std::span<const double> tails,
                                                    std::uint64_t n);

}  // namespace bbb::theory
