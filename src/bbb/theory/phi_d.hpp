#pragma once
/// \file phi_d.hpp
/// The generalized golden ratio phi_d: the unique root in (1, 2) of
///   x^d = 1 + x + x^2 + ... + x^{d-1}.
/// Vöcking's lower bound and the left[d] upper bound are both
/// ln ln n / (d ln phi_d); the paper's Table 1 cites 1.61 <= phi_d < 2.

#include <cstdint>

namespace bbb::theory {

/// phi_d to ~1e-14 accuracy via bisection. phi_2 is the golden ratio
/// 1.6180339887...; phi_d increases toward 2 as d grows.
/// \throws std::invalid_argument if d < 2.
[[nodiscard]] double phi_d(std::uint32_t d);

}  // namespace bbb::theory
