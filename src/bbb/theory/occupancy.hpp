#pragma once
/// \file occupancy.hpp
/// Classic occupancy quantities for the one-choice process — the exact
/// reference values the baseline tests and Table-1 columns compare against.
/// (The paper's Table 1 cites these results; having the closed forms lets
/// the benches print prediction columns instead of hand-waving.)

#include <cstdint>

namespace bbb::theory {

/// E[# empty bins] after m uniform throws into n bins: n (1 - 1/n)^m.
[[nodiscard]] double expected_empty_bins(std::uint64_t m, std::uint64_t n);

/// E[# bins with exactly k balls]: n * C(m,k) (1/n)^k (1-1/n)^{m-k},
/// evaluated in the log domain (stable for large m).
[[nodiscard]] double expected_bins_with_load(std::uint64_t m, std::uint64_t n,
                                             std::uint32_t k);

/// Probability that a *fixed* bin receives at least k balls (binomial upper
/// tail, exact summation in the log domain; k must be <= m).
[[nodiscard]] double bin_load_at_least(std::uint64_t m, std::uint64_t n,
                                       std::uint32_t k);

/// First-moment upper bound on Pr[max load >= k]: n * Pr[Bin(m,1/n) >= k],
/// clamped to 1. The union-bound workhorse of every balls-into-bins proof.
[[nodiscard]] double max_load_union_bound(std::uint64_t m, std::uint64_t n,
                                          std::uint32_t k);

/// Expected fraction of balls landing in bins that already hold >= k balls
/// at the end (collision pressure; used by the hashing example's analysis).
[[nodiscard]] double expected_overflow_mass(std::uint64_t m, std::uint64_t n,
                                            std::uint32_t k);

}  // namespace bbb::theory
