#pragma once
/// \file sequences.hpp
/// The sequence toolbox behind Lemma A.1 of the paper: convolution,
/// majorization, and the dominance inequality
///   p majorizes q and r non-increasing  =>  sum p_k r_k <= sum q_k r_k.
/// The proof of Lemma 3.3 rests on exactly this structure (comparing the
/// stage-arrival distribution against a Poisson(199/198) reference), so we
/// implement it and property-test it directly.

#include <cstdint>
#include <vector>

namespace bbb::theory {

/// Discrete convolution (p * q)_k = sum_i p_i q_{k-i}.
/// \throws std::invalid_argument if either input is empty.
[[nodiscard]] std::vector<double> convolve(const std::vector<double>& p,
                                           const std::vector<double>& q);

/// True iff suffix sums of p dominate those of q at every index
/// (sequences are implicitly zero-padded to equal length):
/// for all j, sum_{k>=j} p_k >= sum_{k>=j} q_k.
[[nodiscard]] bool majorizes(const std::vector<double>& p, const std::vector<double>& q,
                             double tolerance = 1e-12);

/// True iff r is non-increasing (within tolerance).
[[nodiscard]] bool is_nonincreasing(const std::vector<double>& r,
                                    double tolerance = 1e-12);

/// sum_k p_k r_k over the common length.
[[nodiscard]] double dot(const std::vector<double>& p, const std::vector<double>& r);

/// Poisson(lambda) pmf truncated to {0..kmax} (for reference sequences).
[[nodiscard]] std::vector<double> poisson_pmf_vector(double lambda, std::uint32_t kmax);

}  // namespace bbb::theory
