#include "bbb/theory/phi_d.hpp"

#include <cmath>
#include <stdexcept>

namespace bbb::theory {

namespace {

// f(x) = x^d - (x^d - 1)/(x - 1); the root of f in (1, 2) is phi_d.
// Negative below the root, positive above.
double characteristic(double x, std::uint32_t d) {
  const double xd = std::pow(x, static_cast<double>(d));
  return xd - (xd - 1.0) / (x - 1.0);
}

}  // namespace

double phi_d(std::uint32_t d) {
  if (d < 2) throw std::invalid_argument("phi_d: d >= 2 required");
  double lo = 1.5, hi = 2.0;
  // characteristic(1.5, d) < 0 for all d >= 2 and characteristic(2, d) = 1 > 0,
  // so the bracket is valid; 100 bisections give ~2^-100 interval width
  // (double precision saturates well before that).
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (characteristic(mid, d) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace bbb::theory
