#include "bbb/theory/sequences.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::theory {

std::vector<double> convolve(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.empty() || q.empty()) throw std::invalid_argument("convolve: empty input");
  std::vector<double> out(p.size() + q.size() - 1, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < q.size(); ++j) {
      out[i + j] += p[i] * q[j];
    }
  }
  return out;
}

bool majorizes(const std::vector<double>& p, const std::vector<double>& q,
               double tolerance) {
  const std::size_t len = std::max(p.size(), q.size());
  double sp = 0.0, sq = 0.0;
  // Walk suffix sums from the tail; check dominance at every cut.
  for (std::size_t idx = len; idx-- > 0;) {
    if (idx < p.size()) sp += p[idx];
    if (idx < q.size()) sq += q[idx];
    if (sp + tolerance < sq) return false;
  }
  return true;
}

bool is_nonincreasing(const std::vector<double>& r, double tolerance) {
  for (std::size_t i = 1; i < r.size(); ++i) {
    if (r[i] > r[i - 1] + tolerance) return false;
  }
  return true;
}

double dot(const std::vector<double>& p, const std::vector<double>& r) {
  const std::size_t len = std::min(p.size(), r.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < len; ++i) acc += p[i] * r[i];
  return acc;
}

std::vector<double> poisson_pmf_vector(double lambda, std::uint32_t kmax) {
  if (!(lambda >= 0.0)) throw std::invalid_argument("poisson_pmf_vector: lambda >= 0");
  std::vector<double> pmf(kmax + 1);
  pmf[0] = std::exp(-lambda);
  for (std::uint32_t k = 1; k <= kmax; ++k) {
    pmf[k] = pmf[k - 1] * lambda / static_cast<double>(k);
  }
  return pmf;
}

}  // namespace bbb::theory
