#pragma once
/// \file obs.hpp
/// The observability vocabulary every layer shares: the three-position
/// instrumentation level and the per-run `ObsConfig` that sim/dyn/law
/// configs embed.
///
/// The contract that keeps this layer free to carry everywhere:
///
///   * `kOff` (the default) costs nothing on the hot path. The streaming
///     core is never asked to stream events anywhere — the few counters it
///     keeps (probes, lookahead refills, compact promotions) are passive
///     integers it already maintains in cold code, and the drivers simply
///     do not harvest them. tests/obs/overhead_guard_test.cpp pins the
///     greedy[2] streaming case within noise of the raw loop, and
///     placements are byte-identical because observation never draws from
///     an rng::Engine.
///   * `kCounters` harvests those passive counters after the work is done
///     (per replicate / per case) and folds them into a MetricsRegistry
///     snapshot — still nothing on the per-ball path.
///   * `kFull` additionally times individual events where a latency
///     distribution exists (the dyn engine's place/remove) and emits
///     periodic heartbeat snapshots; the only new per-event cost is two
///     steady_clock reads behind one predictable branch, and it is
///     confined to layers whose events are microseconds, not nanoseconds.
///
/// Placements are bit-for-bit identical at every level: observation reads
/// clocks and counters, never the randomness stream (enforced in
/// tests/obs/obs_integration_test.cpp for the sim, dyn, and law tiers).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace bbb::obs {

class TraceSink;

/// How much instrumentation a run carries. See the file comment for the
/// cost contract of each level.
enum class ObsLevel : std::uint8_t {
  kOff,       ///< no harvesting, no events — the hot path of PRs 1-6
  kCounters,  ///< harvest passive counters into a snapshot after the work
  kFull,      ///< counters + event latency histograms + heartbeats
};

/// Canonical spelling ("off" / "counters" / "full") for CLIs and JSON.
[[nodiscard]] std::string_view to_string(ObsLevel level) noexcept;

/// Parse "off" / "counters" / "full".
/// \throws std::invalid_argument otherwise.
[[nodiscard]] ObsLevel parse_obs_level(std::string_view text);

/// Per-run observability settings, embedded by value in
/// sim::ExperimentConfig, dyn::DynConfig, and law::LawConfig. Copyable
/// (configs are value types); the sink is shared, not owned per copy.
struct ObsConfig {
  ObsLevel level = ObsLevel::kOff;
  /// Structured JSON-lines destination (run events, replicate summaries,
  /// heartbeats). Null = no event stream; counters can still be harvested
  /// into the in-memory snapshot.
  std::shared_ptr<TraceSink> sink;
  /// Emit a heartbeat snapshot roughly every this many seconds while a
  /// replicate streams (level kFull with a sink; 0 = no heartbeats).
  /// Heartbeats are observational only — cadence is wall-clock, so their
  /// count is not deterministic, but the run's placements are.
  double heartbeat_seconds = 0.0;

  /// Counter harvesting active (kCounters or kFull)?
  [[nodiscard]] bool counters_on() const noexcept { return level != ObsLevel::kOff; }
  /// Event timing + heartbeats active?
  [[nodiscard]] bool full_on() const noexcept { return level == ObsLevel::kFull; }
  /// One-line "obs=LEVEL[ sink=PATH][ heartbeat=S]" suffix for describe().
  [[nodiscard]] std::string describe() const;
};

}  // namespace bbb::obs
