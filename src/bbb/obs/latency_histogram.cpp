#include "bbb/obs/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace bbb::obs {

namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::uint32_t LatencyHistogram::bucket_index(std::uint64_t value) noexcept {
  // Values below one full octave of sub-buckets are their own bucket
  // (exact representation), everything above is log-linear: the octave
  // index (exponent) selects a group of kSubBuckets buckets, the top
  // kSubBits mantissa bits below the leading one select within it.
  if (value < kSubBuckets) return static_cast<std::uint32_t>(value);
  const auto exponent = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  const auto mantissa =
      static_cast<std::uint32_t>((value >> (exponent - kSubBits)) & (kSubBuckets - 1));
  return ((exponent - kSubBits + 1) << kSubBits) | mantissa;
}

std::uint64_t LatencyHistogram::bucket_lower(std::uint32_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::uint32_t exponent = (index >> kSubBits) + kSubBits - 1;
  const std::uint64_t mantissa = index & (kSubBuckets - 1);
  return (std::uint64_t{1} << exponent) | (mantissa << (exponent - kSubBits));
}

std::uint64_t LatencyHistogram::bucket_upper(std::uint32_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::uint32_t exponent = (index >> kSubBits) + kSubBits - 1;
  if (exponent == 63 && (index & (kSubBuckets - 1)) == kSubBuckets - 1) {
    return kU64Max;  // top bucket of the top octave
  }
  return bucket_lower(index) + ((std::uint64_t{1} << (exponent - kSubBits)) - 1);
}

void LatencyHistogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::uint32_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
  // Saturating sum: value * count, clamped at uint64 max. An overflow in
  // the multiplication itself saturates directly.
  const bool mul_overflow = value != 0 && count > kU64Max / value;
  const std::uint64_t add = mul_overflow ? kU64Max : value * count;
  if (saturated_ || mul_overflow || add > kU64Max - sum_) {
    sum_ = kU64Max;
    saturated_ = true;
  } else {
    sum_ += add;
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  if (saturated_ || other.saturated_ || other.sum_ > kU64Max - sum_) {
    sum_ = kU64Max;
    saturated_ = true;
  } else {
    sum_ += other.sum_;
  }
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target order statistic, 1-based: ceil(q * count), at least 1.
  const double scaled = q * static_cast<double>(count_);
  auto rank = static_cast<std::uint64_t>(std::ceil(scaled));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  // The extreme order statistics ARE the tracked exact min/max — report
  // them directly instead of a bucket edge.
  if (rank == 1) return min_;
  if (rank == count_) return max_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper(static_cast<std::uint32_t>(i));
      // The observed extremes are exact; never report outside them.
      return std::clamp(upper, min_, max_);
    }
  }
  return max_;
}

}  // namespace bbb::obs
