#pragma once
/// \file cli.hpp
/// The shared `--obs` surface of every bbb binary. All five CLIs register
/// the same three flags and parse them through here, so the observability
/// vocabulary cannot drift between tools:
///
///   --obs=off|counters|full   instrumentation level (default off)
///   --obs-out=FILE            JSON-lines event stream (requires --obs on)
///   --heartbeat=SECS          heartbeat cadence for --obs=full runs
///
/// plus the stderr summary table (`print_summary`) each tool emits after
/// its normal output when any instrumentation was on — stderr, so piping
/// a tool's stdout (CSV, JSON) stays clean.

#include <cstdio>

#include "bbb/io/argparse.hpp"
#include "bbb/obs/metrics.hpp"
#include "bbb/obs/obs.hpp"

namespace bbb::obs {

/// Register --obs / --obs-out / --heartbeat on `parser`.
void add_obs_flags(io::ArgParser& parser);

/// Read the three flags back into an ObsConfig, opening the trace sink
/// when --obs-out was given. \throws std::invalid_argument for an unknown
/// level, --obs-out or --heartbeat with --obs=off (silently collecting
/// nothing would be a lying flag), or a negative heartbeat;
/// std::runtime_error when the sink path cannot be opened.
[[nodiscard]] ObsConfig parse_obs_flags(const io::ArgParser& parser);

/// Human-readable metric table (name-sorted; histograms as
/// count/mean/p50/p99/p999/max). No-op when the snapshot is empty.
void print_summary(const Snapshot& snapshot, std::FILE* out);

}  // namespace bbb::obs
