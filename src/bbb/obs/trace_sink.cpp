#include "bbb/obs/trace_sink.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bbb::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  out += '"';
}

}  // namespace

JsonLine::JsonLine(std::string_view event, std::string_view tool) {
  out_ += '{';
  has_fields_.push_back(false);
  field("schema", kObsSchema);
  field("event", event);
  field("tool", tool);
}

void JsonLine::key_prefix(std::string_view key) {
  if (has_fields_.back()) out_ += ',';
  has_fields_.back() = true;
  append_escaped(out_, key);
  out_ += ':';
}

JsonLine& JsonLine::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  append_escaped(out_, value);
  return *this;
}

JsonLine& JsonLine::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonLine& JsonLine::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonLine& JsonLine::field(std::string_view key, double value) {
  key_prefix(key);
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonLine& JsonLine::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonLine& JsonLine::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  has_fields_.push_back(false);
  return *this;
}

JsonLine& JsonLine::end_object() {
  if (has_fields_.size() <= 1) {
    throw std::logic_error("JsonLine::end_object: no open nested object");
  }
  out_ += '}';
  has_fields_.pop_back();
  return *this;
}

std::string JsonLine::finish() {
  while (!has_fields_.empty()) {
    out_ += '}';
    has_fields_.pop_back();
  }
  return std::move(out_);
}

void append_metrics(JsonLine& line, const Snapshot& snapshot) {
  line.begin_object("metrics");
  for (const SnapshotEntry& entry : snapshot.entries) {
    switch (entry.kind) {
      case SnapshotEntry::Kind::kCounter:
        line.field(entry.name, entry.counter);
        break;
      case SnapshotEntry::Kind::kGauge:
        line.field(entry.name, entry.gauge);
        break;
      case SnapshotEntry::Kind::kHistogram: {
        const LatencyHistogram& h = entry.histogram;
        line.begin_object(entry.name)
            .field("count", h.count())
            .field("min", h.min())
            .field("max", h.max())
            .field("mean", h.mean())
            .field("p50", h.p50())
            .field("p99", h.p99())
            .field("p999", h.p999())
            .end_object();
        break;
      }
    }
  }
  line.end_object();
}

std::shared_ptr<TraceSink> TraceSink::open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("TraceSink: cannot open '" + path + "' for writing");
  }
  return std::shared_ptr<TraceSink>(new TraceSink(file, path));
}

TraceSink::TraceSink(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

TraceSink::~TraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceSink::write(JsonLine&& line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // The mutex serializes writers, so relaxed ordering suffices: the
  // increment itself never races, and readers only need the count, not
  // happens-before with the file contents.
  line.field("seq", seq_.fetch_add(1, std::memory_order_relaxed));
  const std::string text = line.finish();
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

std::uint64_t TraceSink::records_written() const noexcept {
  return seq_.load(std::memory_order_relaxed);
}

}  // namespace bbb::obs
