#pragma once
/// \file trace_sink.hpp
/// Structured run-event stream: schema-versioned JSON-lines records
/// (`--obs-out=FILE`) that tools/validate_obs.py checks against
/// tools/obs_schema.json. One line per event, one event per write, so a
/// run killed mid-stream still leaves every completed line parseable —
/// the property that matters for giant-scale runs whose heartbeats are
/// the only progress signal.
///
/// Event vocabulary (schema "bbb-obs-v1"):
///   * run_start  — tool name + full config description, first line of a run
///   * replicate  — one per finished replicate, with its metric snapshot
///   * heartbeat  — periodic progress inside a replicate (wall-clock
///                  cadence; count is intentionally nondeterministic)
///   * summary    — final merged metric snapshot, last line of a run
///
/// Every record carries `schema`, `event`, `tool`, and a per-sink `seq`
/// that increases strictly monotonically — the validator enforces this,
/// which catches interleaved writers and lost lines.
///
/// `JsonLine` is a deliberately tiny escaping writer (no DOM, no
/// dependency): fields append in call order, nested objects via
/// begin_object/end_object. The sink assigns `seq` under its mutex at
/// write time, so concurrent emitters (the future sharded tier) cannot
/// produce duplicate or out-of-order sequence numbers.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bbb/obs/metrics.hpp"

namespace bbb::obs {

/// Schema identifier stamped on every record.
inline constexpr std::string_view kObsSchema = "bbb-obs-v1";

/// Single-line JSON object builder with string escaping and nested
/// objects. Build order = output order; finish() closes all open scopes.
class JsonLine {
 public:
  /// Starts `{"schema":"bbb-obs-v1","event":EVENT,"tool":TOOL`.
  JsonLine(std::string_view event, std::string_view tool);

  JsonLine& field(std::string_view key, std::string_view value);
  JsonLine& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  JsonLine& field(std::string_view key, std::uint64_t value);
  JsonLine& field(std::string_view key, std::int64_t value);
  /// Doubles print with %.17g (round-trip exact); non-finite values are
  /// written as 0 — JSON has no inf/nan, and no bbb metric is legitimately
  /// non-finite.
  JsonLine& field(std::string_view key, double value);
  JsonLine& field(std::string_view key, bool value);

  JsonLine& begin_object(std::string_view key);
  JsonLine& end_object();

  /// Close every open scope and return the completed line (no newline).
  /// The builder is spent afterwards.
  [[nodiscard]] std::string finish();

 private:
  void key_prefix(std::string_view key);

  std::string out_;
  std::vector<bool> has_fields_;  // one flag per open object scope
};

/// Append the snapshot as `"metrics":{...}`: counters and gauges as
/// numbers, histograms as {count,min,max,mean,p50,p99,p999} objects.
void append_metrics(JsonLine& line, const Snapshot& snapshot);

/// Append-mode JSON-lines writer. Thread-safe; every write is one line
/// followed by a flush.
class TraceSink {
 public:
  /// Open `path` for writing (truncates). \throws std::runtime_error on
  /// failure.
  [[nodiscard]] static std::shared_ptr<TraceSink> open(const std::string& path);

  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Stamp `seq`, close, write, flush.
  void write(JsonLine&& line);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Number of records written so far.
  [[nodiscard]] std::uint64_t records_written() const noexcept;

 private:
  TraceSink(std::FILE* file, std::string path);

  std::mutex mutex_;
  std::FILE* file_;
  std::string path_;
  // Atomic, not mutex-guarded: records_written() is called from outside
  // the writer threads (progress polling while replicate heartbeats
  // stream), and an unsynchronized uint64 read beside the locked
  // increment in write() is a data race — TSan caught exactly that
  // (regression: ObsTsanStress.RecordsWrittenRacesWithWriters). Ordering
  // against the file contents is still the mutex's job; the atomic only
  // makes the count itself safely readable.
  std::atomic<std::uint64_t> seq_{0};
};

/// Wall-clock cadence gate for heartbeat events. due() flips true once
/// per elapsed interval; interval <= 0 never fires. Cheap enough to poll
/// every few thousand iterations of a streaming loop.
class Heartbeat {
 public:
  explicit Heartbeat(double interval_seconds) noexcept
      : interval_(interval_seconds),
        last_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] bool due() noexcept {
    if (interval_ <= 0.0) return false;
    const auto now = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(now - last_).count();
    if (elapsed < interval_) return false;
    last_ = now;
    return true;
  }

 private:
  double interval_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace bbb::obs
