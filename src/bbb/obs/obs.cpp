#include "bbb/obs/obs.hpp"

#include <stdexcept>

#include "bbb/obs/trace_sink.hpp"

namespace bbb::obs {

std::string_view to_string(ObsLevel level) noexcept {
  switch (level) {
    case ObsLevel::kOff:
      return "off";
    case ObsLevel::kCounters:
      return "counters";
    case ObsLevel::kFull:
      return "full";
  }
  return "off";
}

ObsLevel parse_obs_level(std::string_view text) {
  if (text == "off") return ObsLevel::kOff;
  if (text == "counters") return ObsLevel::kCounters;
  if (text == "full") return ObsLevel::kFull;
  throw std::invalid_argument("parse_obs_level: expected 'off', 'counters', or "
                              "'full', got '" +
                              std::string(text) + "'");
}

std::string ObsConfig::describe() const {
  if (level == ObsLevel::kOff) return "";
  std::string out = " obs=" + std::string(to_string(level));
  if (sink) out += " obs-out=" + sink->path();
  if (heartbeat_seconds > 0.0) {
    // Trim trailing zeros so "1.5" and "2" both read naturally.
    std::string hb = std::to_string(heartbeat_seconds);
    while (!hb.empty() && hb.back() == '0') hb.pop_back();
    if (!hb.empty() && hb.back() == '.') hb.pop_back();
    out += " heartbeat=" + hb;
  }
  return out;
}

}  // namespace bbb::obs
