#include "bbb/obs/harvest.hpp"

#include "bbb/core/batch_kernel.hpp"
#include "bbb/core/bin_state.hpp"
#include "bbb/core/probe.hpp"

namespace bbb::obs {

void CoreCounters::accumulate(const CoreCounters& other) noexcept {
  probes += other.probes;
  balls_placed += other.balls_placed;
  reallocations += other.reallocations;
  rounds += other.rounds;
  lookahead_refills += other.lookahead_refills;
  lookahead_discarded_words += other.lookahead_discarded_words;
  compact_promotions += other.compact_promotions;
  compact_demotions += other.compact_demotions;
  explode_fallbacks += other.explode_fallbacks;
  batch_batches += other.batch_batches;
  batch_waves += other.batch_waves;
  batch_fast_balls += other.batch_fast_balls;
  batch_fallback_balls += other.batch_fallback_balls;
}

CoreCounters harvest(const core::StreamingAllocator& alloc) {
  CoreCounters c = harvest(alloc.rule(), &alloc.state());
  c.explode_fallbacks = alloc.explode_fallbacks();
  return c;
}

CoreCounters harvest(const core::PlacementRule& rule, const core::BinState* state) {
  CoreCounters c;
  c.probes = rule.probes();
  c.balls_placed = rule.total_placed();
  c.reallocations = rule.reallocations();
  c.rounds = rule.rounds();
  if (const core::ProbeLookahead* la = rule.lookahead(); la != nullptr) {
    c.lookahead_refills = la->refills();
    c.lookahead_discarded_words = la->discarded_words();
  }
  if (const core::BatchPlacer* bk = rule.batch_kernel(); bk != nullptr) {
    c.batch_batches = bk->batches();
    c.batch_waves = bk->waves();
    c.batch_fast_balls = bk->fast_balls();
    c.batch_fallback_balls = bk->fallback_balls();
  }
  if (state != nullptr) {
    c.compact_promotions = state->compact_promotions();
    c.compact_demotions = state->compact_demotions();
  }
  return c;
}

CoreCounters harvest(const core::AllocationResult& result) {
  CoreCounters c;
  c.probes = result.probes;
  c.balls_placed = result.balls;
  c.reallocations = result.reallocations;
  c.rounds = result.rounds;
  return c;
}

void fold_into(MetricsRegistry& registry, const CoreCounters& counters) {
  registry.add_counter("core.probe.count", counters.probes);
  registry.add_counter("core.ball.placed", counters.balls_placed);
  if (counters.reallocations != 0) {
    registry.add_counter("core.rule.reallocations", counters.reallocations);
  }
  if (counters.rounds != 0) {
    registry.add_counter("core.rule.rounds", counters.rounds);
  }
  if (counters.lookahead_refills != 0) {
    registry.add_counter("core.lookahead.refills", counters.lookahead_refills);
  }
  if (counters.lookahead_discarded_words != 0) {
    registry.add_counter("core.lookahead.discarded_words",
                         counters.lookahead_discarded_words);
  }
  if (counters.compact_promotions != 0) {
    registry.add_counter("state.compact.promotions", counters.compact_promotions);
  }
  if (counters.compact_demotions != 0) {
    registry.add_counter("state.compact.demotions", counters.compact_demotions);
  }
  if (counters.explode_fallbacks != 0) {
    registry.add_counter("core.weighted.explode_fallbacks",
                         counters.explode_fallbacks);
  }
  if (counters.batch_batches != 0) {
    registry.add_counter("core.batch.batches", counters.batch_batches);
    registry.add_counter("core.batch.waves", counters.batch_waves);
    registry.add_counter("core.batch.fast_balls", counters.batch_fast_balls);
    registry.add_counter("core.batch.fallback_balls",
                         counters.batch_fallback_balls);
  }
}

void fold_into(MetricsRegistry& registry, const shard::ShardCounters& counters) {
  if (counters.messages == 0 && counters.rounds == 0) return;
  if (counters.rounds != 0) {
    registry.add_counter("shard.sync_rounds", counters.rounds);
  }
  if (counters.cross_shard_probes != 0) {
    registry.add_counter("shard.probe.cross_shard", counters.cross_shard_probes);
  }
  if (counters.deferred_balls != 0) {
    registry.add_counter("shard.ball.deferred", counters.deferred_balls);
  }
  registry.add_counter("shard.message.count", counters.messages);
  registry.set_gauge("shard.ring.highwater",
                     static_cast<double>(counters.ring_highwater));
}

}  // namespace bbb::obs
