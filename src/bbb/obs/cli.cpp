#include "bbb/obs/cli.hpp"

#include <cinttypes>
#include <stdexcept>

#include "bbb/obs/trace_sink.hpp"

namespace bbb::obs {

void add_obs_flags(io::ArgParser& parser) {
  parser.add_flag("obs", "off",
                  "instrumentation level: off | counters | full (see "
                  "docs/OBSERVABILITY.md)");
  parser.add_flag("obs-out", "",
                  "write schema-versioned JSON-lines run events to this file "
                  "(requires --obs != off)");
  parser.add_flag("heartbeat", 0.0,
                  "emit a heartbeat event roughly every SECS seconds while a "
                  "replicate streams (requires --obs=full and --obs-out)");
}

ObsConfig parse_obs_flags(const io::ArgParser& parser) {
  ObsConfig config;
  config.level = parse_obs_level(parser.get_string("obs"));
  const std::string& out = parser.get_string("obs-out");
  const double heartbeat = parser.get_double("heartbeat");
  if (heartbeat < 0.0) {
    throw std::invalid_argument("--heartbeat must be >= 0");
  }
  if (config.level == ObsLevel::kOff) {
    // A sink or heartbeat with instrumentation off would silently record
    // nothing; fail loudly instead of shipping an empty file.
    if (!out.empty()) {
      throw std::invalid_argument("--obs-out requires --obs=counters or --obs=full");
    }
    if (heartbeat > 0.0) {
      throw std::invalid_argument("--heartbeat requires --obs=full");
    }
    return config;
  }
  if (heartbeat > 0.0 && config.level != ObsLevel::kFull) {
    throw std::invalid_argument("--heartbeat requires --obs=full");
  }
  if (!out.empty()) config.sink = TraceSink::open(out);
  config.heartbeat_seconds = heartbeat;
  return config;
}

void print_summary(const Snapshot& snapshot, std::FILE* out) {
  if (snapshot.empty()) return;
  std::fprintf(out, "obs summary (%zu metrics):\n", snapshot.entries.size());
  for (const SnapshotEntry& entry : snapshot.entries) {
    switch (entry.kind) {
      case SnapshotEntry::Kind::kCounter:
        std::fprintf(out, "  %-36s %20" PRIu64 "\n", entry.name.c_str(),
                     entry.counter);
        break;
      case SnapshotEntry::Kind::kGauge:
        std::fprintf(out, "  %-36s %20.6g\n", entry.name.c_str(), entry.gauge);
        break;
      case SnapshotEntry::Kind::kHistogram: {
        const LatencyHistogram& h = entry.histogram;
        std::fprintf(out,
                     "  %-36s count=%" PRIu64 " mean=%.1f p50=%" PRIu64
                     " p99=%" PRIu64 " p999=%" PRIu64 " max=%" PRIu64 "\n",
                     entry.name.c_str(), h.count(), h.mean(), h.p50(), h.p99(),
                     h.p999(), h.max());
        break;
      }
    }
  }
}

}  // namespace bbb::obs
