#include "bbb/obs/metrics.hpp"

#include <algorithm>

namespace bbb::obs {

const SnapshotEntry* Snapshot::find(std::string_view name) const noexcept {
  // entries is name-sorted (snapshot() walks sorted maps; merge keeps order).
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, std::string_view key) { return e.name < key; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  const SnapshotEntry* entry = find(name);
  if (entry == nullptr || entry->kind != SnapshotEntry::Kind::kCounter) return 0;
  return entry->counter;
}

void Snapshot::merge(const Snapshot& other) {
  std::vector<SnapshotEntry> merged;
  merged.reserve(entries.size() + other.entries.size());
  auto a = entries.begin();
  auto b = other.entries.begin();
  while (a != entries.end() || b != other.entries.end()) {
    if (b == other.entries.end() || (a != entries.end() && a->name < b->name)) {
      merged.push_back(std::move(*a++));
    } else if (a == entries.end() || b->name < a->name) {
      merged.push_back(*b++);
    } else {
      SnapshotEntry entry = std::move(*a++);
      switch (entry.kind) {
        case SnapshotEntry::Kind::kCounter:
          entry.counter += b->counter;
          break;
        case SnapshotEntry::Kind::kGauge:
          entry.gauge = b->gauge;
          break;
        case SnapshotEntry::Kind::kHistogram:
          entry.histogram.merge(b->histogram);
          break;
      }
      merged.push_back(std::move(entry));
      ++b;
    }
  }
  entries = std::move(merged);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t n) {
  counter(name).add(n);
}

void MetricsRegistry::set_gauge(std::string_view name, double v) { gauge(name).set(v); }

void MetricsRegistry::merge_histogram(std::string_view name,
                                      const LatencyHistogram& h) {
  histogram(name).merge(h);
}

Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  // The three maps are interleaved into one name-sorted entry list.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto h = histograms_.begin();
  while (c != counters_.end() || g != gauges_.end() || h != histograms_.end()) {
    // Pick the lexicographically smallest head among the three maps.
    const std::string* best = nullptr;
    int which = -1;
    if (c != counters_.end()) {
      best = &c->first;
      which = 0;
    }
    if (g != gauges_.end() && (best == nullptr || g->first < *best)) {
      best = &g->first;
      which = 1;
    }
    if (h != histograms_.end() && (best == nullptr || h->first < *best)) {
      which = 2;
    }
    SnapshotEntry entry;
    switch (which) {
      case 0:
        entry.name = c->first;
        entry.kind = SnapshotEntry::Kind::kCounter;
        entry.counter = c->second->value();
        ++c;
        break;
      case 1:
        entry.name = g->first;
        entry.kind = SnapshotEntry::Kind::kGauge;
        entry.gauge = g->second->value();
        ++g;
        break;
      default:
        entry.name = h->first;
        entry.kind = SnapshotEntry::Kind::kHistogram;
        entry.histogram = *h->second;
        ++h;
        break;
    }
    snap.entries.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace bbb::obs
