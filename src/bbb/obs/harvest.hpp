#pragma once
/// \file harvest.hpp
/// The one-way bridge from the core's passive counters to the obs layer.
/// The streaming core knows nothing about obs — it keeps plain integers
/// in code that is already cold (side-table touches, lookahead refills,
/// explode fallbacks) or already counted (probes). After the work, a
/// driver *harvests* those integers into a `CoreCounters` struct and
/// folds it into a MetricsRegistry under the canonical dotted names.
/// Post-hoc harvesting is what makes `--obs=counters` free on the per-ball
/// path: reading nine integers once per replicate.
///
/// Canonical name catalog for the harvested counters (the full catalog,
/// including dyn/sim/law metrics, lives in docs/OBSERVABILITY.md):
///   core.probe.count                 random bin choices (allocation time)
///   core.ball.placed                 total weight ever placed
///   core.rule.reallocations          post-placement moves (cuckoo kicks)
///   core.rule.rounds                 synchronous rounds / balancing passes
///   core.lookahead.refills           probe-lookahead buffer refills
///   core.lookahead.discarded_words   read-ahead words thrown away
///   state.compact.promotions         8-bit lane -> overflow side-table
///   state.compact.demotions          overflow side-table -> 8-bit lane
///   core.weighted.explode_fallbacks  weighted chains placed unit-by-unit
///   core.batch.batches               kernel-path place_batch calls
///   core.batch.waves                 batch-kernel waves processed
///   core.batch.fast_balls            balls committed by the vector path
///   core.batch.fallback_balls        balls re-run on the exact scalar path
///   shard.sync_rounds                synchronized rounds, summed over shards
///   shard.probe.cross_shard          probes routed to another shard's bins
///   shard.ball.deferred              balls replayed in the cleanup sub-phase
///   shard.message.count              SPSC ring messages pushed (req+rep+commit)
///   shard.ring.highwater             max outbound-ring occupancy observed

#include <cstdint>

#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/obs/metrics.hpp"
#include "bbb/shard/counters.hpp"

namespace bbb::obs {

/// Everything the core can account for one run, as plain integers —
/// cheap to store per replicate (sim keeps one per ReplicateRecord).
struct CoreCounters {
  std::uint64_t probes = 0;
  std::uint64_t balls_placed = 0;
  std::uint64_t reallocations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t lookahead_refills = 0;
  std::uint64_t lookahead_discarded_words = 0;
  std::uint64_t compact_promotions = 0;
  std::uint64_t compact_demotions = 0;
  std::uint64_t explode_fallbacks = 0;
  std::uint64_t batch_batches = 0;
  std::uint64_t batch_waves = 0;
  std::uint64_t batch_fast_balls = 0;
  std::uint64_t batch_fallback_balls = 0;

  /// Element-wise sum (fold across replicates).
  void accumulate(const CoreCounters& other) noexcept;

  friend bool operator==(const CoreCounters&, const CoreCounters&) = default;
};

/// Read every counter a StreamingAllocator exposes: the rule's probe and
/// placement counts, its lookahead (when it has one), the state's compact
/// side-table traffic, and the allocator's explode fallbacks. O(1).
[[nodiscard]] CoreCounters harvest(const core::StreamingAllocator& alloc);

/// Harvest from a bare rule + state pair (the batch adapter's shape).
/// `state` may be null when only rule-side counters exist.
[[nodiscard]] CoreCounters harvest(const core::PlacementRule& rule,
                                   const core::BinState* state);

/// The subset an AllocationResult carries (the wide batch path runs whole
/// protocols whose rule internals are not exposed): probes, placed weight,
/// reallocations, rounds.
[[nodiscard]] CoreCounters harvest(const core::AllocationResult& result);

/// Fold into `registry` under the canonical names above. Zero-valued
/// counters with no possible source are still registered when their
/// machinery was in play (probes/placed always; the rest only when
/// nonzero) so summaries stay compact.
void fold_into(MetricsRegistry& registry, const CoreCounters& counters);

/// Fold a sharded run's aggregated counters under the shard.* names above.
/// Registered only when the shard engine actually ran (messages or rounds
/// nonzero), so unsharded summaries stay free of shard rows; highwater is
/// a gauge (max across replicates), the rest are summed counters.
void fold_into(MetricsRegistry& registry, const shard::ShardCounters& counters);

}  // namespace bbb::obs
