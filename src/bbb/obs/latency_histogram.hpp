#pragma once
/// \file latency_histogram.hpp
/// Log-linear histogram over non-negative 64-bit values (nanosecond
/// latencies, sizes, counts): every power-of-two octave is split into
/// `kSubBuckets` equal linear sub-buckets, so the relative bucket width is
/// bounded by 2^{1-kSubBits} (~6%) at every magnitude, while the whole
/// range [0, 2^64) needs under 2k buckets.
///
/// Why not stats::IntHistogram (exact per-value counts)? Latencies span
/// six orders of magnitude; a dense exact histogram anchored at the
/// minimum would hold millions of cells. Why not stats::P2Quantile? P² is
/// O(1) per quantile but approximate in a data-dependent way and — the
/// killer for replicated runs — two P² states cannot be merged. This
/// histogram records in O(1), extracts any quantile in O(#buckets), and
/// merges LOSSLESSLY: merge(h(A), h(B)) equals h(A ++ B) bucket for
/// bucket, so per-replicate histograms folded in replicate order give the
/// same answer for any thread count. Merge is associative and commutative
/// (property-tested in tests/obs/latency_histogram_test.cpp).
///
/// Quantile contract: quantile(q) returns the upper edge of the bucket
/// holding the ceil(q * count)-th smallest observation (clamped to the
/// exact observed min/max, which are tracked separately; the extreme
/// ranks return that exact min/max). The true order statistic lies in
/// that bucket, so the estimate is exact for values below kSubBuckets and
/// within one bucket width (relative error <= 2^{1-kSubBits}) above —
/// tested against stats::exact_quantile.

#include <cstdint>
#include <vector>

namespace bbb::obs {

/// Mergeable log-linear histogram with exact min/max and saturating sum.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per octave.
  static constexpr std::uint32_t kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;

  LatencyHistogram() = default;

  /// Record one observation (O(1); grows the bucket vector on first touch
  /// of a new magnitude).
  void record(std::uint64_t value) { record_n(value, 1); }

  /// Record `count` observations of the same value as one O(1) update.
  void record_n(std::uint64_t value, std::uint64_t count);

  /// Fold `other` in. Lossless: the bucket vector afterwards equals the
  /// one a single histogram over both observation streams would hold.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Exact smallest / largest recorded value. 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  /// Sum of all recorded values, saturating at uint64 max (the mean is a
  /// lower bound once saturated() reports true).
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] bool saturated() const noexcept { return saturated_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// q-quantile per the bucket-upper-edge contract in the file comment.
  /// q is clamped to [0, 1]; 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return quantile(0.999); }

  /// Bucket index of `value` (stable across instances — the merge key).
  [[nodiscard]] static std::uint32_t bucket_index(std::uint64_t value) noexcept;
  /// Smallest / largest value mapping to bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_lower(std::uint32_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::uint32_t index) noexcept;

  /// Occupied bucket counts (trailing zero buckets trimmed lazily; two
  /// histograms over the same observations compare equal).
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  friend bool operator==(const LatencyHistogram& a,
                         const LatencyHistogram& b) noexcept {
    return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min_ == b.min_ &&
           a.max_ == b.max_ && a.saturated_ == b.saturated_ &&
           a.buckets_ == b.buckets_;
  }

 private:
  std::vector<std::uint64_t> buckets_;  // grown to the highest touched index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  bool saturated_ = false;
};

}  // namespace bbb::obs
