#pragma once
/// \file metrics.hpp
/// The in-memory metric store: cache-line-padded `Counter` / `Gauge`
/// atoms, a `MetricsRegistry` keyed by hierarchical dotted names
/// ("core.probe.count", "dyn.event.place_latency_ns"), and the immutable
/// `Snapshot` the drivers hand to CLIs, trace sinks, and summaries.
///
/// Cost model. Metric objects are created through the registry (mutex,
/// name lookup) once per run — never per ball or per event. Updates on an
/// obtained reference are single relaxed atomic RMWs with no false
/// sharing (each atom owns its cache line, sized for the sharded
/// multi-core tier where worker threads will bump disjoint counters).
/// The hot streaming loop does not touch even that: the core keeps plain
/// integer counters in already-cold code and the drivers *fold* them into
/// the registry after the work (see harvest.hpp), so `--obs=off` runs the
/// byte-identical loop of PRs 1-6.
///
/// Tokenless no-op handles. `CounterHandle` / `GaugeHandle` /
/// `HistogramHandle` wrap a nullable pointer: a disabled handle is the
/// null state, and `add()` / `set()` / `record()` on it are empty inlined
/// bodies — no virtual dispatch, no branch on a config struct, nothing
/// for the optimizer to keep. Layers that want optional instrumentation
/// accept a handle by value and call it unconditionally.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "bbb/obs/latency_histogram.hpp"

namespace bbb::obs {

/// Monotone event counter. Relaxed atomics: totals are exact, ordering
/// against other metrics is not promised (snapshots are taken quiescent).
class alignas(64) Counter {
 public:
  void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Sampled instantaneous value (gap, Ψ, fold wall time). Last write wins.
class alignas(64) Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// No-op-capable counter reference. Null handle = disabled = empty body.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* counter) noexcept : counter_(counter) {}
  void add(std::uint64_t n) noexcept {
    if (counter_ != nullptr) counter_->add(n);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] bool enabled() const noexcept { return counter_ != nullptr; }

 private:
  Counter* counter_ = nullptr;
};

/// No-op-capable gauge reference.
class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* gauge) noexcept : gauge_(gauge) {}
  void set(double v) noexcept {
    if (gauge_ != nullptr) gauge_->set(v);
  }
  [[nodiscard]] bool enabled() const noexcept { return gauge_ != nullptr; }

 private:
  Gauge* gauge_ = nullptr;
};

/// No-op-capable histogram reference. Histogram recording is NOT atomic —
/// a handle must only be used from one thread at a time (per-replicate
/// histograms are merged by the driver, matching the fold discipline).
class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(LatencyHistogram* histogram) noexcept
      : histogram_(histogram) {}
  void record(std::uint64_t v) noexcept {
    if (histogram_ != nullptr) histogram_->record(v);
  }
  [[nodiscard]] bool enabled() const noexcept { return histogram_ != nullptr; }

 private:
  LatencyHistogram* histogram_ = nullptr;
};

/// One metric in a Snapshot. Exactly one of the three payloads is live,
/// selected by `kind` (a tagged struct keeps the JSON/table writers
/// trivial; the registry is small so the slack is irrelevant).
struct SnapshotEntry {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  /// Full histogram state, not just extracted quantiles, so snapshots
  /// merge losslessly (DynSummary folds per-replicate snapshots).
  LatencyHistogram histogram;
};

/// Immutable, name-sorted copy of a registry's state. Value type: cheap
/// to return from run_* entry points and embed in summaries.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  /// Entry lookup by exact name; nullptr when absent.
  [[nodiscard]] const SnapshotEntry* find(std::string_view name) const noexcept;
  /// Convenience: counter value by name, 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;

  /// Fold `other` in: counters add, gauges take the other's value (it is
  /// the later sample), histograms merge losslessly. Names union.
  void merge(const Snapshot& other);
};

/// Owner of all metrics for one run. Names are hierarchical dotted paths;
/// the first obtainer creates the metric, later obtainers share it.
/// Obtaining is mutex-guarded (do it once, outside loops); updating the
/// returned references is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (metrics are never removed).
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  /// One-shot fold helpers for post-run harvesting.
  void add_counter(std::string_view name, std::uint64_t n);
  void set_gauge(std::string_view name, double v);
  void merge_histogram(std::string_view name, const LatencyHistogram& h);

  /// Name-sorted copy of the current state.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // unique_ptr cells: atomics are not movable, and handed-out references
  // must survive map rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

}  // namespace bbb::obs
