#include "bbb/io/csv.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bbb::io {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (header.empty()) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << escape(header[i]) << (i + 1 == header.size() ? '\n' : ',');
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << escape(cells[i]) << (i + 1 == cells.size() ? '\n' : ',');
  }
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  write_row(cells);
}

}  // namespace bbb::io
