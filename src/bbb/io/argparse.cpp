#include "bbb/io/argparse.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bbb::io {

ArgParser::ArgParser(std::string program_name, std::string description)
    : program_(std::move(program_name)), description_(std::move(description)) {}

void ArgParser::add(const std::string& key, Kind kind, std::string default_value,
                    const std::string& help_text) {
  if (flags_.contains(key)) {
    throw std::invalid_argument("ArgParser: duplicate flag --" + key);
  }
  flags_[key] = Flag{kind, default_value, std::move(default_value), help_text};
  order_.push_back(key);
}

void ArgParser::add_flag(const std::string& key, std::uint64_t default_value,
                         const std::string& help_text) {
  add(key, Kind::kU64, std::to_string(default_value), help_text);
}

void ArgParser::add_flag(const std::string& key, double default_value,
                         const std::string& help_text) {
  std::ostringstream os;
  os << default_value;
  add(key, Kind::kDouble, os.str(), help_text);
}

void ArgParser::add_flag(const std::string& key, const std::string& default_value,
                         const std::string& help_text) {
  add(key, Kind::kString, default_value, help_text);
}

ArgParser::Flag& ArgParser::find(const std::string& key) {
  const auto it = flags_.find(key);
  if (it == flags_.end()) throw std::invalid_argument("unknown flag --" + key);
  return it->second;
}

const ArgParser::Flag& ArgParser::find(const std::string& key) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) throw std::invalid_argument("unknown flag --" + key);
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got '" + arg + "'");
    }
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      if (i + 1 >= argc) {
        throw std::invalid_argument("flag --" + key + " needs a value");
      }
      value = argv[++i];
    }
    Flag& flag = find(key);
    // Validate numeric formats eagerly so errors point at the flag.
    try {
      std::size_t pos = 0;
      if (flag.kind == Kind::kU64) {
        (void)std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument("trailing junk");
      } else if (flag.kind == Kind::kDouble) {
        (void)std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument("trailing junk");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + key + ": bad value '" + value + "'");
    }
    flag.value = value;
  }
  return true;
}

std::uint64_t ArgParser::get_u64(const std::string& key) const {
  const Flag& f = find(key);
  if (f.kind != Kind::kU64) throw std::invalid_argument("--" + key + " is not integer");
  return std::stoull(f.value);
}

double ArgParser::get_double(const std::string& key) const {
  const Flag& f = find(key);
  if (f.kind == Kind::kString) {
    throw std::invalid_argument("--" + key + " is not numeric");
  }
  return std::stod(f.value);
}

const std::string& ArgParser::get_string(const std::string& key) const {
  const Flag& f = find(key);
  if (f.kind != Kind::kString) throw std::invalid_argument("--" + key + " is not string");
  return f.value;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& key : order_) {
    const Flag& f = flags_.at(key);
    const char* type = f.kind == Kind::kU64      ? "int"
                       : f.kind == Kind::kDouble ? "float"
                                                 : "str";
    os << "  --" << key << "=<" << type << ">  " << f.help << " (default: "
       << f.default_value << ")\n";
  }
  return os.str();
}

}  // namespace bbb::io
