#pragma once
/// \file table.hpp
/// Column-oriented result tables with ascii / markdown / CSV renderers.
/// Every bench harness prints its paper table/figure series through this,
/// so output format is uniform and machine-parseable with --format=csv.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bbb::io {

/// Output format for Table::render.
enum class Format { kAscii, kMarkdown, kCsv };

/// Parse "ascii" / "markdown" / "csv" (case-sensitive).
/// \throws std::invalid_argument for anything else.
[[nodiscard]] Format parse_format(const std::string& name);

/// A rectangular table built row by row. Cells are strings; numeric
/// convenience setters format with fixed precision.
class Table {
 public:
  /// \param columns header labels, defines the width of every row.
  explicit Table(std::vector<std::string> columns);

  /// Optional table title printed above ascii/markdown output.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Begin a new row. Cells are filled left to right via add_*.
  void begin_row();
  void add_cell(std::string value);
  void add_num(double value, int precision = 3);
  void add_int(std::int64_t value);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }
  /// Cell accessor (row-major). \throws std::out_of_range.
  [[nodiscard]] const std::string& at(std::size_t row, std::size_t col) const;

  /// Render to string.
  /// \throws std::logic_error if any row is not completely filled.
  [[nodiscard]] std::string render(Format format) const;

  /// Render and write to a stream.
  void print(std::ostream& os, Format format) const;

 private:
  void check_complete() const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace bbb::io
