#pragma once
/// \file csv.hpp
/// Append-oriented CSV writer for raw per-replicate dumps (plotting inputs).
/// Distinct from Table: Table renders finished summaries, CsvWriter streams
/// rows to disk as replicates complete.

#include <fstream>
#include <string>
#include <vector>

namespace bbb::io {

/// Streams CSV rows to a file. The header is written on construction.
class CsvWriter {
 public:
  /// \throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Write one row; must match the header width.
  /// \throws std::invalid_argument on width mismatch.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: all-numeric row.
  void write_row(const std::vector<double>& values, int precision = 6);

  /// Rows written so far (excluding header).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

}  // namespace bbb::io
