#include "bbb/io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bbb::io {

Format parse_format(const std::string& name) {
  if (name == "ascii") return Format::kAscii;
  if (name == "markdown") return Format::kMarkdown;
  if (name == "csv") return Format::kCsv;
  throw std::invalid_argument("unknown format '" + name + "' (want ascii|markdown|csv)");
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::begin_row() {
  if (!cells_.empty() && cells_.back().size() != columns_.size()) {
    throw std::logic_error("Table: previous row incomplete");
  }
  cells_.emplace_back();
  cells_.back().reserve(columns_.size());
}

void Table::add_cell(std::string value) {
  if (cells_.empty()) throw std::logic_error("Table: begin_row() before add_cell()");
  if (cells_.back().size() >= columns_.size()) {
    throw std::logic_error("Table: row already full");
  }
  cells_.back().push_back(std::move(value));
}

void Table::add_num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add_cell(os.str());
}

void Table::add_int(std::int64_t value) { add_cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return cells_.at(row).at(col);
}

void Table::check_complete() const {
  for (const auto& row : cells_) {
    if (row.size() != columns_.size()) {
      throw std::logic_error("Table: render() with incomplete row");
    }
  }
}

std::string Table::render(Format format) const {
  check_complete();
  std::ostringstream os;

  if (format == Format::kCsv) {
    // CSV: no title line (keeps files directly loadable); quote cells
    // containing separators.
    auto emit = [&os](const std::string& cell, bool last) {
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
      os << (last ? '\n' : ',');
    };
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      emit(columns_[c], c + 1 == columns_.size());
    }
    for (const auto& row : cells_) {
      for (std::size_t c = 0; c < row.size(); ++c) emit(row[c], c + 1 == row.size());
    }
    return os.str();
  }

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };

  if (!title_.empty()) os << "# " << title_ << '\n';

  if (format == Format::kMarkdown) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ' ' << pad(columns_[c], widths[c]) << " |";
    }
    os << '\n' << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ' ' << std::string(widths[c], '-') << " |";
    }
    os << '\n';
    for (const auto& row : cells_) {
      os << '|';
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << ' ' << pad(row[c], widths[c]) << " |";
      }
      os << '\n';
    }
    return os.str();
  }

  // Ascii.
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) total += widths[c] + 2;
  const std::string rule(total + columns_.size() + 1, '-');
  os << rule << '\n' << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << pad(columns_[c], widths[c]) << " |";
  }
  os << '\n' << rule << '\n';
  for (const auto& row : cells_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << pad(row[c], widths[c]) << " |";
    }
    os << '\n';
  }
  os << rule << '\n';
  return os.str();
}

void Table::print(std::ostream& os, Format format) const { os << render(format); }

}  // namespace bbb::io
