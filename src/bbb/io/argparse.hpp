#pragma once
/// \file argparse.hpp
/// Minimal --key=value flag parser shared by all bench and example binaries.
/// Unknown flags are an error (catches typos in sweep scripts); every
/// binary supports --help which prints registered flags with defaults.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bbb::io {

/// Declarative flag set. Register flags with defaults, then parse().
class ArgParser {
 public:
  /// \param program_name used in the --help banner.
  /// \param description one-line summary for --help.
  ArgParser(std::string program_name, std::string description);

  /// Register flags (key without leading dashes). Duplicate keys throw.
  void add_flag(const std::string& key, std::uint64_t default_value,
                const std::string& help);
  void add_flag(const std::string& key, double default_value, const std::string& help);
  void add_flag(const std::string& key, const std::string& default_value,
                const std::string& help);

  /// Parse argv. Accepts --key=value and --key value forms plus --help.
  /// \returns false if --help was requested (help text already printed).
  /// \throws std::invalid_argument for unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::uint64_t get_u64(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] const std::string& get_string(const std::string& key) const;

  /// Render the --help text.
  [[nodiscard]] std::string help() const;

 private:
  enum class Kind { kU64, kDouble, kString };
  struct Flag {
    Kind kind;
    std::string value;
    std::string default_value;
    std::string help;
  };

  void add(const std::string& key, Kind kind, std::string default_value,
           const std::string& help);
  Flag& find(const std::string& key);
  const Flag& find(const std::string& key) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // help prints in registration order
};

}  // namespace bbb::io
