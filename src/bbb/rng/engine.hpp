#pragma once
/// \file engine.hpp
/// Engine concept and the uniform primitives every protocol hot loop uses:
/// unbiased bounded integers (Lemire's method) and 53-bit canonical doubles.

#include <concepts>
#include <cstdint>

namespace bbb::rng {

/// A 64-bit uniform random word source. Both library engines
/// (Xoshiro256PlusPlus, Pcg32) and SplitMix64 satisfy this.
template <typename G>
concept Engine64 = requires(G g) {
  { g() } -> std::convertible_to<std::uint64_t>;
  { G::min() } -> std::convertible_to<std::uint64_t>;
  { G::max() } -> std::convertible_to<std::uint64_t>;
};

/// The bound-mapping of Lemire's method: the value a raw 64-bit word
/// produces for `bound` when it is not rejected — the high 64 bits of
/// word * bound. Exposed (rather than folded into uniform_below) because
/// the probe lookahead in core/probe.hpp prefetches the bin a buffered
/// word *will* map to; keeping one copy here guarantees the prefetch
/// target and the consumed value can never drift apart.
[[nodiscard]] constexpr std::uint64_t lemire_map(std::uint64_t word,
                                                 std::uint64_t bound) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(word) * static_cast<__uint128_t>(bound)) >> 64);
}

/// Unbiased uniform integer in [0, bound) via Lemire's multiply-shift
/// rejection method — one multiply in the common case, no division unless a
/// rare rejection occurs. Precondition: bound >= 1.
template <Engine64 G>
[[nodiscard]] std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
  std::uint64_t x = gen();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = gen();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return lemire_map(x, bound);
}

/// Uniform integer in the closed range [lo, hi]. Precondition: lo <= hi.
template <Engine64 G>
[[nodiscard]] std::uint64_t uniform_range(G& gen, std::uint64_t lo, std::uint64_t hi) {
  return lo + uniform_below(gen, hi - lo + 1);
}

/// Uniform double in [0, 1) with full 53-bit mantissa resolution.
template <Engine64 G>
[[nodiscard]] double next_double(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] — safe to pass to log().
template <Engine64 G>
[[nodiscard]] double next_double_nonzero(G& gen) {
  return (static_cast<double>(gen() >> 11) + 1.0) * 0x1.0p-53;
}

/// Bernoulli(p) trial.
template <Engine64 G>
[[nodiscard]] bool bernoulli(G& gen, double p) {
  return next_double(gen) < p;
}

}  // namespace bbb::rng
