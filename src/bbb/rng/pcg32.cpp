#include "bbb/rng/pcg32.hpp"

#include <bit>

namespace bbb::rng {

namespace {
constexpr std::uint64_t kMult = 6364136223846793005ULL;
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * kMult + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<unsigned>(old >> 59u);
  return std::rotr(xorshifted, static_cast<int>(rot));
}

Pcg32::result_type Pcg32::operator()() noexcept {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  return (hi << 32) | lo;
}

void Pcg32::advance(std::uint64_t delta) noexcept {
  // Brown's O(log n) LCG skip-ahead: compute mult^delta and the matching
  // accumulated increment by repeated squaring.
  std::uint64_t acc_mult = 1, acc_plus = 0;
  std::uint64_t cur_mult = kMult, cur_plus = inc_;
  while (delta > 0) {
    if (delta & 1u) {
      acc_mult *= cur_mult;
      acc_plus = acc_plus * cur_mult + cur_plus;
    }
    cur_plus = (cur_mult + 1) * cur_plus;
    cur_mult *= cur_mult;
    delta >>= 1u;
  }
  state_ = acc_mult * state_ + acc_plus;
}

}  // namespace bbb::rng
