#include "bbb/rng/xoshiro256.hpp"

#include <bit>

#include "bbb/rng/splitmix64.hpp"

namespace bbb::rng {

Xoshiro256PlusPlus::Xoshiro256PlusPlus(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm();
}

Xoshiro256PlusPlus::Xoshiro256PlusPlus(const std::array<std::uint64_t, 4>& state) noexcept
    : s_(state) {}

namespace {

// Jump polynomials from the reference implementation (Blackman & Vigna).
constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                   0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
constexpr std::uint64_t kLongJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                       0x77710069854ee241ULL, 0x39109bb02acbe635ULL};

}  // namespace

void Xoshiro256PlusPlus::jump() noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t poly : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (poly & (std::uint64_t{1} << b)) {
        acc[0] ^= s_[0];
        acc[1] ^= s_[1];
        acc[2] ^= s_[2];
        acc[3] ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = acc;
}

void Xoshiro256PlusPlus::long_jump() noexcept {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t poly : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (poly & (std::uint64_t{1} << b)) {
        acc[0] ^= s_[0];
        acc[1] ^= s_[1];
        acc[2] ^= s_[2];
        acc[3] ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = acc;
}

}  // namespace bbb::rng
