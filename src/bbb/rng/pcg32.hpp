#pragma once
/// \file pcg32.hpp
/// PCG32 (O'Neill 2014): 64-bit LCG state with XSH-RR output, 32-bit words.
///
/// Included as an alternative engine with a different algebraic structure
/// than xoshiro256++ — the test suite cross-checks distribution samplers on
/// both engines so a sampler bug cannot hide behind one engine's spectral
/// quirks. Also supports 2^63 independent streams via the odd increment.

#include <cstdint>

namespace bbb::rng {

/// PCG-XSH-RR 64/32 engine, extended to 64-bit output by pairing two draws.
class Pcg32 {
 public:
  using result_type = std::uint64_t;

  /// Seed with a state seed and a stream id; distinct stream ids give
  /// statistically independent sequences.
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Next uniform 32-bit word.
  std::uint32_t next_u32() noexcept;

  /// Next uniform 64-bit word (two 32-bit draws, high word first).
  result_type operator()() noexcept;

  /// Skip ahead `delta` 32-bit outputs in O(log delta) time.
  void advance(std::uint64_t delta) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  friend bool operator==(const Pcg32&, const Pcg32&) = default;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // always odd; selects the stream
};

}  // namespace bbb::rng
