#include "bbb/rng/distributions.hpp"

#include <cmath>

namespace bbb::rng {

// ---------------------------------------------------------------- Exponential

ExponentialDist::ExponentialDist(double rate) : rate_(rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("ExponentialDist: rate must be positive and finite");
  }
}

double ExponentialDist::operator()(Engine& gen) const {
  return -std::log(next_double_nonzero(gen)) / rate_;
}

// --------------------------------------------------------------------- Normal

NormalDist::NormalDist(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  if (!(stddev > 0.0) || !std::isfinite(stddev) || !std::isfinite(mean)) {
    throw std::invalid_argument("NormalDist: stddev must be positive and finite");
  }
}

double NormalDist::operator()(Engine& gen) const {
  // Marsaglia polar method; acceptance probability pi/4, discard the spare.
  for (;;) {
    const double u = 2.0 * next_double(gen) - 1.0;
    const double v = 2.0 * next_double(gen) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return mean_ + stddev_ * u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

// -------------------------------------------------------------------- Poisson

PoissonDist::PoissonDist(double lambda) : lambda_(lambda) {
  if (!(lambda >= 0.0) || !std::isfinite(lambda)) {
    throw std::invalid_argument("PoissonDist: lambda must be >= 0 and finite");
  }
  use_ptrs_ = lambda_ >= 10.0;
  if (use_ptrs_) {
    // Hörmann (1993), algorithm PTRS.
    b_ = 0.931 + 2.53 * std::sqrt(lambda_);
    a_ = -0.059 + 0.02483 * b_;
    inv_alpha_ = 1.1239 + 1.1328 / (b_ - 3.4);
    v_r_ = 0.9277 - 3.6224 / (b_ - 2.0);
    log_lambda_ = std::log(lambda_);
  } else {
    exp_neg_lambda_ = std::exp(-lambda_);
  }
}

std::uint64_t PoissonDist::operator()(Engine& gen) const {
  return use_ptrs_ ? sample_ptrs(gen) : sample_inversion(gen);
}

std::uint64_t PoissonDist::sample_inversion(Engine& gen) const {
  // Multiply uniforms until the product drops below exp(-lambda).
  std::uint64_t k = 0;
  double prod = next_double_nonzero(gen);
  while (prod > exp_neg_lambda_) {
    ++k;
    prod *= next_double_nonzero(gen);
  }
  return k;
}

std::uint64_t PoissonDist::sample_ptrs(Engine& gen) const {
  for (;;) {
    const double u = next_double(gen) - 0.5;
    const double v = next_double_nonzero(gen);
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a_ / us + b_) * u + lambda_ + 0.43);
    if (us >= 0.07 && v <= v_r_ && kf >= 0.0) {
      return static_cast<std::uint64_t>(kf);
    }
    if (kf < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    if (std::log(v * inv_alpha_ / (a_ / (us * us) + b_)) <=
        kf * log_lambda_ - lambda_ - std::lgamma(kf + 1.0)) {
      return static_cast<std::uint64_t>(kf);
    }
  }
}

double PoissonDist::pmf(std::uint64_t k) const {
  const auto kd = static_cast<double>(k);
  if (lambda_ == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(kd * std::log(lambda_) - lambda_ - std::lgamma(kd + 1.0));
}

double PoissonDist::cdf(std::uint64_t k) const {
  // Direct summation; fine for the moderate k the tests use.
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) acc += pmf(i);
  return acc < 1.0 ? acc : 1.0;
}

double PoissonDist::sf(std::uint64_t k) const {
  if (k == 0) return 1.0;
  if (lambda_ == 0.0) return 0.0;
  // Sum whichever side of the mean is the small one; both series have
  // positive terms with ratios < 1 (slowest near the mean, where they need
  // O(sqrt(lambda)) terms), so there is no cancellation at any depth.
  constexpr std::uint64_t kMaxTerms = 100'000'000;
  if (static_cast<double>(k) <= lambda_) {
    // Head P(X <= k-1) = pmf(k-1) * (1 + (k-1)/lambda + (k-1)(k-2)/lambda^2
    // + ...); sf = 1 - head loses only absolute precision, which is fine
    // left of the mean where sf is order 1.
    const double p = pmf(k - 1);
    if (p == 0.0) return 1.0;
    double term = 1.0;
    double series = 1.0;
    for (std::uint64_t j = k - 1; j > 0 && k - 1 - j < kMaxTerms; --j) {
      term *= static_cast<double>(j) / lambda_;
      series += term;
      if (term < series * 1e-17) break;
    }
    const double head = p * series;
    return head < 1.0 ? 1.0 - head : 0.0;
  }
  // Tail P(X >= k) = pmf(k) * (1 + lambda/(k+1) + lambda^2/((k+1)(k+2)) + ...).
  const double p_k = pmf(k);
  if (p_k == 0.0) return 0.0;
  double term = 1.0;
  double series = 1.0;
  for (std::uint64_t i = k + 1; i - k < kMaxTerms; ++i) {
    term *= lambda_ / static_cast<double>(i);
    series += term;
    if (term < series * 1e-17) break;
  }
  const double tail = p_k * series;
  return tail < 1.0 ? tail : 1.0;
}

// ------------------------------------------------------------------- Binomial

BinomialDist::BinomialDist(std::uint64_t n, double p) : n_(n), p_(p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BinomialDist: p must be in [0, 1]");
  }
  pp_ = p <= 0.5 ? p : 1.0 - p;
  flipped_ = p > 0.5;
  const double npp = static_cast<double>(n_) * pp_;
  use_btrs_ = npp >= 10.0;
  if (n_ == 0 || pp_ == 0.0) {
    use_btrs_ = false;
    s_ = 0.0;
    q_pow_n_ = 1.0;
  } else if (use_btrs_) {
    // Hörmann (1993), algorithm BTRS (transformed rejection with squeeze).
    const double q = 1.0 - pp_;
    spq_ = std::sqrt(npp * q);
    b_ = 1.15 + 2.53 * spq_;
    a_ = -0.0873 + 0.0248 * b_ + 0.01 * pp_;
    c_ = npp + 0.5;
    vr_ = 0.92 - 4.2 / b_;
    alpha_ = (2.83 + 5.1 / b_) * spq_;
    lpq_ = std::log(pp_ / q);
    m_ = std::floor(static_cast<double>(n_ + 1) * pp_);
    h_ = std::lgamma(m_ + 1.0) + std::lgamma(static_cast<double>(n_) - m_ + 1.0);
  } else {
    const double q = 1.0 - pp_;
    s_ = pp_ / q;
    q_pow_n_ = std::pow(q, static_cast<double>(n_));
  }
}

std::uint64_t BinomialDist::operator()(Engine& gen) const {
  std::uint64_t k;
  if (n_ == 0 || pp_ == 0.0) {
    k = 0;
  } else {
    k = use_btrs_ ? sample_btrs(gen) : sample_inversion(gen);
  }
  return flipped_ ? n_ - k : k;
}

std::uint64_t BinomialDist::sample_inversion(Engine& gen) const {
  // BINV: walk the CDF from k = 0 using the pmf recurrence.
  for (;;) {
    double u = next_double(gen);
    std::uint64_t k = 0;
    double f = q_pow_n_;
    // q^n can underflow to 0 for huge n with tiny p (but then npp >= 10 and
    // BTRS is used); guard anyway by restarting on pathological f == 0.
    if (f <= 0.0) return static_cast<std::uint64_t>(static_cast<double>(n_) * pp_);
    while (u > f) {
      u -= f;
      ++k;
      if (k > n_) break;  // floating-point slack: retry
      f *= s_ * static_cast<double>(n_ - k + 1) / static_cast<double>(k);
    }
    if (k <= n_) return k;
  }
}

std::uint64_t BinomialDist::sample_btrs(Engine& gen) const {
  const auto nd = static_cast<double>(n_);
  for (;;) {
    const double u = next_double(gen) - 0.5;
    const double v = next_double_nonzero(gen);
    const double us = 0.5 - std::abs(u);
    const double kf = std::floor((2.0 * a_ / us + b_) * u + c_);
    if (kf < 0.0 || kf > nd) continue;
    if (us >= 0.07 && v <= vr_) return static_cast<std::uint64_t>(kf);
    const double lhs = std::log(v * alpha_ / (a_ / (us * us) + b_));
    const double rhs = h_ - std::lgamma(kf + 1.0) - std::lgamma(nd - kf + 1.0) +
                       (kf - m_) * lpq_;
    if (lhs <= rhs) return static_cast<std::uint64_t>(kf);
  }
}

double BinomialDist::pmf(std::uint64_t k) const {
  if (k > n_) return 0.0;
  if (p_ == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p_ == 1.0) return k == n_ ? 1.0 : 0.0;
  const auto nd = static_cast<double>(n_);
  const auto kd = static_cast<double>(k);
  const double log_binom =
      std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0);
  return std::exp(log_binom + kd * std::log(p_) + (nd - kd) * std::log1p(-p_));
}

// ------------------------------------------------------------------ Geometric

GeometricDist::GeometricDist(double p) : p_(p) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("GeometricDist: p must be in (0, 1]");
  }
  log1m_p_ = p < 1.0 ? std::log1p(-p) : 0.0;
}

std::uint64_t GeometricDist::operator()(Engine& gen) const {
  if (p_ == 1.0) return 1;
  // Inversion: X = floor(log(U)/log(1-p)) + 1 on {1, 2, ...}.
  const double u = next_double_nonzero(gen);
  const double x = std::floor(std::log(u) / log1m_p_);
  return static_cast<std::uint64_t>(x) + 1;
}

}  // namespace bbb::rng
