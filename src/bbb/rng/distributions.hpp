#pragma once
/// \file distributions.hpp
/// Non-uniform samplers used by the simulator and by the Poissonization
/// experiments (the paper's proofs approximate bin access counts by
/// independent Poisson variables; Lemma A.7 transfers events between the two
/// models — we sample both models directly).
///
/// Design: each distribution is a small immutable parameter object whose
/// `operator()(Engine&)` draws one variate. Heavy per-parameter setup
/// (exp(-lambda), rejection constants) happens once in the constructor, so
/// drawing many variates from one distribution object is cheap.

#include <cstdint>
#include <stdexcept>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::rng {

/// Exponential(rate): density rate*exp(-rate*x) on x >= 0.
class ExponentialDist {
 public:
  /// \throws std::invalid_argument if rate <= 0.
  explicit ExponentialDist(double rate);

  double operator()(Engine& gen) const;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / rate_; }

 private:
  double rate_;
};

/// Standard normal via the Marsaglia polar method. Stateless between draws
/// (the spare variate is *not* cached so that draws from a shared const
/// object are thread-safe).
class NormalDist {
 public:
  /// \throws std::invalid_argument if stddev <= 0.
  NormalDist(double mean, double stddev);

  double operator()(Engine& gen) const;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

 private:
  double mean_;
  double stddev_;
};

/// Poisson(lambda). Inversion by sequential search for lambda < 10,
/// Hörmann's PTRS transformed-rejection for large lambda (O(1) expected
/// time for any lambda; exact, not a normal approximation).
class PoissonDist {
 public:
  /// \throws std::invalid_argument if lambda < 0 or not finite.
  explicit PoissonDist(double lambda);

  std::uint64_t operator()(Engine& gen) const;

  [[nodiscard]] double lambda() const noexcept { return lambda_; }

  /// P(X = k) for this distribution (used by goodness-of-fit tests).
  [[nodiscard]] double pmf(std::uint64_t k) const;
  /// P(X <= k).
  [[nodiscard]] double cdf(std::uint64_t k) const;
  /// Survival function P(X >= k), accurate to full relative precision even
  /// deep in the tail where 1 - cdf(k-1) would cancel to zero: the head is
  /// summed directly, the tail by the convergent series
  /// pmf(k) * (1 + lambda/(k+1) + lambda^2/((k+1)(k+2)) + ...). The law
  /// tier's level-by-level cardinality sampler conditions on exactly these
  /// tail probabilities (law/one_choice.hpp).
  [[nodiscard]] double sf(std::uint64_t k) const;

 private:
  std::uint64_t sample_inversion(Engine& gen) const;
  std::uint64_t sample_ptrs(Engine& gen) const;

  double lambda_;
  // Inversion path (small lambda).
  double exp_neg_lambda_ = 0.0;
  // PTRS path (large lambda).
  double b_ = 0.0, a_ = 0.0, inv_alpha_ = 0.0, v_r_ = 0.0, log_lambda_ = 0.0;
  bool use_ptrs_ = false;
};

/// Binomial(n, p). Inversion (BINV) when n*min(p,1-p) < 10, otherwise
/// Hörmann's BTRS transformed rejection. Exact for all parameters.
class BinomialDist {
 public:
  /// \throws std::invalid_argument if p is outside [0, 1].
  BinomialDist(std::uint64_t n, double p);

  std::uint64_t operator()(Engine& gen) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// P(X = k).
  [[nodiscard]] double pmf(std::uint64_t k) const;

 private:
  std::uint64_t sample_inversion(Engine& gen) const;
  std::uint64_t sample_btrs(Engine& gen) const;

  std::uint64_t n_;
  double p_;        // original p
  double pp_;       // min(p, 1-p) — sampling always uses the small side
  bool flipped_;    // true if pp_ != p_, result is n - k
  // BINV path.
  double s_ = 0.0, q_pow_n_ = 0.0;
  // BTRS path.
  double spq_ = 0.0, b_ = 0.0, a_ = 0.0, c_ = 0.0, vr_ = 0.0, alpha_ = 0.0,
         lpq_ = 0.0, h_ = 0.0;
  double m_ = 0.0;  // mode, floor((n+1)*pp)
  bool use_btrs_ = false;
};

/// Geometric(p) on {1, 2, 3, ...}: number of Bernoulli(p) trials up to and
/// including the first success. E[X] = 1/p. This is the convention used in
/// the paper's Theorem A.5 (sum of geometric probe counts).
class GeometricDist {
 public:
  /// \throws std::invalid_argument if p is outside (0, 1].
  explicit GeometricDist(double p);

  std::uint64_t operator()(Engine& gen) const;

  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] double mean() const noexcept { return 1.0 / p_; }

 private:
  double p_;
  double log1m_p_;  // log(1 - p); 0 means p == 1 (always returns 1)
};

}  // namespace bbb::rng
