#pragma once
/// \file zipf.hpp
/// Zipf(s) distribution over {0, ..., K-1}: P(i) proportional to 1/(i+1)^s.
///
/// Used by the skewed-probe experiments (what happens to the paper's
/// protocols when the "uniformly random bin" primitive is biased, e.g. a
/// hash function with a non-uniform range) and by the examples' bursty
/// workload generators. Backed by an alias table: O(K) build, O(1) sample.

#include <cstdint>
#include <vector>

#include "bbb/rng/alias_table.hpp"

namespace bbb::rng {

/// Normalized Zipf weights 1/(i+1)^s for i in [0, k).
/// \throws std::invalid_argument if k == 0 or s < 0.
[[nodiscard]] std::vector<double> zipf_weights(std::size_t k, double s);

/// O(1) Zipf sampler. s = 0 degenerates to the uniform distribution.
class ZipfDist {
 public:
  /// \throws std::invalid_argument if k == 0 or s < 0 (via zipf_weights).
  ZipfDist(std::size_t k, double s);

  [[nodiscard]] std::uint32_t operator()(Engine& gen) const { return table_(gen); }

  [[nodiscard]] std::size_t k() const noexcept { return table_.size(); }
  [[nodiscard]] double s() const noexcept { return s_; }
  /// Normalized probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const { return table_.probability(i); }

 private:
  double s_;
  AliasTable table_;
};

}  // namespace bbb::rng
