#include "bbb/rng/alias_table.hpp"

#include <cmath>
#include <stdexcept>

namespace bbb::rng {

AliasTable::AliasTable(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasTable: weights must be non-empty");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasTable: weights must not all be zero");
  }

  const std::size_t k = weights.size();
  norm_.resize(k);
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Vose's stable two-worklist construction.
  std::vector<double> scaled(k);
  std::vector<std::uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    norm_[i] = weights[i] / total;
    scaled[i] = norm_[i] * static_cast<double>(k);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to rounding.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::uint32_t AliasTable::operator()(Engine& gen) const {
  const auto i =
      static_cast<std::uint32_t>(
          uniform_below(gen, static_cast<std::uint64_t>(prob_.size())));
  return next_double(gen) < prob_[i] ? i : alias_[i];
}

}  // namespace bbb::rng
