#pragma once
/// \file xoshiro256.hpp
/// xoshiro256++ 1.0 (Blackman & Vigna 2019): the library's default engine.
///
/// 256 bits of state, period 2^256 - 1, excellent statistical quality
/// (passes BigCrush and PractRand), and roughly one rotate + two xors per
/// 64-bit output — ideal for the probe-heavy inner loops of balls-into-bins
/// protocols. `jump()` advances by 2^128 steps, so up to 2^128
/// non-overlapping subsequences can be handed to parallel workers.

#include <array>
#include <bit>
#include <cstdint>

namespace bbb::rng {

/// xoshiro256++ engine. Default uniform 64-bit source for all protocols.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 expansion of a single 64-bit seed, as recommended
  /// by the xoshiro authors (avoids low-entropy states; the all-zero state
  /// is unreachable this way).
  explicit Xoshiro256PlusPlus(std::uint64_t seed) noexcept;

  /// Construct from full 256-bit state. Must not be all zero.
  explicit Xoshiro256PlusPlus(const std::array<std::uint64_t, 4>& state) noexcept;

  /// Next uniform 64-bit word. Defined inline: one rotate + a handful of
  /// xors, called once per probe word from every inner loop in the
  /// library — an out-of-line definition would put a call/return on the
  /// hottest path there is.
  result_type operator()() noexcept {
    const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
  }

  /// Advance 2^128 steps. Partitions the period into non-overlapping halves;
  /// calling jump() k times on copies yields k independent parallel streams.
  void jump() noexcept;

  /// Advance 2^192 steps (for nested stream hierarchies).
  void long_jump() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }

  friend bool operator==(const Xoshiro256PlusPlus&, const Xoshiro256PlusPlus&) = default;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// The engine type used throughout the library's protocol implementations.
using Engine = Xoshiro256PlusPlus;

}  // namespace bbb::rng
