#include "bbb/rng/splitmix64.hpp"

namespace bbb::rng {

std::uint64_t splitmix64_scramble(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

SplitMix64::result_type SplitMix64::operator()() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace bbb::rng
