#pragma once
/// \file alias_table.hpp
/// Walker/Vose alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(K) preprocessing.
///
/// Used by the workload generators in the examples (skewed job-source
/// distributions) and by tests as a reference sampler.

#include <cstdint>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::rng {

/// Immutable alias table over outcomes {0, ..., K-1}.
class AliasTable {
 public:
  /// Build from non-negative weights (need not be normalized).
  /// \throws std::invalid_argument if weights is empty, contains a negative
  ///         or non-finite entry, or sums to zero.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draw one outcome in O(1): one bounded uniform + one comparison.
  [[nodiscard]] std::uint32_t operator()(Engine& gen) const;

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of outcome i (for tests).
  [[nodiscard]] double probability(std::size_t i) const { return norm_.at(i); }

 private:
  std::vector<double> prob_;          // acceptance thresholds
  std::vector<std::uint32_t> alias_;  // fallback outcomes
  std::vector<double> norm_;          // normalized input weights
};

}  // namespace bbb::rng
