#pragma once
/// \file streams.hpp
/// Deterministic parallel stream derivation.
///
/// The Monte-Carlo runner executes replicates on worker threads in arbitrary
/// order; for reproducibility every replicate's engine must depend only on
/// (master seed, replicate index) — never on scheduling. `derive_seed`
/// provides a statistically independent 64-bit seed per index via double
/// SplitMix64 scrambling, and `SeedSequence` wraps the pattern.

#include <cstdint>

#include "bbb/rng/splitmix64.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::rng {

/// A 64-bit child seed that is (to statistical precision) independent across
/// both `master` and `index`. Stable across platforms and thread counts.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t index) noexcept;

/// Factory for per-replicate engines derived from one master seed.
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) noexcept : master_(master) {}

  /// Engine for replicate `index`; identical engines for identical inputs.
  [[nodiscard]] Engine engine(std::uint64_t index) const noexcept;

  /// Raw child seed (for nesting: a replicate can itself fan out).
  [[nodiscard]] std::uint64_t seed(std::uint64_t index) const noexcept;

  [[nodiscard]] constexpr std::uint64_t master() const noexcept { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace bbb::rng
