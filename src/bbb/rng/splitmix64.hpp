#pragma once
/// \file splitmix64.hpp
/// SplitMix64: a tiny, fast, well-scrambled 64-bit generator.
///
/// SplitMix64 (Steele, Lea, Flood 2014) advances a 64-bit counter by a fixed
/// odd constant and scrambles it with a variant of the MurmurHash3 finalizer.
/// It passes BigCrush on its own, but its primary role in this library is
/// (a) seeding the larger-state engines (xoshiro256++, pcg32) so that a single
/// 64-bit user seed expands into full-entropy state, and (b) deriving
/// statistically independent child seeds for parallel replicate streams.

#include <cstdint>

namespace bbb::rng {

/// One scramble step of SplitMix64: maps any 64-bit value to a well-mixed
/// 64-bit value. This is a bijection, so distinct inputs give distinct
/// outputs. Useful as a cheap stateless hash for seed derivation.
[[nodiscard]] std::uint64_t splitmix64_scramble(std::uint64_t x) noexcept;

/// SplitMix64 engine. Satisfies the Engine64 shape used across bbb::rng:
/// `result_type operator()()` returning uniform 64-bit words.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Every seed yields a full-period
  /// (2^64) sequence; sequences from different seeds are shifted copies of
  /// one global sequence, so for *independent* streams prefer
  /// rng::derive_seed + a larger-state engine.
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next uniform 64-bit word.
  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Current internal counter (useful for checkpointing).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }

  friend constexpr bool operator==(const SplitMix64&, const SplitMix64&) = default;

 private:
  std::uint64_t state_;
};

}  // namespace bbb::rng
