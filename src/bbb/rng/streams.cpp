#include "bbb/rng/streams.hpp"

namespace bbb::rng {

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  // Two scramble rounds over (master ⊕ mixed index): one round already
  // decorrelates, the second guards against the structured inputs
  // (0, 1, 2, ...) that replicate indices are.
  const std::uint64_t mixed = splitmix64_scramble(index + 0x632be59bd9b4e019ULL);
  return splitmix64_scramble(splitmix64_scramble(master ^ mixed));
}

Engine SeedSequence::engine(std::uint64_t index) const noexcept {
  return Engine(derive_seed(master_, index));
}

std::uint64_t SeedSequence::seed(std::uint64_t index) const noexcept {
  return derive_seed(master_, index);
}

}  // namespace bbb::rng
