#include "bbb/rng/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace bbb::rng {

std::vector<double> zipf_weights(std::size_t k, double s) {
  if (k == 0) throw std::invalid_argument("zipf_weights: k must be positive");
  if (!(s >= 0.0) || !std::isfinite(s)) {
    throw std::invalid_argument("zipf_weights: s must be finite and >= 0");
  }
  std::vector<double> w(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    total += w[i];
  }
  for (auto& x : w) x /= total;
  return w;
}

ZipfDist::ZipfDist(std::size_t k, double s) : s_(s), table_(zipf_weights(k, s)) {}

}  // namespace bbb::rng
