#pragma once
/// \file special_functions.hpp
/// The small set of special functions the statistics layer needs: regularized
/// incomplete gamma (chi-square p-values), the error function wrappers
/// (normal CDF), and log-factorials. Implementations follow Numerical
/// Recipes-style series/continued-fraction evaluations, accurate to ~1e-12
/// over the ranges the tests exercise.

#include <cstdint>

namespace bbb::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// for a > 0, x >= 0.
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P(X >= x). This is the p-value of a chi-square test statistic.
[[nodiscard]] double chi_square_sf(double x, double df);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);

/// Standard normal upper tail P(Z >= z).
[[nodiscard]] double normal_sf(double z);

/// ln(k!) via lgamma.
[[nodiscard]] double log_factorial(std::uint64_t k);

/// Kolmogorov survival function Q(lambda) = 2 sum_{k>=1} (-1)^{k-1}
/// exp(-2 k^2 lambda^2) — the asymptotic null distribution of the scaled
/// KS statistic. Shared by the one- and two-sample KS tests.
[[nodiscard]] double kolmogorov_sf(double lambda);

}  // namespace bbb::stats
