#pragma once
/// \file regression.hpp
/// Ordinary least squares and log-log power-law fitting.
///
/// The benches verify *scaling shapes* from the paper's theorems (e.g.
/// Theorem 4.1's m^{3/4} n^{1/4} overhead, Lemma 4.2's n^{9/8} potential):
/// fitting y = c * x^alpha on log-log axes recovers alpha, and R^2 tells us
/// whether a power law describes the data at all.

#include <cstddef>
#include <vector>

namespace bbb::stats {

/// Result of a simple linear regression y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
  std::size_t n = 0;       ///< number of points
};

/// OLS fit. \throws std::invalid_argument if sizes differ or n < 2.
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Result of fitting y = coefficient * x^exponent.
struct PowerLawFit {
  double exponent = 0.0;     ///< alpha in y ~ x^alpha
  double coefficient = 0.0;  ///< c in y = c * x^alpha
  double r_squared = 0.0;    ///< of the underlying log-log linear fit
  std::size_t n = 0;
};

/// Fit y = c * x^alpha by OLS on (ln x, ln y).
/// \throws std::invalid_argument if sizes differ, n < 2, or any x or y <= 0.
[[nodiscard]] PowerLawFit power_law_fit(const std::vector<double>& x,
                                        const std::vector<double>& y);

}  // namespace bbb::stats
