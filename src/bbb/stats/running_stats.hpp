#pragma once
/// \file running_stats.hpp
/// Welford streaming moments: numerically stable mean/variance accumulation
/// with O(1) state, plus parallel merge (Chan et al.) so per-thread
/// accumulators can be combined deterministically.

#include <cstdint>
#include <limits>

namespace bbb::stats {

/// Streaming count/mean/variance/min/max accumulator.
class RunningStats {
 public:
  RunningStats() = default;

  /// Fold one observation into the accumulator.
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction step). Equivalent to
  /// having added all of `other`'s observations to *this.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_mean() const noexcept;

  /// Half-width of a ~95% confidence interval for the mean
  /// (1.96 * standard error; adequate for the replicate counts we run).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bbb::stats
