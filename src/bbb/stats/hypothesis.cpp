#include "bbb/stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bbb/stats/special_functions.hpp"

namespace bbb::stats {

ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                               const std::vector<double>& expected_prob,
                               double min_expected) {
  if (observed.empty()) throw std::invalid_argument("chi_square_gof: empty input");
  if (observed.size() != expected_prob.size()) {
    throw std::invalid_argument("chi_square_gof: size mismatch");
  }

  std::uint64_t total = 0;
  double prob_sum = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected_prob[i] < 0.0) {
      throw std::invalid_argument("chi_square_gof: negative probability");
    }
    total += observed[i];
    prob_sum += expected_prob[i];
  }
  if (total == 0) throw std::invalid_argument("chi_square_gof: zero total count");

  // Build working cells; append a residual cell for un-listed outcomes.
  std::vector<double> exp_counts;
  std::vector<double> obs_counts;
  exp_counts.reserve(observed.size() + 1);
  obs_counts.reserve(observed.size() + 1);
  for (std::size_t i = 0; i < observed.size(); ++i) {
    exp_counts.push_back(expected_prob[i] * static_cast<double>(total));
    obs_counts.push_back(static_cast<double>(observed[i]));
  }
  const double residual = 1.0 - prob_sum;
  if (residual > 1e-12) {
    exp_counts.push_back(residual * static_cast<double>(total));
    obs_counts.push_back(0.0);
  }

  // Pool sparse cells left-to-right: a cell below the threshold is merged
  // into its successor (the final cell absorbs leftovers backwards).
  std::vector<double> pe, po;
  double carry_e = 0.0, carry_o = 0.0;
  std::size_t pooled = 0;
  for (std::size_t i = 0; i < exp_counts.size(); ++i) {
    carry_e += exp_counts[i];
    carry_o += obs_counts[i];
    if (carry_e >= min_expected) {
      pe.push_back(carry_e);
      po.push_back(carry_o);
      carry_e = carry_o = 0.0;
    } else {
      ++pooled;
    }
  }
  if (carry_e > 0.0 || carry_o > 0.0) {
    if (!pe.empty()) {
      pe.back() += carry_e;
      po.back() += carry_o;
    } else {
      pe.push_back(carry_e);
      po.push_back(carry_o);
    }
  }
  if (pe.size() < 2) {
    throw std::invalid_argument(
        "chi_square_gof: fewer than 2 cells after pooling; increase samples");
  }

  ChiSquareResult res;
  res.pooled_cells = pooled;
  for (std::size_t i = 0; i < pe.size(); ++i) {
    const double diff = po[i] - pe[i];
    res.statistic += diff * diff / pe[i];
  }
  res.df = static_cast<double>(pe.size() - 1);
  res.p_value = chi_square_sf(res.statistic, res.df);
  return res;
}

ChiSquareResult chi_square_fit_discrete(const std::function<std::uint64_t()>& sampler,
                                        const std::function<double(std::uint64_t)>& pmf,
                                        std::uint64_t samples, std::uint64_t max_cell) {
  if (samples == 0 || max_cell == 0) {
    throw std::invalid_argument("chi_square_fit_discrete: zero samples or cells");
  }
  std::vector<std::uint64_t> observed(max_cell + 1, 0);  // last cell = overflow
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t v = sampler();
    ++observed[v < max_cell ? v : max_cell];
  }
  std::vector<double> expected(max_cell + 1, 0.0);
  double head = 0.0;
  for (std::uint64_t k = 0; k < max_cell; ++k) {
    expected[k] = pmf(k);
    head += expected[k];
  }
  expected[max_cell] = head < 1.0 ? 1.0 - head : 0.0;
  return chi_square_gof(observed, expected);
}

KsResult ks_two_sample(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_two_sample: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  double d = 0.0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const double xa = a[ia], xb = b[ib];
    // Advance past ties in either sample before comparing the CDFs.
    if (xa <= xb) {
      while (ia < a.size() && a[ia] == xa) ++ia;
    }
    if (xb <= xa) {
      while (ib < b.size() && b[ib] == xb) ++ib;
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }

  KsResult res;
  res.statistic = d;
  const double ne = std::sqrt(na * nb / (na + nb));
  res.p_value = kolmogorov_sf((ne + 0.12 + 0.11 / ne) * d);
  return res;
}

}  // namespace bbb::stats
