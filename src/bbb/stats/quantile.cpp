#include "bbb/stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::stats {

double exact_quantile(std::vector<double> data, double q) {
  if (data.empty()) throw std::invalid_argument("exact_quantile: empty data");
  if (!(q >= 0.0 && q <= 1.0)) {  // also rejects NaN q
    throw std::invalid_argument("exact_quantile: q not in [0,1]");
  }
  for (const double x : data) {
    // A NaN poisons std::sort's strict weak ordering (the result would be
    // an arbitrary permutation), so there is no meaningful quantile.
    if (std::isnan(x)) throw std::invalid_argument("exact_quantile: NaN in data");
  }
  std::sort(data.begin(), data.end());
  const std::size_t last = data.size() - 1;
  const double pos = q * static_cast<double>(last);
  // Clamp both order statistics: for huge vectors the size-1 -> double
  // conversion rounds, and q*(size-1) (or its ceil) can land one past the
  // last element.
  const auto lo = std::min(static_cast<std::size_t>(std::floor(pos)), last);
  const auto hi = std::min(static_cast<std::size_t>(std::ceil(pos)), last);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] + (data[hi] - data[lo]) * frac;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) throw std::invalid_argument("P2Quantile: q not in (0,1)");
  warmup_.reserve(5);
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    warmup_.push_back(x);
    if (count_ == 5) {
      std::sort(warmup_.begin(), warmup_.end());
      for (int i = 0; i < 5; ++i) {
        heights_[i] = warmup_[static_cast<std::size_t>(i)];
        positions_[i] = i + 1;
      }
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
      increments_[0] = 0;
      increments_[1] = q_ / 2;
      increments_[2] = q_;
      increments_[3] = (1 + q_) / 2;
      increments_[4] = 1;
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers with the piecewise-parabolic update.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic prediction (P²), falling back to linear when it would
      // break marker monotonicity.
      const double hp = heights_[i + 1];
      const double hm = heights_[i - 1];
      const double h = heights_[i];
      const double np = positions_[i + 1];
      const double nm = positions_[i - 1];
      const double np0 = positions_[i];
      const double parabolic =
          h + sign / (np - nm) *
                  ((np0 - nm + sign) * (hp - h) / (np - np0) +
                   (np - np0 - sign) * (h - hm) / (np0 - nm));
      if (hm < parabolic && parabolic < hp) {
        heights_[i] = parabolic;
      } else {
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] = h + sign * (heights_[j] - h) /
                              (positions_[j] - np0);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile: no observations");
  if (count_ < 5) {
    std::vector<double> tmp = warmup_;
    return exact_quantile(std::move(tmp), q_);
  }
  return heights_[2];
}

}  // namespace bbb::stats
