#include "bbb/stats/histogram.hpp"

#include <algorithm>
#include <sstream>

namespace bbb::stats {

void IntHistogram::add(std::int64_t v, std::uint64_t count) {
  if (count == 0) return;
  if (total_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  counts_[v] += count;
  total_ += count;
  sum_ += static_cast<double>(v) * static_cast<double>(count);
}

void IntHistogram::add_all(const std::vector<std::uint32_t>& values) {
  for (auto v : values) add(static_cast<std::int64_t>(v));
}

void IntHistogram::merge(const IntHistogram& other) {
  for (const auto& [v, c] : other.counts_) add(v, c);
}

std::uint64_t IntHistogram::count(std::int64_t v) const noexcept {
  const auto it = counts_.find(v);
  return it != counts_.end() ? it->second : 0;
}

double IntHistogram::fraction(std::int64_t v) const noexcept {
  return total_ > 0 ? static_cast<double>(count(v)) / static_cast<double>(total_) : 0.0;
}

double IntHistogram::mean() const noexcept {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

std::int64_t IntHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    acc += c;
    if (acc >= target && acc > 0) return v;
  }
  return max_;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> IntHistogram::items() const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  if (total_ == 0) return out;
  out.reserve(static_cast<std::size_t>(max_ - min_ + 1));
  for (std::int64_t v = min_; v <= max_; ++v) out.emplace_back(v, count(v));
  return out;
}

std::string IntHistogram::render_ascii(std::size_t width) const {
  std::ostringstream os;
  if (total_ == 0) return "(empty histogram)\n";
  std::uint64_t peak = 0;
  for (const auto& [v, c] : counts_) peak = std::max(peak, c);
  for (const auto& [v, c] : items()) {
    const auto bar = static_cast<std::size_t>(
        peak > 0 ? (static_cast<double>(c) / static_cast<double>(peak)) *
                       static_cast<double>(width)
                 : 0.0);
    os << (v >= 0 && v < 10 ? " " : "") << v << " | " << std::string(bar, '#') << ' ' << c
       << '\n';
  }
  return os.str();
}

}  // namespace bbb::stats
