#pragma once
/// \file bootstrap.hpp
/// Percentile bootstrap confidence intervals. Replicate counts in the paper's
/// Figure 3 are ~100, small enough that normal-theory CIs can be optimistic
/// for the skewed allocation-time distribution; the bootstrap does not
/// assume a shape.

#include <cstdint>
#include <functional>
#include <vector>

namespace bbb::stats {

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< point estimate on the original sample
};

/// Percentile bootstrap CI for an arbitrary statistic.
/// \param data       the sample (copied into resamples)
/// \param statistic  functional mapping a sample to a scalar
/// \param resamples  number of bootstrap resamples (e.g. 2000)
/// \param confidence e.g. 0.95
/// \param seed       RNG seed for resampling
/// \throws std::invalid_argument if data empty, resamples == 0, or
///         confidence outside (0,1).
[[nodiscard]] Interval bootstrap_ci(
    const std::vector<double>& data,
    const std::function<double(const std::vector<double>&)>& statistic,
    std::uint32_t resamples, double confidence, std::uint64_t seed);

/// Convenience overload: CI for the mean.
[[nodiscard]] Interval bootstrap_mean_ci(const std::vector<double>& data,
                                         std::uint32_t resamples = 2000,
                                         double confidence = 0.95,
                                         std::uint64_t seed = 0x9e3779b9ULL);

}  // namespace bbb::stats
