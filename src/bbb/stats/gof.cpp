#include "bbb/stats/gof.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "bbb/stats/special_functions.hpp"

namespace bbb::stats {

namespace {

void reject_nan(const std::vector<double>& v, const char* who) {
  for (const double x : v) {
    if (std::isnan(x)) {
      throw std::invalid_argument(std::string(who) + ": NaN in sample");
    }
  }
}

std::uint64_t total_of(const std::vector<std::uint64_t>& v, const char* who) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : v) total += c;
  if (total == 0) {
    throw std::invalid_argument(std::string(who) + ": zero total count");
  }
  return total;
}

}  // namespace

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_statistic: empty sample");
  reject_nan(a, "ks_statistic");
  reject_nan(b, "ks_statistic");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  double d = 0.0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const double xa = a[ia], xb = b[ib];
    if (xa <= xb) {
      while (ia < a.size() && a[ia] == xa) ++ia;
    }
    if (xb <= xa) {
      while (ib < b.size() && b[ib] == xb) ++ib;
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

KsResult ks_counts(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  if (a.empty() || b.empty()) throw std::invalid_argument("ks_counts: empty input");
  if (a.size() != b.size()) throw std::invalid_argument("ks_counts: size mismatch");
  const double na = static_cast<double>(total_of(a, "ks_counts"));
  const double nb = static_cast<double>(total_of(b, "ks_counts"));

  double d = 0.0;
  double cum_a = 0.0, cum_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cum_a += static_cast<double>(a[i]);
    cum_b += static_cast<double>(b[i]);
    d = std::max(d, std::abs(cum_a / na - cum_b / nb));
  }

  KsResult res;
  res.statistic = d;
  const double ne = std::sqrt(na * nb / (na + nb));
  res.p_value = kolmogorov_sf((ne + 0.12 + 0.11 / ne) * d);
  return res;
}

ChiSquareResult chi_square_homogeneity(const std::vector<std::uint64_t>& a,
                                       const std::vector<std::uint64_t>& b,
                                       double min_expected) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("chi_square_homogeneity: empty input");
  }
  if (a.size() != b.size()) {
    throw std::invalid_argument("chi_square_homogeneity: size mismatch");
  }
  const double na = static_cast<double>(total_of(a, "chi_square_homogeneity"));
  const double nb = static_cast<double>(total_of(b, "chi_square_homogeneity"));
  const double n = na + nb;

  // Expected cell counts are (row total) * (column total) / n; pooling a
  // column pools both rows at once, and the smaller row is the binding
  // constraint on min_expected.
  const double row_min = std::min(na, nb);
  std::vector<double> pa, pb, pc;  // pooled row a, row b, column totals
  double carry_a = 0.0, carry_b = 0.0;
  std::size_t pooled = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    carry_a += static_cast<double>(a[i]);
    carry_b += static_cast<double>(b[i]);
    const double col = carry_a + carry_b;
    if (row_min * col / n >= min_expected) {
      pa.push_back(carry_a);
      pb.push_back(carry_b);
      pc.push_back(col);
      carry_a = carry_b = 0.0;
    } else {
      ++pooled;
    }
  }
  if (carry_a > 0.0 || carry_b > 0.0) {
    if (!pa.empty()) {
      pa.back() += carry_a;
      pb.back() += carry_b;
      pc.back() += carry_a + carry_b;
    } else {
      pa.push_back(carry_a);
      pb.push_back(carry_b);
      pc.push_back(carry_a + carry_b);
    }
  }
  if (pa.size() < 2) {
    throw std::invalid_argument(
        "chi_square_homogeneity: fewer than 2 cells after pooling; "
        "increase samples");
  }

  ChiSquareResult res;
  res.pooled_cells = pooled;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double ea = na * pc[i] / n;
    const double eb = nb * pc[i] / n;
    const double da = pa[i] - ea;
    const double db = pb[i] - eb;
    res.statistic += da * da / ea + db * db / eb;
  }
  res.df = static_cast<double>(pa.size() - 1);
  res.p_value = chi_square_sf(res.statistic, res.df);
  return res;
}

}  // namespace bbb::stats
