#include "bbb/stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/quantile.hpp"

namespace bbb::stats {

Interval bootstrap_ci(const std::vector<double>& data,
                      const std::function<double(const std::vector<double>&)>& statistic,
                      std::uint32_t resamples, double confidence, std::uint64_t seed) {
  if (data.empty()) throw std::invalid_argument("bootstrap_ci: empty data");
  if (resamples == 0) throw std::invalid_argument("bootstrap_ci: zero resamples");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap_ci: confidence not in (0,1)");
  }

  rng::Engine gen(seed);
  const std::size_t n = data.size();
  std::vector<double> resample(n);
  std::vector<double> stats;
  stats.reserve(resamples);
  for (std::uint32_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = data[rng::uniform_below(gen, n)];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = 1.0 - confidence;
  Interval iv;
  iv.point = statistic(data);
  iv.lo = exact_quantile(stats, alpha / 2.0);
  iv.hi = exact_quantile(std::move(stats), 1.0 - alpha / 2.0);
  return iv;
}

Interval bootstrap_mean_ci(const std::vector<double>& data, std::uint32_t resamples,
                           double confidence, std::uint64_t seed) {
  return bootstrap_ci(
      data,
      [](const std::vector<double>& xs) {
        double s = 0.0;
        for (double x : xs) s += x;
        return s / static_cast<double>(xs.size());
      },
      resamples, confidence, seed);
}

}  // namespace bbb::stats
