#include "bbb/stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace bbb::stats {

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("linear_fit: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("linear_fit: need at least 2 points");

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("linear_fit: x values are all equal");

  LinearFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

PowerLawFit power_law_fit(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("power_law_fit: size mismatch");
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] > 0.0) || !(y[i] > 0.0)) {
      throw std::invalid_argument("power_law_fit: x and y must be positive");
    }
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const LinearFit lin = linear_fit(lx, ly);
  PowerLawFit fit;
  fit.exponent = lin.slope;
  fit.coefficient = std::exp(lin.intercept);
  fit.r_squared = lin.r_squared;
  fit.n = lin.n;
  return fit;
}

}  // namespace bbb::stats
