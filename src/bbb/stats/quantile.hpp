#pragma once
/// \file quantile.hpp
/// Quantile estimation: exact (sorting) for batch data and the P² streaming
/// estimator (Jain & Chlamtac 1985) for long traces where storing every
/// observation would dominate memory.

#include <cstddef>
#include <vector>

namespace bbb::stats {

/// Exact q-quantile of `data` (linear interpolation between order
/// statistics, the "type 7" convention used by R/numpy). `data` is copied.
/// \throws std::invalid_argument if data is empty or q outside [0,1].
[[nodiscard]] double exact_quantile(std::vector<double> data, double q);

/// P² single-quantile streaming estimator: O(1) memory, 5 markers.
class P2Quantile {
 public:
  /// \param q target quantile in (0, 1).
  /// \throws std::invalid_argument if q outside (0,1).
  explicit P2Quantile(double q);

  /// Fold one observation.
  void add(double x);

  /// Current estimate. Exact until 5 observations have been seen.
  /// \throws std::logic_error if no observations yet.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double q() const noexcept { return q_; }

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
  std::vector<double> warmup_;
};

}  // namespace bbb::stats
