#include "bbb/stats/special_functions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bbb::stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 1e-14;
constexpr double kFpMin = 1e-300;

// Series representation of P(a, x); converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x); converges fast for x > a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) throw std::invalid_argument("gamma_p: need a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) throw std::invalid_argument("gamma_q: need a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double chi_square_sf(double x, double df) {
  if (x <= 0.0) return 1.0;
  return gamma_q(df / 2.0, x / 2.0);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double log_factorial(std::uint64_t k) {
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double kolmogorov_sf(double lambda) {
  if (lambda < 1e-6) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace bbb::stats
