#pragma once
/// \file hypothesis.hpp
/// Goodness-of-fit testing used to validate the distribution samplers and
/// the Poissonization claims: chi-square against a discrete pmf with
/// automatic tail pooling (cells with small expected counts are merged so
/// the chi-square approximation is valid).

#include <cstdint>
#include <functional>
#include <vector>

namespace bbb::stats {

/// Outcome of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;
  double df = 0.0;       ///< degrees of freedom after pooling
  double p_value = 1.0;  ///< P(chi2_df >= statistic)
  std::size_t pooled_cells = 0;
};

/// Chi-square GOF of observed counts against expected probabilities.
/// Cells with expected count below `min_expected` are pooled with their
/// neighbor to the right (the classic rule of thumb is 5).
/// \param observed  observed counts per cell
/// \param expected_prob  expected probability per cell; any residual
///        probability (1 - sum) is treated as one extra "everything else"
///        cell with 0 observations unless it is negligible (< 1e-12).
/// \throws std::invalid_argument on size mismatch, empty input, or
///         negative probabilities.
[[nodiscard]] ChiSquareResult chi_square_gof(const std::vector<std::uint64_t>& observed,
                                             const std::vector<double>& expected_prob,
                                             double min_expected = 5.0);

/// Convenience: draw `samples` variates via `sampler`, bucket them into
/// {0..max_cell-1, overflow}, and test against `pmf` over the same cells.
[[nodiscard]] ChiSquareResult chi_square_fit_discrete(
    const std::function<std::uint64_t()>& sampler,
    const std::function<double(std::uint64_t)>& pmf, std::uint64_t samples,
    std::uint64_t max_cell);

/// Outcome of a two-sample Kolmogorov-Smirnov test.
struct KsResult {
  double statistic = 0.0;  ///< D = sup |F1 - F2|
  double p_value = 1.0;    ///< asymptotic Kolmogorov distribution
};

/// Two-sample KS test: are `a` and `b` draws from the same distribution?
/// Used by the Poissonization experiments to compare the exact and the
/// Poisson access distributions. Asymptotic p-value (Numerical Recipes
/// form); fine for the sample sizes the benches use (>= 100 each).
/// \throws std::invalid_argument if either sample is empty.
[[nodiscard]] KsResult ks_two_sample(std::vector<double> a, std::vector<double> b);

}  // namespace bbb::stats
