#pragma once
/// \file histogram.hpp
/// Integer histogram for load distributions plus an ASCII bar renderer.
///
/// Load values in balls-into-bins are small non-negative integers clustered
/// around m/n, so the histogram stores exact counts per integer value in a
/// dense vector anchored at the observed minimum.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bbb::stats {

/// Exact counts of integer observations.
class IntHistogram {
 public:
  IntHistogram() = default;

  /// Count one observation of value `v`.
  void add(std::int64_t v, std::uint64_t count = 1);

  /// Count every element of `values`.
  void add_all(const std::vector<std::uint32_t>& values);

  /// Merge another histogram (counts add).
  void merge(const IntHistogram& other);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  /// Smallest / largest observed value. Undefined when empty.
  [[nodiscard]] std::int64_t min() const noexcept { return min_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  /// Count of observations equal to `v`.
  [[nodiscard]] std::uint64_t count(std::int64_t v) const noexcept;
  /// Fraction of observations equal to `v`.
  [[nodiscard]] double fraction(std::int64_t v) const noexcept;
  /// Mean of the observations.
  [[nodiscard]] double mean() const noexcept;
  /// Smallest v such that at least q of the mass is <= v, q in [0,1].
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// (value, count) pairs in increasing value order, zero-count gaps included.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>> items() const;

  /// Multi-line ASCII bar chart (one row per value), `width` chars at peak.
  [[nodiscard]] std::string render_ascii(std::size_t width = 50) const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace bbb::stats
