#pragma once
/// \file gof.hpp
/// Goodness-of-fit helpers for *cross-validating samplers against each
/// other*: the law tier (law/) and the exact streaming core both produce
/// discrete distributions — per-seed max loads, per-level bin counts — and
/// tests/law/ plus the bbb_law CLI summary both consume these to turn "we
/// sampled the law" into a tested agreement claim. hypothesis.hpp owns the
/// one-sample tests against a known pmf; this file owns the two-sample
/// (homogeneity) side, where *neither* distribution is known in closed
/// form and the question is whether two generators disagree.

#include <cstdint>
#include <vector>

#include "bbb/stats/hypothesis.hpp"

namespace bbb::stats {

/// Exact two-sample Kolmogorov-Smirnov statistic D = sup |F_a - F_b| (the
/// distance alone, no p-value — for reporting and for tolerance-style
/// assertions). Ties handled exactly as in ks_two_sample.
/// \throws std::invalid_argument if either sample is empty or contains NaN.
[[nodiscard]] double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Two-sample KS test over *aligned discrete count vectors*: a[i] and b[i]
/// are the number of observations of outcome i (e.g. bins at level i,
/// seeds with max load i). D is the exact sup-distance between the two
/// empirical CDFs; the p-value uses the standard two-sample asymptotic
/// with effective size na*nb/(na+nb). Conservative for heavily tied
/// discrete data — a pass is meaningful, a borderline failure should be
/// retried with chi_square_homogeneity.
/// \throws std::invalid_argument on size mismatch, empty input, or a
///         sample with zero total count.
[[nodiscard]] KsResult ks_counts(const std::vector<std::uint64_t>& a,
                                 const std::vector<std::uint64_t>& b);

/// Chi-square two-sample homogeneity test on aligned count vectors: were
/// `a` and `b` drawn from the same discrete distribution? Expected counts
/// come from the pooled column totals; cells are pooled left-to-right
/// until every expected count (in both rows) reaches `min_expected`, the
/// same rule as chi_square_gof. df = (#cells after pooling - 1).
/// Symmetric in (a, b).
/// \throws std::invalid_argument on size mismatch, empty input, fewer than
///         2 cells after pooling, or a sample with zero total count.
[[nodiscard]] ChiSquareResult chi_square_homogeneity(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b,
    double min_expected = 5.0);

}  // namespace bbb::stats
