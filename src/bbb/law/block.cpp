#include "bbb/law/block.hpp"

#include <limits>
#include <stdexcept>

#include "bbb/rng/distributions.hpp"

namespace bbb::law {

namespace {

/// Distribute `m` balls over `bins` bins by recursive halving, appending
/// the loads to `out`. Depth is log2(bins); each split is one exact
/// Binomial(m, left/bins) draw.
void split(std::uint64_t m, std::uint64_t bins, rng::Engine& gen,
           std::vector<std::uint64_t>& out) {
  if (bins == 1) {
    out.push_back(m);
    return;
  }
  const std::uint64_t left = bins / 2;
  std::uint64_t m_left = 0;
  if (m > 0) {
    const double p = static_cast<double>(left) / static_cast<double>(bins);
    m_left = rng::BinomialDist(m, p)(gen);
  }
  split(m_left, left, gen, out);
  split(m - m_left, bins - left, gen, out);
}

}  // namespace

std::vector<std::uint64_t> sample_block_loads(std::uint64_t m, std::uint64_t n,
                                              std::uint64_t block, rng::Engine& gen) {
  if (n == 0) throw std::invalid_argument("sample_block_loads: n must be > 0");
  if (block == 0 || block > n) {
    throw std::invalid_argument("sample_block_loads: need 0 < block <= n");
  }
  std::vector<std::uint64_t> loads;
  loads.reserve(block);
  std::uint64_t m_block = m;
  if (block < n && m > 0) {
    const double p = static_cast<double>(block) / static_cast<double>(n);
    m_block = rng::BinomialDist(m, p)(gen);
  }
  split(m_block, block, gen, loads);
  return loads;
}

OccupancyProfile profile_from_loads(const std::vector<std::uint64_t>& loads) {
  if (loads.empty()) {
    throw std::invalid_argument("profile_from_loads: empty load vector");
  }
  std::uint64_t max = 0;
  std::uint64_t min = loads[0];
  std::uint64_t balls = 0;
  for (const std::uint64_t l : loads) {
    if (l > max) max = l;
    if (l < min) min = l;
    balls += l;
  }
  if (max > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "profile_from_loads: loads above 2^32 exceed the profile level range");
  }
  std::vector<std::uint64_t> counts(max - min + 1, 0);
  for (const std::uint64_t l : loads) ++counts[l - min];
  return OccupancyProfile(loads.size(), balls, static_cast<std::uint32_t>(min),
                          std::move(counts));
}

}  // namespace bbb::law
