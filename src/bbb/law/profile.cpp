#include "bbb/law/profile.hpp"

#include <cmath>
#include <stdexcept>

#include "bbb/core/metrics.hpp"

namespace bbb::law {

OccupancyProfile::OccupancyProfile(std::uint64_t n, std::uint64_t balls,
                                   std::uint32_t base,
                                   std::vector<std::uint64_t> counts)
    : n_(n), balls_(balls), base_(base), counts_(std::move(counts)) {
  if (n == 0) throw std::invalid_argument("OccupancyProfile: n must be positive");
  if (counts_.empty()) {
    throw std::invalid_argument("OccupancyProfile: counts must be nonempty");
  }
  if (counts_.front() == 0 || counts_.back() == 0) {
    throw std::invalid_argument(
        "OccupancyProfile: counts must be trimmed (nonzero first/last entry)");
  }
  std::uint64_t bins = 0;
  __uint128_t weight = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    bins += counts_[i];
    weight += static_cast<__uint128_t>(counts_[i]) * (base_ + i);
  }
  if (bins != n_) {
    throw std::invalid_argument("OccupancyProfile: level counts must sum to n");
  }
  if (weight != static_cast<__uint128_t>(balls_)) {
    throw std::invalid_argument(
        "OccupancyProfile: sum of level * count must equal balls");
  }
}

std::uint64_t OccupancyProfile::count_at(std::uint32_t level) const noexcept {
  if (level < base_) return 0;
  const std::size_t i = level - base_;
  return i < counts_.size() ? counts_[i] : 0;
}

std::uint64_t OccupancyProfile::bins_with_load_at_least(
    std::uint32_t k) const noexcept {
  std::uint64_t bins = 0;
  const std::size_t start = k > base_ ? k - base_ : 0;
  for (std::size_t i = start; i < counts_.size(); ++i) bins += counts_[i];
  return bins;
}

double OccupancyProfile::fraction_at_least(std::uint32_t k) const noexcept {
  return static_cast<double>(bins_with_load_at_least(k)) / static_cast<double>(n_);
}

double OccupancyProfile::psi() const noexcept {
  const double mean = average();
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double dev = static_cast<double>(base_ + i) - mean;
    sum += static_cast<double>(counts_[i]) * dev * dev;
  }
  return sum;
}

double OccupancyProfile::log_phi() const noexcept {
  // ln sum_j K_j (1+eps)^{-(base+i)} shifted by the dominant (lowest) level.
  const double c = std::log1p(core::kPotentialEpsilon);
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += static_cast<double>(counts_[i]) * std::exp(-c * static_cast<double>(i));
  }
  const double log_weight = std::log(sum) - c * static_cast<double>(base_);
  return log_weight + (average() + 2.0) * c;
}

}  // namespace bbb::law
