#include "bbb/law/one_choice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/engine.hpp"

namespace bbb::law {

namespace {

/// Trim leading/trailing zero levels and build the validated profile.
OccupancyProfile make_profile(std::uint64_t n, std::uint64_t balls, std::uint32_t lo,
                              std::vector<std::uint64_t> counts) {
  std::size_t first = 0;
  while (first < counts.size() && counts[first] == 0) ++first;
  std::size_t last = counts.size();
  while (last > first && counts[last - 1] == 0) --last;
  if (first == last) {
    throw std::logic_error("law profile: no occupied level (internal)");
  }
  counts.erase(counts.begin() + static_cast<std::ptrdiff_t>(last), counts.end());
  counts.erase(counts.begin(), counts.begin() + static_cast<std::ptrdiff_t>(first));
  return OccupancyProfile(n, balls, lo + static_cast<std::uint32_t>(first),
                          std::move(counts));
}

/// The correction walker: dense level counts over [lo, lo + size) plus two
/// Fenwick trees — bin-weighted (weight K_j, for "add a ball to a uniform
/// bin") and ball-weighted (weight j*K_j, for "delete a uniform ball").
/// Moves that step outside the tracked window trigger a rare O(L log L)
/// rebuild with wider margins.
class LevelWalker {
 public:
  LevelWalker(std::uint32_t lo, std::vector<std::uint64_t> counts)
      : lo_(lo), counts_(std::move(counts)) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      bins_ += counts_[i];
      balls_ += counts_[i] * (lo_ + i);
    }
    build_trees();
  }

  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }

  /// One uniform ball arrives: level j w.p. K_j / n, bin moves to j + 1.
  void insert(rng::Engine& gen) {
    const std::size_t i = sample(fen_bins_, rng::uniform_below(gen, bins_));
    if (i + 1 >= counts_.size()) grow(lo_, counts_.size() + 16);
    move_bin(i, i + 1);
    ++balls_;
  }

  /// One uniform ball deleted: level j w.p. j * K_j / S, bin moves to j - 1.
  void remove(rng::Engine& gen) {
    const std::size_t i = sample(fen_balls_, rng::uniform_below(gen, balls_));
    if (i == 0) {
      // Level lo_ holds balls only if lo_ > 0; widen downward to lo_ - 1.
      grow(lo_ - 1, counts_.size() + 1);
      move_bin(1, 0);
    } else {
      move_bin(i, i - 1);
    }
    --balls_;
  }

  [[nodiscard]] std::uint32_t lo() const noexcept { return lo_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  void build_trees() {
    const std::size_t size = counts_.size();
    fen_bins_.assign(size + 1, 0);
    fen_balls_.assign(size + 1, 0);
    for (std::size_t i = 0; i < size; ++i) {
      if (counts_[i] != 0) {
        add(fen_bins_, i, static_cast<std::int64_t>(counts_[i]));
        add(fen_balls_, i,
            static_cast<std::int64_t>(counts_[i] * (lo_ + i)));
      }
    }
    top_bit_ = 1;
    while (top_bit_ * 2 <= size) top_bit_ *= 2;
  }

  void grow(std::uint32_t new_lo, std::size_t new_size) {
    std::vector<std::uint64_t> wide(new_size, 0);
    const std::size_t shift = lo_ - new_lo;
    for (std::size_t i = 0; i < counts_.size(); ++i) wide[i + shift] = counts_[i];
    lo_ = new_lo;
    counts_ = std::move(wide);
    build_trees();
  }

  /// Move one bin from level index `from` to `to` (adjacent), updating both
  /// trees with the weight deltas.
  void move_bin(std::size_t from, std::size_t to) {
    --counts_[from];
    ++counts_[to];
    add(fen_bins_, from, -1);
    add(fen_bins_, to, +1);
    add(fen_balls_, from, -static_cast<std::int64_t>(lo_ + from));
    add(fen_balls_, to, +static_cast<std::int64_t>(lo_ + to));
  }

  void add(std::vector<std::uint64_t>& tree, std::size_t i, std::int64_t delta) {
    for (std::size_t k = i + 1; k < tree.size(); k += k & (~k + 1)) {
      tree[k] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree[k]) + delta);
    }
  }

  /// Largest index with prefix sum <= u; returns the 0-based level index.
  [[nodiscard]] std::size_t sample(const std::vector<std::uint64_t>& tree,
                                   std::uint64_t u) const {
    std::size_t idx = 0;
    std::uint64_t rem = u;
    for (std::size_t step = top_bit_; step != 0; step >>= 1) {
      const std::size_t next = idx + step;
      if (next < tree.size() && tree[next] <= rem) {
        idx = next;
        rem -= tree[next];
      }
    }
    return idx;  // prefix(idx) <= u < prefix(idx + 1)
  }

  std::uint32_t lo_ = 0;
  std::uint64_t bins_ = 0;
  std::uint64_t balls_ = 0;
  std::size_t top_bit_ = 1;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> fen_bins_;   // weight K_j
  std::vector<std::uint64_t> fen_balls_;  // weight (lo_+j) * K_j
};

}  // namespace

OccupancyProfile sample_poisson_profile(std::uint64_t n, double lambda,
                                        rng::Engine& gen) {
  if (n == 0) throw std::invalid_argument("sample_poisson_profile: n must be > 0");
  if (!(lambda >= 0.0) || !std::isfinite(lambda)) {
    throw std::invalid_argument("sample_poisson_profile: lambda must be finite, >= 0");
  }
  if (lambda == 0.0) {
    return OccupancyProfile(n, 0, 0, {n});
  }

  // Levels below j0 hold a bin with probability < e^-64 union-bounded over
  // all n bins: n * P(X < j0) <= e^-64 when j0 = lambda - sqrt(2 lambda t)
  // with t = ln n + 64 (Poisson lower tail, theory::poisson_lower_tail_bound
  // form). Starting the level chain there skips the O(lambda) certainly-empty
  // levels at large average load.
  const double t = std::log(static_cast<double>(n)) + 64.0;
  const double lower = lambda - std::sqrt(2.0 * lambda * t);
  const std::uint32_t j0 =
      lower > 1.0 ? static_cast<std::uint32_t>(lower) : 0;

  const rng::PoissonDist dist(lambda);
  std::vector<std::uint64_t> counts;
  std::uint64_t n_rem = n;
  std::uint64_t balls = 0;

  // p = pmf(j) by recurrence; tail = sf(j) by subtraction, refreshed from
  // the stable series whenever it has decayed 1e3x since the last refresh
  // (the subtraction recurrence loses one bit per halving of the tail).
  std::uint32_t j = j0;
  double p = dist.pmf(j);
  double tail = dist.sf(j);
  double refresh = tail;
  while (n_rem > 0) {
    if (tail < refresh * 1e-3) {
      tail = dist.sf(j);
      refresh = tail;
    }
    std::uint64_t k;
    const double r = tail > 0.0 ? p / tail : 1.0;
    if (r >= 1.0) {
      k = n_rem;  // numerically past the end of the tail: everything left
    } else {
      k = rng::BinomialDist(n_rem, r)(gen);
    }
    counts.push_back(k);
    n_rem -= k;
    balls += k * static_cast<std::uint64_t>(j);
    tail -= p;
    ++j;
    p *= lambda / static_cast<double>(j);
  }
  return make_profile(n, balls, j0, std::move(counts));
}

OccupancyProfile sample_one_choice_profile(std::uint64_t m, std::uint64_t n,
                                           rng::Engine& gen) {
  if (n == 0) throw std::invalid_argument("sample_one_choice_profile: n must be > 0");
  if (m == 0) return OccupancyProfile(n, 0, 0, {n});

  const double lambda = static_cast<double>(m) / static_cast<double>(n);
  const OccupancyProfile poissonized = sample_poisson_profile(n, lambda, gen);

  // Walk the Poissonized total S to m one exact uniform move at a time.
  LevelWalker walker(poissonized.base(), poissonized.counts());
  while (walker.balls() < m) walker.insert(gen);
  while (walker.balls() > m) walker.remove(gen);
  return make_profile(n, m, walker.lo(), walker.counts());
}

OccupancyProfile sample_one_choice_profile_conditional(std::uint64_t m,
                                                       std::uint64_t n,
                                                       rng::Engine& gen) {
  if (n == 0) {
    throw std::invalid_argument(
        "sample_one_choice_profile_conditional: n must be > 0");
  }
  std::vector<std::uint64_t> counts;
  std::uint64_t m_rem = m;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t bins_left = n - i;
    std::uint64_t load;
    if (bins_left == 1) {
      load = m_rem;
    } else if (m_rem == 0) {
      load = 0;
    } else {
      load = rng::BinomialDist(m_rem, 1.0 / static_cast<double>(bins_left))(gen);
    }
    if (counts.size() <= load) counts.resize(load + 1, 0);
    ++counts[load];
    m_rem -= load;
  }
  return make_profile(n, m, 0, std::move(counts));
}

}  // namespace bbb::law
