#include "bbb/law/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "bbb/law/one_choice.hpp"
#include "bbb/law/profile.hpp"
#include "bbb/obs/trace_sink.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/theory/tails.hpp"

namespace bbb::law {

std::string LawConfig::describe() const {
  std::ostringstream os;
  os << protocol_spec << " m=" << m << " n=" << n << " reps=" << replicates
     << " seed=" << seed << " tier=law" << obs.describe();
  return os.str();
}

namespace {

/// Parsed law-tier spec: which process, and its fluid parameters.
struct LawSpec {
  bool sampled = false;  ///< one-choice Monte-Carlo vs deterministic fluid
  std::uint32_t d = 1;
  double beta = 0.0;
  std::string canonical;
};

/// Parse "name" or "name[a]" or "name[a,b]" with nonnegative integer args.
/// Grammar matches core/protocols/registry.hpp so specs read the same
/// across tiers.
LawSpec parse_law_spec(const std::string& spec) {
  std::string name = spec;
  std::vector<std::uint64_t> args;
  const std::size_t open = spec.find('[');
  if (open != std::string::npos) {
    if (spec.back() != ']') {
      throw std::invalid_argument("law spec: missing ']' in '" + spec + "'");
    }
    name = spec.substr(0, open);
    std::string body = spec.substr(open + 1, spec.size() - open - 2);
    std::size_t pos = 0;
    while (pos <= body.size()) {
      const std::size_t comma = std::min(body.find(',', pos), body.size());
      const std::string tok = body.substr(pos, comma - pos);
      if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("law spec: bad argument '" + tok + "' in '" +
                                    spec + "'");
      }
      args.push_back(std::stoull(tok));
      pos = comma + 1;
    }
  }

  LawSpec out;
  if (name == "one-choice") {
    if (!args.empty()) {
      throw std::invalid_argument("law spec: one-choice takes no arguments");
    }
    out.sampled = true;
    out.d = 1;
    out.beta = 0.0;
    out.canonical = "one-choice";
    return out;
  }
  if (name == "greedy") {
    if (args.size() != 1 || args[0] == 0) {
      throw std::invalid_argument("law spec: greedy needs one argument d >= 1");
    }
    out.d = static_cast<std::uint32_t>(args[0]);
    out.beta = 1.0;
    out.sampled = out.d == 1;  // greedy[1] is one-choice: sample it exactly
    out.canonical = out.sampled ? "one-choice" : "greedy[" + std::to_string(out.d) + "]";
    return out;
  }
  if (name == "mixed") {
    if (args.size() != 2 || args[0] == 0 || args[1] > 100) {
      throw std::invalid_argument(
          "law spec: mixed needs arguments [d,b] with d >= 1, 0 <= b <= 100");
    }
    out.d = static_cast<std::uint32_t>(args[0]);
    out.beta = static_cast<double>(args[1]) / 100.0;
    // A mixture that never takes the d-choice branch (b == 0) or cannot
    // tell the branches apart (d == 1) is one-choice: sample it exactly.
    out.sampled = out.d == 1 || args[1] == 0;
    out.canonical = out.sampled ? "one-choice"
                                : "mixed[" + std::to_string(out.d) + "," +
                                      std::to_string(args[1]) + "]";
    return out;
  }
  throw std::invalid_argument("law spec: unknown protocol '" + spec +
                              "' (law tier knows one-choice, greedy[d], mixed[d,b])");
}

/// Levels worth integrating: average load plus a generous fluctuation
/// band. The fluid curves decay at least geometrically past t, so the
/// cap never truncates a level whose expected count could reach 1/2.
std::uint32_t fluid_k_max(double t, std::uint64_t n) {
  const double spread =
      8.0 * std::sqrt((t + 1.0) * std::log(static_cast<double>(n) + 2.0)) + 64.0;
  const double k = std::ceil(t + spread);
  return static_cast<std::uint32_t>(std::min(k, 4096.0));
}

/// Largest k with expected #bins below level k under 1/2 — i.e. the fluid
/// prediction of the minimum load. tails[k-1] = s_k; bins with load < k
/// number n (1 - s_k).
std::uint32_t fluid_min_load_estimate(const std::vector<double>& tails,
                                      std::uint64_t n) {
  std::uint32_t min_load = 0;
  for (std::size_t k = 0; k < tails.size(); ++k) {
    if (static_cast<double>(n) * (1.0 - tails[k]) < 0.5) {
      min_load = static_cast<std::uint32_t>(k) + 1;  // all n bins reach level k+1
    } else {
      break;
    }
  }
  return min_load;
}

void fold_profile(const OccupancyProfile& profile, LawSummary& summary) {
  LawReplicate rec;
  rec.max_load = profile.max_load();
  rec.min_load = profile.min_load();
  rec.gap = profile.gap();
  rec.psi = profile.psi();
  rec.log_phi = profile.log_phi();

  summary.max_load.add(rec.max_load);
  summary.min_load.add(rec.min_load);
  summary.gap.add(rec.gap);
  summary.psi.add(rec.psi);
  summary.log_phi.add(rec.log_phi);

  const std::size_t top = profile.base() + profile.counts().size();
  if (summary.level_counts.size() < top) summary.level_counts.resize(top, 0);
  for (std::size_t i = 0; i < profile.counts().size(); ++i) {
    summary.level_counts[profile.base() + i] += profile.counts()[i];
  }
  if (summary.config.keep_records) summary.records.push_back(rec);
}

}  // namespace

LawSummary run_law_experiment(const LawConfig& config) {
  if (config.n == 0) throw std::invalid_argument("run_law_experiment: n must be > 0");
  const LawSpec spec = parse_law_spec(config.protocol_spec);

  LawSummary summary;
  summary.config = config;
  summary.protocol_name = spec.canonical;
  summary.sampled = spec.sampled;

  const double t = static_cast<double>(config.m) / static_cast<double>(config.n);
  summary.fluid_tails =
      theory::fluid_tail_curve(t, spec.d, spec.beta, fluid_k_max(t, config.n));
  summary.fluid_max_load =
      theory::fluid_max_load_estimate(summary.fluid_tails, config.n);
  summary.fluid_min_load = fluid_min_load_estimate(summary.fluid_tails, config.n);

  if (!spec.sampled) {
    // Deterministic fluid spec: the "replicate" is the single ODE estimate.
    summary.max_load.add(summary.fluid_max_load);
    summary.min_load.add(summary.fluid_min_load);
    summary.gap.add(static_cast<double>(summary.fluid_max_load) -
                    static_cast<double>(summary.fluid_min_load));
    return summary;
  }

  if (config.replicates == 0) {
    throw std::invalid_argument("run_law_experiment: replicates must be positive");
  }
  const bool obs_on = config.obs.counters_on();
  if (obs_on && config.obs.sink) {
    obs::JsonLine line("run_start", "law");
    line.begin_object("config")
        .field("describe", config.describe())
        .field("protocol", summary.protocol_name)
        .field("m", config.m)
        .field("n", config.n)
        .field("replicates", static_cast<std::uint64_t>(config.replicates))
        .field("seed", config.seed)
        .end_object();
    config.obs.sink->write(std::move(line));
  }
  obs::MetricsRegistry registry;
  for (std::uint32_t r = 0; r < config.replicates; ++r) {
    const auto start = std::chrono::steady_clock::now();
    rng::Engine gen = rng::SeedSequence(config.seed).engine(r);
    const OccupancyProfile profile =
        sample_one_choice_profile(config.m, config.n, gen);
    fold_profile(profile, summary);
    if (obs_on) {
      // One sampled profile per replicate — the wall time of the
      // Poissonize-and-correct sampler is the law tier's whole cost.
      const auto wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      registry.histogram("law.replicate.wall_ns").record(wall_ns);
      if (config.obs.sink) {
        obs::JsonLine line("replicate", "law");
        line.field("replicate", static_cast<std::uint64_t>(r))
            .begin_object("metrics")
            .field("max_load", static_cast<std::uint64_t>(profile.max_load()))
            .field("gap", static_cast<std::uint64_t>(profile.gap()))
            .field("wall_ns", wall_ns)
            .end_object();
        config.obs.sink->write(std::move(line));
      }
    }
  }
  if (obs_on) {
    summary.obs = registry.snapshot();
    if (config.obs.sink) {
      obs::JsonLine line("summary", "law");
      obs::append_metrics(line, summary.obs);
      config.obs.sink->write(std::move(line));
    }
  }
  return summary;
}

}  // namespace bbb::law
