#pragma once
/// \file profile.hpp
/// The law tier's state object: an *occupancy profile* — level counts
/// K_j = number of bins with load exactly j — instead of per-bin loads.
///
/// Per-ball simulation keeps l_1..l_n (PR 5's compact BinState: 1 byte per
/// bin, n = 2^30 tops out a workstation). The law tier never materializes
/// bins at all: every distributional quantity the paper's claims are about
/// (max load, gap, tail fractions, the quadratic potential Ψ) is a
/// function of the level counts alone, and those fit in O(max load)
/// words at *any* n — n = 2^50 costs the same few kilobytes as n = 2^16.
///
/// Invariants (checked at construction, property-tested in tests/law/):
///   * counts is trimmed: first and last entries are nonzero;
///   * sum of counts == n (every bin sits at exactly one level);
///   * sum of level * count == balls (total weight conservation).

#include <cstdint>
#include <vector>

namespace bbb::law {

/// Level counts of one occupancy configuration of n bins holding m balls.
/// Immutable once built; samplers construct it, analyses read it.
class OccupancyProfile {
 public:
  /// \param n      number of bins (any 64-bit value, not just BinState's 32).
  /// \param balls  total number of balls m.
  /// \param base   level of counts[0] (the minimum load).
  /// \param counts counts[i] = number of bins with load base + i.
  /// \throws std::invalid_argument if the invariants above fail.
  OccupancyProfile(std::uint64_t n, std::uint64_t balls, std::uint32_t base,
                   std::vector<std::uint64_t> counts);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t balls() const noexcept { return balls_; }
  [[nodiscard]] double average() const noexcept {
    return static_cast<double>(balls_) / static_cast<double>(n_);
  }

  /// Lowest occupied level (== the paper's min load).
  [[nodiscard]] std::uint32_t min_load() const noexcept { return base_; }
  /// Highest occupied level.
  [[nodiscard]] std::uint32_t max_load() const noexcept {
    return base_ + static_cast<std::uint32_t>(counts_.size()) - 1;
  }
  [[nodiscard]] std::uint32_t gap() const noexcept { return max_load() - min_load(); }

  /// Number of bins with load exactly `level` (0 outside the stored range).
  [[nodiscard]] std::uint64_t count_at(std::uint32_t level) const noexcept;

  /// Number of bins with load >= k.
  [[nodiscard]] std::uint64_t bins_with_load_at_least(std::uint32_t k) const noexcept;

  /// Fraction of bins with load >= k — the tail curve s_k the fluid limit
  /// predicts (theory::fluid_tail_curve).
  [[nodiscard]] double fraction_at_least(std::uint32_t k) const noexcept;

  /// Quadratic potential Psi = sum_i (l_i - m/n)^2, evaluated from the
  /// level counts as sum_j K_j (j - m/n)^2 (no cancellation: each term is
  /// nonnegative, unlike the S2 - t^2/n form at large average load).
  [[nodiscard]] double psi() const noexcept;

  /// ln Phi with the paper's eps = 1/200 (metrics.hpp convention:
  /// ln sum_i (1+eps)^{-l_i} + (m/n + 2) ln(1+eps)), evaluated by
  /// log-sum-exp over levels so it stays finite at average loads where the
  /// per-bin weights (1+eps)^{-l_i} would underflow.
  [[nodiscard]] double log_phi() const noexcept;

  /// Level of counts()[0].
  [[nodiscard]] std::uint32_t base() const noexcept { return base_; }
  /// Trimmed level counts, counts()[i] = bins at load base() + i.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t balls_ = 0;
  std::uint32_t base_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace bbb::law
