#pragma once
/// \file block.hpp
/// Multinomial block-sampling: exact per-bin loads for a *block* of bins
/// out of astronomically many, by conditioned binomial recursion.
///
/// The one-choice occupancy vector is Multinomial(m; 1/n, ..., 1/n), and
/// the multinomial splits: any group of b bins receives M ~ Binomial(m,
/// b/n) balls, and given M the group is itself Multinomial(M; uniform over
/// b) independent of the rest. Recursively halving the group therefore
/// yields the exact joint loads of b chosen bins in O(b) binomial draws —
/// no matter how large n is. This is the "zoom lens" companion to the
/// whole-system profile sampler in one_choice.hpp: profiles answer
/// distributional questions (max load, tails); blocks answer joint
/// per-bin questions (what do 1000 adjacent servers look like at
/// n = 2^45?) and feed the marginal goodness-of-fit tests in tests/law/.

#include <cstdint>
#include <vector>

#include "bbb/law/profile.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::law {

/// Exact joint loads of `block` fixed bins out of n after m uniform throws.
/// Marginally each entry is Binomial(m, 1/n); jointly the vector is the
/// first `block` coordinates of the multinomial occupancy vector.
/// \throws std::invalid_argument if n == 0, block == 0, or block > n.
[[nodiscard]] std::vector<std::uint64_t> sample_block_loads(std::uint64_t m,
                                                            std::uint64_t n,
                                                            std::uint64_t block,
                                                            rng::Engine& gen);

/// Fold a block's per-bin loads into an OccupancyProfile over those bins
/// (block == n gives a third exact whole-system profile sampler, used by
/// the cross-validation tests to triangulate the other two).
[[nodiscard]] OccupancyProfile profile_from_loads(
    const std::vector<std::uint64_t>& loads);

}  // namespace bbb::law
