#pragma once
/// \file one_choice.hpp
/// Exact one-choice bin-cardinality generation in level-count space — the
/// Devroye–Los scheme ("An asymptotically optimal algorithm for generating
/// bin cardinalities", PAPERS.md) that makes the law tier sublinear:
///
///   1. *Poissonize.* The loads of n bins after m uniform throws are n iid
///      Poisson(m/n) variables conditioned on their sum being m. The iid
///      (unconditioned) profile is sampled level by level with conditional
///      binomials — K_j ~ Binomial(n_remaining, pmf(j)/sf(j)) — which costs
///      O(#occupied levels) binomial draws and never touches a bin.
///   2. *Correct the total exactly.* The sampled profile holds S ~
///      Poisson(m) balls, |S - m| = O(sqrt(m)). Conditioned on its total,
///      a Poisson iid vector IS the multinomial occupancy vector, and the
///      multinomial is closed under one-ball moves: adding a ball to a
///      uniformly random bin maps occupancy(S) to occupancy(S+1), deleting
///      a uniformly random ball maps it to occupancy(S-1) (exchangeability
///      — the balls are iid uniform throws). So walking S to m one uniform
///      insert/delete at a time lands *exactly* on the one-choice
///      distribution at m. In level-count space an insert picks level j
///      with probability K_j/n and a delete with probability j*K_j/S —
///      both O(log #levels) via Fenwick trees.
///
/// Total cost O(#levels + sqrt(m) log #levels): n = 2^40 and beyond in
/// well under a second, versus hours per-ball. Correctness is not argued,
/// it is *tested*: tests/law/ cross-validates this sampler against the
/// exact streaming core (and against the O(n) conditional-chain reference
/// below) with pre-registered KS/chi-square thresholds.

#include <cstdint>

#include "bbb/law/profile.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::law {

/// Level counts of n iid Poisson(lambda) bin loads — step 1 alone, without
/// the total correction (exposed for the Poissonization gauge in bbb_law
/// and the transfer tests; sum of loads is Poisson(n*lambda), not fixed).
/// Levels whose expected bin count is below e^-64 are treated as empty
/// (total variation error < e^-64 — far below any statistical resolution).
/// \throws std::invalid_argument if n == 0, lambda < 0, or not finite.
[[nodiscard]] OccupancyProfile sample_poisson_profile(std::uint64_t n, double lambda,
                                                      rng::Engine& gen);

/// Exact one-choice occupancy profile of m balls in n bins (steps 1 + 2).
/// \throws std::invalid_argument if n == 0.
[[nodiscard]] OccupancyProfile sample_one_choice_profile(std::uint64_t m,
                                                         std::uint64_t n,
                                                         rng::Engine& gen);

/// O(n) reference sampler: the classic conditional-binomial chain over
/// *bins* (bin i gets Binomial(m_remaining, 1/(n-i)) balls). Exactly the
/// same distribution as sample_one_choice_profile by construction from the
/// opposite direction — the law tier's in-library cross-check, and the
/// bridge to per-bin samplers (model::exact_loads). Intended for the
/// overlap scales (n <= 2^24), not astronomical n.
[[nodiscard]] OccupancyProfile sample_one_choice_profile_conditional(
    std::uint64_t m, std::uint64_t n, rng::Engine& gen);

}  // namespace bbb::law
