#pragma once
/// \file engine.hpp
/// The law tier's replicate runner — the astronomical-n counterpart of
/// sim::run_experiment. Where the exact tiers simulate every ball, this
/// tier samples the *law* of the process directly:
///
///   * `one-choice` replicates draw exact occupancy profiles through the
///     Poissonize-and-correct sampler (one_choice.hpp) — Monte-Carlo over
///     seeds, each replicate exact in distribution, at O(levels + sqrt(m))
///     per replicate instead of O(m + n);
///   * `greedy[d]` and `mixed[d,b]` (the (1+beta)-choice mixture with
///     beta = b/100) evaluate the deterministic fluid-limit tail curve
///     (theory::fluid_tail_curve) — no randomness survives the n -> infinity
///     limit, so the "replicate" is a single ODE solve.
///
/// The determinism contract matches the sim tier exactly: replicate r of a
/// run with master seed s uses rng::SeedSequence(s).engine(r), so law-tier
/// results pin to golden values at seeds 0/42 like every other sampler.

#include <cstdint>
#include <string>
#include <vector>

#include "bbb/obs/metrics.hpp"
#include "bbb/obs/obs.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::law {

/// One law-tier experiment. Unlike sim::ExperimentConfig, n is 64-bit:
/// this tier exists precisely for bin counts no load vector can hold.
struct LawConfig {
  std::string protocol_spec = "one-choice";  ///< one-choice | greedy[d] | mixed[d,b]
  std::uint64_t m = 0;                       ///< balls
  std::uint64_t n = 1;                       ///< bins (astronomical values welcome)
  std::uint32_t replicates = 20;             ///< sampled runs (ignored by fluid specs)
  std::uint64_t seed = 42;                   ///< master seed
  bool keep_records = true;                  ///< retain raw per-replicate rows
  /// Observability settings. The law tier has no probe stream to count;
  /// `counters`/`full` record per-replicate sampler wall times and emit
  /// run/replicate/summary trace events. Never affects the sampled law.
  obs::ObsConfig obs;

  /// Human-readable "spec m=... n=... reps=..." line for logs.
  [[nodiscard]] std::string describe() const;
};

/// Scalar outputs of one sampled replicate (a strict subset of
/// sim::ReplicateRecord — the law tier has no probe or round counters).
struct LawReplicate {
  double max_load = 0.0;
  double min_load = 0.0;
  double gap = 0.0;
  double psi = 0.0;
  double log_phi = 0.0;
};

/// Aggregated outcome of one law-tier experiment.
struct LawSummary {
  LawConfig config;
  std::string protocol_name;  ///< canonical spec (round-trips through parsing)
  /// True for Monte-Carlo specs (one-choice): the stats below fold
  /// `replicates` sampled profiles. False for fluid specs (greedy/mixed):
  /// the stats hold the single deterministic fluid estimate.
  bool sampled = false;
  stats::RunningStats max_load;
  stats::RunningStats min_load;
  stats::RunningStats gap;
  stats::RunningStats psi;
  stats::RunningStats log_phi;
  /// Sampled specs only: level counts summed over replicates, indexed by
  /// absolute load level (level_counts[j] = total bins seen at load j).
  /// This is the row the cross-validation chi-square tests consume.
  std::vector<std::uint64_t> level_counts;
  /// Fluid tail curve s_1..s_k for this spec at t = m/n (index [k-1] = s_k),
  /// and the max/min-load estimates it implies at this n. Filled for every
  /// spec — for one-choice it is the Poisson curve the samples fluctuate
  /// around, for greedy/mixed it is the headline output.
  std::vector<double> fluid_tails;
  std::uint32_t fluid_max_load = 0;
  std::uint32_t fluid_min_load = 0;
  /// Raw rows in replicate order (sampled specs with keep_records only).
  std::vector<LawReplicate> records;
  /// Metric snapshot (law.replicate.wall_ns histogram over the sampled
  /// replicates); empty when the config's obs level is off.
  obs::Snapshot obs;
};

/// Run a law-tier experiment.
/// \throws std::invalid_argument for bad config (unknown spec, n == 0,
///         replicates == 0 on a sampled spec).
[[nodiscard]] LawSummary run_law_experiment(const LawConfig& config);

}  // namespace bbb::law
