#include "bbb/shard/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/spec.hpp"
#include "bbb/par/spin_barrier.hpp"
#include "bbb/par/spsc_ring.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/messages.hpp"

namespace bbb::shard {

namespace {

/// Thrown inside a worker when another worker set the abort flag; carries
/// no information (the original error lives in that worker's slot).
struct Aborted {};

/// Chunk size of the single-shard command stream — the same 64Ki stride
/// the sim runner's heartbeat path uses, so the ring is genuinely
/// exercised on long runs without measurable per-chunk overhead.
constexpr std::uint64_t kSingleChunk = 0x10000;

template <typename M>
void push_spin(par::SpscRing<M>& ring, M msg, const std::atomic<bool>& abort) {
  while (!ring.try_push(msg)) {
    if (abort.load(std::memory_order_relaxed)) throw Aborted{};
    std::this_thread::yield();
  }
}

template <typename M>
[[nodiscard]] M pop_spin(par::SpscRing<M>& ring, const std::atomic<bool>& abort) {
  M msg;
  while (!ring.try_pop(msg)) {
    if (abort.load(std::memory_order_relaxed)) throw Aborted{};
    std::this_thread::yield();
  }
  return msg;
}

}  // namespace

/// One worker's shard: its bins, its RNG substream, and all per-round
/// scratch. Every field is touched by exactly one thread during a phase
/// (the deferred vector is read by worker 0 in the cleanup phase, after a
/// barrier published it).
struct ShardedAllocator::Worker {
  core::BinState state;
  rng::Engine eng{0};
  std::uint32_t first = 0;  ///< first global bin
  std::uint32_t nbins = 0;

  // Per-round scratch, sized once to the maximum slice.
  std::vector<std::uint32_t> probe_bins;   ///< slice * d global bins
  std::vector<std::uint32_t> probe_loads;  ///< slice * d round-start loads
  std::vector<std::uint8_t> defer_flag;    ///< per ball
  std::vector<std::uint64_t> aux;          ///< greedy tie-break words
  std::vector<std::uint32_t> probe_epoch;  ///< per local bin: round stamp
  std::vector<std::uint32_t> probe_first;  ///< per local bin: first prober

  struct Deferred {
    std::uint64_t gid = 0;  ///< global ball index (round-major order)
    std::uint64_t aux = 0;
    std::array<std::uint32_t, kMaxShardD> bins{};
  };
  std::vector<Deferred> deferred;
  std::vector<std::uint32_t> local_commits;  ///< local bin ids

  ShardCounters counters;
  std::exception_ptr error;

  Worker(std::uint32_t bins, core::StateLayout layout) : state(bins, layout), nbins(bins) {}
};

/// The T*T ring mesh plus the round barrier and cleanup handshake.
struct ShardedAllocator::Mesh {
  std::uint32_t shards;
  std::vector<std::unique_ptr<par::SpscRing<ProbeRequest>>> req;
  std::vector<std::unique_ptr<par::SpscRing<ProbeReply>>> rep;
  std::vector<std::unique_ptr<par::SpscRing<Commit>>> com;
  par::SpinBarrier barrier;
  std::atomic<std::uint64_t> cleanup_done{0};  ///< rounds fully cleaned up
  std::atomic<bool> abort{false};

  Mesh(std::uint32_t t, std::size_t probe_cap, std::size_t commit_cap)
      : shards(t), barrier(t) {
    req.reserve(static_cast<std::size_t>(t) * t);
    rep.reserve(static_cast<std::size_t>(t) * t);
    com.reserve(static_cast<std::size_t>(t) * t);
    for (std::uint32_t i = 0; i < t * t; ++i) {
      req.push_back(std::make_unique<par::SpscRing<ProbeRequest>>(probe_cap));
      rep.push_back(std::make_unique<par::SpscRing<ProbeReply>>(probe_cap));
      com.push_back(std::make_unique<par::SpscRing<Commit>>(commit_cap));
    }
  }

  [[nodiscard]] par::SpscRing<ProbeRequest>& rq(std::uint32_t from, std::uint32_t to) {
    return *req[static_cast<std::size_t>(from) * shards + to];
  }
  [[nodiscard]] par::SpscRing<ProbeReply>& rp(std::uint32_t from, std::uint32_t to) {
    return *rep[static_cast<std::size_t>(from) * shards + to];
  }
  [[nodiscard]] par::SpscRing<Commit>& cm(std::uint32_t from, std::uint32_t to) {
    return *com[static_cast<std::size_t>(from) * shards + to];
  }

  void sync() {
    if (!barrier.arrive_and_wait(abort)) throw Aborted{};
  }
};

ShardedAllocator::ShardedAllocator(const std::string& inner_spec, std::uint32_t n,
                                   ShardOptions opt)
    : topo_(n, opt.shards), opt_(opt) {
  // Route the spec through the registry for argument validation and the
  // canonical name, whatever the shard count.
  auto rule = core::make_rule(inner_spec, n, opt.m_hint);
  inner_name_ = rule->name();

  if (topo_.shards() == 1) {
    rule_ = std::move(rule);
    single_state_ = std::make_unique<core::BinState>(n, opt_.layout);
    return;
  }

  const core::ParsedSpec s = core::parse_spec(inner_spec, "protocol");
  if (s.name == "one-choice") {
    kind_ = Kind::kOneChoice;
    d_ = 1;
  } else if (s.name == "greedy") {
    kind_ = Kind::kGreedy;
    d_ = core::spec_arg_u32(s, 0, inner_spec, "protocol");
  } else if (s.name == "left") {
    kind_ = Kind::kLeft;
    d_ = core::spec_arg_u32(s, 0, inner_spec, "protocol");
  } else {
    throw std::invalid_argument(
        "sharded engine: multi-shard mode implements the probe-based rules "
        "one-choice / greedy[d] / left[d]; '" + inner_name_ +
        "' runs only as shards[1]");
  }
  if (d_ == 0) {
    throw std::invalid_argument("sharded engine: d must be positive");
  }
  if (d_ > kMaxShardD) {
    throw std::invalid_argument("sharded engine: d must be <= " +
                                std::to_string(kMaxShardD) + " in multi-shard mode");
  }
  const std::uint64_t cap = 65535ULL * topo_.shards();
  round_total_ = std::clamp<std::uint64_t>(opt_.round_balls, topo_.shards(), cap);
}

ShardedAllocator::~ShardedAllocator() = default;

std::string ShardedAllocator::name() const {
  return "shards[" + std::to_string(topo_.shards()) + "]:" + inner_name_;
}

std::pair<std::uint32_t, std::uint32_t> ShardedAllocator::group_range(
    std::uint32_t g) const noexcept {
  // left[d]'s partition, verbatim (left_d.cpp): group g = [g*n/d, (g+1)*n/d).
  const std::uint64_t n = topo_.n();
  const auto first = static_cast<std::uint32_t>(g * n / d_);
  const auto last =
      static_cast<std::uint32_t>((static_cast<std::uint64_t>(g) + 1) * n / d_);
  return {first, last};
}

std::uint32_t ShardedAllocator::decide_slot(const std::uint32_t* loads, std::uint32_t d,
                                            std::uint64_t aux) const noexcept {
  if (kind_ == Kind::kOneChoice) return 0;
  if (kind_ == Kind::kLeft) {
    // Vöcking's always-go-left: strict < keeps the leftmost minimum.
    std::uint32_t best = 0;
    for (std::uint32_t g = 1; g < d; ++g) {
      if (loads[g] < loads[best]) best = g;
    }
    return best;
  }
  // greedy[d]: least loaded, ties broken uniformly by the ball's pre-drawn
  // tie-break word (same distribution as the sequential reservoir draw).
  std::uint32_t best = 0;
  std::uint32_t ties = 1;
  for (std::uint32_t g = 1; g < d; ++g) {
    if (loads[g] < loads[best]) {
      best = g;
      ties = 1;
    } else if (loads[g] == loads[best]) {
      ++ties;
    }
  }
  if (ties == 1) return best;
  const auto pick = static_cast<std::uint32_t>(rng::lemire_map(aux, ties));
  std::uint32_t seen = 0;
  for (std::uint32_t g = 0; g < d; ++g) {
    if (loads[g] == loads[best]) {
      if (seen == pick) return g;
      ++seen;
    }
  }
  return best;  // unreachable
}

void ShardedAllocator::run(std::uint64_t m, rng::Engine& gen) {
  if (ran_) throw std::logic_error("ShardedAllocator::run: engine is one-shot");
  ran_ = true;
  if (topo_.shards() == 1) {
    run_single(m, gen);
  } else {
    run_sharded(m, gen);
  }
}

void ShardedAllocator::run_single(std::uint64_t m, rng::Engine& gen) {
  // The worker owns the engine and the rule for the whole run, so the
  // engine-exclusivity promise holds and placements are bit-for-bit the
  // StreamingAllocator place_batch + finalize stream.
  rule_->set_engine_exclusive(true);
  par::SpscRing<std::uint64_t> ring(16);
  std::atomic<bool> worker_done{false};
  std::exception_ptr error;

  std::thread worker([&] {
    try {
      for (;;) {
        std::uint64_t chunk = 0;
        if (!ring.try_pop(chunk)) {
          std::this_thread::yield();
          continue;
        }
        if (chunk == 0) break;
        rule_->place_batch(*single_state_, chunk, gen);
        counters_.balls += chunk;
      }
      rule_->finalize(*single_state_, gen);
    } catch (...) {
      error = std::current_exception();
    }
    worker_done.store(true, std::memory_order_release);
  });

  std::uint64_t left = m;
  bool sentinel_sent = false;
  while (!sentinel_sent && !worker_done.load(std::memory_order_acquire)) {
    std::uint64_t msg = left == 0 ? 0 : std::min(kSingleChunk, left);
    if (!ring.try_push(msg)) {
      std::this_thread::yield();
      continue;
    }
    ++counters_.messages;
    const std::size_t occ = ring.size();
    if (occ > counters_.ring_highwater) counters_.ring_highwater = occ;
    if (msg == 0) {
      sentinel_sent = true;
    } else {
      left -= msg;
    }
  }
  worker.join();
  rule_->set_engine_exclusive(false);
  if (error) std::rethrow_exception(error);
  counters_.probes = rule_->probes();
}

void ShardedAllocator::run_sharded(std::uint64_t m, rng::Engine& gen) {
  // One word of the caller's stream seeds the nested per-shard substreams
  // (SeedSequence nesting: replicate seed -> shard seeds), so a sharded
  // run consumes the caller's engine deterministically regardless of T.
  const std::uint64_t nested = gen();
  const std::uint32_t t = topo_.shards();
  const auto slice_max =
      static_cast<std::uint32_t>((round_total_ + t - 1) / t);  // <= 65535
  const rng::SeedSequence seq(nested);

  workers_.clear();
  workers_.reserve(t);
  for (std::uint32_t s = 0; s < t; ++s) {
    auto w = std::make_unique<Worker>(topo_.shard_bins(s), opt_.layout);
    w->first = topo_.first_bin(s);
    w->eng = seq.engine(s);
    w->probe_bins.resize(static_cast<std::size_t>(slice_max) * d_);
    w->probe_loads.resize(static_cast<std::size_t>(slice_max) * d_);
    w->defer_flag.resize(slice_max);
    if (kind_ == Kind::kGreedy) w->aux.resize(slice_max);
    w->probe_epoch.assign(w->nbins, 0);
    w->probe_first.assign(w->nbins, 0);
    w->deferred.reserve(64);
    w->local_commits.reserve(slice_max);
    workers_.push_back(std::move(w));
  }
  // Ring capacities guarantee the bounded phases never block: a sender
  // pushes at most slice * d probe messages (and slice commits) per round
  // into any one ring; only cleanup traffic can exceed that, and its
  // receivers are actively draining.
  mesh_ = std::make_unique<Mesh>(t, static_cast<std::size_t>(slice_max) * d_ + 8,
                                 static_cast<std::size_t>(slice_max) + 8);

  std::vector<std::thread> threads;
  threads.reserve(t);
  for (std::uint32_t s = 0; s < t; ++s) {
    threads.emplace_back([this, s, m] { worker_main(s, m); });
  }
  for (std::thread& th : threads) th.join();

  for (std::uint32_t s = 0; s < t; ++s) {
    if (workers_[s]->error) std::rethrow_exception(workers_[s]->error);
  }
  for (std::uint32_t s = 0; s < t; ++s) counters_ += workers_[s]->counters;
  sync_rounds_ = (m + round_total_ - 1) / round_total_;
  mesh_.reset();
}

void ShardedAllocator::worker_main(std::uint32_t s, std::uint64_t m) {
  Worker& w = *workers_[s];
  Mesh& mesh = *mesh_;
  const std::uint32_t t = topo_.shards();
  const std::uint32_t n = topo_.n();
  const std::uint64_t rounds = (m + round_total_ - 1) / round_total_;

  try {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      const std::uint64_t round_base = r * round_total_;
      const std::uint64_t b = std::min(round_total_, m - round_base);
      const auto lo = static_cast<std::uint32_t>(s * b / t);
      const auto hi = static_cast<std::uint32_t>((static_cast<std::uint64_t>(s) + 1) * b / t);
      const std::uint32_t cnt = hi - lo;
      const auto stamp = static_cast<std::uint32_t>(r + 1);
      w.deferred.clear();
      w.local_commits.clear();
      std::fill(w.defer_flag.begin(), w.defer_flag.begin() + cnt, std::uint8_t{0});

      // --- phase A: draw probes from this shard's substream, route the
      // cross-shard ones. Draw order is fixed (ball-major, slot-major), so
      // the stream depends only on the substream seed.
      for (std::uint32_t i = 0; i < cnt; ++i) {
        for (std::uint32_t g = 0; g < d_; ++g) {
          std::uint32_t bin = 0;
          if (kind_ == Kind::kLeft) {
            const auto [first, last] = group_range(g);
            bin = first + static_cast<std::uint32_t>(
                              rng::uniform_below(w.eng, last - first));
          } else {
            bin = static_cast<std::uint32_t>(rng::uniform_below(w.eng, n));
          }
          w.probe_bins[static_cast<std::size_t>(i) * d_ + g] = bin;
        }
        if (kind_ == Kind::kGreedy) w.aux[i] = w.eng();
      }
      w.counters.probes += static_cast<std::uint64_t>(cnt) * d_;
      w.counters.balls += cnt;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        for (std::uint32_t g = 0; g < d_; ++g) {
          const std::uint32_t bin = w.probe_bins[static_cast<std::size_t>(i) * d_ + g];
          const std::uint32_t owner = topo_.shard_of(bin);
          if (owner == s) continue;
          push_spin(mesh.rq(s, owner),
                    ProbeRequest{topo_.local_of(bin, owner),
                                 static_cast<std::uint16_t>(i),
                                 static_cast<std::uint8_t>(g)},
                    mesh.abort);
          ++w.counters.cross_shard_probes;
          ++w.counters.messages;
        }
      }
      for (std::uint32_t to = 0; to < t; ++to) {
        if (to == s) continue;
        const std::size_t occ = mesh.rq(s, to).size();
        if (occ > w.counters.ring_highwater) w.counters.ring_highwater = occ;
      }
      mesh.sync();  // A: every request of this round is in its ring

      // --- phase B: answer the probes on bins this shard owns, in global
      // ball order (sender-major), marking conflicts: a probe on a bin
      // first probed by an *earlier* ball defers the probing ball. A
      // conflict check on local bin `lb` by round-ball `rid`:
      const auto conflicted = [&](std::uint32_t lb, std::uint32_t rid) -> bool {
        if (w.probe_epoch[lb] != stamp) {
          w.probe_epoch[lb] = stamp;
          w.probe_first[lb] = rid;
          return false;
        }
        return w.probe_first[lb] < rid;
      };
      for (std::uint32_t from = 0; from < t; ++from) {
        if (from == s) {
          // This shard's own balls occupy global slots [lo, hi).
          for (std::uint32_t i = 0; i < cnt; ++i) {
            for (std::uint32_t g = 0; g < d_; ++g) {
              const std::size_t idx = static_cast<std::size_t>(i) * d_ + g;
              const std::uint32_t bin = w.probe_bins[idx];
              if (topo_.shard_of(bin) != s) continue;
              const std::uint32_t lb = bin - w.first;
              if (conflicted(lb, lo + i)) w.defer_flag[i] = 1;
              // Round-start load: no commit is applied before phase D.
              w.probe_loads[idx] = w.state.load(lb);
            }
          }
          continue;
        }
        const auto from_lo = static_cast<std::uint32_t>(from * b / t);
        ProbeRequest rq;
        while (mesh.rq(from, s).try_pop(rq)) {
          const std::uint8_t flag = conflicted(rq.bin, from_lo + rq.ball) ? 1 : 0;
          push_spin(mesh.rp(s, from),
                    ProbeReply{w.state.load(rq.bin), rq.ball, rq.slot, flag},
                    mesh.abort);
          ++w.counters.messages;
        }
      }
      mesh.sync();  // B: every reply is in its ring

      // --- phase C: collect replies, decide every non-conflicted ball on
      // its round-start loads; winners crossing shards become commits.
      for (std::uint32_t from = 0; from < t; ++from) {
        if (from == s) continue;
        ProbeReply rp;
        while (mesh.rp(from, s).try_pop(rp)) {
          w.probe_loads[static_cast<std::size_t>(rp.ball) * d_ + rp.slot] = rp.load;
          if (rp.conflicted != 0) w.defer_flag[rp.ball] = 1;
        }
      }
      for (std::uint32_t i = 0; i < cnt; ++i) {
        if (w.defer_flag[i] != 0) {
          Worker::Deferred def;
          def.gid = round_base + lo + i;
          def.aux = kind_ == Kind::kGreedy ? w.aux[i] : 0;
          for (std::uint32_t g = 0; g < d_; ++g) {
            def.bins[g] = w.probe_bins[static_cast<std::size_t>(i) * d_ + g];
          }
          w.deferred.push_back(def);
          ++w.counters.deferred_balls;
          continue;
        }
        const std::uint32_t slot =
            decide_slot(w.probe_loads.data() + static_cast<std::size_t>(i) * d_, d_,
                        kind_ == Kind::kGreedy ? w.aux[i] : 0);
        const std::uint32_t bin = w.probe_bins[static_cast<std::size_t>(i) * d_ + slot];
        const std::uint32_t owner = topo_.shard_of(bin);
        if (owner == s) {
          w.local_commits.push_back(bin - w.first);
        } else {
          push_spin(mesh.cm(s, owner), Commit{topo_.local_of(bin, owner)}, mesh.abort);
          ++w.counters.messages;
        }
      }
      mesh.sync();  // C: every main-phase commit is in its ring

      // --- phase D: apply the main-phase commits (local then inbound).
      for (const std::uint32_t lb : w.local_commits) w.state.add_ball(lb);
      for (std::uint32_t from = 0; from < t; ++from) {
        if (from == s) continue;
        Commit cm;
        while (mesh.cm(from, s).try_pop(cm)) w.state.add_ball(cm.bin);
      }
      mesh.sync();  // D: all commits applied; deferred lists published

      // --- phase E: worker 0 replays the deferred balls serially in
      // global order against current loads; everyone else serves.
      if (s == 0) {
        cleanup_round(s, r, d_);
      } else {
        serve_cleanup(s, r);
      }
      ++w.counters.rounds;
      mesh.sync();  // E: round complete, rings empty
    }
  } catch (const Aborted&) {
    // Another worker failed; its slot carries the real error.
  } catch (...) {
    w.error = std::current_exception();
    mesh.abort.store(true, std::memory_order_seq_cst);
  }
}

void ShardedAllocator::cleanup_round(std::uint32_t s, std::uint64_t round,
                                     std::uint32_t d) {
  Worker& w0 = *workers_[s];
  Mesh& mesh = *mesh_;
  const std::uint32_t t = topo_.shards();

  // K-way merge of the per-worker deferred lists (each ascending in gid)
  // processes deferred balls in exact global sequential order.
  std::vector<std::size_t> idx(t, 0);
  std::array<std::uint32_t, kMaxShardD> loads{};
  for (;;) {
    std::uint32_t pick = t;
    std::uint64_t best_gid = 0;
    for (std::uint32_t q = 0; q < t; ++q) {
      const auto& list = workers_[q]->deferred;
      if (idx[q] >= list.size()) continue;
      const std::uint64_t gid = list[idx[q]].gid;
      if (pick == t || gid < best_gid) {
        pick = q;
        best_gid = gid;
      }
    }
    if (pick == t) break;
    const Worker::Deferred& def = workers_[pick]->deferred[idx[pick]];
    ++idx[pick];

    // Current loads: local bins read directly, remote ones through the
    // rings while their owners sit in the serve loop.
    std::uint32_t pending = 0;
    for (std::uint32_t g = 0; g < d; ++g) {
      const std::uint32_t bin = def.bins[g];
      const std::uint32_t owner = topo_.shard_of(bin);
      if (owner == s) {
        loads[g] = w0.state.load(bin - w0.first);
      } else {
        push_spin(mesh.rq(s, owner),
                  ProbeRequest{topo_.local_of(bin, owner), 0,
                               static_cast<std::uint8_t>(g)},
                  mesh.abort);
        ++w0.counters.messages;
        ++pending;
      }
    }
    for (std::uint32_t g = 0; g < d && pending > 0; ++g) {
      const std::uint32_t bin = def.bins[g];
      const std::uint32_t owner = topo_.shard_of(bin);
      if (owner == s) continue;
      const ProbeReply rp = pop_spin(mesh.rp(owner, s), mesh.abort);
      loads[rp.slot] = rp.load;
      --pending;
    }

    const std::uint32_t slot = decide_slot(loads.data(), d, def.aux);
    const std::uint32_t bin = def.bins[slot];
    const std::uint32_t owner = topo_.shard_of(bin);
    if (owner == s) {
      w0.state.add_ball(bin - w0.first);
    } else {
      push_spin(mesh.cm(s, owner), Commit{topo_.local_of(bin, owner)}, mesh.abort);
      ++w0.counters.messages;
    }
  }
  // Release the servers: the store is ordered after every ring push above,
  // so a server that observes it and drains once more has seen everything.
  mesh.cleanup_done.store(round + 1, std::memory_order_release);
}

void ShardedAllocator::serve_cleanup(std::uint32_t s, std::uint64_t round) {
  Worker& w = *workers_[s];
  Mesh& mesh = *mesh_;
  const auto drain_commits = [&]() -> bool {
    bool progress = false;
    Commit cm;
    while (mesh.cm(0, s).try_pop(cm)) {
      w.state.add_ball(cm.bin);
      progress = true;
    }
    return progress;
  };
  const auto serve_once = [&]() -> bool {
    bool progress = false;
    ProbeRequest rq;
    while (mesh.rq(0, s).try_pop(rq)) {
      // Worker 0 pushes an earlier ball's commit BEFORE a later ball's
      // load request (program order, release stores), so once a request
      // is visible every commit that sequentially precedes it is too.
      // Draining commits here — after popping the request, before
      // answering — is what makes the reply the exact sequential-time
      // load; draining them only between requests would race.
      (void)drain_commits();
      push_spin(mesh.rp(s, 0), ProbeReply{w.state.load(rq.bin), rq.ball, rq.slot, 0},
                mesh.abort);
      ++w.counters.messages;
      progress = true;
    }
    progress = drain_commits() || progress;
    return progress;
  };
  for (;;) {
    const bool progress = serve_once();
    if (mesh.cleanup_done.load(std::memory_order_acquire) > round) {
      (void)serve_once();  // final drain: nothing new can arrive
      break;
    }
    if (!progress) {
      if (mesh.abort.load(std::memory_order_relaxed)) throw Aborted{};
      std::this_thread::yield();
    }
  }
}

// -- merged reads ------------------------------------------------------------

std::uint64_t ShardedAllocator::balls() const noexcept {
  if (single_state_) return single_state_->balls();
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->state.balls();
  return total;
}

std::uint64_t ShardedAllocator::probes() const noexcept {
  if (rule_) return rule_->probes();
  return counters_.probes;
}

std::uint32_t ShardedAllocator::max_load() const noexcept {
  if (single_state_) return single_state_->max_load();
  std::uint32_t best = 0;
  for (const auto& w : workers_) best = std::max(best, w->state.max_load());
  return best;
}

std::uint32_t ShardedAllocator::min_load() const noexcept {
  if (single_state_) return single_state_->min_load();
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  for (const auto& w : workers_) best = std::min(best, w->state.min_load());
  return best;
}

std::uint32_t ShardedAllocator::gap() const noexcept { return max_load() - min_load(); }

double ShardedAllocator::psi() const noexcept {
  if (single_state_) return single_state_->psi();
  std::uint64_t sum_sq = 0;
  std::uint64_t t = 0;
  for (const auto& w : workers_) {
    sum_sq += w->state.sum_squares();
    t += w->state.balls();
  }
  // BinState::psi()'s exact expression over the merged integer parts.
  const auto td = static_cast<double>(t);
  return static_cast<double>(sum_sq) - td * td / static_cast<double>(topo_.n());
}

double ShardedAllocator::log_phi() const noexcept {
  if (single_state_) return single_state_->log_phi();
  double weight = 0.0;
  std::uint64_t t = 0;
  for (const auto& w : workers_) {
    weight += w->state.phi_weight();
    t += w->state.balls();
  }
  const double average = static_cast<double>(t) / static_cast<double>(topo_.n());
  return std::log(weight) + (average + 2.0) * std::log1p(core::kPotentialEpsilon);
}

std::vector<std::uint32_t> ShardedAllocator::merged_level_counts() const {
  if (single_state_) {
    auto counts = single_state_->level_counts();
    counts.resize(static_cast<std::size_t>(single_state_->max_load()) + 1);
    return counts;
  }
  std::vector<std::uint32_t> merged(static_cast<std::size_t>(max_load()) + 1, 0);
  for (const auto& w : workers_) {
    const auto& counts = w->state.level_counts();
    const std::size_t top =
        std::min(counts.size(), static_cast<std::size_t>(w->state.max_load()) + 1);
    for (std::size_t l = 0; l < top; ++l) merged[l] += counts[l];
  }
  return merged;
}

std::vector<std::uint32_t> ShardedAllocator::copy_loads() const {
  if (single_state_) return single_state_->copy_loads();
  std::vector<std::uint32_t> loads;
  loads.reserve(topo_.n());
  for (const auto& w : workers_) {
    const std::vector<std::uint32_t> part = w->state.copy_loads();
    loads.insert(loads.end(), part.begin(), part.end());
  }
  return loads;
}

core::AllocationResult ShardedAllocator::result() const {
  core::AllocationResult out;
  out.loads = copy_loads();
  out.balls = balls();
  out.probes = probes();
  if (rule_) {
    out.reallocations = rule_->reallocations();
    out.rounds = rule_->rounds();
    out.completed = rule_->completed();
  } else {
    out.rounds = sync_rounds_;
    out.completed = true;
  }
  return out;
}

const core::BinState& ShardedAllocator::shard_state(std::uint32_t s) const {
  if (single_state_) {
    if (s != 0) throw std::out_of_range("shard_state: single-shard engine");
    return *single_state_;
  }
  if (s >= workers_.size()) throw std::out_of_range("shard_state: no such shard");
  return workers_[s]->state;
}

// -- ShardedProtocol ---------------------------------------------------------

ShardedProtocol::ShardedProtocol(std::string inner_spec, ShardOptions opt)
    : inner_spec_(std::move(inner_spec)), opt_(opt) {
  opt_.layout = core::StateLayout::kWide;  // the batch path materializes loads
  inner_name_ = core::make_protocol(inner_spec_)->name();
  if (opt_.shards == 0) {
    throw std::invalid_argument("protocol spec 'shards[0]:" + inner_spec_ +
                                "': shard count must be positive");
  }
  if (opt_.shards > 1) {
    // Fail unsupported multi-shard rules at construction, not first run.
    const core::ParsedSpec s = core::parse_spec(inner_spec_, "protocol");
    if (s.name != "one-choice" && s.name != "greedy" && s.name != "left") {
      throw std::invalid_argument(
          "protocol spec 'shards[" + std::to_string(opt_.shards) + "]:" + inner_spec_ +
          "': multi-shard mode implements one-choice / greedy[d] / left[d] only");
    }
  }
}

std::string ShardedProtocol::name() const {
  return "shards[" + std::to_string(opt_.shards) + "]:" + inner_name_;
}

core::AllocationResult ShardedProtocol::run(std::uint64_t m, std::uint32_t n,
                                            rng::Engine& gen) const {
  core::validate_run_args(m, n);
  ShardOptions opt = opt_;
  opt.m_hint = m;
  ShardedAllocator engine(inner_spec_, n, opt);
  engine.run(m, gen);
  return engine.result();
}

}  // namespace bbb::shard
