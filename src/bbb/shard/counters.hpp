#pragma once
/// \file counters.hpp
/// Passive per-shard counters, in the repo's observability discipline
/// (docs/OBSERVABILITY.md): the engine's hot path bumps plain integers —
/// each worker writes only its own struct, so there is nothing atomic
/// here — and the obs layer harvests them *after* the run
/// (obs::fold_into in obs/harvest.hpp maps them to shard.* metric names).
/// This header stays dependency-free so obs/ can include it without
/// pulling the engine in.

#include <cstdint>

namespace bbb::shard {

/// One worker's tallies; aggregate across workers with operator+=
/// (ring_highwater aggregates by max — it is an occupancy, not a count).
struct ShardCounters {
  std::uint64_t rounds = 0;             ///< synchronized rounds participated in
  std::uint64_t balls = 0;              ///< balls this shard decided
  std::uint64_t probes = 0;             ///< probe draws (d per ball)
  std::uint64_t cross_shard_probes = 0; ///< probes routed to another shard
  std::uint64_t deferred_balls = 0;     ///< balls sent to the cleanup sub-phase
  std::uint64_t messages = 0;           ///< ring messages pushed (req+rep+commit)
  std::uint64_t ring_highwater = 0;     ///< max outbound-ring occupancy sampled
                                        ///< at round boundaries

  ShardCounters& operator+=(const ShardCounters& o) noexcept {
    rounds += o.rounds;
    balls += o.balls;
    probes += o.probes;
    cross_shard_probes += o.cross_shard_probes;
    deferred_balls += o.deferred_balls;
    messages += o.messages;
    if (o.ring_highwater > ring_highwater) ring_highwater = o.ring_highwater;
    return *this;
  }
};

}  // namespace bbb::shard
