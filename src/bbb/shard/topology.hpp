#pragma once
/// \file topology.hpp
/// The bin partition of the sharded engine: n bins split across T shards
/// as T contiguous ranges whose sizes differ by at most one (the first
/// n mod T shards get floor(n/T)+1 bins, the rest floor(n/T)), so every
/// shard owns at least one bin for any T <= n.
///
/// `shard_of(bin)` is the engine's hottest routing call — every probe of
/// every ball goes through it — so the two divisions it needs are done
/// with the 64-bit reciprocal trick (Lemire's fastmod lemma: for d >= 2
/// and x < 2^32, mulhi64(x, floor(2^64/d) + 1) == x / d exactly). The
/// property test in tests/shard/engine_test.cpp checks it against plain
/// division across range boundaries and random (n, T, bin) triples.

#include <cstdint>
#include <stdexcept>

namespace bbb::shard {

/// Exact x / d for x < 2^32 via one 64x64->128 multiply.
class FastDivU32 {
 public:
  FastDivU32() = default;
  explicit FastDivU32(std::uint32_t d) : d_(d) {
    if (d == 0) throw std::invalid_argument("FastDivU32: divide by zero");
    magic_ = d == 1 ? 0 : ~0ULL / d + 1;
  }

  [[nodiscard]] std::uint32_t operator()(std::uint32_t x) const noexcept {
    if (d_ == 1) return x;
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>((static_cast<unsigned __int128>(x) * magic_) >> 64));
  }

  [[nodiscard]] std::uint32_t divisor() const noexcept { return d_; }

 private:
  std::uint64_t magic_ = 0;
  std::uint32_t d_ = 1;
};

/// The contiguous balanced partition of [0, n) into T shard ranges.
class Topology {
 public:
  /// \throws std::invalid_argument if n == 0, shards == 0, or shards > n
  ///         (an empty shard would own a zero-bin BinState).
  Topology(std::uint32_t n, std::uint32_t shards) : n_(n), shards_(shards) {
    if (n == 0) throw std::invalid_argument("shard::Topology: n must be positive");
    if (shards == 0 || shards > n) {
      throw std::invalid_argument(
          "shard::Topology: shard count must be in [1, n] so every shard owns "
          "at least one bin");
    }
    base_ = n / shards;
    extra_ = n % shards;
    split_ = static_cast<std::uint64_t>(extra_) * (base_ + 1);
    div_wide_ = FastDivU32(base_ + 1);
    div_base_ = FastDivU32(base_);  // base_ >= 1 because shards <= n
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// First global bin of shard s (== n for s == shards()).
  [[nodiscard]] std::uint32_t first_bin(std::uint32_t s) const noexcept {
    const std::uint64_t wide = s < extra_ ? s : extra_;
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(s) * base_ + wide);
  }

  /// Number of bins shard s owns (always >= 1).
  [[nodiscard]] std::uint32_t shard_bins(std::uint32_t s) const noexcept {
    return base_ + (s < extra_ ? 1 : 0);
  }

  /// Owning shard of a global bin — the per-probe routing call.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t bin) const noexcept {
    if (bin < split_) return div_wide_(bin);
    return extra_ + div_base_(static_cast<std::uint32_t>(bin - split_));
  }

  /// Shard-local index of a global bin within its owner's range.
  [[nodiscard]] std::uint32_t local_of(std::uint32_t bin, std::uint32_t owner) const
      noexcept {
    return bin - first_bin(owner);
  }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t shards_ = 0;
  std::uint32_t base_ = 0;   ///< floor(n / shards)
  std::uint32_t extra_ = 0;  ///< n mod shards — shards [0, extra_) get base_+1
  std::uint64_t split_ = 0;  ///< first global bin of the base_-sized shards
  FastDivU32 div_wide_;      ///< by base_ + 1
  FastDivU32 div_base_;      ///< by base_
};

}  // namespace bbb::shard
