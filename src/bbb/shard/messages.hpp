#pragma once
/// \file messages.hpp
/// The three message types of the sharded engine's round protocol, sized
/// to one 64-bit word each so a T*T ring mesh stays cache-cheap. All bin
/// ids on the wire are *receiver-local* (the sender already did the
/// routing), and ball ids are *round-local* indices into the sender's
/// slice of the round — which bounds them by the per-round slice size,
/// so 16 bits suffice (enforced in engine.cpp when the round size is
/// chosen).

#include <cstdint>

namespace bbb::shard {

/// "What is the round-start load of your bin `bin`, and was it already
///  probed by an earlier ball this round?" — sent during the draw phase
/// for every probe that crosses a shard boundary.
struct ProbeRequest {
  std::uint32_t bin = 0;   ///< receiver-local bin index
  std::uint16_t ball = 0;  ///< sender's round-local ball index
  std::uint8_t slot = 0;   ///< which of the ball's d probes this is
};

/// The owner's answer: the load at round start plus the conflict verdict
/// (a 1 defers the whole ball to the serialized cleanup sub-phase).
struct ProbeReply {
  std::uint32_t load = 0;
  std::uint16_t ball = 0;
  std::uint8_t slot = 0;
  std::uint8_t conflicted = 0;
};

/// "Add one ball to your bin `bin`." Sent in the decision phase for
/// winners owned by another shard, and by the cleanup coordinator.
struct Commit {
  std::uint32_t bin = 0;  ///< receiver-local bin index
};

}  // namespace bbb::shard
