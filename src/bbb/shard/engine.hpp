#pragma once
/// \file engine.hpp
/// The sharded multi-core allocation engine: n bins partitioned across T
/// worker threads (shard/topology.hpp), each worker owning one
/// core::BinState plus one derived RNG substream, exchanging bounded
/// per-round messages over lock-free SPSC rings (par/spsc_ring.hpp) — the
/// distributed communication model of the 1-2-3-Toolkit round protocols,
/// run at memory speed inside one process.
///
/// ## Round protocol (T > 1)
///
/// Balls are processed in synchronized rounds of at most `round_balls`
/// balls, each round split into contiguous per-worker slices (ball order
/// is therefore globally fixed: round-major, then worker-major, then
/// slice index — never schedule-dependent). A round runs five phases
/// separated by a yielding barrier (par/spin_barrier.hpp):
///
///   A  draw    each worker draws its balls' d probe bins (and one
///              tie-break word for greedy) from its own substream and
///              routes every cross-shard probe as a ProbeRequest;
///   B  serve   each worker answers the probes on bins it owns — in
///              global ball order — with the *round-start* load plus a
///              conflict verdict: a probe on a bin already probed by an
///              earlier ball this round marks its ball `conflicted`;
///   C  decide  each worker collects replies, and for every
///              non-conflicted ball picks the winner (least-loaded with
///              the pre-drawn tie-break word; leftmost for left[d]);
///              cross-shard winners travel as Commit messages;
///   D  apply   all main-phase commits land (loads were read before any
///              commit applied, so every non-conflicted ball decided on
///              exactly the loads the *sequential* process would show it
///              — no earlier ball probed, hence committed to, its bins);
///   E  cleanup worker 0 replays the conflicted (deferred) balls
///              serially in global ball order against *current* loads,
///              fetching remote loads / sending remote commits through
///              the same rings while the other workers serve.
///
/// The conflict-deferral rule is what makes the engine *exactly*
/// distribution-equal to the sequential streaming core (not merely
/// approximately, as a stale-loads batch would be): every ball decides on
/// precisely the loads it would have seen at its position in the global
/// sequential order. The statistical battery in
/// tests/shard/equivalence_test.cpp cross-validates this at alpha = 1e-4,
/// and tests/shard/engine_test.cpp replays the same substreams through a
/// literal sequential simulation and demands bit-equality.
///
/// Multi-shard mode supports the probe-based rules one-choice /
/// greedy[d] / left[d] (uniform capacities, d <= 8). Probe draws use the
/// same rejection-sampled rng::uniform_below mapping as the sequential
/// rules, from per-shard substreams derived via rng::SeedSequence
/// nesting, so results depend only on (seed, shards, round_balls) —
/// never on thread scheduling.
///
/// ## Single-shard mode (T == 1)
///
/// One worker thread drives the exact streaming loop — chunked
/// place_batch plus finalize on the run's own engine, commands fed
/// through an SPSC ring — so every registry rule is supported and the
/// result is bit-for-bit identical to StreamingAllocator (all 14 golden
/// pin families; proven in the ShardLockstep suite). `shards[1]:` is
/// therefore a safe default anywhere the sequential core runs today.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/shard/counters.hpp"
#include "bbb/shard/topology.hpp"

namespace bbb::shard {

/// Largest d the multi-shard probe machinery supports (deferred-ball
/// descriptors carry a fixed probe array). The sequential core has no
/// such cap; shards[t>1] with a larger d throws at construction.
inline constexpr std::uint32_t kMaxShardD = 8;

/// Engine knobs beyond the inner spec and n.
struct ShardOptions {
  std::uint32_t shards = 1;
  /// Balls in flight per synchronized round (T > 1). Clamped to
  /// [shards, 65535 * shards] — the upper bound keeps round-local ball
  /// ids inside the 16-bit message field. Larger rounds amortize the
  /// barriers; the deferral rate grows as ~(round_balls * d)^2 / (2n),
  /// so the default stays small relative to any interesting n.
  std::uint32_t round_balls = 8192;
  core::StateLayout layout = core::StateLayout::kWide;
  /// Forwarded to make_rule for rules that provision on total balls
  /// (threshold's bound) — single-shard mode only.
  std::uint64_t m_hint = 0;
};

/// One-shot sharded run: construct, run(m, gen), read the merged state.
class ShardedAllocator {
 public:
  /// \param inner_spec a registry rule spec *without* modifier prefixes.
  /// \throws std::invalid_argument for unknown/invalid specs, shards == 0
  ///         or shards > n, or a multi-shard spec outside the supported
  ///         one-choice / greedy[d<=8] / left[d<=8] set.
  ShardedAllocator(const std::string& inner_spec, std::uint32_t n, ShardOptions opt);
  ~ShardedAllocator();

  ShardedAllocator(const ShardedAllocator&) = delete;
  ShardedAllocator& operator=(const ShardedAllocator&) = delete;

  /// Place m balls. Blocking: workers are spawned, run the whole stream,
  /// and are joined before return; worker exceptions rethrow here. The
  /// engine is one-shot (\throws std::logic_error on a second call).
  /// T == 1 consumes `gen` exactly like the sequential streaming loop;
  /// T > 1 draws a single word from `gen` as the nested master seed for
  /// the per-shard substreams.
  void run(std::uint64_t m, rng::Engine& gen);

  /// "shards[T]:" + canonical inner rule name.
  [[nodiscard]] std::string name() const;

  [[nodiscard]] std::uint32_t n() const noexcept { return topo_.n(); }
  [[nodiscard]] std::uint32_t shards() const noexcept { return topo_.shards(); }
  [[nodiscard]] core::StateLayout layout() const noexcept { return opt_.layout; }

  // -- merged post-run reads (undefined before run()) ----------------------

  [[nodiscard]] std::uint64_t balls() const noexcept;
  [[nodiscard]] std::uint64_t probes() const noexcept;
  [[nodiscard]] std::uint32_t max_load() const noexcept;
  [[nodiscard]] std::uint32_t min_load() const noexcept;
  [[nodiscard]] std::uint32_t gap() const noexcept;
  /// Merged quadratic potential: sum_s S2_s - t^2/n — bit-identical to
  /// BinState::psi() of an unsharded state with the same loads.
  [[nodiscard]] double psi() const noexcept;
  /// Merged ln Phi from the summed raw potential weights.
  [[nodiscard]] double log_phi() const noexcept;
  /// Merged level counts: entry l = bins at load exactly l across shards.
  [[nodiscard]] std::vector<std::uint32_t> merged_level_counts() const;
  /// Concatenated per-shard loads in global bin order. O(n).
  [[nodiscard]] std::vector<std::uint32_t> copy_loads() const;
  /// The full result in batch vocabulary (materializes loads).
  [[nodiscard]] core::AllocationResult result() const;

  /// Aggregated per-shard counters (messages, cross-shard probe ratio,
  /// deferrals, ring high-water) — passive, harvested by obs after run.
  [[nodiscard]] const ShardCounters& counters() const noexcept { return counters_; }
  /// Single-shard mode's inner rule, for CoreCounters harvesting
  /// (lookahead refills, batch-kernel waves); nullptr when T > 1.
  [[nodiscard]] const core::PlacementRule* rule() const noexcept {
    return rule_.get();
  }
  /// One shard's state, for tests. \throws std::out_of_range.
  [[nodiscard]] const core::BinState& shard_state(std::uint32_t s) const;
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Completed synchronized rounds (T > 1; 0 in single-shard mode, whose
  /// rounds are the inner rule's — e.g. self-balancing passes).
  [[nodiscard]] std::uint64_t sync_rounds() const noexcept { return sync_rounds_; }

 private:
  struct Worker;
  struct Mesh;

  void run_single(std::uint64_t m, rng::Engine& gen);
  void run_sharded(std::uint64_t m, rng::Engine& gen);
  void worker_main(std::uint32_t s, std::uint64_t m);
  void cleanup_round(std::uint32_t s, std::uint64_t round, std::uint32_t d);
  void serve_cleanup(std::uint32_t s, std::uint64_t round);

  /// Decision kinds the multi-shard protocol implements natively.
  enum class Kind : std::uint8_t { kOneChoice, kGreedy, kLeft };

  [[nodiscard]] std::uint32_t decide_slot(const std::uint32_t* loads, std::uint32_t d,
                                          std::uint64_t aux) const noexcept;
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> group_range(
      std::uint32_t g) const noexcept;

  Topology topo_;
  ShardOptions opt_;
  std::string inner_name_;
  Kind kind_ = Kind::kOneChoice;
  std::uint32_t d_ = 1;
  std::uint64_t round_total_ = 0;  ///< balls per full round (multiple of nothing,
                                   ///< just clamped round_balls)
  bool ran_ = false;
  std::uint64_t sync_rounds_ = 0;
  ShardCounters counters_;

  // Single-shard mode.
  std::unique_ptr<core::PlacementRule> rule_;
  std::unique_ptr<core::BinState> single_state_;

  // Multi-shard mode.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Mesh> mesh_;
};

/// Batch Protocol wrapper so `shards[t]:spec` slots into the registry and
/// the wide sim path: run() builds a fresh wide-layout engine per call.
/// Note the batch form of shards[1]:spec is the *streaming* form of the
/// inner rule (place loop + finalize) — for batched[capacity], whose
/// batch form is the LW rounds, the sharded spelling is therefore its
/// streaming capacity-bounded variant, same as the compact layout runs
/// (pinned separately in the GoldenPins suite).
class ShardedProtocol final : public core::Protocol {
 public:
  /// \throws std::invalid_argument as ShardedAllocator (validated eagerly
  ///         against a representative n at construction where possible;
  ///         n-dependent limits re-check inside run()).
  ShardedProtocol(std::string inner_spec, ShardOptions opt);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] core::AllocationResult run(std::uint64_t m, std::uint32_t n,
                                           rng::Engine& gen) const override;

 private:
  std::string inner_spec_;
  std::string inner_name_;
  ShardOptions opt_;
};

}  // namespace bbb::shard
