/// load_balancer — the motivating application from the paper's introduction:
/// a dispatcher assigning an *unknown, open-ended* stream of jobs to servers.
///
/// threshold needs the total job count m in advance; adaptive does not —
/// that is exactly the scenario where the paper's new protocol matters.
/// This example streams jobs through three dispatch strategies and snapshots
/// the imbalance as the day progresses. Job arrivals come in bursts drawn
/// from a skewed source distribution (alias-method sampler) to show the
/// balance guarantee does not depend on smooth arrivals.
///
///   $ ./load_balancer --jobs=200000 --servers=1000

#include <cstdio>
#include <string>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/table.hpp"
#include "bbb/rng/alias_table.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace {

struct Snapshot {
  std::uint64_t jobs;
  std::uint32_t max;
  std::uint32_t gap;
  double psi;
  std::uint64_t probes;
};

std::vector<Snapshot> dispatch_stream(bbb::core::StreamingAllocator& alloc,
                                      std::uint64_t jobs, std::uint32_t snapshots,
                                      std::uint64_t seed) {
  bbb::rng::Engine gen(seed);
  // Bursty arrival pattern: each "tick" delivers 1-64 jobs with a skewed
  // burst-size distribution. The dispatcher only sees jobs one at a time.
  bbb::rng::AliasTable burst_sizes({40, 20, 15, 10, 7, 5, 2, 1});
  std::vector<Snapshot> out;
  const std::uint64_t stride = jobs / snapshots;
  std::uint64_t placed = 0;
  std::uint64_t next_snap = stride;
  while (placed < jobs) {
    std::uint64_t burst = (std::uint64_t{1} << burst_sizes(gen));  // 1..128
    for (; burst > 0 && placed < jobs; --burst) {
      alloc.place(gen);
      ++placed;
      if (placed >= next_snap || placed == jobs) {
        // O(1) per snapshot: the metrics are maintained incrementally.
        const auto& st = alloc.state();
        out.push_back({placed, st.max_load(), st.gap(), st.psi(), alloc.probes()});
        next_snap += stride;
      }
    }
  }
  return out;
}

void print_strategy(const std::string& name, const std::vector<Snapshot>& snaps,
                    bbb::io::Format format) {
  bbb::io::Table table({"jobs", "max load", "gap", "psi", "probes/job"});
  table.set_title(name);
  for (const auto& s : snaps) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(s.jobs));
    table.add_int(s.max);
    table.add_int(s.gap);
    table.add_num(s.psi, 0);
    table.add_num(static_cast<double>(s.probes) / static_cast<double>(s.jobs), 3);
  }
  std::fputs(table.render(format).c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("load_balancer",
                          "online job dispatch with adaptive vs. classic strategies");
  args.add_flag("jobs", std::uint64_t{200'000}, "total jobs in the stream");
  args.add_flag("servers", std::uint64_t{1'000}, "number of servers");
  args.add_flag("snapshots", std::uint64_t{8}, "imbalance snapshots to take");
  args.add_flag("seed", std::uint64_t{7}, "RNG seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  if (!args.parse(argc, argv)) return 0;

  const auto jobs = args.get_u64("jobs");
  const auto servers = static_cast<std::uint32_t>(args.get_u64("servers"));
  const auto snapshots = static_cast<std::uint32_t>(args.get_u64("snapshots"));
  const auto seed = args.get_u64("seed");
  const auto format = bbb::io::parse_format(args.get_string("format"));

  std::printf("dispatching %llu jobs to %u servers (bursty arrivals)\n\n",
              static_cast<unsigned long long>(jobs), servers);

  bbb::core::StreamingAllocator adaptive(servers,
                                         bbb::core::make_rule("adaptive", servers));
  print_strategy("adaptive dispatcher (this paper)",
                 dispatch_stream(adaptive, jobs, snapshots, seed), format);

  bbb::core::StreamingAllocator greedy2(servers,
                                        bbb::core::make_rule("greedy[2]", servers));
  print_strategy("greedy[2] dispatcher (power of two choices)",
                 dispatch_stream(greedy2, jobs, snapshots, seed), format);

  bbb::core::StreamingAllocator random(servers,
                                       bbb::core::make_rule("one-choice", servers));
  print_strategy("random dispatcher (one-choice)",
                 dispatch_stream(random, jobs, snapshots, seed), format);

  std::puts("note: adaptive keeps gap = O(log n) at every snapshot without knowing");
  std::puts("the job count in advance; greedy[2] drifts above average under heavy");
  std::puts("load; one-choice spreads like sqrt(jobs/servers).");
  return 0;
}
