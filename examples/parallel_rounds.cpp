/// parallel_rounds — the synchronous-rounds model from the paper's related
/// work (Lenzen & Wattenhofer): how many communication rounds does it take
/// to place n balls into n bins with max load 2, and how many messages?
///
/// Sweeps n over powers of two and prints rounds/messages next to the
/// theoretical log*(n) scale.
///
///   $ ./parallel_rounds --max-exp=18

#include <cstdio>
#include <string>

#include "bbb/core/protocols/batched.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/table.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/theory/bounds.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("parallel_rounds",
                          "rounds/messages of batched parallel allocation");
  args.add_flag("min-exp", std::uint64_t{8}, "smallest n = 2^min-exp");
  args.add_flag("max-exp", std::uint64_t{18}, "largest n = 2^max-exp");
  args.add_flag("capacity", std::uint64_t{2}, "bin capacity");
  args.add_flag("seed", std::uint64_t{5}, "RNG seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  if (!args.parse(argc, argv)) return 0;

  const auto lo = static_cast<std::uint32_t>(args.get_u64("min-exp"));
  const auto hi = static_cast<std::uint32_t>(args.get_u64("max-exp"));
  const auto capacity = static_cast<std::uint32_t>(args.get_u64("capacity"));
  const auto format = bbb::io::parse_format(args.get_string("format"));

  bbb::core::BatchedProtocol::Params params;
  params.capacity = capacity;
  const bbb::core::BatchedProtocol protocol(params);

  bbb::io::Table table({"n", "rounds", "log*(n)", "messages", "messages/n", "max load"});
  table.set_title("batched parallel allocation, m = n, capacity " +
                  std::to_string(capacity));
  for (std::uint32_t e = lo; e <= hi; ++e) {
    const std::uint64_t n = std::uint64_t{1} << e;
    bbb::rng::Engine gen(args.get_u64("seed") + e);
    const auto res = protocol.run(n, static_cast<std::uint32_t>(n), gen);
    std::uint32_t max_load = 0;
    for (auto l : res.loads) max_load = std::max(max_load, l);
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(n));
    table.add_int(static_cast<std::int64_t>(res.rounds));
    table.add_int(bbb::theory::log_star(static_cast<double>(n)));
    table.add_int(static_cast<std::int64_t>(res.probes));
    table.add_num(static_cast<double>(res.probes) / static_cast<double>(n), 2);
    table.add_int(max_load);
  }
  std::fputs(table.render(format).c_str(), stdout);
  std::puts("\nLenzen-Wattenhofer: max load 2 within log*(n) + O(1) rounds and O(n)");
  std::puts("messages; the doubling-fanout variant here shows the same plateau.");
  return 0;
}
