/// quickstart — the smallest end-to-end use of the library.
///
/// Allocates one million balls into ten thousand bins with the paper's
/// adaptive protocol, prints the guarantees next to what actually happened,
/// and contrasts with classic one-choice hashing.
///
///   $ ./quickstart

#include <cstdio>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/rng/xoshiro256.hpp"

int main() {
  constexpr std::uint32_t n = 10'000;
  constexpr std::uint64_t m = 1'000'000;

  // --- adaptive: the paper's protocol -----------------------------------
  bbb::rng::Engine gen(2013);  // SPAA'13
  const bbb::core::AdaptiveProtocol adaptive;
  const bbb::core::AllocationResult result = adaptive.run(m, n, gen);
  const bbb::core::LoadMetrics metrics =
      bbb::core::compute_metrics(result.loads, result.balls);

  std::printf("adaptive: %llu balls -> %u bins\n",
              static_cast<unsigned long long>(m), n);
  std::printf("  max load        : %u  (guarantee: ceil(m/n)+1 = %llu)\n", metrics.max,
              static_cast<unsigned long long>(bbb::core::ceil_div(m, n) + 1));
  std::printf("  min load        : %u  (gap %u, Corollary 3.5: O(log n))\n",
              metrics.min, metrics.gap);
  std::printf("  allocation time : %llu probes = %.3f per ball (Theorem 3.1: O(m))\n",
              static_cast<unsigned long long>(result.probes),
              static_cast<double>(result.probes) / static_cast<double>(m));
  std::printf("  quadratic pot.  : %.0f (Corollary 3.5: O(n))\n\n", metrics.psi);

  // --- one-choice: what a plain hash would do ---------------------------
  bbb::rng::Engine gen2(2013);
  const bbb::core::OneChoiceProtocol one_choice;
  const auto baseline = one_choice.run(m, n, gen2);
  const auto base_metrics = bbb::core::compute_metrics(baseline.loads, m);
  std::printf("one-choice baseline:\n");
  std::printf("  max load        : %u (overload %u above average)\n", base_metrics.max,
              base_metrics.max - static_cast<std::uint32_t>(m / n));
  std::printf("  quadratic pot.  : %.0f (%.0fx rougher than adaptive)\n",
              base_metrics.psi, base_metrics.psi / metrics.psi);
  return 0;
}
