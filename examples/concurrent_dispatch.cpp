/// concurrent_dispatch — the adaptive protocol as a *lock-free shared-memory
/// dispatcher*: T threads place jobs concurrently against one atomic load
/// table, and the paper's guarantee holds under every interleaving.
///
/// Why it works: adaptive's acceptance bound ceil(i/n) is constant within a
/// stage of n balls, so the counter snapshot a thread reads may lag by the
/// number of in-flight placements without changing any decision (see
/// bbb/core/concurrent_adaptive.hpp). The CAS on the bin load makes the
/// "check bound, then increment" step atomic.
///
///   $ ./concurrent_dispatch --jobs=1000000 --servers=10000 --threads=4

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bbb/core/concurrent_adaptive.hpp"
#include "bbb/core/metrics.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/rng/streams.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("concurrent_dispatch",
                          "lock-free multi-threaded adaptive dispatcher");
  args.add_flag("jobs", std::uint64_t{1'000'000}, "total jobs");
  args.add_flag("servers", std::uint64_t{10'000}, "servers (bins)");
  args.add_flag("threads", std::uint64_t{4}, "dispatcher threads");
  args.add_flag("seed", std::uint64_t{17}, "master seed");
  if (!args.parse(argc, argv)) return 0;

  const auto jobs = args.get_u64("jobs");
  const auto servers = static_cast<std::uint32_t>(args.get_u64("servers"));
  const auto threads = static_cast<std::uint32_t>(args.get_u64("threads"));

  bbb::core::ConcurrentAdaptiveAllocator dispatcher(servers);
  bbb::rng::SeedSequence seq(args.get_u64("seed"));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const std::uint64_t share = jobs / threads + (t < jobs % threads ? 1 : 0);
    workers.emplace_back([&dispatcher, share, engine = seq.engine(t)]() mutable {
      for (std::uint64_t i = 0; i < share; ++i) (void)dispatcher.place(engine);
    });
  }
  for (auto& w : workers) w.join();
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();

  const auto loads = dispatcher.loads_snapshot();
  const auto metrics = bbb::core::compute_metrics(loads, dispatcher.balls());
  const auto bound = static_cast<std::uint32_t>(bbb::core::ceil_div(jobs, servers) + 1);

  std::printf("%u threads dispatched %llu jobs to %u servers in %.3f s "
              "(%.1f M jobs/s)\n",
              threads, static_cast<unsigned long long>(dispatcher.balls()), servers,
              elapsed, static_cast<double>(jobs) / elapsed / 1e6);
  std::printf("  probes          : %llu (%.3f per job)\n",
              static_cast<unsigned long long>(dispatcher.probes()),
              static_cast<double>(dispatcher.probes()) / static_cast<double>(jobs));
  std::printf("  max load        : %u  (guarantee <= %u: %s)\n", metrics.max, bound,
              metrics.max <= bound ? "HELD under concurrency" : "VIOLATED");
  std::printf("  gap             : %u  (O(log n) smoothness survives races)\n",
              metrics.gap);
  std::printf("  quadratic pot.  : %.0f (= %.2f n)\n", metrics.psi,
              metrics.psi / servers);
  return metrics.max <= bound ? 0 : 1;
}
