/// hash_buckets — bounded-bucket hashing, the paper's hashing application:
/// place keys into buckets so no bucket ever exceeds ceil(m/n)+1 entries
/// (worst-case O(1) lookups with a *known* constant), at ~1 probe per key.
///
/// Contrasts three designs on the same key set:
///   threshold  — bucket bound ceil(m/n)+1, m known up-front (static build)
///   cuckoo     — fixed bucket size, relocations on insert (dynamic)
///   one-choice — plain hashing, unbounded worst bucket
///
///   $ ./hash_buckets --keys=1000000 --buckets=65536

#include <cstdio>
#include <string>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/cuckoo.hpp"
#include "bbb/core/protocols/one_choice.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/histogram.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("hash_buckets", "bounded-bucket hash table construction");
  args.add_flag("keys", std::uint64_t{1'000'000}, "keys to insert");
  args.add_flag("buckets", std::uint64_t{65'536}, "number of buckets");
  args.add_flag("seed", std::uint64_t{11}, "RNG seed");
  if (!args.parse(argc, argv)) return 0;

  const auto m = args.get_u64("keys");
  const auto n = static_cast<std::uint32_t>(args.get_u64("buckets"));
  const auto seed = args.get_u64("seed");
  const auto bound = static_cast<std::uint32_t>(bbb::core::ceil_div(m, n) + 1);

  std::printf("building hash tables: %llu keys, %u buckets (avg %.2f/bucket)\n\n",
              static_cast<unsigned long long>(m), n,
              static_cast<double>(m) / static_cast<double>(n));

  // --- threshold build ----------------------------------------------------
  {
    bbb::rng::Engine gen(seed);
    const auto res = bbb::core::ThresholdProtocol{}.run(m, n, gen);
    const auto lm = bbb::core::compute_metrics(res.loads, m);
    std::printf("threshold build  : worst bucket %u (guaranteed <= %u), "
                "%.3f probes/key\n",
                lm.max, bound,
                static_cast<double>(res.probes) / static_cast<double>(m));
  }

  // --- cuckoo build ---------------------------------------------------------
  {
    bbb::rng::Engine gen(seed);
    bbb::core::CuckooRule::Params params;
    params.d = 2;
    params.bucket_size = bound;  // same worst-bucket budget as threshold
    params.max_kicks = 500;
    const auto res = bbb::core::CuckooProtocol{params}.run(m, n, gen);
    std::printf("cuckoo[2,%u] build: worst bucket %u, %.3f probes/key, "
                "%llu relocations%s\n",
                bound, bbb::core::max_load(res.loads),
                static_cast<double>(res.probes) / static_cast<double>(m),
                static_cast<unsigned long long>(res.reallocations),
                res.completed ? "" : " (SOME INSERTS FAILED)");
  }

  // --- plain hashing --------------------------------------------------------
  bbb::rng::Engine gen(seed);
  const auto plain = bbb::core::OneChoiceProtocol{}.run(m, n, gen);
  std::printf("one-choice build : worst bucket %u (no bound), 1.000 probes/key\n\n",
              bbb::core::max_load(plain.loads));

  std::puts("one-choice bucket occupancy histogram (threshold's is capped at the");
  std::printf("guarantee %u):\n", bound);
  const auto hist = bbb::core::load_histogram(plain.loads);
  std::fputs(hist.render_ascii(48).c_str(), stdout);
  return 0;
}
