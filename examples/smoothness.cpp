/// smoothness — watch Corollary 3.5 vs. Lemma 4.2 happen over time.
///
/// Runs adaptive and threshold side by side on the same (m, n) and prints
/// the potential-function trajectory (snapshots every n balls) plus the
/// final load histograms. adaptive's quadratic potential plateaus at O(n);
/// threshold's keeps climbing because it lets bins lag arbitrarily far
/// behind until the very end.
///
///   $ ./smoothness --n=2000 --phi=100

#include <cstdio>
#include <string>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/io/argparse.hpp"
#include "bbb/io/table.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/sim/trace.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("smoothness",
                          "potential-function trajectories: adaptive vs threshold");
  args.add_flag("n", std::uint64_t{2'000}, "bins");
  args.add_flag("phi", std::uint64_t{100}, "balls per bin (m = phi * n)");
  args.add_flag("points", std::uint64_t{10}, "trace points to print");
  args.add_flag("seed", std::uint64_t{3}, "RNG seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  if (!args.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const auto m = args.get_u64("phi") * n;
  const auto points = args.get_u64("points");
  const auto seed = args.get_u64("seed");
  const auto format = bbb::io::parse_format(args.get_string("format"));
  const std::uint64_t stride = m / points;

  std::printf("m = %llu balls into n = %u bins\n\n",
              static_cast<unsigned long long>(m), n);

  bbb::rng::Engine gen_a(seed);
  bbb::core::StreamingAllocator adaptive(n, bbb::core::make_rule("adaptive", n));
  const auto trace_a = bbb::sim::trace_allocation(adaptive, gen_a, m, stride);
  auto table_a = bbb::sim::trace_table(trace_a);
  table_a.set_title("adaptive trajectory (psi plateaus at O(n))");
  std::fputs(table_a.render(format).c_str(), stdout);
  std::fputs("\n", stdout);

  bbb::rng::Engine gen_t(seed);
  bbb::core::StreamingAllocator threshold(n,
                                          bbb::core::make_rule("threshold", n, m));
  const auto trace_t = bbb::sim::trace_allocation(threshold, gen_t, m, stride);
  auto table_t = bbb::sim::trace_table(trace_t);
  table_t.set_title("threshold trajectory (psi grows until the endgame)");
  std::fputs(table_t.render(format).c_str(), stdout);
  std::fputs("\n", stdout);

  std::puts("final load histogram, adaptive (tight around m/n):");
  std::fputs(bbb::core::load_histogram(adaptive.state().loads()).render_ascii(40).c_str(),
             stdout);
  std::puts("\nfinal load histogram, threshold (long under-filled tail):");
  std::fputs(
      bbb::core::load_histogram(threshold.state().loads()).render_ascii(40).c_str(),
      stdout);
  return 0;
}
