/// bench_micro_rng — google-benchmark micro benchmarks for the randomness
/// substrate. The allocation-time results in the paper are probe *counts*;
/// these benches document what one probe costs in wall time on this machine.

#include <benchmark/benchmark.h>

#include "bbb/rng/alias_table.hpp"
#include "bbb/rng/distributions.hpp"
#include "bbb/rng/pcg32.hpp"
#include "bbb/rng/splitmix64.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace {

void BM_SplitMix64(benchmark::State& state) {
  bbb::rng::SplitMix64 gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_SplitMix64);

void BM_Xoshiro256(benchmark::State& state) {
  bbb::rng::Xoshiro256PlusPlus gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Xoshiro256);

void BM_Pcg32(benchmark::State& state) {
  bbb::rng::Pcg32 gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen());
}
BENCHMARK(BM_Pcg32);

void BM_UniformBelow(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  const auto bound = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(bbb::rng::uniform_below(gen, bound));
}
BENCHMARK(BM_UniformBelow)->Arg(10'000)->Arg(1 << 20);

void BM_NextDouble(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(bbb::rng::next_double(gen));
}
BENCHMARK(BM_NextDouble);

void BM_PoissonSmallLambda(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  bbb::rng::PoissonDist dist(1.005);  // the 199/198 rate from Lemma 3.2
  for (auto _ : state) benchmark::DoNotOptimize(dist(gen));
}
BENCHMARK(BM_PoissonSmallLambda);

void BM_PoissonLargeLambda(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  bbb::rng::PoissonDist dist(512.0);  // PTRS path (access distributions)
  for (auto _ : state) benchmark::DoNotOptimize(dist(gen));
}
BENCHMARK(BM_PoissonLargeLambda);

void BM_Binomial(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  bbb::rng::BinomialDist dist(static_cast<std::uint64_t>(state.range(0)), 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(dist(gen));
}
BENCHMARK(BM_Binomial)->Arg(16)->Arg(4096);

void BM_Geometric(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  bbb::rng::GeometricDist dist(0.5);
  for (auto _ : state) benchmark::DoNotOptimize(dist(gen));
}
BENCHMARK(BM_Geometric);

void BM_AliasTable(benchmark::State& state) {
  bbb::rng::Engine gen(42);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i + 1);
  }
  bbb::rng::AliasTable table(weights);
  for (auto _ : state) benchmark::DoNotOptimize(table(gen));
}
BENCHMARK(BM_AliasTable)->Arg(8)->Arg(1024);

}  // namespace
