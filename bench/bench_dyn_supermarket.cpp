/// bench_dyn_supermarket — the supermarket model in equilibrium (Luczak &
/// McDiarmid, "On the power of two choices: balls and bins in continuous
/// time"): Poisson arrivals at rate lambda*n, unit-rate FIFO servers.
/// The stationary fraction of bins with load >= k is lambda^k for
/// one-choice (M/M/1) but lambda^((d^k - 1)/(d - 1)) for greedy[d] with
/// d >= 2 — a doubly-exponential tail. This is the dynamic face of the
/// power of two choices: the measured steady-state occupancy of the
/// streaming engine is printed next to the fixed-point prediction.
///
///   $ ./bench_dyn_supermarket --lambda=90 --n=4096

#include <string>

#include "bbb/dyn/engine.hpp"
#include "bbb/theory/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_dyn_supermarket",
                          "supermarket-model tails: measured vs fixed point");
  args.add_flag("n", std::uint64_t{4096}, "bins (servers)");
  args.add_flag("lambda", std::uint64_t{90}, "arrival rate lambda*100 (0 < l < 100)");
  args.add_flag("events", std::uint64_t{0}, "measured events (0 = 192n)");
  args.add_flag("warmup", std::uint64_t{0}, "burn-in events (0 = 384n)");
  args.add_flag("kmax", std::uint64_t{8}, "report tails for k = 0..kmax");
  bbb::bench::add_common_flags(args, 4);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n =
      static_cast<std::uint32_t>(bbb::bench::smoke_or(flags, args.get_u64("n"), 256));
  const double lambda = static_cast<double>(args.get_u64("lambda")) / 100.0;
  const auto kmax = static_cast<std::uint32_t>(args.get_u64("kmax"));

  bbb::bench::print_header(
      "Supermarket model (Luczak-McDiarmid)",
      "stationary frac(load >= k): lambda^k for d=1, "
      "lambda^((d^k-1)/(d-1)) for d=2 — doubly exponential");

  bbb::dyn::DynConfig cfg;
  cfg.workload_spec = "supermarket[" + std::to_string(args.get_u64("lambda")) + "]";
  cfg.n = n;
  // The M/M/1 column relaxes on a 1/(1-lambda)^2 timescale (~100 time
  // units at lambda = 0.9, ~1.9n events per unit), so burn in generously.
  cfg.events = args.get_u64("events") != 0 ? args.get_u64("events") : 192ULL * n;
  cfg.warmup = args.get_u64("warmup") != 0 ? args.get_u64("warmup") : 384ULL * n;
  cfg.stride = cfg.events;  // summary only; no trajectory needed here
  cfg.tail_max = kmax;
  cfg.replicates = flags.reps;
  cfg.seed = flags.seed;

  bbb::par::ThreadPool pool(flags.threads);
  cfg.allocator_spec = "one-choice";
  const bbb::dyn::DynSummary one = bbb::dyn::run_dynamic(cfg, pool);
  cfg.allocator_spec = "greedy[2]";
  const bbb::dyn::DynSummary two = bbb::dyn::run_dynamic(cfg, pool);

  bbb::io::Table table({"k", "d=1 measured", "d=1 predicted", "d=2 measured",
                        "d=2 predicted"});
  table.set_title("frac(load >= k), lambda = " + std::to_string(lambda) +
                  ", n = " + std::to_string(n) + ", " +
                  std::to_string(flags.reps) + " replicates");
  for (std::uint32_t k = 0; k <= kmax; ++k) {
    table.begin_row();
    table.add_int(k);
    table.add_num(one.tail[k].mean(), 6);
    table.add_num(bbb::theory::supermarket_tail_fixed_point(lambda, 1, k), 6);
    table.add_num(two.tail[k].mean(), 6);
    table.add_num(bbb::theory::supermarket_tail_fixed_point(lambda, 2, k), 6);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);

  std::printf("\nsteady state: d=1 holds %.0f balls (M/M/1 mean %.0f), "
              "d=2 holds %.0f; mean max load %.1f vs %.1f\n",
              one.balls.mean(), lambda / (1.0 - lambda) * n, two.balls.mean(),
              one.max_load.mean(), two.max_load.mean());
  std::puts("expected shape: the d=1 column decays geometrically while the d=2");
  std::puts("column collapses doubly exponentially — two choices keep queues short");
  std::puts("under sustained traffic, not just in one-shot allocation.");
  return 0;
}
