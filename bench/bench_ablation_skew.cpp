/// bench_ablation_skew — robustness of adaptive when the uniform-probe
/// primitive is biased (Zipf(s) over the bins, modeling a hash function
/// with a non-uniform range).
///
/// The acceptance rule keeps the max-load guarantee for *any* probe
/// distribution; what degrades is Theorem 3.1's O(m) allocation time —
/// cold bins are only reachable through the biased sampler's tail, so the
/// per-stage endgame inflates with s.
///
///   $ ./bench_ablation_skew

#include "bbb/core/protocol.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_skew",
                          "ablation: Zipf-biased probe distribution in adaptive");
  args.add_flag("n", std::uint64_t{1'024}, "bins");
  args.add_flag("phi", std::uint64_t{8}, "m/n");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const std::uint64_t m = args.get_u64("phi") * n;

  bbb::bench::print_header(
      "Extension: biased probes",
      "the max-load guarantee of adaptive is distribution-free; the O(m) "
      "allocation time (Theorem 3.1) requires near-uniform probing.");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"zipf s", "probes/m", "vs uniform", "max load", "bound",
                        "gap", "psi/n"});
  table.set_title("skewed-adaptive, m = " + std::to_string(m) + ", n = " +
                  std::to_string(n));
  double uniform_ppb = 0.0;
  for (std::uint32_t s100 : {0u, 25u, 50u, 100u, 150u, 200u}) {
    const auto s = bbb::bench::run_cell("skewed-adaptive[" + std::to_string(s100) + "]",
                                        m, n, flags, pool);
    if (s100 == 0) uniform_ppb = s.probes_per_ball();
    table.begin_row();
    table.add_num(static_cast<double>(s100) / 100.0, 2);
    table.add_num(s.probes_per_ball(), 3);
    table.add_num(s.probes_per_ball() / uniform_ppb, 2);
    table.add_num(s.max_load.mean(), 2);
    table.add_int(static_cast<std::int64_t>(bbb::core::ceil_div(m, n) + 1));
    table.add_num(s.gap.mean(), 2);
    table.add_num(s.psi.mean() / n, 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: max load pinned at ceil(m/n)+1 in every row (the");
  std::puts("guarantee is free of distributional assumptions); probes/m explodes");
  std::puts("with s — uniformity is a *time* assumption, not a *balance* one.");
  return 0;
}
