/// bench_thm41_threshold_time — Theorem 4.1: the allocation time of
/// threshold is m + O(m^{3/4} n^{1/4}) w.h.p.
///
/// We measure overhead = probes - m over an (m, n) grid, print it normalized
/// by the predicted scale m^{3/4} n^{1/4} (the column should be a flat
/// constant), and fit overhead ~ m^alpha at fixed n (alpha should be near
/// 3/4, clearly below 1).
///
///   $ ./bench_thm41_threshold_time

#include "bbb/stats/regression.hpp"
#include "bbb/theory/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_thm41_threshold_time",
                          "Theorem 4.1: threshold time = m + O(m^3/4 n^1/4)");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);

  bbb::bench::print_header(
      "Theorem 4.1 (SPAA'13)",
      "allocation time of threshold is m + O(m^{3/4} n^{1/4}) w.h.p., all m >= n.");

  bbb::par::ThreadPool pool(flags.threads);

  bbb::io::Table table(
      {"n", "phi=m/n", "probes-m (mean)", "(probes-m)/scale", "scale=m^.75 n^.25"});
  table.set_title("overhead normalized by the theorem's scale (flat = confirmed)");
  for (std::uint32_t n : {1u << 8, 1u << 10, 1u << 12}) {
    for (std::uint64_t phi : {16ULL, 64ULL, 256ULL}) {
      const std::uint64_t m = phi * n;
      const auto s = bbb::bench::run_cell("threshold", m, n, flags, pool);
      const double overhead = s.probes.mean() - static_cast<double>(m);
      const double scale = bbb::theory::threshold_overhead_scale(m, n);
      table.begin_row();
      table.add_int(n);
      table.add_int(static_cast<std::int64_t>(phi));
      table.add_num(overhead, 0);
      table.add_num(overhead / scale, 3);
      table.add_num(scale, 0);
    }
  }
  std::fputs(table.render(flags.format).c_str(), stdout);

  // Exponent fit at fixed n: overhead ~ m^alpha, expected alpha ~ 0.75.
  constexpr std::uint32_t kFitN = 1u << 10;
  std::vector<double> ms, overheads;
  for (std::uint64_t phi : {8ULL, 16ULL, 32ULL, 64ULL, 128ULL, 256ULL, 512ULL}) {
    const std::uint64_t m = phi * kFitN;
    const auto s = bbb::bench::run_cell("threshold", m, kFitN, flags, pool);
    ms.push_back(static_cast<double>(m));
    overheads.push_back(s.probes.mean() - static_cast<double>(m));
  }
  const auto fit = bbb::stats::power_law_fit(ms, overheads);
  std::printf("\nfit at n = %u: overhead ~ m^%.3f (R^2 = %.4f)\n", kFitN, fit.exponent,
              fit.r_squared);
  std::puts("expected shape: exponent near 0.75 (clearly below 1), normalized");
  std::puts("column flat across the grid — the sub-linear overhead of Theorem 4.1.");
  return 0;
}
