/// bench_lem42_threshold_potential — Lemma 4.2: for threshold at m = n^2,
/// w.h.p.  Psi = Omega(n^{9/8}),  gap = Omega(n^{1/8}),  Phi = 2^Omega(n^{1/8}).
///
/// Sweep n with m = n^2 and print Psi/n^{9/8}, gap/n^{1/8} and
/// log2(Phi)/n^{1/8}; the columns must stay bounded away from zero. A
/// power-law fit of Psi against n checks the superlinear exponent. The same
/// sweep for adaptive shows the contrast (Psi/n flat).
///
///   $ ./bench_lem42_threshold_potential

#include <cmath>

#include "bbb/stats/regression.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_lem42_threshold_potential",
                          "Lemma 4.2: threshold roughness at m = n^2");
  args.add_flag("min-exp", std::uint64_t{6}, "smallest n = 2^min-exp");
  args.add_flag("max-exp", std::uint64_t{11}, "largest n = 2^max-exp");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);

  bbb::bench::print_header(
      "Lemma 4.2 (SPAA'13)",
      "threshold at m = n^2: Psi = Omega(n^{9/8}), gap = Omega(n^{1/8}), "
      "Phi = 2^Omega(n^{1/8}) w.h.p. — contrast with Corollary 3.5.");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"n", "psi", "psi/n^1.125", "gap", "gap/n^0.125",
                        "log2(phi)/n^0.125", "adaptive psi/n"});
  table.set_title("m = n^2, " + std::to_string(flags.reps) + " replicates");

  std::vector<double> ns, psis;
  for (std::uint64_t e = args.get_u64("min-exp"); e <= args.get_u64("max-exp"); ++e) {
    const auto n = static_cast<std::uint32_t>(std::uint64_t{1} << e);
    const std::uint64_t m = static_cast<std::uint64_t>(n) * n;
    const auto th = bbb::bench::run_cell("threshold", m, n, flags, pool);
    const auto ad = bbb::bench::run_cell("adaptive", m, n, flags, pool);
    const double nd = n;
    table.begin_row();
    table.add_int(n);
    table.add_num(th.psi.mean(), 0);
    table.add_num(th.psi.mean() / std::pow(nd, 9.0 / 8.0), 3);
    table.add_num(th.gap.mean(), 2);
    table.add_num(th.gap.mean() / std::pow(nd, 1.0 / 8.0), 3);
    table.add_num(th.log_phi.mean() / std::log(2.0) / std::pow(nd, 1.0 / 8.0), 3);
    table.add_num(ad.psi.mean() / nd, 3);
    ns.push_back(nd);
    psis.push_back(th.psi.mean());
  }
  std::fputs(table.render(flags.format).c_str(), stdout);

  const auto fit = bbb::stats::power_law_fit(ns, psis);
  std::printf("\nfit: threshold Psi ~ n^%.3f (R^2 = %.4f); Lemma 4.2 predicts "
              "exponent >= 9/8 = 1.125\n",
              fit.exponent, fit.r_squared);
  std::puts("expected shape: normalized threshold columns bounded away from 0;");
  std::puts("adaptive's psi/n flat — threshold is polynomially rougher.");
  return 0;
}
