/// bench_dyn_churn — does adaptive's smoothness survive steady-state
/// churn? Corollary 3.5 gives Psi = O(n) for the batch protocol; under a
/// fixed population with continuous kill-and-replace traffic the answer
/// depends on how the bound ceil(i/n) + 1 reads "i" once balls depart:
///
///   adaptive-net    i = balls in the system  -> bound stays tight,
///                                               smoothness survives;
///   adaptive-total  i = balls ever placed    -> bound climbs forever,
///                                               goes vacuous, and the
///                                               vector drifts to
///                                               one-choice roughness.
///
/// one-choice is printed as the roughness baseline the total variant
/// converges to.
///
///   $ ./bench_dyn_churn --n=4096 --phi=8

#include <string>

#include "bbb/dyn/engine.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_dyn_churn",
                          "adaptive smoothness under fixed-population churn");
  args.add_flag("n", std::uint64_t{4096}, "bins");
  args.add_flag("phi", std::uint64_t{8}, "population = phi * n balls");
  args.add_flag("events", std::uint64_t{0}, "measured events (0 = 64n)");
  args.add_flag("warmup", std::uint64_t{0}, "burn-in events (0 = phi*n + 32n)");
  args.add_flag("oldest", std::uint64_t{0}, "1 = kill the oldest ball, not uniform");
  bbb::bench::add_common_flags(args, 4);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n =
      static_cast<std::uint32_t>(bbb::bench::smoke_or(flags, args.get_u64("n"), 256));
  const std::uint64_t phi = args.get_u64("phi");
  const std::uint64_t population = phi * n;

  bbb::bench::print_header(
      "Churn ablation (Corollary 3.5 under departures)",
      "batch adaptive keeps Psi = O(n); which dynamic bound variant preserves it?");

  bbb::dyn::DynConfig cfg;
  const std::string workload_name =
      args.get_u64("oldest") != 0 ? "churn-oldest" : "churn";
  cfg.workload_spec = workload_name + "[" + std::to_string(population) + "]";
  cfg.n = n;
  cfg.events = args.get_u64("events") != 0 ? args.get_u64("events") : 64ULL * n;
  cfg.warmup =
      args.get_u64("warmup") != 0 ? args.get_u64("warmup") : population + 32ULL * n;
  cfg.stride = cfg.events;
  cfg.tail_max = 1;  // tails are not the story here
  cfg.replicates = flags.reps;
  cfg.seed = flags.seed;

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"allocator", "psi/n", "gap", "max load", "peak max",
                        "probes/ball"});
  table.set_title("population = " + std::to_string(phi) + "n, n = " +
                  std::to_string(n) + ", " + std::to_string(flags.reps) +
                  " replicates, steady-state averages");
  double psi_net = 0.0, psi_total = 0.0;
  for (const std::string spec : {"adaptive-net", "adaptive-total", "one-choice"}) {
    cfg.allocator_spec = spec;
    const bbb::dyn::DynSummary s = bbb::dyn::run_dynamic(cfg, pool);
    if (spec == "adaptive-net") psi_net = s.psi_per_bin();
    if (spec == "adaptive-total") psi_total = s.psi_per_bin();
    table.begin_row();
    table.add_cell(s.allocator_name);
    table.add_num(s.psi_per_bin(), 3);
    table.add_num(s.gap.mean(), 2);
    table.add_num(s.max_load.mean(), 2);
    table.add_num(s.peak_max.mean(), 2);
    table.add_num(s.probes_per_ball.mean(), 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);

  std::printf("\nverdict: net-bound Psi/n = %.2f vs total-bound Psi/n = %.2f "
              "(%.1fx rougher)\n",
              psi_net, psi_total, psi_total / (psi_net > 0.0 ? psi_net : 1.0));
  std::puts("expected shape: adaptive-net stays O(1) like the batch protocol;");
  std::puts("adaptive-total's bound outruns the population and its row approaches");
  std::puts("the one-choice baseline — track net balls, not total placed.");
  return 0;
}
