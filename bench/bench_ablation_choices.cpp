/// bench_ablation_choices — the d-choice landscape behind Table 1: how max
/// load falls with d for greedy[d] vs left[d], against the theory columns
/// ln ln n / ln d and ln ln n / (d ln phi_d), and what that costs in probes.
/// This is the allocation-time/max-load trade-off the paper's protocols
/// escape.
///
///   $ ./bench_ablation_choices

#include <cmath>

#include "bbb/core/protocol.hpp"
#include "bbb/theory/bounds.hpp"
#include "bbb/theory/phi_d.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_choices",
                          "ablation: number of choices d in greedy/left");
  args.add_flag("n", std::uint64_t{65'536}, "bins");
  args.add_flag("phi", std::uint64_t{8}, "m/n (heavily loaded regime)");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const std::uint64_t m = args.get_u64("phi") * n;

  bbb::bench::print_header(
      "Table 1 context (SPAA'13)",
      "greedy[d]: m/n + ln ln n/ln d; left[d]: m/n + ln ln n/(d ln phi_d); "
      "both pay d probes per ball. adaptive gets ceil(m/n)+1 at ~2 probes.");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"protocol", "probes/ball", "max load (mean)",
                        "theory max load", "gap (mean)"});
  table.set_title("m = " + std::to_string(m) + ", n = " + std::to_string(n));

  const auto add_row = [&](const std::string& spec, double theory_load) {
    const auto s = bbb::bench::run_cell(spec, m, n, flags, pool);
    table.begin_row();
    table.add_cell(spec);
    table.add_num(s.probes_per_ball(), 3);
    table.add_num(s.max_load.mean(), 2);
    if (theory_load > 0) {
      table.add_num(theory_load, 2);
    } else {
      table.add_cell("ceil(m/n)+1 = " +
                     std::to_string(bbb::core::ceil_div(m, n) + 1));
    }
    table.add_num(s.gap.mean(), 2);
  };

  add_row("one-choice", bbb::theory::one_choice_max_load(m, n));
  for (std::uint32_t d : {2u, 3u, 4u}) {
    add_row("greedy[" + std::to_string(d) + "]",
            bbb::theory::greedy_d_max_load(m, n, d));
  }
  for (std::uint32_t d : {2u, 3u, 4u}) {
    add_row("left[" + std::to_string(d) + "]", bbb::theory::left_d_max_load(m, n, d));
  }
  add_row("memory[1,1]", static_cast<double>(m) / n +
                             std::log(std::log(static_cast<double>(n))) /
                                 (2.0 * std::log(bbb::theory::phi_d(2))));
  add_row("adaptive", -1.0);
  add_row("threshold", -1.0);

  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: greedy/left max load falls slowly with d while the");
  std::puts("probe bill rises linearly in d; adaptive and threshold sit at the");
  std::puts("optimal corner (max load ceil(m/n)+1, ~1-2 probes/ball).");
  return 0;
}
