/// bench_appendix_poisson — the proof machinery of Appendix A/B, verified
/// empirically:
///  (1) Lemma A.7: event-probability transfer between the exact and the
///      Poissonized model (increasing events: factor <= 4);
///  (2) the KS distance between exact and Poissonized load samples;
///  (3) Theorem 4.1's holes process W_t: trajectory and the endgame
///      W_T <= n within the proof's probe budget (phi + phi^{3/4} + 1) n.
///
///   $ ./bench_appendix_poisson

#include "bbb/core/metrics.hpp"
#include "bbb/model/holes.hpp"
#include "bbb/model/poissonized.hpp"
#include "bbb/stats/hypothesis.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_appendix_poisson",
                          "Appendix A/B machinery: Poissonization and holes");
  args.add_flag("n", std::uint64_t{1'024}, "bins");
  args.add_flag("trials", std::uint64_t{2'000}, "Monte-Carlo trials per event");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const auto trials = static_cast<std::uint32_t>(args.get_u64("trials"));

  bbb::bench::print_header(
      "Lemma A.7 + Theorem 4.1 proof internals (SPAA'13)",
      "Pr_exact[A] <= 4 Pr_poisson[A] for increasing A; threshold's holes "
      "W_T <= n within (phi + phi^{3/4} + 1) n probes.");

  // --- (1) Lemma A.7 transfer for increasing events --------------------
  bbb::io::Table transfer({"event", "Pr exact", "Pr poisson", "ratio", "<= 4?"});
  transfer.set_title("increasing events A = {max load >= k}, m = n = " +
                     std::to_string(n) + ", " + std::to_string(trials) + " trials");
  bbb::rng::Engine gen(flags.seed);
  for (std::uint32_t k : {3u, 4u, 5u}) {
    const auto event = [k](const std::vector<std::uint32_t>& loads) {
      return bbb::core::max_load(loads) >= k;
    };
    const double pe = bbb::model::estimate_exact_probability(n, n, trials, gen, event);
    const double pp =
        bbb::model::estimate_poisson_probability(n, n, trials, gen, event);
    transfer.begin_row();
    transfer.add_cell("max>=" + std::to_string(k));
    transfer.add_num(pe, 4);
    transfer.add_num(pp, 4);
    transfer.add_num(pp > 0 ? pe / pp : 0.0, 3);
    transfer.add_cell(pp == 0.0 || pe <= 4.0 * pp ? "yes" : "NO");
  }
  std::fputs(transfer.render(flags.format).c_str(), stdout);
  std::fputs("\n", stdout);

  // --- (2) KS distance between the two load samples ---------------------
  {
    std::vector<double> exact, poisson;
    for (std::uint32_t t = 0; t < 50; ++t) {
      for (auto l : bbb::model::exact_loads(n, n, gen)) {
        exact.push_back(static_cast<double>(l));
      }
      for (auto l : bbb::model::poissonized_loads(1.0, n, gen)) {
        poisson.push_back(static_cast<double>(l));
      }
    }
    const auto ks = bbb::stats::ks_two_sample(std::move(exact), std::move(poisson));
    std::printf("KS(exact loads, poissonized loads) at m = n: D = %.4f\n",
                ks.statistic);
    std::puts("(small D: the Poisson model is a faithful stand-in, the heart of");
    std::puts("the paper's Appendix-B analysis)\n");
  }

  // --- (3) Theorem 4.1 holes process ------------------------------------
  bbb::io::Table holes({"t/n", "holes W_t", "placed", "W_t <= n?"});
  constexpr std::uint64_t kPhi = 64;
  const std::uint64_t m = kPhi * n;
  holes.set_title("holes trajectory, phi = " + std::to_string(kPhi) +
                  ", budget T = (phi + phi^0.75 + 1) n = " +
                  std::to_string(bbb::model::theorem41_probe_budget(m, n)));
  bbb::model::ChoiceVector choices(n, flags.seed + 1);
  const auto traj = bbb::model::holes_trajectory(m, choices, m / 8);
  for (const auto& p : traj) {
    holes.begin_row();
    holes.add_num(static_cast<double>(p.t) / static_cast<double>(n), 2);
    holes.add_int(static_cast<std::int64_t>(p.holes));
    holes.add_int(static_cast<std::int64_t>(p.placed));
    holes.add_cell(p.holes <= n ? "yes" : "not yet");
  }
  std::fputs(holes.render(flags.format).c_str(), stdout);
  std::printf("\nfinal: all %llu balls placed after %llu probes (budget %llu) — "
              "endgame W_T = n exactly as the proof needs.\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(choices.consumed()),
              static_cast<unsigned long long>(bbb::model::theorem41_probe_budget(m, n)));
  return 0;
}
