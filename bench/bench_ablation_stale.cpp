/// bench_ablation_stale — how adaptive degrades when the global ball
/// counter it relies on is published only every delta placements (the
/// paper's "each ball must know how many balls have been already placed"
/// assumption, relaxed).
///
/// delta = 1 is the paper's protocol; delta = n republishes once per stage,
/// which pushes most balls down to the slack-0 (coupon collector) bound.
/// The max-load guarantee survives any delta <= n.
///
///   $ ./bench_ablation_stale

#include "bbb/core/protocol.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_stale",
                          "ablation: stale ball-counter broadcasts in adaptive");
  args.add_flag("n", std::uint64_t{4'096}, "bins");
  args.add_flag("phi", std::uint64_t{16}, "m/n");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const std::uint64_t m = args.get_u64("phi") * n;

  bbb::bench::print_header(
      "Extension: stale counters (paper §1.1 assumption)",
      "adaptive needs the number of placed balls — but only to within n: "
      "the bound ceil(i/n) is constant within a stage, so broadcasts every "
      "delta <= n placements give a bit-identical execution.");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"delta", "probes/m", "vs fresh", "max load", "bound",
                        "gap", "psi/n"});
  table.set_title("stale-adaptive[delta], m = " + std::to_string(m) + ", n = " +
                  std::to_string(n));
  double fresh_ppb = 0.0;
  for (std::uint32_t delta : {1u, 16u, 256u, 1024u, 4096u}) {
    const auto s = bbb::bench::run_cell("stale-adaptive[" + std::to_string(delta) + "]",
                                        m, n, flags, pool);
    if (delta == 1) fresh_ppb = s.probes_per_ball();
    table.begin_row();
    table.add_int(delta);
    table.add_num(s.probes_per_ball(), 3);
    table.add_num(s.probes_per_ball() / fresh_ppb, 2);
    table.add_num(s.max_load.mean(), 2);
    table.add_int(static_cast<std::int64_t>(bbb::core::ceil_div(m, n) + 1));
    table.add_num(s.gap.mean(), 2);
    table.add_num(s.psi.mean() / n, 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: every row identical (vs-fresh column = 1.00) — the");
  std::puts("informational assumption of adaptive is much weaker than it looks:");
  std::puts("one counter broadcast per stage of n balls suffices, verbatim.");
  std::puts("delta > n is rejected by the library because both the identity and");
  std::puts("the termination argument break there.");
  return 0;
}
