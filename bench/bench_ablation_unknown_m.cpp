/// bench_ablation_unknown_m — why adaptive is the *right* unknown-m fix.
///
/// threshold needs m up-front. Three ways to cope when m is unknown:
///   oracle    — threshold told the true m (cheating baseline);
///   doubling  — guess-and-double threshold: keeps O(m) probes but the
///               bound cliff after each doubling ruins the max load;
///   adaptive  — the paper's protocol: O(m) probes AND ceil(m/n)+1 load.
/// The sweep places m just below and just above doubling boundaries, where
/// the difference is starkest.
///
///   $ ./bench_ablation_unknown_m

#include "bbb/core/protocol.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_unknown_m",
                          "unknown-m strategies: oracle vs doubling vs adaptive");
  args.add_flag("n", std::uint64_t{4'096}, "bins");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));

  bbb::bench::print_header(
      "Extension: the unknown-m problem (paper §1.1)",
      "adaptive achieves oracle-threshold balance without knowing m; "
      "guess-and-double does not (bound cliff past each doubling).");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"m/n", "optimal+1", "oracle max", "doubling max",
                        "adaptive max", "oracle p/m", "doubling p/m",
                        "adaptive p/m"});
  table.set_title("n = " + std::to_string(n) +
                  "; m straddles doubling boundaries (guess starts at n)");
  // Just below / just above the 4n and 8n boundaries, plus a mid point.
  const double ratios[] = {3.9, 4.1, 6.0, 7.9, 8.2};
  for (const double r : ratios) {
    const auto m = static_cast<std::uint64_t>(r * n);
    const auto oracle = bbb::bench::run_cell("threshold", m, n, flags, pool);
    const auto doubling =
        bbb::bench::run_cell("doubling-threshold[0]", m, n, flags, pool);
    const auto adaptive = bbb::bench::run_cell("adaptive", m, n, flags, pool);
    table.begin_row();
    table.add_num(r, 1);
    table.add_int(static_cast<std::int64_t>(bbb::core::ceil_div(m, n) + 1));
    table.add_num(oracle.max_load.mean(), 2);
    table.add_num(doubling.max_load.mean(), 2);
    table.add_num(adaptive.max_load.mean(), 2);
    table.add_num(oracle.probes_per_ball(), 3);
    table.add_num(doubling.probes_per_ball(), 3);
    table.add_num(adaptive.probes_per_ball(), 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: oracle and adaptive sit at optimal+1 everywhere;");
  std::puts("doubling's max load overshoots right after each boundary (rows 4.1,");
  std::puts("8.2) because its acceptance bound tracks the *guess*, not m. All");
  std::puts("three stay near ~1 probe/ball — the loss is balance, not time.");
  return 0;
}
