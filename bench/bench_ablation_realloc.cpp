/// bench_ablation_realloc — the reallocation-based end of the design space
/// (related work §1): Czumaj-Riley-Scheideler self-balancing reaches a
/// perfectly balanced allocation but pays post-placement moves; cuckoo
/// hashing pays relocation cascades that blow up near the load threshold.
/// The paper's protocols avoid reallocations entirely.
///
///   $ ./bench_ablation_realloc

#include "bbb/core/protocol.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_realloc",
                          "ablation: reallocation-based allocators");
  args.add_flag("n", std::uint64_t{4'096}, "bins/buckets");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));

  bbb::bench::print_header(
      "Related work §1 (SPAA'13) — reallocation schemes",
      "CRS self-balancing: max load ceil(m/n) via O(m)+poly(n) moves; "
      "cuckoo insertions cascade near the density threshold.");

  bbb::par::ThreadPool pool(flags.threads);

  bbb::io::Table crs({"phi=m/n", "max load", "ceil(m/n)", "moves/m", "passes",
                      "greedy[2] max"});
  crs.set_title("self-balancing (CRS) vs plain greedy[2], n = " + std::to_string(n));
  for (std::uint64_t phi : {4ULL, 16ULL, 64ULL}) {
    const std::uint64_t m = phi * n;
    const auto sb = bbb::bench::run_cell("self-balancing", m, n, flags, pool);
    const auto g2 = bbb::bench::run_cell("greedy[2]", m, n, flags, pool);
    crs.begin_row();
    crs.add_int(static_cast<std::int64_t>(phi));
    crs.add_num(sb.max_load.mean(), 2);
    crs.add_int(static_cast<std::int64_t>(bbb::core::ceil_div(m, n)));
    crs.add_num(sb.reallocations.mean() / static_cast<double>(m), 3);
    crs.add_num(sb.rounds.mean(), 1);
    crs.add_num(g2.max_load.mean(), 2);
  }
  std::fputs(crs.render(flags.format).c_str(), stdout);
  std::fputs("\n", stdout);

  bbb::io::Table ck({"load factor", "moves/item", "probes/item", "failed inserts"});
  ck.set_title("cuckoo[2,4], n = " + std::to_string(n) + " buckets of 4");
  for (const double lf : {0.50, 0.70, 0.90, 0.95, 0.98}) {
    const auto m = static_cast<std::uint64_t>(lf * 4.0 * n);
    const auto s = bbb::bench::run_cell("cuckoo[2,4]", m, n, flags, pool);
    ck.begin_row();
    ck.add_num(lf, 2);
    ck.add_num(s.reallocations.mean() / static_cast<double>(m), 4);
    ck.add_num(s.probes_per_ball(), 3);
    ck.add_num(static_cast<double>(s.failures) / flags.reps, 2);
  }
  std::fputs(ck.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: CRS hits ceil(m/n) with moves/m a small constant;");
  std::puts("cuckoo's moves/item explode as the load factor approaches the");
  std::puts("d=2,k=4 threshold (~0.98) — reallocations are the price of perfection.");
  return 0;
}
