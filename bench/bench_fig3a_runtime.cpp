/// bench_fig3a_runtime — reproduces Figure 3(a): average allocation time of
/// adaptive and threshold as m grows, n fixed.
///
/// The paper plots m = 2..10 x 10^5 (x-axis m*10^-4 from 20 to 100),
/// averaged over 100 simulations; the paper's text fixes neither n nor the
/// RNG, we use n = 10^4 (see DESIGN.md) and default to 20 replicates for
/// bench-suite runtime (use --reps=100 for the paper's setting).
///
/// Expected shape: threshold's curve converges to m from above (Theorem
/// 4.1); adaptive's converges to a small constant times m (Theorem 3.1).
///
///   $ ./bench_fig3a_runtime [--n=10000] [--reps=20]

#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_fig3a_runtime",
                          "Figure 3(a): average allocation time vs m");
  args.add_flag("n", std::uint64_t{10'000}, "bins (paper does not state; see DESIGN.md)");
  args.add_flag("m-min", std::uint64_t{100'000}, "smallest m");
  args.add_flag("m-max", std::uint64_t{1'000'000}, "largest m");
  args.add_flag("m-step", std::uint64_t{100'000}, "m increment");
  bbb::bench::add_common_flags(args, 20);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));

  bbb::bench::print_header(
      "Figure 3(a) (SPAA'13)",
      "average runtime: threshold -> m; adaptive -> (small constant) * m.");

  bbb::io::Table table({"m*1e-4", "threshold probes*1e-4", "thr/m", "thr ci95",
                        "adaptive probes*1e-4", "ada/m", "ada ci95"});
  table.set_title("n = " + std::to_string(n) + ", " + std::to_string(flags.reps) +
                  " replicates per point (paper: 100)");

  bbb::par::ThreadPool pool(flags.threads);
  for (std::uint64_t m = args.get_u64("m-min"); m <= args.get_u64("m-max");
       m += args.get_u64("m-step")) {
    const auto th = bbb::bench::run_cell("threshold", m, n, flags, pool);
    const auto ad = bbb::bench::run_cell("adaptive", m, n, flags, pool);
    table.begin_row();
    table.add_num(static_cast<double>(m) * 1e-4, 0);
    table.add_num(th.probes.mean() * 1e-4, 2);
    table.add_num(th.probes_per_ball(), 4);
    table.add_num(th.probes.ci95_halfwidth() * 1e-4, 2);
    table.add_num(ad.probes.mean() * 1e-4, 2);
    table.add_num(ad.probes_per_ball(), 4);
    table.add_num(ad.probes.ci95_halfwidth() * 1e-4, 2);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: thr/m column -> 1.00x from above; ada/m column");
  std::puts("flat at a small constant (~2), i.e. both curves are straight lines");
  std::puts("through the origin as in the paper's chart.");
  return 0;
}
