/// bench_thm31_adaptive_time — Theorem 3.1: the expected allocation time of
/// adaptive is O(m).
///
/// Two sweeps make the claim visible:
///  (1) n fixed, m growing over decades: probes/m must stay bounded;
///  (2) m/n fixed, n growing: probes/m must stay bounded (no hidden n term).
///
///   $ ./bench_thm31_adaptive_time

#include "bbb/stats/regression.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_thm31_adaptive_time",
                          "Theorem 3.1: adaptive allocation time is O(m)");
  args.add_flag("n", std::uint64_t{4'096}, "bins for the m-sweep");
  args.add_flag("phi", std::uint64_t{16}, "m/n for the n-sweep");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n_fixed = static_cast<std::uint32_t>(args.get_u64("n"));
  const auto phi_fixed = args.get_u64("phi");

  bbb::bench::print_header("Theorem 3.1 (SPAA'13)",
                           "E[allocation time of adaptive] = O(m).");

  bbb::par::ThreadPool pool(flags.threads);
  std::vector<double> ms, probes;

  bbb::io::Table sweep_m({"phi=m/n", "m", "probes/m (mean)", "ci95"});
  sweep_m.set_title("sweep 1: n = " + std::to_string(n_fixed) + " fixed, m growing");
  for (std::uint64_t phi : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    const std::uint64_t m = phi * n_fixed;
    const auto s = bbb::bench::run_cell("adaptive", m, n_fixed, flags, pool);
    sweep_m.begin_row();
    sweep_m.add_int(static_cast<std::int64_t>(phi));
    sweep_m.add_int(static_cast<std::int64_t>(m));
    sweep_m.add_num(s.probes_per_ball(), 4);
    sweep_m.add_num(s.probes.ci95_halfwidth() / static_cast<double>(m), 4);
    ms.push_back(static_cast<double>(m));
    probes.push_back(s.probes.mean());
  }
  std::fputs(sweep_m.render(flags.format).c_str(), stdout);

  // Fit probes ~ m^alpha: Theorem 3.1 predicts alpha = 1.
  const auto fit = bbb::stats::power_law_fit(ms, probes);
  std::printf("\nfit: probes ~ m^%.3f (R^2 = %.4f); Theorem 3.1 predicts exponent 1\n\n",
              fit.exponent, fit.r_squared);

  bbb::io::Table sweep_n({"n", "m", "probes/m (mean)", "ci95"});
  sweep_n.set_title("sweep 2: phi = m/n = " + std::to_string(phi_fixed) +
                    " fixed, n growing");
  for (std::uint32_t e = 10; e <= 16; e += 2) {
    const std::uint32_t n = 1u << e;
    const std::uint64_t m = phi_fixed * n;
    const auto s = bbb::bench::run_cell("adaptive", m, n, flags, pool);
    sweep_n.begin_row();
    sweep_n.add_int(n);
    sweep_n.add_int(static_cast<std::int64_t>(m));
    sweep_n.add_num(s.probes_per_ball(), 4);
    sweep_n.add_num(s.probes.ci95_halfwidth() / static_cast<double>(m), 4);
  }
  std::fputs(sweep_n.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: both probes/m columns flat at a small constant —");
  std::puts("linear time in m with no dependence on n.");
  return 0;
}
