#pragma once
/// \file bench_common.hpp
/// Shared scaffolding for the reproduction harnesses: the standard flag set
/// (--reps, --seed, --format, --threads) and small print helpers. Every
/// harness prints (a) the paper's claim, (b) a table whose rows mirror the
/// paper's table/figure, and (c) a one-line verdict where a scaling fit is
/// involved.

#include <cstdio>
#include <string>

#include "bbb/io/argparse.hpp"
#include "bbb/io/table.hpp"
#include "bbb/par/thread_pool.hpp"
#include "bbb/sim/runner.hpp"

namespace bbb::bench {

/// Register the flags every harness shares.
inline void add_common_flags(io::ArgParser& args, std::uint64_t default_reps) {
  args.add_flag("reps", default_reps, "replicates per configuration");
  args.add_flag("seed", std::uint64_t{42}, "master seed");
  args.add_flag("format", std::string("ascii"), "ascii|markdown|csv");
  args.add_flag("threads", std::uint64_t{0}, "worker threads (0 = hardware)");
  args.add_flag("smoke", std::uint64_t{0},
                "1 = minimal smoke run: reps=1 and tiny problem sizes (CI "
                "uses this to keep every bench binary building AND running)");
}

struct CommonFlags {
  std::uint32_t reps;
  std::uint64_t seed;
  io::Format format;
  std::size_t threads;
  bool smoke;
};

inline CommonFlags read_common_flags(const io::ArgParser& args) {
  const bool smoke = args.get_u64("smoke") != 0;
  return CommonFlags{smoke ? 1u : static_cast<std::uint32_t>(args.get_u64("reps")),
                     args.get_u64("seed"), io::parse_format(args.get_string("format")),
                     static_cast<std::size_t>(args.get_u64("threads")), smoke};
}

/// `value` normally, `smoke_value` under --smoke=1 — how each harness
/// shrinks its problem-size knobs for the CI smoke step.
inline std::uint64_t smoke_or(const CommonFlags& flags, std::uint64_t value,
                              std::uint64_t smoke_value) {
  return flags.smoke ? smoke_value : value;
}

/// Run one (spec, m, n) cell with the shared flags.
inline sim::RunSummary run_cell(const std::string& spec, std::uint64_t m,
                                std::uint32_t n, const CommonFlags& flags,
                                par::ThreadPool& pool) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = spec;
  cfg.m = m;
  cfg.n = n;
  cfg.replicates = flags.reps;
  cfg.seed = flags.seed;
  return sim::run_experiment(cfg, pool);
}

/// Banner: experiment id + the paper's claim.
inline void print_header(const std::string& experiment, const std::string& claim) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper: %s\n\n", claim.c_str());
}

}  // namespace bbb::bench
