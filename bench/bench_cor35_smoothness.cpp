/// bench_cor35_smoothness — Corollary 3.5: for adaptive, at every stage,
/// E[Phi] = O(n), E[Psi] = O(n), and the max-min gap is O(log n) w.h.p.
///
/// Sweep n over powers of two at fixed m/n and print gap/ln(n), Psi/n and
/// exp-potential/n: all three columns should be flat constants.
///
///   $ ./bench_cor35_smoothness

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_cor35_smoothness",
                          "Corollary 3.5: adaptive smoothness is O(n)/O(log n)");
  args.add_flag("phi", std::uint64_t{16}, "m/n");
  args.add_flag("min-exp", std::uint64_t{10}, "smallest n = 2^min-exp");
  args.add_flag("max-exp", std::uint64_t{17}, "largest n = 2^max-exp");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto phi = args.get_u64("phi");

  bbb::bench::print_header(
      "Corollary 3.5 (SPAA'13)",
      "adaptive: E[Phi] = O(n), E[Psi] = O(n), gap = O(log n) w.h.p.");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"n", "gap (mean)", "gap (worst)", "gap/ln n", "psi/n",
                        "phi/n", "min load"});
  table.set_title("m = " + std::to_string(phi) + "n, " + std::to_string(flags.reps) +
                  " replicates");
  for (std::uint64_t e = args.get_u64("min-exp"); e <= args.get_u64("max-exp"); ++e) {
    const auto n = static_cast<std::uint32_t>(std::uint64_t{1} << e);
    const auto s = bbb::bench::run_cell("adaptive", phi * n, n, flags, pool);
    table.begin_row();
    table.add_int(n);
    table.add_num(s.gap.mean(), 2);
    table.add_int(static_cast<std::int64_t>(s.gap.max()));
    table.add_num(s.gap.mean() / std::log(static_cast<double>(n)), 3);
    table.add_num(s.psi.mean() / n, 3);
    // log_phi is ln(Phi); Phi/n = exp(log_phi - ln n).
    table.add_num(std::exp(s.log_phi.mean() - std::log(static_cast<double>(n))), 3);
    table.add_num(s.min_load.mean(), 2);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: gap/ln n, psi/n and phi/n all flat as n grows 128x —");
  std::puts("the smoothness half of the paper's adaptive-vs-threshold separation.");
  return 0;
}
