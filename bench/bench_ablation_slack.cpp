/// bench_ablation_slack — the design-choice ablation the paper calls out in
/// Section 2: replacing adaptive's threshold i/n + 1 by i/n (slack 0) turns
/// every stage into a coupon collector, i.e. Theta(m log n) allocation time
/// for a perfectly tight max load. Larger slack buys fewer probes but a
/// looser bound and rougher distribution.
///
///   $ ./bench_ablation_slack

#include <cmath>

#include "bbb/core/protocol.hpp"
#include "bbb/theory/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_slack",
                          "ablation: the +1 in adaptive's threshold i/n + 1");
  args.add_flag("n", std::uint64_t{4'096}, "bins");
  args.add_flag("phi", std::uint64_t{16}, "m/n");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const std::uint64_t m = args.get_u64("phi") * n;

  bbb::bench::print_header(
      "Section 2 remark (SPAA'13)",
      "adaptive with threshold i/n (no +1) degenerates to a coupon collector "
      "per stage: Theta(m log n) time; the +1 buys O(m).");

  bbb::par::ThreadPool pool(flags.threads);
  bbb::io::Table table({"slack", "probes/m", "probes/(m ln n)", "max load",
                        "bound", "gap", "psi/n"});
  table.set_title("adaptive[slack], m = " + std::to_string(m) + ", n = " +
                  std::to_string(n));
  const double ln_n = std::log(static_cast<double>(n));
  for (std::uint32_t slack : {0u, 1u, 2u, 3u}) {
    const std::string spec = "adaptive[" + std::to_string(slack) + "]";
    const auto s = bbb::bench::run_cell(spec, m, n, flags, pool);
    table.begin_row();
    table.add_int(slack);
    table.add_num(s.probes_per_ball(), 3);
    table.add_num(s.probes_per_ball() / ln_n, 3);
    table.add_num(s.max_load.mean(), 2);
    table.add_int(static_cast<std::int64_t>(bbb::core::ceil_div(m, n) + slack));
    table.add_num(s.gap.mean(), 2);
    table.add_num(s.psi.mean() / n, 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::printf("\nreference: H_n ~ %.2f = ln n + gamma, so slack 0 should show "
              "probes/(m ln n) ~ 1\n",
              bbb::theory::harmonic(n));
  std::puts("expected shape: slack 0 pays ~ln(n)x more probes for a perfectly");
  std::puts("tight bound; slack 1 (the paper) is the efficient sweet spot; more");
  std::puts("slack keeps O(m) probes but loosens the load bound.");
  return 0;
}
