/// bench_micro_protocols — google-benchmark timings for the protocol hot
/// loops: nanoseconds per placed ball at a fixed instance shape. This turns
/// the paper's probe counts into wall-clock throughput numbers.

#include <benchmark/benchmark.h>

#include "bbb/core/concurrent_adaptive.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace {

constexpr std::uint32_t kBins = 1 << 16;

// Each iteration places one full stage of kBins balls through a fresh
// rule + BinState pair; items_processed reports per-ball cost.
void run_streaming_bench(benchmark::State& state, const char* spec) {
  bbb::rng::Engine gen(7);
  for (auto _ : state) {
    state.PauseTiming();
    bbb::core::StreamingAllocator alloc(kBins,
                                        bbb::core::make_rule(spec, kBins, kBins));
    state.ResumeTiming();
    for (std::uint32_t i = 0; i < kBins; ++i) {
      benchmark::DoNotOptimize(alloc.place(gen));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBins);
}

void BM_PlaceOneChoice(benchmark::State& state) {
  run_streaming_bench(state, "one-choice");
}
BENCHMARK(BM_PlaceOneChoice);

void BM_PlaceGreedy2(benchmark::State& state) {
  run_streaming_bench(state, "greedy[2]");
}
BENCHMARK(BM_PlaceGreedy2);

void BM_PlaceLeft2(benchmark::State& state) {
  run_streaming_bench(state, "left[2]");
}
BENCHMARK(BM_PlaceLeft2);

void BM_PlaceMemory11(benchmark::State& state) {
  run_streaming_bench(state, "memory[1,1]");
}
BENCHMARK(BM_PlaceMemory11);

void BM_PlaceAdaptive(benchmark::State& state) {
  run_streaming_bench(state, "adaptive");
}
BENCHMARK(BM_PlaceAdaptive);

void BM_PlaceThreshold(benchmark::State& state) {
  run_streaming_bench(state, "threshold");
}
BENCHMARK(BM_PlaceThreshold);

// Full batch runs at m = 8n: end-to-end protocol cost including result
// materialization, reported as balls/second.
void BM_RunAdaptiveHeavy(benchmark::State& state) {
  const bbb::core::AdaptiveProtocol protocol;
  bbb::rng::Engine gen(9);
  constexpr std::uint32_t n = 1 << 14;
  constexpr std::uint64_t m = 8ULL * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(m, n, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_RunAdaptiveHeavy);

void BM_RunThresholdHeavy(benchmark::State& state) {
  const bbb::core::ThresholdProtocol protocol;
  bbb::rng::Engine gen(9);
  constexpr std::uint32_t n = 1 << 14;
  constexpr std::uint64_t m = 8ULL * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(m, n, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_RunThresholdHeavy);

// Lock-free concurrent adaptive: per-ball cost of the CAS path under
// google-benchmark's thread fan-out (each thread gets its own engine).
void BM_ConcurrentAdaptive(benchmark::State& state) {
  static bbb::core::ConcurrentAdaptiveAllocator* alloc = nullptr;
  if (state.thread_index() == 0) {
    alloc = new bbb::core::ConcurrentAdaptiveAllocator(kBins);
  }
  bbb::rng::Engine gen(1000 + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc->place(gen));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete alloc;
    alloc = nullptr;
  }
}
BENCHMARK(BM_ConcurrentAdaptive)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

}  // namespace
