/// bench_micro_protocols — google-benchmark timings for the protocol hot
/// loops: nanoseconds per placed ball at a fixed instance shape. This turns
/// the paper's probe counts into wall-clock throughput numbers.
///
/// Two regimes: the classic cache-resident n = 2^16 cases, and the
/// giant-scale n = 2^24 cases where the load array lives in DRAM and
/// throughput is decided by how many of the d random reads per ball are in
/// flight at once — the regime the probe lookahead (core/probe.hpp) and
/// the compact BinState layout target. The *Giant benches enable engine
/// exclusivity, so the lookahead is on (placements are bit-identical
/// either way; only speed changes).

#include <benchmark/benchmark.h>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/concurrent_adaptive.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace {

constexpr std::uint32_t kBins = 1 << 16;

// Each iteration places one full stage of kBins balls through a fresh
// rule + BinState pair; items_processed reports per-ball cost.
void run_streaming_bench(benchmark::State& state, const char* spec) {
  bbb::rng::Engine gen(7);
  for (auto _ : state) {
    state.PauseTiming();
    bbb::core::StreamingAllocator alloc(kBins,
                                        bbb::core::make_rule(spec, kBins, kBins));
    state.ResumeTiming();
    for (std::uint32_t i = 0; i < kBins; ++i) {
      benchmark::DoNotOptimize(alloc.place(gen));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBins);
}

// Giant-n streaming: one long-lived allocator (a fresh 2^24-bin state per
// iteration would spend the iteration in memset), each iteration streams a
// 2^20-ball chunk; the load array (64 MiB wide, 16 MiB compact) stays far
// beyond cache throughout.
constexpr std::uint32_t kGiantBins = 1 << 24;
constexpr std::uint32_t kGiantChunk = 1 << 20;

void run_giant_bench(benchmark::State& state, const char* spec,
                     bbb::core::StateLayout layout) {
  bbb::rng::Engine gen(7);
  bbb::core::StreamingAllocator alloc(
      bbb::core::BinState(kGiantBins, layout),
      bbb::core::make_rule(spec, kGiantBins, kGiantBins));
  alloc.set_engine_exclusive(true);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kGiantChunk; ++i) {
      benchmark::DoNotOptimize(alloc.place(gen));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kGiantChunk);
}

void BM_PlaceOneChoice(benchmark::State& state) {
  run_streaming_bench(state, "one-choice");
}
BENCHMARK(BM_PlaceOneChoice);

void BM_PlaceGreedy2(benchmark::State& state) {
  run_streaming_bench(state, "greedy[2]");
}
BENCHMARK(BM_PlaceGreedy2);

void BM_PlaceLeft2(benchmark::State& state) {
  run_streaming_bench(state, "left[2]");
}
BENCHMARK(BM_PlaceLeft2);

void BM_PlaceMemory11(benchmark::State& state) {
  run_streaming_bench(state, "memory[1,1]");
}
BENCHMARK(BM_PlaceMemory11);

void BM_PlaceAdaptive(benchmark::State& state) {
  run_streaming_bench(state, "adaptive");
}
BENCHMARK(BM_PlaceAdaptive);

void BM_PlaceThreshold(benchmark::State& state) {
  run_streaming_bench(state, "threshold");
}
BENCHMARK(BM_PlaceThreshold);

// The acceptance numbers of the giant-scale tier: greedy[2] at n = 2^24
// with the probe lookahead on, in both layouts, plus the one-choice and
// left[2] companions. Compare BM_GiantGreedy2* against a pre-lookahead
// build to see the speedup (BENCH_*.json records it per PR).
void BM_GiantOneChoice(benchmark::State& state) {
  run_giant_bench(state, "one-choice", bbb::core::StateLayout::kWide);
}
BENCHMARK(BM_GiantOneChoice);

void BM_GiantGreedy2(benchmark::State& state) {
  run_giant_bench(state, "greedy[2]", bbb::core::StateLayout::kWide);
}
BENCHMARK(BM_GiantGreedy2);

void BM_GiantGreedy2Compact(benchmark::State& state) {
  run_giant_bench(state, "greedy[2]", bbb::core::StateLayout::kCompact);
}
BENCHMARK(BM_GiantGreedy2Compact);

void BM_GiantLeft2(benchmark::State& state) {
  run_giant_bench(state, "left[2]", bbb::core::StateLayout::kWide);
}
BENCHMARK(BM_GiantLeft2);

// Batch placement kernel (core/batch_kernel.hpp): the same giant-scale
// shape driven through place_batch in 2^16-ball calls. On the compact
// layout the kernel-capable families run the vectorized wave path
// (placements bit-identical to the place() loop — the lockstep suite in
// tests/core/batch_kernel_test.cpp is the proof); on the wide layout the
// same call degrades to the per-ball base loop, so the wide/compact pair
// isolates the kernel's contribution from the batching call shape.
constexpr std::uint32_t kBatchCall = 1 << 16;

void run_giant_batch_bench(benchmark::State& state, const char* spec,
                           bbb::core::StateLayout layout) {
  bbb::rng::Engine gen(7);
  bbb::core::StreamingAllocator alloc(
      bbb::core::BinState(kGiantBins, layout),
      bbb::core::make_rule(spec, kGiantBins, kGiantBins));
  alloc.set_engine_exclusive(true);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kGiantChunk; i += kBatchCall) {
      alloc.place_batch(kBatchCall, gen);
    }
    benchmark::DoNotOptimize(alloc.state().max_load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kGiantChunk);
}

void BM_BatchOneChoiceCompact(benchmark::State& state) {
  run_giant_batch_bench(state, "one-choice", bbb::core::StateLayout::kCompact);
}
BENCHMARK(BM_BatchOneChoiceCompact);

void BM_BatchGreedy2Compact(benchmark::State& state) {
  run_giant_batch_bench(state, "greedy[2]", bbb::core::StateLayout::kCompact);
}
BENCHMARK(BM_BatchGreedy2Compact);

void BM_BatchGreedy2Wide(benchmark::State& state) {
  run_giant_batch_bench(state, "greedy[2]", bbb::core::StateLayout::kWide);
}
BENCHMARK(BM_BatchGreedy2Wide);

void BM_BatchLeft2Compact(benchmark::State& state) {
  run_giant_batch_bench(state, "left[2]", bbb::core::StateLayout::kCompact);
}
BENCHMARK(BM_BatchLeft2Compact);

// Full batch runs at m = 8n: end-to-end protocol cost including result
// materialization, reported as balls/second.
void BM_RunAdaptiveHeavy(benchmark::State& state) {
  const bbb::core::AdaptiveProtocol protocol;
  bbb::rng::Engine gen(9);
  constexpr std::uint32_t n = 1 << 14;
  constexpr std::uint64_t m = 8ULL * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(m, n, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_RunAdaptiveHeavy);

void BM_RunThresholdHeavy(benchmark::State& state) {
  const bbb::core::ThresholdProtocol protocol;
  bbb::rng::Engine gen(9);
  constexpr std::uint32_t n = 1 << 14;
  constexpr std::uint64_t m = 8ULL * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(m, n, gen));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * m);
}
BENCHMARK(BM_RunThresholdHeavy);

// Lock-free concurrent adaptive: per-ball cost of the CAS path under
// google-benchmark's thread fan-out (each thread gets its own engine).
void BM_ConcurrentAdaptive(benchmark::State& state) {
  static bbb::core::ConcurrentAdaptiveAllocator* alloc = nullptr;
  if (state.thread_index() == 0) {
    alloc = new bbb::core::ConcurrentAdaptiveAllocator(kBins);
  }
  bbb::rng::Engine gen(1000 + static_cast<std::uint64_t>(state.thread_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc->place(gen));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete alloc;
    alloc = nullptr;
  }
}
BENCHMARK(BM_ConcurrentAdaptive)->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

}  // namespace
