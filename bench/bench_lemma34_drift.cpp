/// bench_lemma34_drift — the potential-drift engine of adaptive's analysis
/// (Lemmas 3.2-3.4 and Corollary 3.5), observed per stage:
///  * Phi^{tau} stays O(n) for every stage tau (Corollary 3.5);
///  * the per-stage drift Phi^{tau+1}/Phi^{tau} never exceeds (1 + eps) and
///    averages below 1 once Phi is above its equilibrium;
///  * deeply underloaded bins receive > 1 ball per stage on average
///    (Lemma 3.2's Poi(199/198) domination).
///
///   $ ./bench_lemma34_drift

#include "bbb/model/stage_drift.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_lemma34_drift",
                          "Lemmas 3.2-3.4: stage-level potential drift");
  args.add_flag("n", std::uint64_t{16'384}, "bins");
  args.add_flag("stages", std::uint64_t{32}, "stages of n balls each");
  bbb::bench::add_common_flags(args, 1);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));
  const auto stages = static_cast<std::uint32_t>(args.get_u64("stages"));

  bbb::bench::print_header(
      "Lemmas 3.2-3.4 (SPAA'13)",
      "E[Phi^{tau+1}] <= (1 - kappa/2) Phi^tau above equilibrium; Phi = O(n) "
      "at every stage; underloaded bins receive Poi(199/198)-many balls.");

  bbb::rng::Engine gen(flags.seed);
  const auto recs = bbb::model::adaptive_stage_records(n, stages, gen);

  bbb::io::Table table({"stage", "phi/n", "drift phi'/phi", "probes/n",
                        "underloaded bins", "mean arrivals"});
  table.set_title("n = " + std::to_string(n) + ", eps = 1/200, deep hole C1 = 4");
  for (const auto& r : recs) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(r.stage));
    table.add_num(r.phi_after / n, 4);
    table.add_num(r.drift, 4);
    table.add_num(static_cast<double>(r.probes) / n, 3);
    table.add_int(static_cast<std::int64_t>(r.underloaded));
    table.add_num(r.mean_arrivals_deep, 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: phi/n settles to a constant (~1.01) and stays there;");
  std::puts("drift hovers at 1.0 with excursions bounded by 1 + eps = 1.005;");
  std::puts("mean arrivals into underloaded bins > 1 (they catch up) —");
  std::puts("the mechanics behind Theorem 3.1 and Corollary 3.5.");
  return 0;
}
