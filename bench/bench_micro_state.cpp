/// bench_micro_state — google-benchmark evidence for the single-streaming-
/// core refactor: incremental BinState metric maintenance vs the full
/// O(n) rescan of core/metrics.hpp, at n = 1e4 and n = 1e6, plus the
/// per-ball trace throughput the incremental state buys (this is the
/// sim/trace hot path — the old tracer rescanned all n loads at every
/// trace point, so a per-ball trajectory of an m-ball run cost O(m n)).

#include <benchmark/benchmark.h>

#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/sim/trace.hpp"

namespace {

// Fill a state with 8 balls per bin on average, uniformly at random.
bbb::core::BinState filled_state(std::uint32_t n) {
  bbb::core::BinState state(n);
  bbb::rng::Engine gen(11);
  for (std::uint64_t i = 0; i < 8ULL * n; ++i) {
    state.add_ball(static_cast<std::uint32_t>(bbb::rng::uniform_below(gen, n)));
  }
  return state;
}

// One metric snapshot (max/min/gap/psi/ln phi) from the incremental state:
// O(1) regardless of n.
void BM_MetricsIncremental(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  const bbb::core::BinState state = filled_state(n);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(state.max_load());
    benchmark::DoNotOptimize(state.min_load());
    benchmark::DoNotOptimize(state.gap());
    benchmark::DoNotOptimize(state.psi());
    benchmark::DoNotOptimize(state.log_phi());
  }
}
BENCHMARK(BM_MetricsIncremental)->Arg(10'000)->Arg(1'000'000);

// The same snapshot via the batch recomputation: one full pass over the
// loads per call (what the tracer used to pay per trace point).
void BM_MetricsFullRescan(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  const bbb::core::BinState state = filled_state(n);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(bbb::core::compute_metrics(state.loads(), state.balls()));
  }
}
BENCHMARK(BM_MetricsFullRescan)->Arg(10'000)->Arg(1'000'000);

// What the incremental maintenance costs on the placement side: one
// add_ball with all derived metrics updated.
void BM_BinStateAddRemove(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  bbb::core::BinState state = filled_state(n);
  bbb::rng::Engine gen(13);
  for (auto _ : bench) {
    const auto bin = static_cast<std::uint32_t>(bbb::rng::uniform_below(gen, n));
    state.add_ball(bin);
    state.remove_ball(bin);
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()) * 2);
}
BENCHMARK(BM_BinStateAddRemove)->Arg(10'000)->Arg(1'000'000);

// Weighted placement path: one add_ball(bin, w) moves a bin w levels in a
// single event. Cost is O(1) amortized per unit of weight, so the per-event
// time should grow far slower than w itself.
void BM_BinStateWeightedAddRemove(benchmark::State& bench) {
  const std::uint32_t n = 100'000;
  const auto w = static_cast<std::uint32_t>(bench.range(0));
  bbb::core::BinState state = filled_state(n);
  bbb::rng::Engine gen(13);
  for (auto _ : bench) {
    const auto bin = static_cast<std::uint32_t>(bbb::rng::uniform_below(gen, n));
    state.add_ball(bin, w);
    state.remove_ball(bin, w);
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()) * 2 * w);
}
BENCHMARK(BM_BinStateWeightedAddRemove)->Arg(1)->Arg(8)->Arg(64);

// Capacity-proportional probe: one Walker alias-table draw (one bounded
// uniform + one double compare) versus the plain uniform probe.
void BM_CapacitySamplerDraw(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  std::vector<std::uint32_t> caps(n);
  for (std::uint32_t i = 0; i < n; ++i) caps[i] = 1u << (i % 4);  // 1,2,4,8
  const bbb::core::BinState state(caps);
  bbb::rng::Engine gen(29);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(state.sample_capacity_proportional(gen));
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()));
}
BENCHMARK(BM_CapacitySamplerDraw)->Arg(10'000)->Arg(1'000'000);

void BM_UniformProbeDraw(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  const bbb::core::BinState state(n);  // uniform: sampler falls back to uniform
  bbb::rng::Engine gen(29);
  for (auto _ : bench) {
    benchmark::DoNotOptimize(state.sample_capacity_proportional(gen));
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()));
}
BENCHMARK(BM_UniformProbeDraw)->Arg(10'000)->Arg(1'000'000);

// Per-ball trace trajectory (stride 1) through the incremental tracer:
// place + O(1) snapshot per ball. Reported as balls/second.
void BM_TracePerBallIncremental(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  const std::uint64_t m = 4ULL * n;
  for (auto _ : bench) {
    bbb::rng::Engine gen(17);
    bbb::core::StreamingAllocator alloc(n, bbb::core::make_rule("adaptive", n));
    benchmark::DoNotOptimize(bbb::sim::trace_allocation(alloc, gen, m, 1));
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_TracePerBallIncremental)->Arg(1 << 10)->Arg(1 << 14);

// The pre-refactor trace loop for comparison: place + full compute_metrics
// rescan per ball — O(m n) per trajectory instead of O(m).
void BM_TracePerBallFullRescan(benchmark::State& bench) {
  const auto n = static_cast<std::uint32_t>(bench.range(0));
  const std::uint64_t m = 4ULL * n;
  for (auto _ : bench) {
    bbb::rng::Engine gen(17);
    bbb::core::StreamingAllocator alloc(n, bbb::core::make_rule("adaptive", n));
    std::vector<bbb::sim::TracePoint> points;
    points.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t i = 1; i <= m; ++i) {
      (void)alloc.place(gen);
      const auto metrics =
          bbb::core::compute_metrics(alloc.state().loads(), alloc.state().balls());
      points.push_back({alloc.state().balls(), alloc.probes(), metrics.max,
                        metrics.min, metrics.psi, metrics.log_phi});
    }
    benchmark::DoNotOptimize(points);
  }
  bench.SetItemsProcessed(static_cast<std::int64_t>(bench.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_TracePerBallFullRescan)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
