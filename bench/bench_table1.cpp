/// bench_table1 — reproduces Table 1 of the paper: allocation time and max
/// load of the allocation schemes, measured instead of cited.
///
/// For each protocol the paper's table gives an allocation-time order and a
/// max-load bound; we print, per protocol and per load regime (m = n and
/// m = 8n), the measured probes/ball and the measured max load next to the
/// theoretical prediction.
///
///   $ ./bench_table1 [--n=65536] [--reps=10]

#include <cmath>

#include "bbb/theory/bounds.hpp"
#include "bbb/theory/phi_d.hpp"
#include "bench_common.hpp"

namespace {

struct Row {
  std::string spec;
  std::string time_theory;
  std::string load_theory;  // rendered per (m, n) below
};

std::string load_prediction(const std::string& spec, std::uint64_t m, std::uint32_t n) {
  using namespace bbb::theory;
  char buf[64];
  if (spec == "one-choice") {
    std::snprintf(buf, sizeof buf, "%.2f", one_choice_max_load(m, n));
  } else if (spec == "greedy[2]") {
    std::snprintf(buf, sizeof buf, "%.2f+O(1)", greedy_d_max_load(m, n, 2));
  } else if (spec == "greedy[3]") {
    std::snprintf(buf, sizeof buf, "%.2f+O(1)", greedy_d_max_load(m, n, 3));
  } else if (spec == "left[2]") {
    std::snprintf(buf, sizeof buf, "%.2f+O(1)", left_d_max_load(m, n, 2));
  } else if (spec == "memory[1,1]") {
    // Mitzenmacher et al.: ln ln n / (2 ln phi_2) + O(1) at m = n.
    std::snprintf(buf, sizeof buf, "%.2f+O(1)",
                  static_cast<double>(m) / n +
                      std::log(std::log(static_cast<double>(n))) /
                          (2.0 * std::log(phi_d(2))));
  } else {
    // threshold / adaptive: the paper's bound.
    std::snprintf(buf, sizeof buf, "<=%llu",
                  static_cast<unsigned long long>(paper_max_load_bound(m, n)));
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_table1", "Table 1: allocation time & max load");
  args.add_flag("n", std::uint64_t{65'536}, "bins");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));

  bbb::bench::print_header(
      "Table 1 (SPAA'13)",
      "greedy[d]/left[d] pay Theta(md) probes for log-log max load; "
      "threshold and adaptive pay O(m) probes for max load ceil(m/n)+1.");

  const std::vector<Row> rows = {
      {"one-choice", "m", ""},          {"greedy[2]", "2m", ""},
      {"greedy[3]", "3m", ""},          {"left[2]", "2m", ""},
      {"memory[1,1]", "m", ""},         {"threshold", "m+O(m^3/4 n^1/4)", ""},
      {"adaptive", "O(m)", ""},
  };

  bbb::par::ThreadPool pool(flags.threads);
  for (const std::uint64_t phi : {std::uint64_t{1}, std::uint64_t{8}}) {
    const std::uint64_t m = phi * n;
    bbb::io::Table table({"algorithm", "time theory", "probes/ball", "load theory",
                          "max load (mean)", "max load (worst)"});
    table.set_title("m = " + std::to_string(phi) + "n,  n = " + std::to_string(n) +
                    ",  " + std::to_string(flags.reps) + " replicates");
    for (const Row& row : rows) {
      const auto s = bbb::bench::run_cell(row.spec, m, n, flags, pool);
      table.begin_row();
      table.add_cell(row.spec);
      table.add_cell(row.time_theory);
      table.add_num(s.probes_per_ball(), 3);
      table.add_cell(load_prediction(row.spec, m, n));
      table.add_num(s.max_load.mean(), 2);
      table.add_int(static_cast<std::int64_t>(s.max_load.max()));
    }
    std::fputs(table.render(flags.format).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  std::puts("expected shape: probes/ball ~ d for the d-choice family, ~1 for");
  std::puts("threshold, a small constant for adaptive; only threshold/adaptive");
  std::puts("stay within ceil(m/n)+1 in both regimes.");
  return 0;
}
