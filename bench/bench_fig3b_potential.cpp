/// bench_fig3b_potential — reproduces Figure 3(b): average final quadratic
/// potential of adaptive and threshold as m grows, n fixed.
///
/// The paper's y-axis is "average potential / 5000"; we print both the raw
/// Psi and the paper-scaled column. Expected shape: adaptive's potential
/// converges to a value independent of m (Corollary 3.5 / Lemma 3.4);
/// threshold's keeps growing (Lemma 4.2).
///
///   $ ./bench_fig3b_potential [--n=10000] [--reps=20]

#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_fig3b_potential",
                          "Figure 3(b): average final quadratic potential vs m");
  args.add_flag("n", std::uint64_t{10'000}, "bins (paper does not state; see DESIGN.md)");
  args.add_flag("m-min", std::uint64_t{100'000}, "smallest m");
  args.add_flag("m-max", std::uint64_t{1'000'000}, "largest m");
  args.add_flag("m-step", std::uint64_t{100'000}, "m increment");
  bbb::bench::add_common_flags(args, 20);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);
  const auto n = static_cast<std::uint32_t>(args.get_u64("n"));

  bbb::bench::print_header(
      "Figure 3(b) (SPAA'13)",
      "average final Psi: adaptive flat (O(n), independent of m); "
      "threshold grows with m.");

  bbb::io::Table table({"m*1e-4", "threshold psi", "thr psi/5000", "adaptive psi",
                        "ada psi/5000", "ada psi/n"});
  table.set_title("n = " + std::to_string(n) + ", " + std::to_string(flags.reps) +
                  " replicates per point (paper: 100)");

  bbb::par::ThreadPool pool(flags.threads);
  for (std::uint64_t m = args.get_u64("m-min"); m <= args.get_u64("m-max");
       m += args.get_u64("m-step")) {
    const auto th = bbb::bench::run_cell("threshold", m, n, flags, pool);
    const auto ad = bbb::bench::run_cell("adaptive", m, n, flags, pool);
    table.begin_row();
    table.add_num(static_cast<double>(m) * 1e-4, 0);
    table.add_num(th.psi.mean(), 0);
    table.add_num(th.psi.mean() / 5000.0, 2);
    table.add_num(ad.psi.mean(), 0);
    table.add_num(ad.psi.mean() / 5000.0, 2);
    table.add_num(ad.psi.mean() / static_cast<double>(n), 3);
  }
  std::fputs(table.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: threshold's psi column climbs monotonically with m;");
  std::puts("adaptive's is flat in m with psi/n a small constant — the separation");
  std::puts("the paper's Figure 3(b) shows.");
  return 0;
}
