/// bench_ablation_batched — the parallel-rounds trade-off from the related
/// work (Lenzen & Wattenhofer): rounds and messages of the batched protocol
/// as n grows (m = n, capacity 2), and the effect of bin capacity.
///
///   $ ./bench_ablation_batched

#include "bbb/theory/bounds.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  bbb::io::ArgParser args("bench_ablation_batched",
                          "ablation: synchronous parallel allocation rounds");
  bbb::bench::add_common_flags(args, 10);
  if (!args.parse(argc, argv)) return 0;
  const auto flags = bbb::bench::read_common_flags(args);

  bbb::bench::print_header(
      "Related work §1 (SPAA'13) — parallel allocation",
      "Lenzen-Wattenhofer: max load 2 in log*(n) + O(1) rounds, O(n) messages.");

  bbb::par::ThreadPool pool(flags.threads);

  bbb::io::Table sweep_n({"n", "rounds (mean)", "rounds (worst)", "log*(n)",
                          "messages/n", "failures"});
  sweep_n.set_title("m = n, capacity 2, fanout doubling");
  for (std::uint32_t e = 10; e <= 16; e += 2) {
    const std::uint64_t n = std::uint64_t{1} << e;
    const auto s = bbb::bench::run_cell("batched[2]", n,
                                        static_cast<std::uint32_t>(n), flags, pool);
    sweep_n.begin_row();
    sweep_n.add_int(static_cast<std::int64_t>(n));
    sweep_n.add_num(s.rounds.mean(), 2);
    sweep_n.add_int(static_cast<std::int64_t>(s.rounds.max()));
    sweep_n.add_int(bbb::theory::log_star(static_cast<double>(n)));
    sweep_n.add_num(s.probes.mean() / static_cast<double>(n), 2);
    sweep_n.add_int(s.failures);
  }
  std::fputs(sweep_n.render(flags.format).c_str(), stdout);
  std::fputs("\n", stdout);

  bbb::io::Table sweep_cap({"capacity", "rounds (mean)", "messages/n", "failures"});
  constexpr std::uint32_t kN = 1u << 14;
  sweep_cap.set_title("m = n = " + std::to_string(kN) + ", capacity sweep");
  for (std::uint32_t cap : {1u, 2u, 3u, 4u}) {
    const auto s = bbb::bench::run_cell("batched[" + std::to_string(cap) + "]", kN, kN,
                                        flags, pool);
    sweep_cap.begin_row();
    sweep_cap.add_int(cap);
    sweep_cap.add_num(s.rounds.mean(), 2);
    sweep_cap.add_num(s.probes.mean() / kN, 2);
    sweep_cap.add_int(s.failures);
  }
  std::fputs(sweep_cap.render(flags.format).c_str(), stdout);
  std::puts("\nexpected shape: rounds ~ flat small constant tracking log*(n);");
  std::puts("messages linear in n; capacity 1 (perfect matching) costs far more");
  std::puts("rounds/messages than capacity 2 — LW's 'load 2 is the sweet spot'.");
  return 0;
}
