/// Concurrency stress for the sharded engine's primitives and the engine
/// itself — the `tsan` ctest label (tests/CMakeLists.txt): fast enough
/// for tier-1, but written for the BBB_TSAN=ON build where the race
/// detector certifies the release/acquire publication contracts of
/// par::SpscRing and par::SpinBarrier and the phase discipline of
/// shard::ShardedAllocator. Every test is deterministic in its
/// ASSERTIONS (values, counts, FIFO order); only the interleavings vary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bbb/par/spin_barrier.hpp"
#include "bbb/par/spsc_ring.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/engine.hpp"

namespace bbb::shard {
namespace {

TEST(ShardStress, RingSingleProducerSingleConsumer) {
  // One producer, one consumer, a deliberately tiny ring so both sides
  // spin across full/empty transitions constantly. The consumer checks
  // strict FIFO of the whole sequence.
  constexpr std::uint64_t kCount = 1u << 18;
  par::SpscRing<std::uint64_t> ring(8);
  std::uint64_t bad = 0;

  std::thread consumer([&] {
    std::uint64_t expected = 0;
    while (expected < kCount) {
      std::uint64_t v = 0;
      if (!ring.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expected) ++bad;
      ++expected;
    }
  });
  for (std::uint64_t v = 0; v < kCount; ++v) {
    while (!ring.try_push(std::uint64_t{v})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(bad, 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(ShardStress, RingBatchedProducerScalarConsumer) {
  // push_some under contention against a scalar consumer: the batched
  // publication (one release store for the whole batch) must still hand
  // the consumer a gap-free FIFO sequence.
  constexpr std::uint64_t kCount = 1u << 17;
  par::SpscRing<std::uint64_t> ring(32);
  std::uint64_t bad = 0;

  std::thread consumer([&] {
    std::uint64_t expected = 0;
    while (expected < kCount) {
      std::uint64_t v = 0;
      if (!ring.try_pop(v)) {
        std::this_thread::yield();
        continue;
      }
      if (v != expected) ++bad;
      ++expected;
    }
  });
  std::uint64_t next = 0;
  std::uint64_t batch[24];
  while (next < kCount) {
    std::size_t k = 0;
    while (k < 24 && next + k < kCount) {
      batch[k] = next + k;
      ++k;
    }
    const std::size_t pushed = ring.push_some(batch, k);
    next += pushed;
    if (pushed == 0) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(bad, 0u);
}

TEST(ShardStress, RingMeshEightProducers) {
  // Eight producers, each with a PRIVATE ring to one consumer — the
  // engine's mesh shape, where the single-producer/single-consumer
  // promise holds per ring. The consumer drains all eight concurrently
  // and checks per-ring FIFO plus total conservation.
  constexpr std::uint32_t kProducers = 8;
  constexpr std::uint64_t kPer = 1u << 14;
  std::vector<std::unique_ptr<par::SpscRing<std::uint64_t>>> rings;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    rings.push_back(std::make_unique<par::SpscRing<std::uint64_t>>(16));
  }

  std::uint64_t bad = 0;
  std::uint64_t received = 0;
  std::thread consumer([&] {
    std::vector<std::uint64_t> expected(kProducers, 0);
    while (received < kProducers * kPer) {
      bool progress = false;
      for (std::uint32_t p = 0; p < kProducers; ++p) {
        std::uint64_t v = 0;
        while (rings[p]->try_pop(v)) {
          // Producer p sends p * kPer + i in order i = 0, 1, ...
          if (v != p * kPer + expected[p]) ++bad;
          ++expected[p];
          ++received;
          progress = true;
        }
      }
      if (!progress) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        while (!rings[p]->try_push(std::uint64_t{p * kPer + i})) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(received, kProducers * kPer);
}

/// Move-only payload counting live instances via an atomic (the churn
/// test destroys rings from the main thread after joining workers, so the
/// counter is read across threads).
struct Tracked {
  std::atomic<int>* live = nullptr;
  Tracked() = default;
  explicit Tracked(std::atomic<int>* l) : live(l) {
    if (live != nullptr) live->fetch_add(1, std::memory_order_relaxed);
  }
  Tracked(Tracked&& o) noexcept : live(std::exchange(o.live, nullptr)) {}
  Tracked& operator=(Tracked&& o) noexcept {
    if (live != nullptr) live->fetch_sub(1, std::memory_order_relaxed);
    live = std::exchange(o.live, nullptr);
    return *this;
  }
  Tracked(const Tracked&) = delete;
  Tracked& operator=(const Tracked&) = delete;
  ~Tracked() {
    if (live != nullptr) live->fetch_sub(1, std::memory_order_relaxed);
  }
};

TEST(ShardStress, RingLifetimeChurnDrainsOnDestruction) {
  // Repeatedly build a ring, push payloads from a producer thread while a
  // consumer pops only some of them, join both sides, then destroy the
  // ring with messages still in flight. The destructor drain must bring
  // the live-payload count back to zero every generation.
  std::atomic<int> live{0};
  for (int gen = 0; gen < 64; ++gen) {
    {
      par::SpscRing<Tracked> ring(8);
      const int to_send = 16 + gen % 17;
      // Leave 0..capacity payloads in flight — never more, or the
      // producer could not finish pushing once the consumer is done.
      const int to_recv = to_send - gen % 9;
      std::thread producer([&] {
        for (int i = 0; i < to_send; ++i) {
          while (!ring.try_push(Tracked(&live))) std::this_thread::yield();
        }
      });
      std::thread consumer([&] {
        for (int i = 0; i < to_recv; ++i) {
          Tracked out;
          while (!ring.try_pop(out)) std::this_thread::yield();
        }
      });
      producer.join();
      consumer.join();
      EXPECT_EQ(live.load(), to_send - to_recv) << "generation " << gen;
    }
    ASSERT_EQ(live.load(), 0) << "generation " << gen;
  }
}

TEST(ShardStress, BarrierSynchronizesManyGenerations) {
  // Classic barrier torture: every thread increments its slot exactly
  // once per generation; after each wait, ALL slots must show the current
  // generation — a straggler would be caught immediately.
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint32_t kGenerations = 5'000;
  par::SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> slot(kThreads * 16, 0);  // padded, one per thread
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> threads;
  for (std::uint32_t id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      for (std::uint32_t g = 1; g <= kGenerations; ++g) {
        slot[id * 16] = g;
        barrier.arrive_and_wait();
        for (std::uint32_t other = 0; other < kThreads; ++other) {
          if (slot[other * 16] < g) violations.fetch_add(1);
        }
        barrier.arrive_and_wait();  // keep writers out of the readers' check
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(ShardStress, BarrierAbortReleasesEveryWaiter) {
  // Three workers park on the abort-aware barrier; a fourth flips the
  // abort flag instead of arriving. Every waiter must return false
  // promptly instead of spinning forever.
  constexpr std::uint32_t kParties = 4;
  par::SpinBarrier barrier(kParties);
  std::atomic<bool> abort{false};
  std::atomic<std::uint32_t> released{0};
  std::vector<std::thread> waiters;
  for (std::uint32_t id = 0; id < kParties - 1; ++id) {
    waiters.emplace_back([&] {
      if (!barrier.arrive_and_wait(abort)) released.fetch_add(1);
    });
  }
  abort.store(true, std::memory_order_seq_cst);
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(released.load(), kParties - 1);
}

TEST(ShardStress, EngineRepeatedRunsAreRaceFreeAndDeterministic) {
  // The engine end-to-end under churn: fresh 4-worker engines back to
  // back, small rounds so every phase (including deferral cleanup) runs
  // many times per engine. Same seed must give identical loads every
  // time, and balls are conserved exactly.
  std::vector<std::uint32_t> reference;
  for (int iteration = 0; iteration < 6; ++iteration) {
    ShardOptions opt;
    opt.shards = 4;
    opt.round_balls = 256;
    ShardedAllocator engine("greedy[2]", 192, opt);
    rng::Engine gen = rng::SeedSequence(1234).engine(0);
    engine.run(20'000, gen);
    ASSERT_EQ(engine.balls(), 20'000u) << "iteration " << iteration;
    const std::vector<std::uint32_t> loads = engine.copy_loads();
    if (iteration == 0) {
      reference = loads;
      EXPECT_GT(engine.counters().deferred_balls, 0u);
    } else {
      ASSERT_EQ(loads, reference) << "iteration " << iteration;
    }
  }
}

TEST(ShardStress, EngineSingleShardStreamUnderChurn) {
  // The T == 1 command ring (chunked place_batch worker) run repeatedly;
  // exercises the producer/worker handshake and sentinel shutdown.
  std::vector<std::uint32_t> reference;
  for (int iteration = 0; iteration < 4; ++iteration) {
    ShardOptions opt;
    opt.shards = 1;
    opt.m_hint = 70'000;
    ShardedAllocator engine("greedy[2]", 1'024, opt);
    rng::Engine gen = rng::SeedSequence(99).engine(0);
    engine.run(70'000, gen);  // > one 64Ki chunk, so the ring carries several
    ASSERT_EQ(engine.balls(), 70'000u);
    const std::vector<std::uint32_t> loads = engine.copy_loads();
    if (iteration == 0) {
      reference = loads;
    } else {
      ASSERT_EQ(loads, reference) << "iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace bbb::shard
