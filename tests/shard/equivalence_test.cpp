/// The sharded engine's distributional certificate: multi-shard runs vs
/// the sequential streaming core, cross-validated statistically at fresh
/// (frozen) seeds. The lockstep suite (tests/shard/engine_test.cpp)
/// already proves bit-equality against a sequential replay of the SAME
/// substreams; this battery asks the complementary question — with
/// INDEPENDENT randomness on each side, are the resulting load profiles
/// the same distribution? A protocol-level bug that happened to be
/// self-consistent (e.g. a biased probe mapping applied on both replay
/// sides) would pass lockstep and fail here.
///
/// Pre-registered design (fixed before looking at any outcome; frozen
/// seeds make every assertion deterministic — it either passes forever or
/// flags a real regression):
///
///   * Cells: m = n throughout.
///       - greedy[2] with 4 shards at n in {2^16, 2^20, 2^24};
///       - one-choice with 3 shards (round_balls 1024) and left[2] with
///         2 shards, both at n = 2^16.
///     The default (tier-1) run keeps only the n = 2^16 scale so the
///     suite stays in the seconds range; BBB_STAT_FULL=1 in the
///     environment (the `stat`-labeled Release CI job: ctest -L stat)
///     runs the full grid.
///   * Replicates per side: 32 at 2^16, 16 at 2^20, 8 at 2^24 (wall-time
///     budget; fixed in advance).
///   * Sharded side: master seed 303, wide layout. Sequential side:
///     master seed 404, compact streaming layout (the giant-scale tier,
///     so the battery also spans layouts). Replicate r uses
///     SeedSequence(master).engine(r) — the repo-wide contract.
///   * Tests, each at significance alpha = 1e-4:
///       1. chi-square homogeneity on level counts aggregated over seeds;
///       2. two-sample KS on the same aggregated counts;
///       3. two-sample KS on the per-seed max loads;
///       4. z-test at 5 sigma on the per-seed psi means.
///     With <= 4 tests x 5 cells the family-wise false-alarm budget at
///     fresh seeds would be ~2e-3; at the frozen seeds it is 0 or 1.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/engine.hpp"
#include "bbb/stats/gof.hpp"
#include "bbb/stats/hypothesis.hpp"
#include "bbb/stats/running_stats.hpp"

namespace bbb::shard {
namespace {

constexpr double kAlpha = 1e-4;             // pre-registered significance
constexpr std::uint64_t kShardSeed = 303;   // pre-registered master seeds
constexpr std::uint64_t kSeqSeed = 404;

bool full_grid() {
  const char* flag = std::getenv("BBB_STAT_FULL");
  return flag != nullptr && std::string(flag) != "0";
}

/// (n, replicates per side) — the pre-registered schedule.
std::vector<std::pair<std::uint32_t, std::uint32_t>> scales() {
  if (full_grid()) {
    return {{1u << 16, 32}, {1u << 20, 16}, {1u << 24, 8}};
  }
  return {{1u << 16, 32}};
}

void fold_levels(std::vector<std::uint64_t>& into,
                 const std::vector<std::uint32_t>& levels) {
  if (into.size() < levels.size()) into.resize(levels.size(), 0);
  for (std::size_t j = 0; j < levels.size(); ++j) into[j] += levels[j];
}

struct Side {
  std::vector<std::uint64_t> levels;  // aggregated over replicates
  std::vector<double> max_loads;      // one per replicate
  stats::RunningStats psi;
};

Side sharded_side(const std::string& spec, std::uint32_t shards,
                  std::uint32_t round_balls, std::uint32_t n, std::uint32_t reps) {
  Side side;
  for (std::uint32_t r = 0; r < reps; ++r) {
    ShardOptions opt;
    opt.shards = shards;
    opt.round_balls = round_balls;
    ShardedAllocator engine(spec, n, opt);
    rng::Engine gen = rng::SeedSequence(kShardSeed).engine(r);
    engine.run(n, gen);  // m = n
    fold_levels(side.levels, engine.merged_level_counts());
    side.max_loads.push_back(static_cast<double>(engine.max_load()));
    side.psi.add(engine.psi());
  }
  return side;
}

Side sequential_side(const std::string& spec, std::uint32_t n, std::uint32_t reps) {
  Side side;
  for (std::uint32_t r = 0; r < reps; ++r) {
    const auto alloc =
        core::make_streaming_allocator(spec, n, n, core::StateLayout::kCompact);
    rng::Engine gen = rng::SeedSequence(kSeqSeed).engine(r);
    alloc->set_engine_exclusive(true);
    for (std::uint64_t i = 0; i < n; ++i) (void)alloc->place(gen);
    alloc->finalize(gen);
    const core::BinState& state = alloc->state();
    std::vector<std::uint32_t> levels(state.max_load() + 1, 0);
    for (std::uint32_t l = 0; l <= state.max_load(); ++l) {
      levels[l] = state.level_counts()[l];
    }
    fold_levels(side.levels, levels);
    side.max_loads.push_back(static_cast<double>(state.max_load()));
    side.psi.add(state.psi());
  }
  return side;
}

/// The four pre-registered assertions on one cell.
void expect_same_distribution(Side sharded, Side sequential) {
  const std::size_t top = std::max(sharded.levels.size(), sequential.levels.size());
  sharded.levels.resize(top, 0);
  sequential.levels.resize(top, 0);

  // (1) chi-square homogeneity on aggregated level counts.
  const auto chi2 = stats::chi_square_homogeneity(sharded.levels, sequential.levels);
  EXPECT_GT(chi2.p_value, kAlpha)
      << "chi2 = " << chi2.statistic << " df = " << chi2.df;

  // (2) KS on the same counts (conservative under ties; catches a
  // CDF-shape disagreement a chi-square can dilute).
  const auto ks_lvl = stats::ks_counts(sharded.levels, sequential.levels);
  EXPECT_GT(ks_lvl.p_value, kAlpha) << "D = " << ks_lvl.statistic;

  // (3) KS on per-seed max loads.
  const auto ks_max = stats::ks_two_sample(sharded.max_loads, sequential.max_loads);
  EXPECT_GT(ks_max.p_value, kAlpha) << "D = " << ks_max.statistic;

  // (4) psi means within 5 combined standard errors.
  const double se =
      std::sqrt(sharded.psi.stderr_mean() * sharded.psi.stderr_mean() +
                sequential.psi.stderr_mean() * sequential.psi.stderr_mean());
  EXPECT_NEAR(sharded.psi.mean(), sequential.psi.mean(), 5.0 * se + 1e-9)
      << "sharded " << sharded.psi.mean() << " sequential "
      << sequential.psi.mean();
}

TEST(ShardEquivalence, GreedyTwoFourShardsMatchesSequential) {
  for (const auto& [n, reps] : scales()) {
    SCOPED_TRACE("n = " + std::to_string(n) + " reps = " + std::to_string(reps));
    expect_same_distribution(sharded_side("greedy[2]", 4, 8192, n, reps),
                             sequential_side("greedy[2]", n, reps));
  }
}

TEST(ShardEquivalence, OneChoiceThreeShardsMatchesSequential) {
  // A non-default round size, so the battery covers a second point of the
  // (shards, round_balls) surface the exactness claim quantifies over.
  const std::uint32_t n = 1u << 16;
  expect_same_distribution(sharded_side("one-choice", 3, 1024, n, 32),
                           sequential_side("one-choice", n, 32));
}

TEST(ShardEquivalence, LeftTwoTwoShardsMatchesSequential) {
  const std::uint32_t n = 1u << 16;
  expect_same_distribution(sharded_side("left[2]", 2, 8192, n, 32),
                           sequential_side("left[2]", n, 32));
}

}  // namespace
}  // namespace bbb::shard
