/// The sharded engine's correctness battery:
///
///   * ShardTopology — the balanced contiguous partition and its
///     reciprocal-division routing, property-tested against plain
///     division;
///   * ShardLockstep — shards[1]:spec is bit-for-bit the sequential
///     streaming core for EVERY registry family (both layouts), and a
///     multi-shard run is bit-for-bit a literal sequential replay of the
///     same substreams in global ball order — the exactness claim the
///     round protocol's conflict-deferral rule makes (engine.hpp);
///   * ShardEngine — merged-metric identities, determinism, conservation,
///     consumption of the caller's engine, and every rejection path.
///
/// The statistical half of the equivalence story (sharded vs sequential
/// at fresh seeds, alpha = 1e-4) lives in tests/shard/equivalence_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/shard/engine.hpp"
#include "bbb/shard/topology.hpp"
#include "bbb/sim/runner.hpp"

namespace bbb::shard {
namespace {

// ---------------------------------------------------------------------------
// ShardTopology
// ---------------------------------------------------------------------------

TEST(ShardTopology, FastDivMatchesPlainDivision) {
  rng::Engine eng = rng::SeedSequence(3).engine(0);
  const std::uint32_t divisors[] = {1u,    2u,     3u,          5u,
                                    7u,    64u,    1000u,       4095u,
                                    4096u, 1u << 31, 0xFFFFFFFFu};
  for (const std::uint32_t d : divisors) {
    const FastDivU32 div(d);
    EXPECT_EQ(div.divisor(), d);
    const std::uint32_t edges[] = {0u, 1u, d - 1, d, d + 1, 2 * d, 0xFFFFFFFFu};
    for (const std::uint32_t x : edges) {
      EXPECT_EQ(div(x), x / d) << "d=" << d << " x=" << x;
    }
    for (int i = 0; i < 2'000; ++i) {
      const auto x = static_cast<std::uint32_t>(eng());
      ASSERT_EQ(div(x), x / d) << "d=" << d << " x=" << x;
    }
  }
  EXPECT_THROW(FastDivU32(0), std::invalid_argument);
}

TEST(ShardTopology, PartitionCoversEveryBinExactlyOnce) {
  const std::pair<std::uint32_t, std::uint32_t> cases[] = {
      {1, 1}, {2, 1}, {5, 5},  {7, 3},       {64, 8},
      {97, 13}, {1000, 7}, {65536, 64}, {1u << 20, 96}};
  rng::Engine eng = rng::SeedSequence(4).engine(0);
  for (const auto& [n, t] : cases) {
    SCOPED_TRACE("n=" + std::to_string(n) + " t=" + std::to_string(t));
    const Topology topo(n, t);
    EXPECT_EQ(topo.n(), n);
    EXPECT_EQ(topo.shards(), t);
    EXPECT_EQ(topo.first_bin(0), 0u);
    EXPECT_EQ(topo.first_bin(t), n);
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < t; ++s) {
      const std::uint32_t bins = topo.shard_bins(s);
      ASSERT_GE(bins, 1u);
      // Balanced: sizes differ by at most one, larger shards first.
      EXPECT_LE(bins, topo.shard_bins(0));
      EXPECT_GE(bins, topo.shard_bins(t - 1));
      EXPECT_EQ(topo.first_bin(s + 1) - topo.first_bin(s), bins);
      total += bins;
      // Routing is exact on both edges of every range.
      const std::uint32_t first = topo.first_bin(s);
      EXPECT_EQ(topo.shard_of(first), s);
      EXPECT_EQ(topo.shard_of(first + bins - 1), s);
      EXPECT_EQ(topo.local_of(first, s), 0u);
      EXPECT_EQ(topo.local_of(first + bins - 1, s), bins - 1);
    }
    EXPECT_EQ(total, n);
    // Random interior bins agree with the range definition.
    for (int i = 0; i < 5'000; ++i) {
      const auto bin = static_cast<std::uint32_t>(rng::uniform_below(eng, n));
      const std::uint32_t owner = topo.shard_of(bin);
      ASSERT_LT(owner, t);
      ASSERT_GE(bin, topo.first_bin(owner));
      ASSERT_LT(bin, topo.first_bin(owner + 1));
      ASSERT_EQ(topo.first_bin(owner) + topo.local_of(bin, owner), bin);
    }
  }
}

TEST(ShardTopology, RejectsDegeneratePartitions) {
  EXPECT_THROW(Topology(0, 1), std::invalid_argument);
  EXPECT_THROW(Topology(8, 0), std::invalid_argument);
  EXPECT_THROW(Topology(8, 9), std::invalid_argument);
  EXPECT_NO_THROW(Topology(8, 8));
}

// ---------------------------------------------------------------------------
// ShardLockstep: shards[1] == the sequential streaming core, bit for bit
// ---------------------------------------------------------------------------

struct SeqResult {
  std::vector<std::uint32_t> loads;
  std::uint64_t probes = 0;
  std::uint64_t balls = 0;
};

/// The sequential reference: the streaming place loop plus finalize — the
/// execution shards[1] promises to reproduce exactly.
SeqResult streaming_reference(const std::string& spec, std::uint32_t n,
                              std::uint64_t m, core::StateLayout layout,
                              std::uint64_t seed) {
  const auto alloc = core::make_streaming_allocator(spec, n, m, layout);
  rng::Engine gen = rng::SeedSequence(seed).engine(0);
  alloc->set_engine_exclusive(true);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc->place(gen);
  alloc->finalize(gen);
  SeqResult out;
  out.loads = alloc->state().copy_loads();
  out.probes = alloc->probes();
  out.balls = alloc->state().balls();
  return out;
}

SeqResult sharded_run(const std::string& spec, std::uint32_t n, std::uint64_t m,
                      std::uint32_t shards, core::StateLayout layout,
                      std::uint64_t seed, std::uint32_t round_balls = 8192) {
  ShardOptions opt;
  opt.shards = shards;
  opt.layout = layout;
  opt.m_hint = m;
  opt.round_balls = round_balls;
  ShardedAllocator engine(spec, n, opt);
  rng::Engine gen = rng::SeedSequence(seed).engine(0);
  engine.run(m, gen);
  SeqResult out;
  out.loads = engine.copy_loads();
  out.probes = engine.probes();
  out.balls = engine.balls();
  return out;
}

TEST(ShardLockstep, SingleShardMatchesStreamingCoreEveryFamily) {
  // One concrete spec per registry family (the same instantiation map the
  // obs integration suite enforces completeness of). Note batched[64] here
  // pins the STREAMING capacity-bounded form — shards[1]'s documented
  // batch semantics — not the LW-rounds batch protocol.
  const std::vector<std::string> specs = {
      "one-choice",      "greedy[2]",        "left[2]",
      "memory[1,1]",     "threshold",        "threshold[1]",
      "doubling-threshold[4]", "adaptive",   "adaptive[1]",
      "adaptive-net",    "adaptive-total",   "stale-adaptive[8]",
      "skewed-adaptive[50]", "batched[64]",  "self-balancing",
      "cuckoo[2,16]"};
  constexpr std::uint64_t kM = 4'096;
  constexpr std::uint32_t kN = 512;
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    const SeqResult ref = streaming_reference(spec, kN, kM, core::StateLayout::kWide, 42);
    const SeqResult got = sharded_run(spec, kN, kM, 1, core::StateLayout::kWide, 42);
    EXPECT_EQ(got.loads, ref.loads);
    EXPECT_EQ(got.probes, ref.probes);
    EXPECT_EQ(got.balls, ref.balls);
  }
}

TEST(ShardLockstep, SingleShardMatchesStreamingCoreCompactLayout) {
  for (const std::string& spec :
       {std::string("one-choice"), std::string("greedy[2]"), std::string("left[2]"),
        std::string("batched[64]")}) {
    SCOPED_TRACE(spec);
    const SeqResult ref =
        streaming_reference(spec, 512, 8'192, core::StateLayout::kCompact, 7);
    const SeqResult got =
        sharded_run(spec, 512, 8'192, 1, core::StateLayout::kCompact, 7);
    EXPECT_EQ(got.loads, ref.loads);
    EXPECT_EQ(got.probes, ref.probes);
  }
}

TEST(ShardLockstep, ProtocolWrapperMatchesSequentialProtocol) {
  // Through the registry: shards[1]:greedy[2] as a batch Protocol equals
  // the plain greedy[2] Protocol (batch_equivalent rule, so its batch form
  // IS the place loop).
  const auto sharded = core::make_protocol("shards[1]:greedy[2]");
  const auto plain = core::make_protocol("greedy[2]");
  rng::Engine g1 = rng::SeedSequence(42).engine(0);
  rng::Engine g2 = rng::SeedSequence(42).engine(0);
  const core::AllocationResult a = sharded->run(10'000, 1'024, g1);
  const core::AllocationResult b = plain->run(10'000, 1'024, g2);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.balls, b.balls);
}

// ---------------------------------------------------------------------------
// ShardLockstep: multi-shard == literal sequential replay, bit for bit
// ---------------------------------------------------------------------------

enum class RKind : std::uint8_t { kOneChoice, kGreedy, kLeft };

std::uint32_t replay_decide(RKind kind, std::uint32_t d,
                            const std::vector<std::uint32_t>& loads,
                            const std::array<std::uint32_t, kMaxShardD>& bins,
                            std::uint64_t aux) {
  if (kind == RKind::kOneChoice) return 0;
  if (kind == RKind::kLeft) {
    std::uint32_t best = 0;
    for (std::uint32_t g = 1; g < d; ++g) {
      if (loads[bins[g]] < loads[bins[best]]) best = g;
    }
    return best;
  }
  std::uint32_t best = 0;
  std::uint32_t ties = 1;
  for (std::uint32_t g = 1; g < d; ++g) {
    if (loads[bins[g]] < loads[bins[best]]) {
      best = g;
      ties = 1;
    } else if (loads[bins[g]] == loads[bins[best]]) {
      ++ties;
    }
  }
  if (ties == 1) return best;
  const auto pick = static_cast<std::uint32_t>(rng::lemire_map(aux, ties));
  std::uint32_t seen = 0;
  for (std::uint32_t g = 0; g < d; ++g) {
    if (loads[bins[g]] == loads[bins[best]]) {
      if (seen == pick) return g;
      ++seen;
    }
  }
  return best;
}

/// The oracle the engine claims to equal: draw every ball's probes from
/// the same per-shard substreams in the same per-worker order, then
/// process the balls ONE AT A TIME in global order (round-major,
/// worker-major, slice index) against fully up-to-date loads. No rounds,
/// no messages, no deferral — plain sequential d-choice.
std::vector<std::uint32_t> sequential_replay(RKind kind, std::uint32_t d,
                                             std::uint32_t n, std::uint32_t t,
                                             std::uint32_t round_balls,
                                             std::uint64_t m, rng::Engine& gen) {
  const std::uint64_t nested = gen();
  const std::uint64_t round_total =
      std::clamp<std::uint64_t>(round_balls, t, 65535ULL * t);
  const rng::SeedSequence seq(nested);
  std::vector<rng::Engine> eng;
  eng.reserve(t);
  for (std::uint32_t s = 0; s < t; ++s) eng.push_back(seq.engine(s));

  std::vector<std::uint32_t> loads(n, 0);
  std::vector<std::array<std::uint32_t, kMaxShardD>> bins;
  std::vector<std::uint64_t> aux;
  const std::uint64_t rounds = (m + round_total - 1) / round_total;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint64_t base = r * round_total;
    const std::uint64_t b = std::min(round_total, m - base);
    bins.assign(b, {});
    aux.assign(b, 0);
    for (std::uint32_t s = 0; s < t; ++s) {
      const auto lo = static_cast<std::uint32_t>(s * b / t);
      const auto hi =
          static_cast<std::uint32_t>((static_cast<std::uint64_t>(s) + 1) * b / t);
      for (std::uint32_t i = lo; i < hi; ++i) {
        for (std::uint32_t g = 0; g < d; ++g) {
          if (kind == RKind::kLeft) {
            const auto first =
                static_cast<std::uint32_t>(static_cast<std::uint64_t>(g) * n / d);
            const auto last = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(g) + 1) * n / d);
            bins[i][g] = first + static_cast<std::uint32_t>(
                                     rng::uniform_below(eng[s], last - first));
          } else {
            bins[i][g] = static_cast<std::uint32_t>(rng::uniform_below(eng[s], n));
          }
        }
        if (kind == RKind::kGreedy) aux[i] = eng[s]();
      }
    }
    for (std::uint64_t j = 0; j < b; ++j) {
      const std::uint32_t slot = replay_decide(kind, d, loads, bins[j], aux[j]);
      ++loads[bins[j][slot]];
    }
  }
  return loads;
}

struct ReplayCase {
  RKind kind;
  std::uint32_t d;
  const char* spec;
  std::uint32_t n;
  std::uint32_t shards;
  std::uint32_t round_balls;
  std::uint64_t m;
};

TEST(ShardLockstep, MultiShardMatchesSequentialReplayBitForBit) {
  // Small n with large rounds forces heavy intra-round conflicts, so the
  // deferral/cleanup path carries much of the traffic; prime shard counts
  // and odd m exercise uneven slices and a ragged final round.
  const ReplayCase cases[] = {
      {RKind::kOneChoice, 1, "one-choice", 64, 3, 64, 1'000},
      {RKind::kGreedy, 2, "greedy[2]", 97, 4, 128, 10'007},
      {RKind::kGreedy, 3, "greedy[3]", 256, 7, 64, 5'000},
      {RKind::kGreedy, 2, "greedy[2]", 16, 4, 64, 2'000},  // conflict-saturated
      {RKind::kGreedy, 8, "greedy[8]", 128, 5, 96, 3'001},  // d at the cap
      {RKind::kLeft, 2, "left[2]", 50, 2, 32, 3'333},
      {RKind::kLeft, 4, "left[4]", 120, 6, 48, 4'999},
      {RKind::kGreedy, 2, "greedy[2]", 64, 2, 1u << 20, 1'000},  // clamped round
  };
  int index = 0;
  for (const ReplayCase& c : cases) {
    SCOPED_TRACE(std::string(c.spec) + " n=" + std::to_string(c.n) + " t=" +
                 std::to_string(c.shards) + " rb=" + std::to_string(c.round_balls) +
                 " m=" + std::to_string(c.m));
    rng::Engine gen = rng::SeedSequence(2026).engine(index);
    rng::Engine gen_replay = gen;  // identical starting stream
    ++index;

    ShardOptions opt;
    opt.shards = c.shards;
    opt.round_balls = c.round_balls;
    ShardedAllocator engine(c.spec, c.n, opt);
    engine.run(c.m, gen);

    const std::vector<std::uint32_t> expected =
        sequential_replay(c.kind, c.d, c.n, c.shards, c.round_balls, c.m, gen_replay);
    EXPECT_EQ(engine.copy_loads(), expected);
    EXPECT_EQ(engine.balls(), c.m);
    EXPECT_EQ(engine.probes(), c.m * c.d);
    // The engine consumed exactly one word of the caller's stream (the
    // nested master seed) — the two engines are in lockstep afterwards.
    EXPECT_EQ(gen(), gen_replay());
  }
}

TEST(ShardLockstep, ConflictSaturatedRoundsActuallyDefer) {
  // Sanity on the previous test's teeth: at n = 16, rounds of 64 greedy[2]
  // balls MUST conflict, so the cleanup path is genuinely exercised.
  ShardOptions opt;
  opt.shards = 4;
  opt.round_balls = 64;
  ShardedAllocator engine("greedy[2]", 16, opt);
  rng::Engine gen = rng::SeedSequence(2026).engine(3);
  engine.run(2'000, gen);
  EXPECT_GT(engine.counters().deferred_balls, 0u);
  EXPECT_GT(engine.counters().cross_shard_probes, 0u);
  EXPECT_GT(engine.counters().messages, 0u);
  EXPECT_GT(engine.counters().rounds, 0u);
  // round_total = clamp(round_balls, shards, 65535 * shards) = 64.
  EXPECT_EQ(engine.sync_rounds(), (2'000 + 63) / 64);  // ceil(m / round_total)
}

// ---------------------------------------------------------------------------
// ShardEngine: merged reads, determinism, conservation, rejections
// ---------------------------------------------------------------------------

TEST(ShardEngine, MergedMetricsMatchRebuiltUnshardedState) {
  ShardOptions opt;
  opt.shards = 3;
  ShardedAllocator engine("greedy[2]", 384, opt);
  rng::Engine gen = rng::SeedSequence(5).engine(0);
  engine.run(50'000, gen);

  const std::vector<std::uint32_t> loads = engine.copy_loads();
  ASSERT_EQ(loads.size(), 384u);
  core::BinState ref(384, core::StateLayout::kWide);
  for (std::uint32_t bin = 0; bin < loads.size(); ++bin) {
    for (std::uint32_t k = 0; k < loads[bin]; ++k) ref.add_ball(bin);
  }
  EXPECT_EQ(engine.balls(), ref.balls());
  EXPECT_EQ(engine.max_load(), ref.max_load());
  EXPECT_EQ(engine.min_load(), ref.min_load());
  EXPECT_EQ(engine.gap(), ref.max_load() - ref.min_load());
  // psi merges integer parts, so it is exactly the unsharded expression.
  EXPECT_DOUBLE_EQ(engine.psi(), ref.psi());
  // log_phi sums per-shard weights in a different order than the
  // incremental single-state accumulation — equal up to roundoff.
  EXPECT_NEAR(engine.log_phi(), ref.log_phi(),
              1e-9 * std::max(1.0, std::abs(ref.log_phi())));
  const std::vector<std::uint32_t> merged = engine.merged_level_counts();
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(ref.max_load()) + 1);
  for (std::size_t l = 0; l < merged.size(); ++l) {
    EXPECT_EQ(merged[l], ref.level_counts()[l]) << "level " << l;
  }
  std::uint64_t level_total = 0;
  for (const std::uint32_t c : merged) level_total += c;
  EXPECT_EQ(level_total, 384u);

  const core::AllocationResult res = engine.result();
  EXPECT_EQ(res.loads, loads);
  EXPECT_EQ(res.balls, 50'000u);
  EXPECT_EQ(res.probes, 100'000u);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rounds, engine.sync_rounds());
}

TEST(ShardEngine, SameSeedSameResultIndependentOfScheduling) {
  // Two fresh engines, same seed: the result may depend only on
  // (seed, shards, round_balls) — never on thread interleaving.
  auto run_once = [] {
    ShardOptions opt;
    opt.shards = 4;
    opt.round_balls = 512;
    ShardedAllocator engine("greedy[2]", 256, opt);
    rng::Engine gen = rng::SeedSequence(77).engine(0);
    engine.run(30'000, gen);
    return engine.copy_loads();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(ShardEngine, ConservesBallsAcrossShardCounts) {
  for (const std::uint32_t t : {1u, 2u, 3u, 5u, 8u}) {
    SCOPED_TRACE("t=" + std::to_string(t));
    ShardOptions opt;
    opt.shards = t;
    ShardedAllocator engine("left[2]", 240, opt);
    rng::Engine gen = rng::SeedSequence(9).engine(0);
    engine.run(12'345, gen);
    EXPECT_EQ(engine.balls(), 12'345u);
    const std::vector<std::uint32_t> loads = engine.copy_loads();
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}), 12'345u);
    EXPECT_EQ(engine.probes(), 2u * 12'345u);
  }
}

TEST(ShardEngine, ZeroBallsRunIsWellFormed) {
  for (const std::uint32_t t : {1u, 4u}) {
    ShardOptions opt;
    opt.shards = t;
    ShardedAllocator engine("greedy[2]", 32, opt);
    rng::Engine gen = rng::SeedSequence(1).engine(0);
    engine.run(0, gen);
    EXPECT_EQ(engine.balls(), 0u);
    EXPECT_EQ(engine.max_load(), 0u);
    EXPECT_EQ(engine.min_load(), 0u);
    EXPECT_EQ(engine.copy_loads(), std::vector<std::uint32_t>(32, 0));
    EXPECT_TRUE(engine.result().completed);
  }
}

TEST(ShardEngine, ShardStateAccessorExposesThePartition) {
  ShardOptions opt;
  opt.shards = 3;
  ShardedAllocator engine("one-choice", 100, opt);
  rng::Engine gen = rng::SeedSequence(6).engine(0);
  engine.run(5'000, gen);
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < 3; ++s) {
    const core::BinState& st = engine.shard_state(s);
    EXPECT_EQ(st.n(), engine.topology().shard_bins(s));
    total += st.balls();
  }
  EXPECT_EQ(total, 5'000u);
  EXPECT_THROW((void)engine.shard_state(3), std::out_of_range);
}

TEST(ShardEngine, EngineIsOneShot) {
  ShardOptions opt;
  opt.shards = 2;
  ShardedAllocator engine("greedy[2]", 64, opt);
  rng::Engine gen = rng::SeedSequence(1).engine(0);
  engine.run(100, gen);
  EXPECT_THROW(engine.run(100, gen), std::logic_error);
}

TEST(ShardEngine, RejectsInvalidConfigurations) {
  ShardOptions two;
  two.shards = 2;
  ShardOptions none;
  none.shards = 0;
  ShardOptions many;
  many.shards = 8;
  // Multi-shard mode implements the probe-based rules only.
  EXPECT_THROW(ShardedAllocator("adaptive", 64, two), std::invalid_argument);
  EXPECT_THROW(ShardedAllocator("threshold", 64, two), std::invalid_argument);
  EXPECT_THROW(ShardedAllocator("cuckoo[2,4]", 64, two), std::invalid_argument);
  // d above the deferred-descriptor cap.
  EXPECT_THROW(ShardedAllocator("greedy[9]", 64, two), std::invalid_argument);
  // Degenerate partitions.
  EXPECT_THROW(ShardedAllocator("greedy[2]", 4, many), std::invalid_argument);
  EXPECT_THROW(ShardedAllocator("greedy[2]", 64, none), std::invalid_argument);
  // Unknown inner spec still fails through the registry.
  EXPECT_THROW(ShardedAllocator("no-such-rule", 64, two), std::invalid_argument);
  // Single-shard mode supports everything the registry does.
  ShardOptions one;
  one.shards = 1;
  one.m_hint = 100;
  EXPECT_NO_THROW(ShardedAllocator("adaptive", 64, one));
  EXPECT_NO_THROW(ShardedAllocator("greedy[9]", 64, one));
}

TEST(ShardEngine, RegistryIntegration) {
  EXPECT_EQ(core::make_protocol("shards[4]:greedy[2]")->name(), "shards[4]:greedy[2]");
  EXPECT_EQ(core::make_protocol("shards[1]:adaptive")->name(), "shards[1]:adaptive");
  EXPECT_THROW(core::make_protocol("shards[0]:greedy[2]"), std::invalid_argument);
  EXPECT_THROW(core::make_protocol("shards[2]:adaptive"), std::invalid_argument);
  EXPECT_THROW(core::make_protocol("shards[x]:greedy[2]"), std::invalid_argument);
  EXPECT_THROW(core::make_protocol("shards[2]:shards[2]:greedy[2]"),
               std::invalid_argument);
  EXPECT_THROW(core::make_protocol("capacities=1,2:shards[2]:greedy[2]"),
               std::invalid_argument);
  // The modifier builds an engine, not a streaming rule.
  EXPECT_THROW((void)core::make_rule("shards[2]:greedy[2]", 64, 0),
               std::invalid_argument);
  EXPECT_THROW((void)core::make_streaming_allocator("shards[2]:greedy[2]", 64, 0,
                                                    core::StateLayout::kWide),
               std::invalid_argument);
  const std::vector<std::string> specs = core::protocol_specs();
  EXPECT_NE(std::find(specs.begin(), specs.end(), "shards[t]:spec"), specs.end());

  ShardOptions two;
  two.shards = 2;
  EXPECT_EQ(ShardedAllocator("left[2]", 64, two).name(), "shards[2]:left[2]");
}

TEST(ShardEngine, SimRunnerRoutesShardSpecs) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "shards[2]:greedy[2]";
  cfg.m = 20'000;
  cfg.n = 256;
  cfg.replicates = 2;
  cfg.seed = 42;
  cfg.obs.level = obs::ObsLevel::kCounters;
  const sim::RunSummary s = sim::run_experiment(cfg);
  ASSERT_EQ(s.records.size(), 2u);
  for (const sim::ReplicateRecord& rec : s.records) {
    EXPECT_EQ(rec.probes, 40'000.0);
    EXPECT_TRUE(rec.completed);
    EXPECT_TRUE(std::isfinite(rec.psi));
    EXPECT_GT(rec.shard_counters.messages, 0u);
  }
  EXPECT_EQ(s.obs.counter_value("core.ball.placed"), 40'000u);
  EXPECT_GT(s.obs.counter_value("shard.message.count"), 0u);
  // ShardCounters folds per-worker round counts: replicates * shards *
  // ceil(m / round_total) with the default round_total = 8192.
  EXPECT_EQ(s.obs.counter_value("shard.sync_rounds"), 2u * 2u * 3u);
}

}  // namespace
}  // namespace bbb::shard
