/// Unit and property tests for par::SpscRing, the message channel of the
/// sharded allocation engine. Everything here is single-threaded — the
/// FIFO/boundary/wrap-around semantics, the batched-equals-scalar
/// property, move-only payload transport, and destructor draining. The
/// concurrent half of the contract (one producer, one consumer, release/
/// acquire publication) lives in tests/shard/shard_stress_test.cpp where
/// TSan certifies it.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "bbb/par/spsc_ring.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::par {
namespace {

TEST(NextPow2, KnownValues) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
  EXPECT_EQ(next_pow2((1ULL << 32) - 1), 1ULL << 32);
  EXPECT_EQ(next_pow2(1ULL << 62), 1ULL << 62);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwoMinimumTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, PushPopIsFifoAndBounded) {
  SpscRing<std::uint64_t> ring(4);  // capacity 4
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_TRUE(ring.try_push(v)) << v;
  }
  EXPECT_EQ(ring.size(), 4u);
  // Full: the rejected element is not consumed from the caller.
  std::uint64_t reject = 99;
  EXPECT_FALSE(ring.try_push(reject));
  EXPECT_EQ(reject, 99u);
  for (std::uint64_t v = 0; v < 4; ++v) {
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAroundPreservesValuesForever) {
  // Capacity 2, driven far past the index wrap of the slot mask: the
  // free-running head/tail design must keep FIFO order on every lap.
  SpscRing<std::uint64_t> ring(2);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(ring.try_push(next_in));
    ++next_in;
    if (lap % 3 != 0) {  // vary occupancy so both slots are exercised
      std::uint64_t out = 0;
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_out);
      ++next_out;
    }
    if (ring.size() == ring.capacity()) {
      std::uint64_t out = 0;
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_out);
      ++next_out;
    }
  }
  while (next_out < next_in) {
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_out);
    ++next_out;
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ModelCheckAgainstReferenceDeque) {
  // Property test: a random single-threaded op sequence on the ring agrees
  // with a std::deque bounded at the ring's capacity — success/failure of
  // every push and the value of every pop.
  SpscRing<std::uint64_t> ring(8);
  std::deque<std::uint64_t> model;
  rng::Engine eng = rng::SeedSequence(7).engine(0);
  std::uint64_t next_value = 0;
  for (int step = 0; step < 20'000; ++step) {
    if (rng::uniform_below(eng, 2) == 0) {
      std::uint64_t v = next_value;
      const bool ok = ring.try_push(v);
      EXPECT_EQ(ok, model.size() < ring.capacity()) << "step " << step;
      if (ok) {
        model.push_back(next_value);
        ++next_value;
      }
    } else {
      std::uint64_t out = 0;
      const bool ok = ring.try_pop(out);
      EXPECT_EQ(ok, !model.empty()) << "step " << step;
      if (ok) {
        EXPECT_EQ(out, model.front()) << "step " << step;
        model.pop_front();
      }
    }
    EXPECT_EQ(ring.size(), model.size()) << "step " << step;
  }
}

TEST(SpscRing, BatchedPushPopEquivalentToScalarLoops) {
  // push_some/pop_some on ring A, the same traffic via try_push/try_pop on
  // ring B: identical acceptance counts and identical popped sequences.
  SpscRing<std::uint64_t> batched(16);
  SpscRing<std::uint64_t> scalar(16);
  rng::Engine eng = rng::SeedSequence(11).engine(0);
  std::uint64_t next_value = 0;
  std::vector<std::uint64_t> from_batched;
  std::vector<std::uint64_t> from_scalar;
  for (int step = 0; step < 5'000; ++step) {
    const std::size_t k = 1 + rng::uniform_below(eng, 24);  // may exceed room
    if (rng::uniform_below(eng, 2) == 0) {
      std::vector<std::uint64_t> src(k);
      for (std::size_t i = 0; i < k; ++i) src[i] = next_value + i;
      std::vector<std::uint64_t> src2 = src;
      const std::size_t pushed = batched.push_some(src.data(), k);
      std::size_t pushed_scalar = 0;
      while (pushed_scalar < k && scalar.try_push(src2[pushed_scalar])) {
        ++pushed_scalar;
      }
      ASSERT_EQ(pushed, pushed_scalar) << "step " << step;
      next_value += pushed;
    } else {
      std::vector<std::uint64_t> out(k);
      const std::size_t popped = batched.pop_some(out.data(), k);
      from_batched.insert(from_batched.end(), out.begin(), out.begin() + popped);
      std::size_t popped_scalar = 0;
      std::uint64_t v = 0;
      while (popped_scalar < k && scalar.try_pop(v)) {
        from_scalar.push_back(v);
        ++popped_scalar;
      }
      ASSERT_EQ(popped, popped_scalar) << "step " << step;
    }
    ASSERT_EQ(batched.size(), scalar.size()) << "step " << step;
  }
  EXPECT_EQ(from_batched, from_scalar);
}

TEST(SpscRing, MoveOnlyPayloadsTravelIntact) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(ring.try_push(std::make_unique<int>(v)));
  }
  EXPECT_FALSE(ring.try_push(std::make_unique<int>(99)));
  for (int v = 0; v < 4; ++v) {
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, v);
  }
}

/// A move-only payload that counts live owning instances through an
/// external counter — the drain-on-destruction oracle.
struct Counted {
  int* live = nullptr;
  Counted() = default;
  explicit Counted(int* l) : live(l) {
    if (live != nullptr) ++*live;
  }
  Counted(Counted&& o) noexcept : live(std::exchange(o.live, nullptr)) {}
  Counted& operator=(Counted&& o) noexcept {
    if (live != nullptr) --*live;
    live = std::exchange(o.live, nullptr);
    return *this;
  }
  Counted(const Counted&) = delete;
  Counted& operator=(const Counted&) = delete;
  ~Counted() {
    if (live != nullptr) --*live;
  }
};

TEST(SpscRing, DestructorDrainsUndrainedPayloads) {
  int live = 0;
  {
    SpscRing<Counted> ring(8);
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(ring.try_push(Counted(&live)));
    }
    Counted out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_TRUE(ring.try_pop(out));
    // `out` still owns one payload here; 4 remain in the ring.
    EXPECT_EQ(live, 5);
  }  // ring destroyed with 4 in flight, then `out`
  EXPECT_EQ(live, 0);
}

TEST(SpscRing, DestructorDrainsAcrossWrappedIndices) {
  int live = 0;
  {
    SpscRing<Counted> ring(2);
    // Spin the indices well past one lap so the drained range straddles
    // the mask boundary, then leave the ring full.
    for (int lap = 0; lap < 37; ++lap) {
      EXPECT_TRUE(ring.try_push(Counted(&live)));
      Counted out;
      ASSERT_TRUE(ring.try_pop(out));
    }
    EXPECT_TRUE(ring.try_push(Counted(&live)));
    EXPECT_TRUE(ring.try_push(Counted(&live)));
    EXPECT_EQ(live, 2);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace bbb::par
