#include "bbb/law/one_choice.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bbb/law/profile.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/gof.hpp"
#include "bbb/stats/hypothesis.hpp"

namespace bbb::law {
namespace {

rng::Engine engine_for(std::uint64_t seed) {
  return rng::SeedSequence(seed).engine(0);
}

// ------------------------------------------------------------------ invariants

TEST(OneChoiceSampler, ProfileInvariantsAcrossShapes) {
  rng::Engine gen = engine_for(1);
  const struct {
    std::uint64_t m, n;
  } shapes[] = {{0, 1},       {1, 1},         {5, 1},        {0, 1000},
                {1, 1000},    {1000, 1000},   {10000, 100},  {100, 10000},
                {1 << 16, 1 << 16},           {1 << 20, 1 << 14}};
  for (const auto& s : shapes) {
    const OccupancyProfile p = sample_one_choice_profile(s.m, s.n, gen);
    EXPECT_EQ(p.n(), s.n);
    EXPECT_EQ(p.balls(), s.m);  // the correction walk must land exactly on m
    EXPECT_GE(p.max_load(), p.min_load());
    std::uint64_t bins = 0, balls = 0;
    for (std::size_t i = 0; i < p.counts().size(); ++i) {
      bins += p.counts()[i];
      balls += (p.base() + i) * p.counts()[i];
    }
    EXPECT_EQ(bins, s.n);
    EXPECT_EQ(balls, s.m);
    EXPECT_GT(p.counts().front(), 0u);  // trimmed
    EXPECT_GT(p.counts().back(), 0u);
  }
}

TEST(OneChoiceSampler, EdgeCases) {
  rng::Engine gen = engine_for(2);
  // m = 0: every bin at level 0.
  const OccupancyProfile empty = sample_one_choice_profile(0, 42, gen);
  EXPECT_EQ(empty.max_load(), 0u);
  EXPECT_EQ(empty.count_at(0), 42u);
  // n = 1: all balls in the one bin.
  const OccupancyProfile one = sample_one_choice_profile(999, 1, gen);
  EXPECT_EQ(one.max_load(), 999u);
  EXPECT_EQ(one.min_load(), 999u);
  EXPECT_THROW(sample_one_choice_profile(1, 0, gen), std::invalid_argument);
}

// ----------------------------------------------------------------- determinism

TEST(OneChoiceSampler, DeterministicPerSeed) {
  rng::Engine a = engine_for(7);
  rng::Engine b = engine_for(7);
  const OccupancyProfile pa = sample_one_choice_profile(1 << 14, 1 << 14, a);
  const OccupancyProfile pb = sample_one_choice_profile(1 << 14, 1 << 14, b);
  EXPECT_EQ(pa.counts(), pb.counts());
  EXPECT_EQ(pa.base(), pb.base());

  rng::Engine c = rng::SeedSequence(7).engine(1);  // different replicate stream
  const OccupancyProfile pc = sample_one_choice_profile(1 << 14, 1 << 14, c);
  EXPECT_NE(pa.counts(), pc.counts());
}

// ----------------------------------------------------------------- golden pins
//
// Captured from this implementation at PR 6 (the convention of
// tests/rng/golden_test.cpp): these are regression pins, not external
// vectors. If a change breaks them it silently reseeds every recorded
// law-tier experiment — bump them only with a deliberate format note in
// CHANGES.md.

TEST(OneChoiceGoldenPins, Seed0) {
  rng::Engine gen = engine_for(0);
  const OccupancyProfile p = sample_one_choice_profile(4096, 4096, gen);
  EXPECT_EQ(p.base(), 0u);
  EXPECT_EQ(p.max_load(), 6u);
  const std::vector<std::uint64_t> expected{1511, 1480, 798, 228, 62, 14, 3};
  EXPECT_EQ(p.counts(), expected);
  EXPECT_NEAR(p.psi(), 4078.0, 1e-9);
  EXPECT_NEAR(p.log_phi(), 8.327753612, 1e-8);
}

TEST(OneChoiceGoldenPins, Seed42) {
  rng::Engine gen = engine_for(42);
  const OccupancyProfile p = sample_one_choice_profile(4096, 4096, gen);
  EXPECT_EQ(p.base(), 0u);
  EXPECT_EQ(p.max_load(), 7u);
  const std::vector<std::uint64_t> expected{1525, 1504, 734, 241, 67, 18, 6, 1};
  EXPECT_EQ(p.counts(), expected);
  EXPECT_NEAR(p.psi(), 4300.0, 1e-9);
  EXPECT_NEAR(p.log_phi(), 8.327754281, 1e-8);
}

TEST(OneChoiceGoldenPins, HeavyLoadSeed0) {
  // m/n = 4: the base-level trimming and the walker's downward growth see
  // real work (min load here is 0 only via the left Poisson tail).
  rng::Engine gen = engine_for(0);
  const OccupancyProfile p = sample_one_choice_profile(1ULL << 20, 1ULL << 18, gen);
  EXPECT_EQ(p.base(), 0u);
  EXPECT_EQ(p.max_load(), 16u);
  EXPECT_EQ(p.count_at(0), 4686u);
  EXPECT_EQ(p.count_at(4), 51125u);
  EXPECT_EQ(p.count_at(16), 2u);
  EXPECT_NEAR(p.psi(), 1048074.0, 1e-6);
}

TEST(OneChoiceGoldenPins, ConditionalSeed0And42) {
  rng::Engine g0 = engine_for(0);
  const OccupancyProfile p0 = sample_one_choice_profile_conditional(512, 512, g0);
  const std::vector<std::uint64_t> expected0{185, 184, 108, 28, 7};
  EXPECT_EQ(p0.counts(), expected0);

  rng::Engine g42 = engine_for(42);
  const OccupancyProfile p42 = sample_one_choice_profile_conditional(512, 512, g42);
  const std::vector<std::uint64_t> expected42{201, 170, 95, 36, 6, 4};
  EXPECT_EQ(p42.counts(), expected42);
}

// --------------------------------------------------- exact distribution checks

// n = 2, m = 2: the multinomial has three outcomes — (2,0), (1,1), (0,2)
// with probabilities 1/4, 1/2, 1/4 — so max load is 1 w.p. 1/2 and 2
// w.p. 1/2. A direct chi-square against the exact law catches any bias in
// the Poissonize-and-correct walk that the large-n tests would wash out.
TEST(OneChoiceExactLaw, MaxLoadTwoBallsTwoBins) {
  rng::Engine gen = engine_for(3);
  const auto res = stats::chi_square_fit_discrete(
      [&gen] { return std::uint64_t{sample_one_choice_profile(2, 2, gen).max_load()}; },
      [](std::uint64_t k) {
        return k == 1 || k == 2 ? 0.5 : 0.0;
      },
      20'000, 3);
  EXPECT_GT(res.p_value, 1e-4) << "chi2 = " << res.statistic;
}

// n = 3, m = 2: P(max = 1) = 6/9, P(max = 2) = 3/9.
TEST(OneChoiceExactLaw, MaxLoadTwoBallsThreeBins) {
  rng::Engine gen = engine_for(4);
  const auto res = stats::chi_square_fit_discrete(
      [&gen] { return std::uint64_t{sample_one_choice_profile(2, 3, gen).max_load()}; },
      [](std::uint64_t k) {
        if (k == 1) return 2.0 / 3.0;
        if (k == 2) return 1.0 / 3.0;
        return 0.0;
      },
      20'000, 3);
  EXPECT_GT(res.p_value, 1e-4) << "chi2 = " << res.statistic;
}

// The two exact samplers (Poissonize-and-correct vs per-bin conditional
// binomials) target the same law; their aggregated level counts must be
// homogeneous. This triangulates the tentpole sampler against a routine
// textbook construction that shares none of its machinery.
TEST(OneChoiceExactLaw, PoissonizedMatchesConditionalChain) {
  rng::Engine ga = engine_for(5);
  rng::Engine gb = engine_for(6);
  std::vector<std::uint64_t> levels_a, levels_b;
  const auto fold = [](std::vector<std::uint64_t>& into, const OccupancyProfile& p) {
    const std::size_t top = p.base() + p.counts().size();
    if (into.size() < top) into.resize(top, 0);
    for (std::size_t i = 0; i < p.counts().size(); ++i) {
      into[p.base() + i] += p.counts()[i];
    }
  };
  for (int r = 0; r < 200; ++r) {
    fold(levels_a, sample_one_choice_profile(1024, 1024, ga));
    fold(levels_b, sample_one_choice_profile_conditional(1024, 1024, gb));
  }
  const std::size_t top = std::max(levels_a.size(), levels_b.size());
  levels_a.resize(top, 0);
  levels_b.resize(top, 0);
  const auto chi2 = stats::chi_square_homogeneity(levels_a, levels_b);
  EXPECT_GT(chi2.p_value, 1e-4) << "chi2 = " << chi2.statistic << " df = " << chi2.df;
  const auto ks = stats::ks_counts(levels_a, levels_b);
  EXPECT_GT(ks.p_value, 1e-4) << "D = " << ks.statistic;
}

// Astronomical-n smoke: the whole point of the tier. Must be instant.
TEST(OneChoiceSampler, AstronomicalScaleRuns) {
  rng::Engine gen = engine_for(8);
  const OccupancyProfile p =
      sample_one_choice_profile(1ULL << 40, 1ULL << 40, gen);
  EXPECT_EQ(p.balls(), 1ULL << 40);
  EXPECT_EQ(p.n(), 1ULL << 40);
  // Max load at m = n = 2^40 concentrates on 13..17 (ln n / ln ln n scale);
  // accept a generous band — the golden pins above do the exact checking.
  EXPECT_GE(p.max_load(), 11u);
  EXPECT_LE(p.max_load(), 20u);
}

}  // namespace
}  // namespace bbb::law
