#include "bbb/law/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>

#include "bbb/sim/runner.hpp"

namespace bbb::law {
namespace {

// ---------------------------------------------------------------- spec parsing

TEST(LawSpecParsing, RecognizedSpecs) {
  LawConfig cfg;
  cfg.m = 1 << 10;
  cfg.n = 1 << 10;
  cfg.replicates = 2;

  cfg.protocol_spec = "one-choice";
  EXPECT_EQ(run_law_experiment(cfg).protocol_name, "one-choice");
  EXPECT_TRUE(run_law_experiment(cfg).sampled);

  // Degenerate d-choice mixtures ARE one-choice; the engine samples them
  // exactly instead of settling for the fluid curve.
  cfg.protocol_spec = "greedy[1]";
  EXPECT_EQ(run_law_experiment(cfg).protocol_name, "one-choice");
  cfg.protocol_spec = "mixed[2,0]";
  EXPECT_EQ(run_law_experiment(cfg).protocol_name, "one-choice");
  cfg.protocol_spec = "mixed[1,100]";
  EXPECT_EQ(run_law_experiment(cfg).protocol_name, "one-choice");

  cfg.protocol_spec = "greedy[2]";
  const LawSummary greedy = run_law_experiment(cfg);
  EXPECT_EQ(greedy.protocol_name, "greedy[2]");
  EXPECT_FALSE(greedy.sampled);

  cfg.protocol_spec = "mixed[2,50]";
  const LawSummary mixed = run_law_experiment(cfg);
  EXPECT_EQ(mixed.protocol_name, "mixed[2,50]");
  EXPECT_FALSE(mixed.sampled);
}

TEST(LawSpecParsing, RejectsMalformedSpecs) {
  LawConfig cfg;
  cfg.m = cfg.n = 16;
  for (const char* bad :
       {"greedy", "greedy[0]", "greedy[2", "greedy[x]", "one-choice[2]",
        "mixed[2]", "mixed[0,50]", "mixed[2,101]", "adaptive", "left[2]", ""}) {
    cfg.protocol_spec = bad;
    EXPECT_THROW(run_law_experiment(cfg), std::invalid_argument) << bad;
  }
}

TEST(LawConfigValidation, RejectsBadSizes) {
  LawConfig cfg;
  cfg.m = 16;
  cfg.n = 0;
  EXPECT_THROW(run_law_experiment(cfg), std::invalid_argument);
  cfg.n = 16;
  cfg.replicates = 0;
  EXPECT_THROW(run_law_experiment(cfg), std::invalid_argument);
  // Fluid specs have no replicates to run; 0 is fine there.
  cfg.protocol_spec = "greedy[2]";
  EXPECT_NO_THROW(run_law_experiment(cfg));
}

// ------------------------------------------------------------- sampled summary

TEST(LawEngine, SampledSummaryShape) {
  LawConfig cfg;
  cfg.m = 1 << 12;
  cfg.n = 1 << 12;
  cfg.replicates = 5;
  cfg.seed = 42;
  const LawSummary s = run_law_experiment(cfg);

  EXPECT_EQ(s.max_load.count(), 5u);
  EXPECT_EQ(s.records.size(), 5u);
  // Replicate 0 uses SeedSequence(42).engine(0) — exactly the golden-pin
  // stream of tests/law/one_choice_test.cpp (max load 7 at m = n = 4096).
  EXPECT_DOUBLE_EQ(s.records[0].max_load, 7.0);
  // Aggregated level counts cover n bins per replicate.
  EXPECT_EQ(std::accumulate(s.level_counts.begin(), s.level_counts.end(),
                            std::uint64_t{0}),
            5ull << 12);
  // Balls conservation via the level identity sum j*K_j = m per replicate.
  std::uint64_t balls = 0;
  for (std::size_t j = 0; j < s.level_counts.size(); ++j) balls += j * s.level_counts[j];
  EXPECT_EQ(balls, 5ull << 12);

  LawConfig lean = cfg;
  lean.keep_records = false;
  const LawSummary sl = run_law_experiment(lean);
  EXPECT_TRUE(sl.records.empty());
  EXPECT_EQ(sl.max_load.count(), 5u);
  EXPECT_DOUBLE_EQ(sl.max_load.mean(), s.max_load.mean());
}

// ----------------------------------------------------------------- fluid side

TEST(LawEngine, OneChoiceFluidCurveIsPoisson) {
  LawConfig cfg;
  cfg.m = 1 << 12;
  cfg.n = 1 << 12;
  cfg.replicates = 2;
  const LawSummary s = run_law_experiment(cfg);
  // t = 1: s_1 = P(Poi(1) >= 1) = 1 - 1/e.
  ASSERT_GE(s.fluid_tails.size(), 2u);
  EXPECT_NEAR(s.fluid_tails[0], 1.0 - std::exp(-1.0), 1e-8);
  EXPECT_NEAR(s.fluid_tails[1], 1.0 - 2.0 * std::exp(-1.0), 1e-8);
}

TEST(LawEngine, GreedyTwoAtAstronomicalN) {
  // The double-log pin: greedy[2]'s fluid max load at m = n = 2^40 is 5
  // (n s_5 < 1/2 but n s_4 >> 1; see docs/EXPERIMENTS.md law section).
  LawConfig cfg;
  cfg.protocol_spec = "greedy[2]";
  cfg.m = 1ULL << 40;
  cfg.n = 1ULL << 40;
  const LawSummary s = run_law_experiment(cfg);
  EXPECT_FALSE(s.sampled);
  EXPECT_EQ(s.fluid_max_load, 5u);
  EXPECT_DOUBLE_EQ(s.max_load.mean(), 5.0);
  EXPECT_EQ(s.max_load.count(), 1u);
}

TEST(LawEngine, FluidMinLoadRisesWithDensity) {
  // t = 16 at modest n: the left Poisson tail below some level empties out,
  // so the fluid minimum must sit above 0 (and below the average, 16).
  LawConfig cfg;
  cfg.m = 16ull << 10;
  cfg.n = 1 << 10;
  cfg.replicates = 2;
  const LawSummary s = run_law_experiment(cfg);
  EXPECT_GT(s.fluid_min_load, 0u);
  EXPECT_LT(s.fluid_min_load, 16u);
  EXPECT_GT(s.fluid_max_load, 16u);
}

// --------------------------------------------------------- sim tier dispatch

TEST(SimTier, ParseAndDescribeRoundTrip) {
  EXPECT_EQ(sim::parse_tier("exact"), sim::Tier::kExact);
  EXPECT_EQ(sim::parse_tier("law"), sim::Tier::kLaw);
  EXPECT_THROW((void)sim::parse_tier("LAW"), std::invalid_argument);
  EXPECT_EQ(sim::to_string(sim::Tier::kLaw), "law");

  sim::ExperimentConfig cfg;
  cfg.tier = sim::Tier::kLaw;
  EXPECT_NE(cfg.describe().find("tier=law"), std::string::npos);
  cfg.tier = sim::Tier::kExact;
  EXPECT_EQ(cfg.describe().find("tier="), std::string::npos);
}

TEST(SimTier, LawReplicateMatchesGoldenPin) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "one-choice";
  cfg.m = 4096;
  cfg.n = 4096;
  cfg.seed = 42;
  cfg.tier = sim::Tier::kLaw;
  const sim::ReplicateRecord rec = sim::run_replicate(cfg, 0);
  EXPECT_DOUBLE_EQ(rec.max_load, 7.0);  // the seed-42 golden pin
  EXPECT_DOUBLE_EQ(rec.min_load, 0.0);
  EXPECT_DOUBLE_EQ(rec.probes, 4096.0);  // one-choice probes once per ball
  EXPECT_DOUBLE_EQ(rec.reallocations, 0.0);
  EXPECT_TRUE(rec.completed);
}

TEST(SimTier, LawTierRunsThroughRunExperiment) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "one-choice";
  cfg.m = 1 << 12;
  cfg.n = 1 << 12;
  cfg.replicates = 4;
  cfg.tier = sim::Tier::kLaw;
  const sim::RunSummary s = sim::run_experiment(cfg);
  EXPECT_EQ(s.protocol_name, "one-choice");
  EXPECT_EQ(s.records.size(), 4u);
  EXPECT_GT(s.max_load.mean(), 4.0);
  EXPECT_LT(s.max_load.mean(), 12.0);
  EXPECT_EQ(s.failures, 0u);
}

TEST(SimTier, LawTierRejectsNonOneChoiceSpecs) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "greedy[2]";
  cfg.m = cfg.n = 256;
  cfg.tier = sim::Tier::kLaw;
  EXPECT_THROW((void)sim::run_experiment(cfg), std::invalid_argument);
  EXPECT_THROW((void)sim::run_replicate(cfg, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::law
