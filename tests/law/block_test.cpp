#include "bbb/law/block.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "bbb/rng/distributions.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/hypothesis.hpp"

namespace bbb::law {
namespace {

rng::Engine engine_for(std::uint64_t seed) {
  return rng::SeedSequence(seed).engine(0);
}

TEST(BlockSampler, Validation) {
  rng::Engine gen = engine_for(1);
  EXPECT_THROW(sample_block_loads(10, 0, 1, gen), std::invalid_argument);
  EXPECT_THROW(sample_block_loads(10, 8, 0, gen), std::invalid_argument);
  EXPECT_THROW(sample_block_loads(10, 8, 9, gen), std::invalid_argument);
}

TEST(BlockSampler, FullBlockConservesBalls) {
  // block == n: the recursion must hand out every ball exactly once.
  rng::Engine gen = engine_for(2);
  for (const std::uint64_t n : {1ULL, 2ULL, 3ULL, 7ULL, 64ULL, 1000ULL}) {
    const auto loads = sample_block_loads(12345, n, n, gen);
    EXPECT_EQ(loads.size(), n);
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
              12345u);
  }
}

TEST(BlockSampler, MarginalIsBinomial) {
  // Each bin of the block is marginally Binomial(m, 1/n). Fix one bin and
  // chi-square its samples against the exact pmf.
  rng::Engine gen = engine_for(3);
  const std::uint64_t m = 256, n = 64;
  const rng::BinomialDist reference(m, 1.0 / static_cast<double>(n));
  const auto res = stats::chi_square_fit_discrete(
      [&gen] { return sample_block_loads(256, 64, 4, gen)[2]; },
      [&reference](std::uint64_t k) { return reference.pmf(k); }, 20'000, 12);
  EXPECT_GT(res.p_value, 1e-4) << "chi2 = " << res.statistic;
}

TEST(BlockSampler, AstronomicalNRuns) {
  // A block of 1000 bins out of n = 2^50 — the "zoom lens" use case. The
  // block sees a Binomial(m, 1000/2^50) total: almost always all zeros at
  // m = 2^30, never negative, instant to draw.
  rng::Engine gen = engine_for(4);
  const auto loads = sample_block_loads(1ULL << 30, 1ULL << 50, 1000, gen);
  EXPECT_EQ(loads.size(), 1000u);
  const std::uint64_t total =
      std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
  EXPECT_LE(total, 1ULL << 30);
}

// Golden pins (regression values captured at PR 6, seeds 0/42 per the
// tests/rng convention).
TEST(BlockGoldenPins, Seed0And42) {
  rng::Engine g0 = engine_for(0);
  const std::vector<std::uint64_t> expected0{1, 1, 0, 0, 1, 0, 2, 0};
  EXPECT_EQ(sample_block_loads(1ULL << 40, 1ULL << 40, 8, g0), expected0);

  rng::Engine g42 = engine_for(42);
  const std::vector<std::uint64_t> expected42{1, 1, 1, 0, 3, 1, 0, 2};
  EXPECT_EQ(sample_block_loads(1ULL << 40, 1ULL << 40, 8, g42), expected42);
}

TEST(ProfileFromLoads, FoldsAndValidates) {
  const auto p = profile_from_loads({3, 1, 1, 4, 1});
  EXPECT_EQ(p.n(), 5u);
  EXPECT_EQ(p.balls(), 10u);
  EXPECT_EQ(p.base(), 1u);
  EXPECT_EQ(p.max_load(), 4u);
  EXPECT_EQ(p.count_at(1), 3u);
  EXPECT_EQ(p.count_at(2), 0u);
  EXPECT_EQ(p.count_at(3), 1u);
  EXPECT_EQ(p.count_at(4), 1u);
  EXPECT_THROW(profile_from_loads({}), std::invalid_argument);
  // Levels beyond the profile's 32-bit range are rejected, not truncated.
  EXPECT_THROW(profile_from_loads({1ULL << 33}), std::invalid_argument);
}

TEST(ProfileFromLoads, GoldenPinFullSystem) {
  // block == n gives a third whole-system sampler; pin one draw of it.
  rng::Engine gen = engine_for(0);
  const auto p = profile_from_loads(sample_block_loads(10000, 64, 64, gen));
  EXPECT_EQ(p.base(), 120u);
  EXPECT_EQ(p.max_load(), 184u);
  EXPECT_NEAR(p.psi(), 12134.0, 1e-9);
  EXPECT_NEAR(p.log_phi(), 4.171232156, 1e-8);
}

}  // namespace
}  // namespace bbb::law
