/// The law tier's certificate of correctness: statistical cross-validation
/// of the Poissonize-and-correct profile sampler against the exact
/// streaming core, plus the fluid d-choice curves against exact greedy[2]
/// runs.
///
/// Pre-registered design (fixed before looking at any outcome; the seeds
/// below are frozen, so each assertion is deterministic — it either passes
/// forever or flags a real regression):
///
///   * Grid: m = n, n in {2^16, 2^20, 2^24}, 32 independent seeds per
///     side per scale. The default (tier-1) run keeps the n = 2^16 cell
///     so the suite stays in the seconds range; BBB_STAT_FULL=1 in the
///     environment (the `stat`-labeled Release CI job: ctest -L stat)
///     runs all three scales.
///   * Law side: master seed 101. Exact side: master seed 202. Replicate
///     r uses SeedSequence(master).engine(r) — the repo-wide contract.
///   * Tests, each at significance alpha = 1e-4:
///       1. chi-square homogeneity on level counts aggregated over seeds
///          (law row vs exact row);
///       2. two-sample KS on the same aggregated counts;
///       3. two-sample KS on the 32 per-seed max loads;
///       4. z-test at 5 sigma on the per-seed psi means.
///     With <= 4 tests x 3 scales the family-wise false-alarm budget at
///     fresh seeds would be ~1e-3; at the frozen seeds it is 0 or 1.
///   * Fluid check: exact greedy[2] level counts aggregated over 16 seeds
///     vs theory::fluid_tail_curve, per level k with s_k >= 1e-5, inside
///     6 sigma sampling bands plus an O(1/n) mean-field drift allowance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/law/one_choice.hpp"
#include "bbb/law/profile.hpp"
#include "bbb/rng/distributions.hpp"
#include "bbb/rng/streams.hpp"
#include "bbb/stats/gof.hpp"
#include "bbb/stats/hypothesis.hpp"
#include "bbb/stats/running_stats.hpp"
#include "bbb/theory/tails.hpp"

namespace bbb::law {
namespace {

constexpr double kAlpha = 1e-4;           // pre-registered significance
constexpr std::uint64_t kLawSeed = 101;   // pre-registered master seeds
constexpr std::uint64_t kExactSeed = 202;
constexpr std::uint32_t kReplicates = 32;

bool full_grid() {
  const char* flag = std::getenv("BBB_STAT_FULL");
  return flag != nullptr && std::string(flag) != "0";
}

std::vector<std::uint64_t> scales() {
  if (full_grid()) return {1ULL << 16, 1ULL << 20, 1ULL << 24};
  return {1ULL << 16};
}

/// One exact-core replicate: stream m one-choice (or greedy[2]) placements
/// over a compact BinState and return the level counts 0..max_load.
std::vector<std::uint64_t> exact_replicate_levels(const std::string& spec,
                                                  std::uint64_t m, std::uint32_t n,
                                                  std::uint64_t seed,
                                                  std::uint32_t rep) {
  const auto alloc =
      core::make_streaming_allocator(spec, n, m, core::StateLayout::kCompact);
  rng::Engine gen = rng::SeedSequence(seed).engine(rep);
  alloc->set_engine_exclusive(true);
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc->place(gen);
  alloc->finalize(gen);
  const core::BinState& state = alloc->state();
  std::vector<std::uint64_t> out(state.max_load() + 1, 0);
  for (std::uint32_t l = 0; l <= state.max_load(); ++l) {
    out[l] = state.level_counts()[l];
  }
  return out;
}

void fold_levels(std::vector<std::uint64_t>& into,
                 const std::vector<std::uint64_t>& levels) {
  if (into.size() < levels.size()) into.resize(levels.size(), 0);
  for (std::size_t j = 0; j < levels.size(); ++j) into[j] += levels[j];
}

struct Side {
  std::vector<std::uint64_t> levels;  // aggregated over replicates
  std::vector<double> max_loads;      // one per replicate
  stats::RunningStats psi;
};

Side law_side(std::uint64_t n) {
  Side side;
  for (std::uint32_t r = 0; r < kReplicates; ++r) {
    rng::Engine gen = rng::SeedSequence(kLawSeed).engine(r);
    const OccupancyProfile p = sample_one_choice_profile(n, n, gen);
    std::vector<std::uint64_t> levels(p.base() + p.counts().size(), 0);
    for (std::size_t i = 0; i < p.counts().size(); ++i) {
      levels[p.base() + i] = p.counts()[i];
    }
    fold_levels(side.levels, levels);
    side.max_loads.push_back(p.max_load());
    side.psi.add(p.psi());
  }
  return side;
}

Side exact_side(std::uint64_t n) {
  Side side;
  for (std::uint32_t r = 0; r < kReplicates; ++r) {
    const auto levels = exact_replicate_levels(
        "one-choice", n, static_cast<std::uint32_t>(n), kExactSeed, r);
    fold_levels(side.levels, levels);
    side.max_loads.push_back(static_cast<double>(levels.size()) - 1.0);
    // psi from level counts: sum_j K_j (j - 1)^2 at m = n (average load 1).
    double psi = 0.0;
    for (std::size_t j = 0; j < levels.size(); ++j) {
      const double dev = static_cast<double>(j) - 1.0;
      psi += static_cast<double>(levels[j]) * dev * dev;
    }
    side.psi.add(psi);
  }
  return side;
}

TEST(CrossValidation, LawMatchesExactCore) {
  for (const std::uint64_t n : scales()) {
    SCOPED_TRACE("n = " + std::to_string(n));
    Side law = law_side(n);
    Side exact = exact_side(n);

    const std::size_t top = std::max(law.levels.size(), exact.levels.size());
    law.levels.resize(top, 0);
    exact.levels.resize(top, 0);

    // (1) chi-square homogeneity on aggregated level counts.
    const auto chi2 = stats::chi_square_homogeneity(law.levels, exact.levels);
    EXPECT_GT(chi2.p_value, kAlpha)
        << "chi2 = " << chi2.statistic << " df = " << chi2.df;

    // (2) KS on the same counts (conservative under ties; a failure here
    // with a chi-square pass would indicate a CDF-shape disagreement).
    const auto ks_lvl = stats::ks_counts(law.levels, exact.levels);
    EXPECT_GT(ks_lvl.p_value, kAlpha) << "D = " << ks_lvl.statistic;

    // (3) KS on per-seed max loads.
    const auto ks_max = stats::ks_two_sample(law.max_loads, exact.max_loads);
    EXPECT_GT(ks_max.p_value, kAlpha) << "D = " << ks_max.statistic;
    // The distance itself is also bounded (gof.ks_statistic agrees with
    // ks_two_sample's D by construction — asserted here so the two
    // entry points cannot drift apart).
    EXPECT_DOUBLE_EQ(stats::ks_statistic(law.max_loads, exact.max_loads),
                     ks_max.statistic);

    // (4) psi means within 5 combined standard errors.
    const double se = std::sqrt(law.psi.stderr_mean() * law.psi.stderr_mean() +
                                exact.psi.stderr_mean() * exact.psi.stderr_mean());
    EXPECT_NEAR(law.psi.mean(), exact.psi.mean(), 5.0 * se + 1e-9)
        << "law " << law.psi.mean() << " exact " << exact.psi.mean();
  }
}

// The d-choice side of the tentpole: exact greedy[2] tail fractions vs the
// fluid ODE, inside 6-sigma sampling bands plus an O(1/n) drift allowance
// (the mean-field limit has finite-n bias of that order).
TEST(CrossValidation, FluidCurveMatchesExactGreedyTwo) {
  const std::uint64_t n = full_grid() ? (1ULL << 20) : (1ULL << 16);
  const std::uint32_t reps = 16;
  std::vector<std::uint64_t> levels;
  for (std::uint32_t r = 0; r < reps; ++r) {
    fold_levels(levels, exact_replicate_levels(
                            "greedy[2]", n, static_cast<std::uint32_t>(n),
                            kExactSeed, r));
  }
  const std::vector<double> fluid = theory::fluid_tail_curve(1.0, 2, 1.0, 16);

  const double total = static_cast<double>(n) * reps;
  std::uint64_t at_least = 0;
  std::vector<double> empirical(levels.size() + 1, 0.0);  // s_k, k = level
  for (std::size_t k = levels.size(); k-- > 0;) {
    at_least += levels[k];
    empirical[k] = static_cast<double>(at_least) / total;
  }

  int checked = 0;
  for (std::size_t k = 1; k < fluid.size() && k < empirical.size(); ++k) {
    const double s = fluid[k - 1];
    if (s < 1e-5) break;
    const double band =
        6.0 * std::sqrt(s / total) + 200.0 / static_cast<double>(n);
    EXPECT_NEAR(empirical[k], s, band) << "level " << k;
    ++checked;
  }
  EXPECT_GE(checked, 3) << "fluid curve decayed before any level was checked";
}

// And the analytic anchor: at d = 1 the fluid curve is the Poisson tail,
// so the law sampler, the fluid ODE, and rng::PoissonDist::sf must all
// tell one story. Aggregated sampled fractions vs sf(k), same banding.
TEST(CrossValidation, OneChoiceTailMatchesPoissonSf) {
  const std::uint64_t n = 1ULL << 16;
  const std::uint32_t reps = kReplicates;
  std::vector<std::uint64_t> levels;
  for (std::uint32_t r = 0; r < reps; ++r) {
    rng::Engine gen = rng::SeedSequence(kLawSeed).engine(r);
    const OccupancyProfile p = sample_one_choice_profile(n, n, gen);
    std::vector<std::uint64_t> lv(p.base() + p.counts().size(), 0);
    for (std::size_t i = 0; i < p.counts().size(); ++i) {
      lv[p.base() + i] = p.counts()[i];
    }
    fold_levels(levels, lv);
  }
  const rng::PoissonDist poisson(1.0);
  const double total = static_cast<double>(n) * reps;
  std::uint64_t at_least = 0;
  std::vector<double> empirical(levels.size() + 1, 0.0);
  for (std::size_t k = levels.size(); k-- > 0;) {
    at_least += levels[k];
    empirical[k] = static_cast<double>(at_least) / total;
  }
  for (std::uint32_t k = 1; k < empirical.size(); ++k) {
    const double s = poisson.sf(k);
    if (s < 1e-5) break;
    // Multinomial vs Poisson differ at O(1/n) per level on top of the
    // sampling noise.
    const double band =
        6.0 * std::sqrt(s / total) + 200.0 / static_cast<double>(n);
    EXPECT_NEAR(empirical[k], s, band) << "level " << k;
  }
}

}  // namespace
}  // namespace bbb::law
