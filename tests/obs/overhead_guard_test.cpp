#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "bbb/core/bin_state.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/rule.hpp"
#include "bbb/obs/harvest.hpp"
#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb {
namespace {

/// The "zero-overhead-when-off" contract, enforced at the source: counting
/// lives in plain integers the hot loop already maintained (probes) or in
/// code that is already cold (lookahead refills, side-table crossings),
/// and harvesting reads them ONCE, after the loop. There is no obs type,
/// no atomic, no branch on a config struct anywhere in the per-ball path —
/// so the instrumented run below executes the byte-identical loop and the
/// timing guard only has to reject gross regressions.

struct StreamOutcome {
  std::uint32_t max_load = 0;
  std::uint64_t probes = 0;
  double seconds = 0.0;
  obs::CoreCounters counters;
};

StreamOutcome run_stream(bool harvest_after, std::uint32_t n, std::uint64_t m) {
  rng::Engine gen(42);
  core::StreamingAllocator alloc(core::BinState(n, core::StateLayout::kWide),
                                 core::make_rule("greedy[2]", n, m));
  alloc.set_engine_exclusive(true);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < m; ++i) (void)alloc.place(gen);
  const auto t1 = std::chrono::steady_clock::now();
  StreamOutcome out;
  out.max_load = alloc.state().max_load();
  out.probes = alloc.rule().probes();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (harvest_after) out.counters = obs::harvest(alloc);
  return out;
}

TEST(OverheadGuard, HarvestNeverChangesPlacements) {
  // Same seed, same loop; one run harvests afterwards, one never touches
  // obs. Identical outcomes, and the harvest agrees with the rule's own
  // accounting.
  constexpr std::uint32_t n = 1u << 14;
  constexpr std::uint64_t m = 2ULL << 14;
  const StreamOutcome plain = run_stream(false, n, m);
  const StreamOutcome harvested = run_stream(true, n, m);
  EXPECT_EQ(plain.max_load, harvested.max_load);
  EXPECT_EQ(plain.probes, harvested.probes);
  EXPECT_EQ(harvested.counters.probes, harvested.probes);
  EXPECT_EQ(harvested.counters.balls_placed, m);
  EXPECT_EQ(plain.counters, obs::CoreCounters{});
}

#ifdef NDEBUG
TEST(OverheadGuard, HarvestedStreamWithinTolerance) {
  // Release-only wall-clock gate on the greedy[2] streaming loop — the
  // bench case the <=1% CI guard pins tighter (see .github/workflows).
  // In-process the bound stays generous (CI machines are noisy; the
  // real contract is the byte-identical loop asserted above): the
  // harvested run may not cost 1.5x the plain run.
  constexpr std::uint32_t n = 1u << 18;
  constexpr std::uint64_t m = 2ULL << 18;
  (void)run_stream(false, n, m);  // warm caches and the branch predictor
  double plain = 1e300;
  double harvested = 1e300;
  // Best-of-3 on both sides filters scheduler noise.
  for (int i = 0; i < 3; ++i) {
    plain = std::min(plain, run_stream(false, n, m).seconds);
    harvested = std::min(harvested, run_stream(true, n, m).seconds);
  }
  EXPECT_LT(harvested, plain * 1.5 + 1e-3)
      << "plain " << plain << "s vs harvested " << harvested << "s";
}
#endif

}  // namespace
}  // namespace bbb
