#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/dyn/engine.hpp"
#include "bbb/law/engine.hpp"
#include "bbb/obs/obs.hpp"
#include "bbb/obs/trace_sink.hpp"
#include "bbb/sim/runner.hpp"

namespace bbb {
namespace {

/// The headline contract of the obs layer: turning instrumentation on —
/// any level, sink or not — NEVER changes a placement. Observation reads
/// clocks and counters, not rng::Engine, so every replicate statistic is
/// bit-for-bit the one an uninstrumented run produces. These tests run
/// each tier twice, off vs full, and compare the raw records exactly
/// (EXPECT_EQ on doubles — not NEAR; identical means identical).

sim::RunSummary run_sim(core::StateLayout layout, obs::ObsLevel level) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "greedy[2]";
  cfg.m = 20'000;
  cfg.n = 2'048;
  cfg.replicates = 3;
  cfg.seed = 42;
  cfg.layout = layout;
  cfg.obs.level = level;
  return sim::run_experiment(cfg);
}

void expect_identical(const sim::RunSummary& off, const sim::RunSummary& full) {
  ASSERT_EQ(off.records.size(), full.records.size());
  for (std::size_t r = 0; r < off.records.size(); ++r) {
    const sim::ReplicateRecord& a = off.records[r];
    const sim::ReplicateRecord& b = full.records[r];
    EXPECT_EQ(a.probes, b.probes) << "replicate " << r;
    EXPECT_EQ(a.max_load, b.max_load) << "replicate " << r;
    EXPECT_EQ(a.min_load, b.min_load) << "replicate " << r;
    EXPECT_EQ(a.gap, b.gap) << "replicate " << r;
    EXPECT_EQ(a.psi, b.psi) << "replicate " << r;
    EXPECT_EQ(a.log_phi, b.log_phi) << "replicate " << r;
  }
}

TEST(ObsIntegration, SimWidePlacementsBitForBitOffVsFull) {
  expect_identical(run_sim(core::StateLayout::kWide, obs::ObsLevel::kOff),
                   run_sim(core::StateLayout::kWide, obs::ObsLevel::kFull));
}

TEST(ObsIntegration, SimCompactPlacementsBitForBitOffVsFull) {
  expect_identical(run_sim(core::StateLayout::kCompact, obs::ObsLevel::kOff),
                   run_sim(core::StateLayout::kCompact, obs::ObsLevel::kFull));
}

TEST(ObsIntegration, DynReplicatesBitForBitOffVsFull) {
  dyn::DynConfig cfg;
  cfg.allocator_spec = "greedy[2]";
  cfg.workload_spec = "supermarket[90]";
  cfg.n = 512;
  cfg.warmup = 2'048;
  cfg.events = 4'096;
  cfg.stride = 512;
  cfg.replicates = 2;
  cfg.seed = 42;
  par::ThreadPool pool(2);

  cfg.obs.level = obs::ObsLevel::kOff;
  const dyn::DynSummary off = dyn::run_dynamic(cfg, pool);
  cfg.obs.level = obs::ObsLevel::kFull;
  const dyn::DynSummary full = dyn::run_dynamic(cfg, pool);

  ASSERT_EQ(off.replicates.size(), full.replicates.size());
  for (std::size_t r = 0; r < off.replicates.size(); ++r) {
    const dyn::DynReplicate& a = off.replicates[r];
    const dyn::DynReplicate& b = full.replicates[r];
    EXPECT_EQ(a.mean_balls, b.mean_balls) << "replicate " << r;
    EXPECT_EQ(a.mean_psi, b.mean_psi) << "replicate " << r;
    EXPECT_EQ(a.mean_gap, b.mean_gap) << "replicate " << r;
    EXPECT_EQ(a.peak_max, b.peak_max) << "replicate " << r;
    EXPECT_EQ(a.probes_per_ball, b.probes_per_ball) << "replicate " << r;
    EXPECT_EQ(a.dropped_departures, b.dropped_departures) << "replicate " << r;
    EXPECT_EQ(a.tail, b.tail) << "replicate " << r;
  }
  // Full level actually measured something the off run did not.
  EXPECT_TRUE(off.obs.empty());
  EXPECT_GT(full.replicates.front().place_ns.count(), 0u);
  EXPECT_EQ(full.obs.counter_value("dyn.event.dropped_departures"), 0u);
}

TEST(ObsIntegration, LawSamplesBitForBitOffVsFull) {
  law::LawConfig cfg;
  cfg.protocol_spec = "one-choice";
  cfg.m = 1u << 16;
  cfg.n = 1u << 16;
  cfg.replicates = 3;
  cfg.seed = 42;

  cfg.obs.level = obs::ObsLevel::kOff;
  const law::LawSummary off = law::run_law_experiment(cfg);
  cfg.obs.level = obs::ObsLevel::kFull;
  const law::LawSummary full = law::run_law_experiment(cfg);

  EXPECT_EQ(off.max_load.mean(), full.max_load.mean());
  EXPECT_EQ(off.gap.mean(), full.gap.mean());
  EXPECT_EQ(off.level_counts, full.level_counts);
  EXPECT_TRUE(off.obs.empty());
  const obs::SnapshotEntry* wall = full.obs.find("law.replicate.wall_ns");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->histogram.count(), cfg.replicates);
}

TEST(ObsIntegration, OffLevelLeavesNoSnapshot) {
  const sim::RunSummary off = run_sim(core::StateLayout::kWide, obs::ObsLevel::kOff);
  EXPECT_TRUE(off.obs.empty());
  EXPECT_EQ(off.records.front().wall_ns, 0u);
  EXPECT_EQ(off.records.front().counters, obs::CoreCounters{});
}

TEST(ObsIntegration, EveryRegistryFamilyAccountsProbesAndBalls) {
  // The per-protocol accounting the paper's cost claims rest on: every one
  // of the registry's protocol families reports its probe count and its
  // placed balls through the same two counters. One replicate per family.
  // protocol_specs() lists parameterized templates; instantiate each with
  // small concrete arguments — and fail loudly when a new family appears
  // without a row here.
  const std::map<std::string, std::string> concrete{
      {"one-choice", "one-choice"},
      {"greedy[d]", "greedy[2]"},
      {"left[d]", "left[2]"},
      {"memory[d,k]", "memory[1,1]"},
      {"threshold", "threshold"},
      {"threshold[slack]", "threshold[1]"},
      {"doubling-threshold[guess]", "doubling-threshold[4]"},
      {"adaptive", "adaptive"},
      {"adaptive[slack]", "adaptive[1]"},
      {"adaptive-net", "adaptive-net"},
      {"adaptive-net[slack]", "adaptive-net[1]"},
      {"adaptive-total", "adaptive-total"},
      {"adaptive-total[slack]", "adaptive-total[1]"},
      {"stale-adaptive[delta]", "stale-adaptive[8]"},
      {"skewed-adaptive[s*100]", "skewed-adaptive[50]"},
      {"batched[capacity]", "batched[64]"},
      {"self-balancing", "self-balancing"},
      // Half-load cuckoo (capacity 2 * m): at load factor 1.0 the kick
      // budget can run out and park arrivals in the stash, which is
      // accounted as placed < m.
      {"cuckoo[d,k]", "cuckoo[2,16]"},
      {"capacities=c0,c1,...:spec", "capacities=1,2:greedy[2]"},
      {"shards[t]:spec", "shards[2]:greedy[2]"},
  };
  std::vector<std::string> specs;
  for (const std::string& tmpl : core::protocol_specs()) {
    ASSERT_TRUE(concrete.count(tmpl) == 1)
        << "registry family '" << tmpl << "' has no concrete instance here";
    specs.push_back(concrete.at(tmpl));
  }
  ASSERT_GE(specs.size(), 14u);
  for (const std::string& spec : specs) {
    sim::ExperimentConfig cfg;
    cfg.protocol_spec = spec;
    cfg.m = 4'096;
    cfg.n = 512;
    cfg.replicates = 1;
    cfg.seed = 42;
    cfg.obs.level = obs::ObsLevel::kCounters;
    const sim::RunSummary s = sim::run_experiment(cfg);
    EXPECT_EQ(s.obs.counter_value("core.ball.placed"), cfg.m) << spec;
    EXPECT_GT(s.obs.counter_value("core.probe.count"), 0u) << spec;
    const obs::SnapshotEntry* wall = s.obs.find("sim.replicate.wall_ns");
    ASSERT_NE(wall, nullptr) << spec;
    EXPECT_EQ(wall->histogram.count(), 1u) << spec;
  }
}

TEST(ObsIntegration, CompactTierReportsLookaheadAndSideTableTraffic) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "greedy[2]";
  cfg.m = 1u << 16;
  cfg.n = 1u << 12;
  cfg.replicates = 1;
  cfg.seed = 42;
  cfg.layout = core::StateLayout::kCompact;
  cfg.obs.level = obs::ObsLevel::kCounters;
  const sim::RunSummary s = sim::run_experiment(cfg);
  // The streaming path consumes pre-drawn probe words in blocks, so at
  // m = 2^16 the lookahead must have refilled at least once.
  EXPECT_GT(s.obs.counter_value("core.lookahead.refills"), 0u);
  // m/n = 16 < 255: no bin can cross the 8-bit lane limit here, so the
  // compact side-table counters must not appear (fold_into registers a
  // machinery counter only when it fired).
  EXPECT_EQ(s.obs.find("state.compact.promotions"), nullptr);
}

TEST(ObsIntegration, TraceFileIsWellFormedEndToEnd) {
  const std::string path = ::testing::TempDir() + "obs_integration_trace.jsonl";
  {
    sim::ExperimentConfig cfg;
    cfg.protocol_spec = "greedy[2]";
    cfg.m = 10'000;
    cfg.n = 1'024;
    cfg.replicates = 2;
    cfg.seed = 42;
    cfg.obs.level = obs::ObsLevel::kFull;
    cfg.obs.sink = obs::TraceSink::open(path);
    (void)sim::run_experiment(cfg);
    // run_start + one replicate line each + summary.
    EXPECT_EQ(cfg.obs.sink->records_written(), 4u);
  }
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines.front().find("\"event\":\"run_start\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"replicate\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"event\":\"summary\""), std::string::npos);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{') << "line " << i;
    EXPECT_EQ(lines[i].back(), '}') << "line " << i;
    EXPECT_NE(lines[i].find("\"schema\":\"bbb-obs-v1\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbb
