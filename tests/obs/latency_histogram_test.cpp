#include "bbb/obs/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "bbb/rng/engine.hpp"
#include "bbb/rng/xoshiro256.hpp"
#include "bbb/stats/quantile.hpp"

namespace bbb::obs {
namespace {

/// The histogram's contract: quantile(q) is the upper edge of the bucket
/// holding the ceil(q * count)-th smallest observation, so it can exceed
/// that order statistic by at most one bucket width — a relative
/// 2^{1-kSubBits} above the exact range, zero below it.
std::uint64_t allowed_slack(std::uint64_t order_stat) {
  if (order_stat < LatencyHistogram::kSubBuckets) return 0;
  return order_stat >> (LatencyHistogram::kSubBits - 1);
}

/// Rank-based order statistic matching the histogram's ceil-rank rule.
std::uint64_t order_statistic(std::vector<std::uint64_t> data, double q) {
  std::sort(data.begin(), data.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(data.size())));
  return data[std::min(std::max<std::size_t>(rank, 1), data.size()) - 1];
}

TEST(LatencyHistogram, EmptyState) {
  const LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below kSubBuckets own a bucket each: every quantile is exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), LatencyHistogram::kSubBuckets - 1);
  // Rank ceil(0.5 * 32) = 16 -> the 16th smallest value, which is 15.
  EXPECT_EQ(h.p50(), 15u);
}

TEST(LatencyHistogram, BucketEdgesRoundTrip) {
  // Every probe value must land in a bucket whose [lower, upper] range
  // contains it, and indices must be monotone in the value.
  const std::uint64_t probes[] = {
      0,        1,
      31,       32,
      33,       63,
      64,       100,
      255,      256,
      1000,     4096,
      65535,    1u << 20,
      (1ull << 33) + 12345, 1ull << 62,
      std::numeric_limits<std::uint64_t>::max()};
  std::uint32_t prev_index = 0;
  for (const std::uint64_t v : probes) {
    const std::uint32_t i = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower(i), v) << "value " << v;
    EXPECT_GE(LatencyHistogram::bucket_upper(i), v) << "value " << v;
    EXPECT_GE(i, prev_index) << "value " << v;
    prev_index = i;
  }
}

TEST(LatencyHistogram, GoldenQuantilesVsExact) {
  // Log-uniform latencies spanning six orders of magnitude — the shape
  // this histogram exists for. Every extracted quantile must sit within
  // one bucket width above the matching rank statistic and agree with
  // stats::exact_quantile to the documented relative error.
  rng::Engine gen(7);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t magnitude = 1ull << (rng::uniform_below(gen, 20));
    const std::uint64_t v = magnitude + rng::uniform_below(gen, magnitude);
    values.push_back(v);
    h.record(v);
  }
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t stat = order_statistic(values, q);
    const std::uint64_t got = h.quantile(q);
    EXPECT_GE(got, stat) << "q=" << q;
    EXPECT_LE(got, stat + allowed_slack(stat)) << "q=" << q;

    // Cross-check against the library's exact interpolating quantile:
    // within one bucket width of it (interpolation can land anywhere
    // between adjacent order statistics).
    std::vector<double> as_double(values.begin(), values.end());
    const double exact = stats::exact_quantile(std::move(as_double), q);
    const double width = std::max(
        1.0, exact / static_cast<double>(1u << (LatencyHistogram::kSubBits - 1)));
    EXPECT_NEAR(static_cast<double>(got), exact, width + 1.0) << "q=" << q;
  }
}

TEST(LatencyHistogram, QuantileClampsToObservedRange) {
  LatencyHistogram h;
  h.record(1000);
  h.record(1003);
  // Both values share a bucket whose upper edge exceeds 1003; the exact
  // max must win.
  EXPECT_EQ(h.quantile(1.0), 1003u);
  EXPECT_EQ(h.quantile(0.0), 1000u);
  EXPECT_LE(h.p50(), 1003u);
  EXPECT_GE(h.p50(), 1000u);
}

TEST(LatencyHistogram, RecordNMatchesRepeatedRecord) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record_n(777, 1000);
  for (int i = 0; i < 1000; ++i) b.record(777);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.sum(), 777000u);
}

TEST(LatencyHistogram, MergeIsLossless) {
  rng::Engine gen(11);
  LatencyHistogram whole;
  LatencyHistogram first;
  LatencyHistogram second;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng::uniform_below(gen, 1u << 24);
    whole.record(v);
    (i % 2 == 0 ? first : second).record(v);
  }
  first.merge(second);
  EXPECT_EQ(first, whole);
}

TEST(LatencyHistogram, MergeCommutesAndAssociates) {
  rng::Engine gen(13);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (int i = 0; i < 3000; ++i) {
    a.record(rng::uniform_below(gen, 1u << 10));
    b.record((1ull << 30) + rng::uniform_below(gen, 1u << 30));
    c.record(rng::uniform_below(gen, 1u << 20));
  }
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  LatencyHistogram ab_c = ab;
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.record(42);
  h.record(9001);
  const LatencyHistogram before = h;
  h.merge(LatencyHistogram{});
  EXPECT_EQ(h, before);

  LatencyHistogram empty;
  empty.merge(before);
  EXPECT_EQ(empty, before);
}

TEST(LatencyHistogram, TopOctaveAndMaxValue) {
  LatencyHistogram h;
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  h.record(top);
  h.record(top - 1);
  h.record(1ull << 63);
  EXPECT_EQ(h.max(), top);
  EXPECT_EQ(h.min(), 1ull << 63);
  EXPECT_EQ(h.quantile(1.0), top);
  // The top bucket's upper edge saturates at uint64 max instead of
  // wrapping past it.
  const std::uint32_t i = LatencyHistogram::bucket_index(top);
  EXPECT_EQ(LatencyHistogram::bucket_upper(i), top);
}

TEST(LatencyHistogram, SumSaturatesInsteadOfWrapping) {
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  LatencyHistogram h;
  h.record(huge);
  EXPECT_FALSE(h.saturated());
  EXPECT_EQ(h.sum(), huge);
  h.record(huge);
  EXPECT_TRUE(h.saturated());
  EXPECT_EQ(h.sum(), huge);  // pinned, not wrapped
  EXPECT_EQ(h.count(), 2u);
  // The mean degrades to a lower bound but stays finite and positive.
  EXPECT_GT(h.mean(), 0.0);

  // record_n with a count that overflows the multiplication saturates too.
  LatencyHistogram m;
  m.record_n(1ull << 40, 1ull << 40);
  EXPECT_TRUE(m.saturated());
  EXPECT_EQ(m.sum(), huge);
  EXPECT_EQ(m.count(), 1ull << 40);
}

TEST(LatencyHistogram, QuantileArgumentIsClamped) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(1.5), h.quantile(1.0));
  EXPECT_EQ(h.quantile(1.0), 100u);
}

}  // namespace
}  // namespace bbb::obs
