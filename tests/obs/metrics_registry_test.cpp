#include "bbb/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace bbb::obs {
namespace {

TEST(Counter, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, OwnsItsCacheLine) {
  // The padding contract behind "no false sharing": one atom per line.
  static_assert(alignof(Counter) == 64);
  static_assert(alignof(Gauge) == 64);
}

TEST(Handles, NullHandlesAreNoOps) {
  CounterHandle c;
  GaugeHandle g;
  HistogramHandle h;
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(h.enabled());
  // Must be callable without any backing object — the disabled hot path.
  c.add(5);
  c.increment();
  g.set(1.5);
  h.record(100);
}

TEST(Handles, BoundHandlesForward) {
  Counter counter;
  Gauge gauge;
  LatencyHistogram histogram;
  CounterHandle c(&counter);
  GaugeHandle g(&gauge);
  HistogramHandle h(&histogram);
  EXPECT_TRUE(c.enabled());
  c.add(3);
  g.set(2.25);
  h.record(64);
  EXPECT_EQ(counter.value(), 3u);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.25);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(MetricsRegistry, FindOrCreateSharesTheMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("core.probe.count");
  Counter& b = reg.counter("core.probe.count");
  EXPECT_EQ(&a, &b);
  a.add(10);
  EXPECT_EQ(reg.counter("core.probe.count").value(), 10u);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAcrossKinds) {
  MetricsRegistry reg;
  reg.add_counter("z.counter", 1);
  reg.set_gauge("a.gauge", 0.5);
  reg.histogram("m.hist").record(100);
  reg.add_counter("b.counter", 2);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 4u);
  std::vector<std::string> names;
  for (const auto& e : snap.entries) names.push_back(e.name);
  const std::vector<std::string> want{"a.gauge", "b.counter", "m.hist", "z.counter"};
  EXPECT_EQ(names, want);
}

TEST(MetricsRegistry, SnapshotCopiesState) {
  MetricsRegistry reg;
  reg.add_counter("c", 5);
  const Snapshot snap = reg.snapshot();
  reg.add_counter("c", 100);  // must not retro-change the snapshot
  EXPECT_EQ(snap.counter_value("c"), 5u);
  EXPECT_EQ(reg.snapshot().counter_value("c"), 105u);
}

TEST(Snapshot, FindAndCounterValue) {
  MetricsRegistry reg;
  reg.add_counter("present", 7);
  reg.set_gauge("g", 1.25);
  const Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("present"), nullptr);
  EXPECT_EQ(snap.find("present")->kind, SnapshotEntry::Kind::kCounter);
  EXPECT_EQ(snap.find("absent"), nullptr);
  EXPECT_EQ(snap.counter_value("present"), 7u);
  EXPECT_EQ(snap.counter_value("absent"), 0u);
  ASSERT_NE(snap.find("g"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("g")->gauge, 1.25);
}

TEST(Snapshot, MergeAddsCountersTakesGaugesMergesHistograms) {
  MetricsRegistry first;
  first.add_counter("shared.counter", 10);
  first.add_counter("only.first", 1);
  first.set_gauge("shared.gauge", 1.0);
  first.histogram("shared.hist").record(100);

  MetricsRegistry second;
  second.add_counter("shared.counter", 32);
  second.add_counter("only.second", 2);
  second.set_gauge("shared.gauge", 2.0);
  second.histogram("shared.hist").record(200);

  Snapshot merged = first.snapshot();
  merged.merge(second.snapshot());

  EXPECT_EQ(merged.counter_value("shared.counter"), 42u);
  EXPECT_EQ(merged.counter_value("only.first"), 1u);
  EXPECT_EQ(merged.counter_value("only.second"), 2u);
  // Gauges: the other snapshot is the later sample, last write wins.
  EXPECT_DOUBLE_EQ(merged.find("shared.gauge")->gauge, 2.0);
  const SnapshotEntry* hist = merged.find("shared.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.count(), 2u);
  EXPECT_EQ(hist->histogram.min(), 100u);
  EXPECT_EQ(hist->histogram.max(), 200u);

  // The union stays name-sorted (Snapshot::find binary-searches).
  for (std::size_t i = 1; i < merged.entries.size(); ++i) {
    EXPECT_LT(merged.entries[i - 1].name, merged.entries[i].name);
  }
}

TEST(Snapshot, MergeWithEmptyIsIdentity) {
  MetricsRegistry reg;
  reg.add_counter("c", 3);
  Snapshot snap = reg.snapshot();
  snap.merge(Snapshot{});
  EXPECT_EQ(snap.counter_value("c"), 3u);

  Snapshot empty;
  empty.merge(snap);
  EXPECT_EQ(empty.counter_value("c"), 3u);
}

TEST(MetricsRegistry, ConcurrentCountingIsExact) {
  // Obtain once, update lock-free from many threads: totals exact.
  MetricsRegistry reg;
  Counter& counter = reg.counter("hot");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ReferencesSurviveLaterInsertions) {
  MetricsRegistry reg;
  Counter& first = reg.counter("aa");
  // Flood the map so any rebalancing would move nodes if it could.
  for (int i = 0; i < 256; ++i) reg.add_counter("fill." + std::to_string(i), 1);
  first.add(9);
  EXPECT_EQ(reg.snapshot().counter_value("aa"), 9u);
}

}  // namespace
}  // namespace bbb::obs
