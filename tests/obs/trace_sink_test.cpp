#include "bbb/obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bbb/obs/metrics.hpp"

namespace bbb::obs {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

TEST(JsonLine, EnvelopeAndFieldOrder) {
  JsonLine line("run_start", "sim");
  line.field("m", std::uint64_t{65536});
  EXPECT_EQ(line.finish(),
            R"({"schema":"bbb-obs-v1","event":"run_start","tool":"sim","m":65536})");
}

TEST(JsonLine, AllScalarTypes) {
  JsonLine line("replicate", "t");
  line.field("s", "text")
      .field("u", std::uint64_t{18446744073709551615ull})
      .field("i", std::int64_t{-7})
      .field("d", 0.5)
      .field("b", true)
      .field("f", false);
  const std::string out = line.finish();
  EXPECT_NE(out.find(R"("s":"text")"), std::string::npos);
  EXPECT_NE(out.find(R"("u":18446744073709551615)"), std::string::npos);
  EXPECT_NE(out.find(R"("i":-7)"), std::string::npos);
  EXPECT_NE(out.find(R"("d":0.5)"), std::string::npos);
  EXPECT_NE(out.find(R"("b":true)"), std::string::npos);
  EXPECT_NE(out.find(R"("f":false)"), std::string::npos);
}

TEST(JsonLine, EscapesStrings) {
  JsonLine line("run_start", "sim");
  line.field("path", "a\"b\\c\nd\te\rf");
  line.field("ctl", std::string_view("\x01\x1f", 2));
  const std::string out = line.finish();
  EXPECT_NE(out.find(R"(a\"b\\c\nd\te\rf)"), std::string::npos);
  EXPECT_NE(out.find(R"(\u0001)"), std::string::npos);
  EXPECT_NE(out.find(R"(\u001f)"), std::string::npos);
}

TEST(JsonLine, NonFiniteDoublesBecomeZero) {
  JsonLine line("replicate", "t");
  line.field("inf", std::numeric_limits<double>::infinity())
      .field("nan", std::numeric_limits<double>::quiet_NaN());
  const std::string out = line.finish();
  EXPECT_NE(out.find(R"("inf":0)"), std::string::npos);
  EXPECT_NE(out.find(R"("nan":0)"), std::string::npos);
  EXPECT_EQ(out.find("inf\":i"), std::string::npos);
}

TEST(JsonLine, NestedObjects) {
  JsonLine line("run_start", "sim");
  line.begin_object("config")
      .field("m", std::uint64_t{10})
      .begin_object("inner")
      .field("k", std::uint64_t{1})
      .end_object()
      .field("after", std::uint64_t{2})
      .end_object();
  EXPECT_EQ(line.finish(),
            R"({"schema":"bbb-obs-v1","event":"run_start","tool":"sim")"
            R"(,"config":{"m":10,"inner":{"k":1},"after":2}})");
}

TEST(JsonLine, FinishClosesOpenScopes) {
  JsonLine line("summary", "t");
  line.begin_object("a").begin_object("b").field("c", std::uint64_t{1});
  EXPECT_EQ(line.finish(),
            R"({"schema":"bbb-obs-v1","event":"summary","tool":"t")"
            R"(,"a":{"b":{"c":1}}})");
}

TEST(JsonLine, EndObjectWithoutOpenThrows) {
  JsonLine line("summary", "t");
  EXPECT_THROW(line.end_object(), std::logic_error);
}

TEST(AppendMetrics, WritesEveryKind) {
  MetricsRegistry reg;
  reg.add_counter("c.count", 12);
  reg.set_gauge("g.gauge", 1.5);
  LatencyHistogram& h = reg.histogram("h.hist");
  h.record(100);
  h.record(300);
  JsonLine line("summary", "t");
  append_metrics(line, reg.snapshot());
  const std::string out = line.finish();
  EXPECT_NE(out.find(R"("metrics":{)"), std::string::npos);
  EXPECT_NE(out.find(R"("c.count":12)"), std::string::npos);
  EXPECT_NE(out.find(R"("g.gauge":1.5)"), std::string::npos);
  EXPECT_NE(out.find(R"("h.hist":{"count":2,"min":100,"max":300)"),
            std::string::npos);
  EXPECT_NE(out.find(R"("p999":)"), std::string::npos);
}

TEST(TraceSink, WritesSequencedLines) {
  const std::string path = temp_path("trace_sink_test.jsonl");
  {
    auto sink = TraceSink::open(path);
    EXPECT_EQ(sink->path(), path);
    for (int i = 0; i < 3; ++i) {
      JsonLine line("heartbeat", "test");
      line.field("i", static_cast<std::uint64_t>(i));
      sink->write(std::move(line));
    }
    EXPECT_EQ(sink->records_written(), 3u);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"seq\":" + std::to_string(i)),
              std::string::npos)
        << lines[static_cast<std::size_t>(i)];
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].front(), '{');
    EXPECT_EQ(lines[static_cast<std::size_t>(i)].back(), '}');
  }
  std::remove(path.c_str());
}

TEST(TraceSink, OpenFailureThrows) {
  EXPECT_THROW((void)TraceSink::open("/nonexistent-dir/zzz/trace.jsonl"),
               std::runtime_error);
}

TEST(Heartbeat, NonPositiveIntervalNeverFires) {
  Heartbeat off(0.0);
  Heartbeat negative(-1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(off.due());
    EXPECT_FALSE(negative.due());
  }
}

TEST(Heartbeat, TinyIntervalFires) {
  Heartbeat hb(1e-9);
  bool fired = false;
  for (int i = 0; i < 100000 && !fired; ++i) fired = hb.due();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace bbb::obs
