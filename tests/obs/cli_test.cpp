#include "bbb/obs/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bbb/io/argparse.hpp"
#include "bbb/obs/obs.hpp"
#include "bbb/obs/trace_sink.hpp"

namespace bbb::obs {
namespace {

/// Parse a fake command line through the shared flag surface.
ObsConfig parse(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "test_tool");
  std::vector<const char*> argv;
  argv.reserve(argv_strings.size());
  for (const std::string& s : argv_strings) argv.push_back(s.c_str());
  io::ArgParser args("test_tool", "obs flag test harness");
  add_obs_flags(args);
  EXPECT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));
  return parse_obs_flags(args);
}

TEST(ObsCli, DefaultsToOff) {
  const ObsConfig cfg = parse({});
  EXPECT_EQ(cfg.level, ObsLevel::kOff);
  EXPECT_FALSE(cfg.counters_on());
  EXPECT_FALSE(cfg.full_on());
  EXPECT_EQ(cfg.sink, nullptr);
  EXPECT_TRUE(cfg.describe().empty());
}

TEST(ObsCli, ParsesEveryLevel) {
  EXPECT_EQ(parse({"--obs=off"}).level, ObsLevel::kOff);
  const ObsConfig counters = parse({"--obs=counters"});
  EXPECT_EQ(counters.level, ObsLevel::kCounters);
  EXPECT_TRUE(counters.counters_on());
  EXPECT_FALSE(counters.full_on());
  const ObsConfig full = parse({"--obs=full"});
  EXPECT_EQ(full.level, ObsLevel::kFull);
  EXPECT_TRUE(full.counters_on());
  EXPECT_TRUE(full.full_on());
}

TEST(ObsCli, RejectsUnknownLevel) {
  EXPECT_THROW((void)parse({"--obs=verbose"}), std::invalid_argument);
}

TEST(ObsCli, RejectsSinkWhenOff) {
  // --obs-out with --obs=off would collect nothing silently: refused.
  EXPECT_THROW((void)parse({"--obs-out=/tmp/x.jsonl"}), std::invalid_argument);
}

TEST(ObsCli, RejectsHeartbeatBelowFull) {
  EXPECT_THROW((void)parse({"--obs=counters", "--heartbeat=5"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse({"--heartbeat=5"}), std::invalid_argument);
}

TEST(ObsCli, RejectsNegativeHeartbeat) {
  EXPECT_THROW((void)parse({"--obs=full", "--heartbeat=-1"}),
               std::invalid_argument);
}

TEST(ObsCli, OpensSinkAndDescribes) {
  const std::string path = ::testing::TempDir() + "obs_cli_test.jsonl";
  const ObsConfig cfg = parse({"--obs=full", "--obs-out=" + path,
                               "--heartbeat=2.5"});
  ASSERT_NE(cfg.sink, nullptr);
  EXPECT_EQ(cfg.sink->path(), path);
  EXPECT_DOUBLE_EQ(cfg.heartbeat_seconds, 2.5);
  const std::string desc = cfg.describe();
  EXPECT_NE(desc.find("obs=full"), std::string::npos);
  EXPECT_NE(desc.find(path), std::string::npos);
  EXPECT_NE(desc.find("heartbeat"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsCli, LevelRoundTripsThroughStrings) {
  for (const ObsLevel level :
       {ObsLevel::kOff, ObsLevel::kCounters, ObsLevel::kFull}) {
    EXPECT_EQ(parse_obs_level(to_string(level)), level);
  }
  EXPECT_THROW((void)parse_obs_level("banana"), std::invalid_argument);
}

TEST(ObsCli, PrintSummarySkipsEmptySnapshot) {
  // Contractual no-op: a tool run with --obs=off must not emit even a
  // header line on stderr.
  const std::string path = ::testing::TempDir() + "obs_cli_summary.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  ASSERT_NE(f, nullptr);
  print_summary(Snapshot{}, f);
  EXPECT_EQ(std::ftell(f), 0);

  MetricsRegistry reg;
  reg.add_counter("core.probe.count", 9);
  print_summary(reg.snapshot(), f);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbb::obs
