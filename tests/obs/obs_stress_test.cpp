/// ThreadSanitizer stress suite for the obs layer (`ctest -L tsan`).
///
/// Run under `BBB_TSAN=ON` these tests exercise the contracts the
/// metrics/trace machinery promises to the future sharded tier:
/// MetricsRegistry find-or-create and lock-free updates from 8 writer
/// threads, per-thread Snapshot building merged after the join barrier,
/// and TraceSink writers interleaving with a records_written() poller.
///
/// The poller test is the PR 9 regression pin: `TraceSink::seq_` used to
/// be a plain uint64 incremented under the sink mutex but read *without*
/// it by records_written() — a genuine C++ data race (TSan: "data race on
/// seq_"), fixed by making seq_ atomic. Everything else in this layer
/// came back clean under TSan: Counter/Gauge are relaxed atomics,
/// registry maps are mutex-guarded, and histograms follow the documented
/// one-writer-then-merge fold discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bbb/obs/latency_histogram.hpp"
#include "bbb/obs/metrics.hpp"
#include "bbb/obs/trace_sink.hpp"

namespace bbb::obs {
namespace {

constexpr int kWriters = 8;

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

// 8 threads race find-or-create on one shared name, one per-thread name,
// and updates on both: totals must come out exact and the registry maps
// must never tear.
TEST(ObsTsanStress, RegistryFindOrCreateAndCountUnderWriters) {
  constexpr std::uint64_t kOpsPerWriter = 20000;
  MetricsRegistry registry;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, w] {
      // find-or-create inside the loop on purpose: the mutex-guarded map
      // lookup path is what the stress is aimed at (hot code obtains
      // once, but the contract must hold either way).
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) {
        registry.counter("stress.shared").increment();
        registry.counter("stress.writer." + std::to_string(w)).increment();
        registry.gauge("stress.gauge").set(static_cast<double>(i));
      }
    });
  }
  for (auto& t : writers) t.join();

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("stress.shared"), kWriters * kOpsPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(snap.counter_value("stress.writer." + std::to_string(w)),
              kOpsPerWriter);
  }
  const SnapshotEntry* gauge = snap.find("stress.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, static_cast<double>(kOpsPerWriter - 1));
}

// The fold discipline end to end: each thread owns its registry (and its
// histograms — they are documented single-writer), snapshots it, and the
// main thread merges all snapshots after join. The merged result must be
// exact and independent of merge order pairing with thread scheduling.
TEST(ObsTsanStress, PerThreadSnapshotsMergeExactlyAfterJoin) {
  constexpr std::uint64_t kRecordsPerWriter = 5000;
  std::vector<Snapshot> snapshots(kWriters);

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&snapshots, w] {
      MetricsRegistry registry;
      Counter& balls = registry.counter("merge.balls");
      LatencyHistogram& lat = registry.histogram("merge.latency_ns");
      for (std::uint64_t i = 0; i < kRecordsPerWriter; ++i) {
        balls.increment();
        lat.record(i + 1);
      }
      snapshots[w] = registry.snapshot();
    });
  }
  for (auto& t : writers) t.join();

  Snapshot merged = snapshots[0];
  for (int w = 1; w < kWriters; ++w) merged.merge(snapshots[w]);

  EXPECT_EQ(merged.counter_value("merge.balls"), kWriters * kRecordsPerWriter);
  const SnapshotEntry* lat = merged.find("merge.latency_ns");
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->kind, SnapshotEntry::Kind::kHistogram);
  EXPECT_EQ(lat->histogram.count(), kWriters * kRecordsPerWriter);
  EXPECT_EQ(lat->histogram.min(), 1u);
  EXPECT_EQ(lat->histogram.max(), kRecordsPerWriter);
}

// Snapshots taken *while* counter/gauge writers are running: the atomics
// make any momentary value legal; the assertion is monotonicity of the
// shared counter across successive snapshots plus an exact final total.
TEST(ObsTsanStress, SnapshotDuringCounterWritersIsMonotone) {
  constexpr std::uint64_t kOpsPerWriter = 30000;
  MetricsRegistry registry;
  Counter& shared = registry.counter("live.shared");

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&shared] {
      for (std::uint64_t i = 0; i < kOpsPerWriter; ++i) shared.increment();
    });
  }

  std::uint64_t last = 0;
  for (int polls = 0; polls < 50; ++polls) {
    const std::uint64_t now = registry.snapshot().counter_value("live.shared");
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(registry.snapshot().counter_value("live.shared"),
            kWriters * kOpsPerWriter);
}

// Regression for the PR 9 TSan finding: concurrent write() calls while
// the main thread polls records_written() until every line has landed.
// With the pre-fix plain uint64 seq_ this is a reported race; with the
// atomic it must be silent, and the file must hold exactly one line per
// write with strictly increasing seq values.
TEST(ObsTsanStress, RecordsWrittenRacesWithWriters) {
  constexpr std::uint64_t kLinesPerWriter = 400;
  const std::string path = temp_path("obs_stress_sink.jsonl");
  {
    auto sink = TraceSink::open(path);

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&sink, w] {
        for (std::uint64_t i = 0; i < kLinesPerWriter; ++i) {
          JsonLine line("heartbeat", "stress");
          line.field("writer", static_cast<std::uint64_t>(w)).field("i", i);
          sink->write(std::move(line));
        }
      });
    }
    // Poll concurrently with the writers — the read under test.
    while (sink->records_written() < kWriters * kLinesPerWriter) {
      std::this_thread::yield();
    }
    for (auto& t : writers) t.join();
    EXPECT_EQ(sink->records_written(), kWriters * kLinesPerWriter);
  }

  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"schema\":\"bbb-obs-v1\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, kWriters * kLinesPerWriter);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bbb::obs
