/// Statistical end-to-end checks of the paper's headline claims at test-
/// friendly sizes. These mirror the bench harnesses (which run at larger
/// scale) but assert the qualitative *shape* so regressions are caught by
/// ctest. All margins are generous — these are smoke alarms, not
/// measurements.

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/sim/runner.hpp"
#include "bbb/stats/regression.hpp"
#include "bbb/theory/bounds.hpp"

namespace bbb {
namespace {

sim::RunSummary summarize(const std::string& spec, std::uint64_t m, std::uint32_t n,
                          std::uint32_t reps = 5, std::uint64_t seed = 7) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = spec;
  cfg.m = m;
  cfg.n = n;
  cfg.replicates = reps;
  cfg.seed = seed;
  return sim::run_experiment(cfg);
}

// Theorem 3.1: adaptive's allocation time is O(m) — probes/m stays bounded
// as m grows with n fixed (the paper's Figure 3a regime).
TEST(PaperClaims, Theorem31_AdaptiveTimeLinearInM) {
  constexpr std::uint32_t n = 1 << 10;
  double prev_ratio = 0.0;
  for (std::uint64_t phi : {4ULL, 16ULL, 64ULL}) {
    const auto s = summarize("adaptive", phi * n, n);
    const double ratio = s.probes_per_ball();
    EXPECT_LT(ratio, 6.0) << "phi=" << phi;
    prev_ratio = ratio;
  }
  // At large phi the ratio settles near a small constant (> 1).
  EXPECT_GT(prev_ratio, 1.0);
  EXPECT_LT(prev_ratio, 4.0);
}

// Theorem 4.1: threshold's allocation time is m + O(m^{3/4} n^{1/4}).
// Fit probes - m against m (n fixed): the exponent must be ~3/4, far from 1.
TEST(PaperClaims, Theorem41_ThresholdOverheadExponent) {
  constexpr std::uint32_t n = 1 << 8;
  std::vector<double> ms, overheads;
  for (std::uint64_t phi : {16ULL, 32ULL, 64ULL, 128ULL, 256ULL}) {
    const std::uint64_t m = phi * n;
    const auto s = summarize("threshold", m, n, 8);
    ms.push_back(static_cast<double>(m));
    overheads.push_back(s.probes.mean() - static_cast<double>(m));
  }
  const auto fit = stats::power_law_fit(ms, overheads);
  EXPECT_GT(fit.exponent, 0.55) << "overhead grew too slowly";
  EXPECT_LT(fit.exponent, 0.95) << "overhead ~ m would mean Theta(m) waste";
}

// Corollary 3.5: adaptive's expected quadratic potential is O(n),
// independent of m. Lemma 4.2: threshold's grows with m.
TEST(PaperClaims, Smoothness_PsiFlatForAdaptiveGrowingForThreshold) {
  constexpr std::uint32_t n = 1 << 9;
  const auto ad_small = summarize("adaptive", 8ULL * n, n);
  const auto ad_large = summarize("adaptive", 128ULL * n, n);
  const auto th_small = summarize("threshold", 8ULL * n, n);
  const auto th_large = summarize("threshold", 128ULL * n, n);

  // Adaptive: Psi stays within a constant factor as m grows 16x.
  EXPECT_LT(ad_large.psi.mean(), 3.0 * ad_small.psi.mean() + 3.0 * n);
  // Threshold: Psi keeps growing with m (at least 2x over the same span).
  EXPECT_GT(th_large.psi.mean(), 2.0 * th_small.psi.mean());
  // And threshold is clearly rougher than adaptive at the heavy end
  // (measured ratio ~4.7x at phi = 128; assert 3x for seed robustness —
  // the n-scaling form of this claim is bench_lem42's job).
  EXPECT_GT(th_large.psi.mean(), 3.0 * ad_large.psi.mean());
}

// Corollary 3.5 gap bound: max - min = O(log n) for adaptive.
TEST(PaperClaims, Smoothness_AdaptiveGapLogarithmic) {
  for (std::uint32_t n : {1u << 8, 1u << 10, 1u << 12}) {
    const auto s = summarize("adaptive", 32ULL * n, n);
    EXPECT_LE(s.gap.max(), 6.0 * std::log(static_cast<double>(n)) + 6.0) << "n=" << n;
  }
}

// Both protocols hit the optimal-plus-one max load; greedy[2] does not in
// the heavily loaded case (its gap above m/n grows like ln ln n but its max
// load exceeds m/n + 1 at these sizes).
TEST(PaperClaims, MaxLoadSeparationFromGreedy) {
  constexpr std::uint32_t n = 1 << 10;
  constexpr std::uint64_t m = 256ULL * n;
  const double cap = static_cast<double>(m / n + 1);
  EXPECT_LE(summarize("adaptive", m, n).max_load.max(), cap);
  EXPECT_LE(summarize("threshold", m, n).max_load.max(), cap);
  EXPECT_GT(summarize("greedy[2]", m, n).max_load.mean(), cap);
}

// Figure 3a shape: threshold's runtime converges to m from above and is
// cheaper than adaptive's; both are Theta(m).
TEST(PaperClaims, Figure3a_RuntimeOrdering) {
  constexpr std::uint32_t n = 1 << 9;
  constexpr std::uint64_t m = 64ULL * n;
  const auto th = summarize("threshold", m, n);
  const auto ad = summarize("adaptive", m, n);
  EXPECT_LT(th.probes_per_ball(), ad.probes_per_ball());
  EXPECT_LT(th.probes_per_ball(), 1.2);
  EXPECT_GT(ad.probes_per_ball(), 1.0);
}

// Figure 3b shape: adaptive's final potential is much smaller.
TEST(PaperClaims, Figure3b_PotentialOrdering) {
  constexpr std::uint32_t n = 1 << 9;
  constexpr std::uint64_t m = 64ULL * n;
  const auto th = summarize("threshold", m, n);
  const auto ad = summarize("adaptive", m, n);
  EXPECT_LT(ad.psi.mean(), th.psi.mean() / 3.0);
}

// Lemma 4.2 at m = n^2: threshold's Psi grows superlinearly in n
// (Omega(n^{9/8})) while adaptive's stays Theta(n).
TEST(PaperClaims, Lemma42_ThresholdPotentialSuperlinear) {
  std::vector<double> ns, psis;
  for (std::uint32_t n : {64u, 128u, 256u}) {
    const auto s = summarize("threshold", static_cast<std::uint64_t>(n) * n, n, 8);
    ns.push_back(n);
    psis.push_back(s.psi.mean());
  }
  const auto fit = stats::power_law_fit(ns, psis);
  EXPECT_GT(fit.exponent, 1.05) << "threshold Psi should grow superlinearly in n";
}

}  // namespace
}  // namespace bbb
