/// End-to-end pipeline tests: registry -> runner -> sweep -> table, the
/// exact path every bench binary takes.

#include <gtest/gtest.h>

#include "bbb/core/protocols/registry.hpp"
#include "bbb/io/table.hpp"
#include "bbb/sim/runner.hpp"
#include "bbb/sim/sweep.hpp"

namespace bbb {
namespace {

TEST(Pipeline, EveryProtocolRunsThroughTheRunner) {
  for (const auto& spec :
       {"one-choice", "greedy[2]", "left[2]", "memory[1,1]", "threshold", "adaptive",
        "batched[4]", "self-balancing", "cuckoo[2,4]"}) {
    sim::ExperimentConfig cfg;
    cfg.protocol_spec = spec;
    cfg.m = 512;
    cfg.n = 128;
    cfg.replicates = 3;
    const sim::RunSummary s = run_experiment(cfg);
    EXPECT_EQ(s.probes.count(), 3u) << spec;
    EXPECT_GT(s.probes.mean(), 0.0) << spec;
  }
}

TEST(Pipeline, SweepToTableRendersAllFormats) {
  std::vector<sim::ExperimentConfig> configs;
  for (std::uint64_t m : sim::geometric_range(256, 1024, 2.0)) {
    sim::ExperimentConfig cfg;
    cfg.protocol_spec = "adaptive";
    cfg.m = m;
    cfg.n = 64;
    cfg.replicates = 2;
    configs.push_back(cfg);
  }
  const auto summaries = sim::run_sweep(configs);

  io::Table table({"m", "probes/m", "max", "psi"});
  for (const auto& s : summaries) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(s.config.m));
    table.add_num(s.probes_per_ball(), 3);
    table.add_num(s.max_load.mean(), 2);
    table.add_num(s.psi.mean(), 1);
  }
  for (auto fmt : {io::Format::kAscii, io::Format::kMarkdown, io::Format::kCsv}) {
    const std::string out = table.render(fmt);
    EXPECT_FALSE(out.empty());
  }
  EXPECT_EQ(table.rows(), summaries.size());
}

TEST(Pipeline, SummariesReproducibleEndToEnd) {
  sim::ExperimentConfig cfg;
  cfg.protocol_spec = "threshold";
  cfg.m = 4096;
  cfg.n = 256;
  cfg.replicates = 5;
  cfg.seed = 2024;
  const sim::RunSummary a = sim::run_experiment(cfg);
  const sim::RunSummary b = sim::run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.probes.mean(), b.probes.mean());
  EXPECT_DOUBLE_EQ(a.psi.mean(), b.psi.mean());
  EXPECT_DOUBLE_EQ(a.gap.max(), b.gap.max());
}

}  // namespace
}  // namespace bbb
