#include "bbb/sim/runner.hpp"

#include <gtest/gtest.h>

#include "bbb/par/thread_pool.hpp"

namespace bbb::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.protocol_spec = "adaptive";
  cfg.m = 1000;
  cfg.n = 100;
  cfg.replicates = 8;
  cfg.seed = 42;
  return cfg;
}

TEST(Runner, SummaryCountsMatchReplicates) {
  const RunSummary s = run_experiment(small_config());
  EXPECT_EQ(s.probes.count(), 8u);
  EXPECT_EQ(s.records.size(), 8u);
  EXPECT_EQ(s.protocol_name, "adaptive");
  EXPECT_EQ(s.failures, 0u);
}

TEST(Runner, KeepRecordsOffDropsRawRowsButNotStats) {
  // Large sweeps switch keep_records off so thousands of summaries do not
  // retain every raw replicate row; the folded statistics are unaffected.
  ExperimentConfig cfg = small_config();
  const RunSummary with = run_experiment(cfg);
  cfg.keep_records = false;
  const RunSummary without = run_experiment(cfg);
  EXPECT_TRUE(without.records.empty());
  EXPECT_EQ(without.records.capacity(), 0u);  // memory actually released
  EXPECT_EQ(without.probes.count(), 8u);
  EXPECT_DOUBLE_EQ(without.probes.mean(), with.probes.mean());
  EXPECT_DOUBLE_EQ(without.psi.mean(), with.psi.mean());
  EXPECT_DOUBLE_EQ(without.max_load.mean(), with.max_load.mean());
}

TEST(Runner, StatsAgreeWithRawRecords) {
  const RunSummary s = run_experiment(small_config());
  double mean_probes = 0;
  for (const auto& r : s.records) mean_probes += r.probes;
  mean_probes /= static_cast<double>(s.records.size());
  EXPECT_NEAR(s.probes.mean(), mean_probes, 1e-9);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  // The determinism contract: 1-thread and 4-thread pools produce
  // bit-identical summaries.
  const ExperimentConfig cfg = small_config();
  par::ThreadPool p1(1), p4(4);
  const RunSummary a = run_experiment(cfg, p1);
  const RunSummary b = run_experiment(cfg, p4);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].probes, b.records[i].probes);
    EXPECT_DOUBLE_EQ(a.records[i].psi, b.records[i].psi);
    EXPECT_DOUBLE_EQ(a.records[i].max_load, b.records[i].max_load);
  }
  EXPECT_DOUBLE_EQ(a.probes.mean(), b.probes.mean());
  EXPECT_DOUBLE_EQ(a.psi.variance(), b.psi.variance());
}

TEST(Runner, ReplicatesAreIndependent) {
  const RunSummary s = run_experiment(small_config());
  // All replicates identical would mean broken seeding.
  bool any_differ = false;
  for (std::size_t i = 1; i < s.records.size(); ++i) {
    if (s.records[i].probes != s.records[0].probes) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Runner, RunReplicateMatchesSummaryRecord) {
  const ExperimentConfig cfg = small_config();
  const RunSummary s = run_experiment(cfg);
  const ReplicateRecord r3 = run_replicate(cfg, 3);
  EXPECT_DOUBLE_EQ(r3.probes, s.records[3].probes);
  EXPECT_DOUBLE_EQ(r3.psi, s.records[3].psi);
}

TEST(Runner, ProbesPerBall) {
  const RunSummary s = run_experiment(small_config());
  EXPECT_NEAR(s.probes_per_ball(), s.probes.mean() / 1000.0, 1e-12);
}

TEST(Runner, FailuresAreCounted) {
  // Cuckoo over capacity: every replicate must report failure.
  ExperimentConfig cfg;
  cfg.protocol_spec = "cuckoo[2,2]";
  cfg.m = 600;  // > 2 * 128 slots
  cfg.n = 128;
  cfg.replicates = 4;
  const RunSummary s = run_experiment(cfg);
  EXPECT_EQ(s.failures, 4u);
}

TEST(Runner, Validation) {
  ExperimentConfig cfg = small_config();
  cfg.replicates = 0;
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.protocol_spec = "bogus";
  EXPECT_THROW((void)run_experiment(cfg), std::invalid_argument);
}

TEST(Runner, DescribeMentionsKeyFields) {
  const std::string desc = small_config().describe();
  EXPECT_NE(desc.find("adaptive"), std::string::npos);
  EXPECT_NE(desc.find("m=1000"), std::string::npos);
  EXPECT_NE(desc.find("n=100"), std::string::npos);
}

}  // namespace
}  // namespace bbb::sim
