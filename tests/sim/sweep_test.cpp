#include "bbb/sim/sweep.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace bbb::sim {
namespace {

TEST(Ranges, GeometricKnownValues) {
  EXPECT_EQ(geometric_range(1, 16, 2.0),
            (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(geometric_range(10, 10, 3.0), (std::vector<std::uint64_t>{10}));
  // Overshooting top is clamped to hi.
  EXPECT_EQ(geometric_range(1, 10, 3.0), (std::vector<std::uint64_t>{1, 3, 9, 10}));
}

TEST(Ranges, GeometricValidation) {
  EXPECT_THROW(geometric_range(0, 10, 2.0), std::invalid_argument);
  EXPECT_THROW(geometric_range(1, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(geometric_range(10, 1, 2.0), std::invalid_argument);
}

TEST(Ranges, GeometricMonotoneAndBoundedAtExtremes) {
  // Above 2^53 the double grid is coarser than the integers, so the
  // rounded value could overshoot hi without the clamp; the emitted range
  // must stay strictly increasing, inside [lo, hi], and end exactly at hi.
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  for (const double factor : {1.01, 1.5, 3.0, 1e6}) {
    for (const std::uint64_t hi :
         {huge, huge - 1, (std::uint64_t{1} << 53) + 1, std::uint64_t{1} << 62}) {
      const auto range = geometric_range(1, hi, factor);
      ASSERT_FALSE(range.empty());
      EXPECT_EQ(range.front(), 1u);
      EXPECT_EQ(range.back(), hi);
      for (std::size_t i = 1; i < range.size(); ++i) {
        ASSERT_LT(range[i - 1], range[i])
            << "factor=" << factor << " hi=" << hi << " i=" << i;
        ASSERT_LE(range[i], hi);
      }
    }
  }
  // A huge lo near the top of the domain must not overshoot either (the
  // lo -> double conversion itself rounds up past hi here).
  const auto top = geometric_range(huge - 2, huge, 2.0);
  EXPECT_EQ(top.back(), huge);
  for (std::size_t i = 1; i < top.size(); ++i) ASSERT_LT(top[i - 1], top[i]);
  for (const std::uint64_t v : top) ASSERT_LE(v, huge);
}

TEST(Ranges, LinearKnownValues) {
  EXPECT_EQ(linear_range(2, 10, 4), (std::vector<std::uint64_t>{2, 6, 10}));
  EXPECT_EQ(linear_range(1, 3, 1), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(linear_range(5, 5, 7), (std::vector<std::uint64_t>{5}));
  // Step overshoots the end: stop before hi.
  EXPECT_EQ(linear_range(1, 10, 4), (std::vector<std::uint64_t>{1, 5, 9}));
}

TEST(Ranges, LinearValidation) {
  EXPECT_THROW(linear_range(1, 10, 0), std::invalid_argument);
  EXPECT_THROW(linear_range(10, 1, 1), std::invalid_argument);
}

TEST(Ranges, Pow2KnownValues) {
  EXPECT_EQ(pow2_range(3, 6), (std::vector<std::uint64_t>{8, 16, 32, 64}));
  EXPECT_EQ(pow2_range(0, 0), (std::vector<std::uint64_t>{1}));
}

TEST(Ranges, Pow2Validation) {
  EXPECT_THROW(pow2_range(5, 3), std::invalid_argument);
  EXPECT_THROW(pow2_range(1, 63), std::invalid_argument);
}

TEST(Sweep, RunsEveryConfigInOrder) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t m : {100ULL, 200ULL, 300ULL}) {
    ExperimentConfig cfg;
    cfg.protocol_spec = "threshold";
    cfg.m = m;
    cfg.n = 50;
    cfg.replicates = 3;
    configs.push_back(cfg);
  }
  const auto summaries = run_sweep(configs);
  ASSERT_EQ(summaries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(summaries[i].config.m, configs[i].m);
    EXPECT_EQ(summaries[i].probes.count(), 3u);
  }
  // More balls, more probes.
  EXPECT_LT(summaries[0].probes.mean(), summaries[2].probes.mean());
}

}  // namespace
}  // namespace bbb::sim
