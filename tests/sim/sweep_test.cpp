#include "bbb/sim/sweep.hpp"

#include <gtest/gtest.h>

namespace bbb::sim {
namespace {

TEST(Ranges, GeometricKnownValues) {
  EXPECT_EQ(geometric_range(1, 16, 2.0),
            (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(geometric_range(10, 10, 3.0), (std::vector<std::uint64_t>{10}));
  // Overshooting top is clamped to hi.
  EXPECT_EQ(geometric_range(1, 10, 3.0), (std::vector<std::uint64_t>{1, 3, 9, 10}));
}

TEST(Ranges, GeometricValidation) {
  EXPECT_THROW(geometric_range(0, 10, 2.0), std::invalid_argument);
  EXPECT_THROW(geometric_range(1, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(geometric_range(10, 1, 2.0), std::invalid_argument);
}

TEST(Ranges, LinearKnownValues) {
  EXPECT_EQ(linear_range(2, 10, 4), (std::vector<std::uint64_t>{2, 6, 10}));
  EXPECT_EQ(linear_range(1, 3, 1), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(linear_range(5, 5, 7), (std::vector<std::uint64_t>{5}));
  // Step overshoots the end: stop before hi.
  EXPECT_EQ(linear_range(1, 10, 4), (std::vector<std::uint64_t>{1, 5, 9}));
}

TEST(Ranges, LinearValidation) {
  EXPECT_THROW(linear_range(1, 10, 0), std::invalid_argument);
  EXPECT_THROW(linear_range(10, 1, 1), std::invalid_argument);
}

TEST(Ranges, Pow2KnownValues) {
  EXPECT_EQ(pow2_range(3, 6), (std::vector<std::uint64_t>{8, 16, 32, 64}));
  EXPECT_EQ(pow2_range(0, 0), (std::vector<std::uint64_t>{1}));
}

TEST(Ranges, Pow2Validation) {
  EXPECT_THROW(pow2_range(5, 3), std::invalid_argument);
  EXPECT_THROW(pow2_range(1, 63), std::invalid_argument);
}

TEST(Sweep, RunsEveryConfigInOrder) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t m : {100ULL, 200ULL, 300ULL}) {
    ExperimentConfig cfg;
    cfg.protocol_spec = "threshold";
    cfg.m = m;
    cfg.n = 50;
    cfg.replicates = 3;
    configs.push_back(cfg);
  }
  const auto summaries = run_sweep(configs);
  ASSERT_EQ(summaries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(summaries[i].config.m, configs[i].m);
    EXPECT_EQ(summaries[i].probes.count(), 3u);
  }
  // More balls, more probes.
  EXPECT_LT(summaries[0].probes.mean(), summaries[2].probes.mean());
}

}  // namespace
}  // namespace bbb::sim
