#include "bbb/sim/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/rng/xoshiro256.hpp"

namespace bbb::sim {
namespace {

core::StreamingAllocator make(const char* spec, std::uint32_t n) {
  return {n, core::make_rule(spec, n)};
}

TEST(Trace, SnapshotsAtStrideAndEnd) {
  auto alloc = make("adaptive", 32);
  rng::Engine gen(1);
  const auto points = trace_allocation(alloc, gen, 100, 30);
  // Snapshots at 30, 60, 90, 100.
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].balls, 30u);
  EXPECT_EQ(points[1].balls, 60u);
  EXPECT_EQ(points[2].balls, 90u);
  EXPECT_EQ(points[3].balls, 100u);
}

TEST(Trace, ExactMultipleDoesNotDuplicateFinalPoint) {
  auto alloc = make("one-choice", 16);
  rng::Engine gen(2);
  const auto points = trace_allocation(alloc, gen, 60, 20);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.back().balls, 60u);
}

TEST(Trace, MonotoneBallsAndProbes) {
  auto alloc = make("adaptive", 64);
  rng::Engine gen(3);
  const auto points = trace_allocation(alloc, gen, 1000, 100);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].balls, points[i - 1].balls);
    EXPECT_GE(points[i].probes, points[i - 1].probes);
  }
}

TEST(Trace, ZeroStrideTreatedAsOne) {
  auto alloc = make("one-choice", 8);
  rng::Engine gen(4);
  const auto points = trace_allocation(alloc, gen, 5, 0);
  EXPECT_EQ(points.size(), 5u);
}

TEST(Trace, MetricsMatchFullRecomputation) {
  // The trace reads the incremental BinState; every point must equal what
  // the naive metrics.hpp pass would have produced at that prefix. Check
  // the final point against the full recomputation.
  auto alloc = make("adaptive", 32);
  rng::Engine gen(5);
  const auto points = trace_allocation(alloc, gen, 320, 100);
  const auto& last = points.back();
  EXPECT_EQ(last.balls, 320u);
  EXPECT_EQ(last.probes, alloc.probes());
  const auto metrics = core::compute_metrics(alloc.state().loads(), 320);
  EXPECT_EQ(last.max_load, metrics.max);
  EXPECT_EQ(last.min_load, metrics.min);
  EXPECT_DOUBLE_EQ(last.psi, metrics.psi);
  EXPECT_NEAR(last.log_phi, metrics.log_phi, 1e-9 * (1.0 + std::abs(metrics.log_phi)));
}

TEST(Trace, EveryRegistryRuleTraces) {
  // The tracer accepts the full registry — the scenario-matrix promise.
  for (const char* spec : {"greedy[2]", "left[2]", "memory[1,1]", "threshold",
                           "doubling-threshold[0]", "adaptive-net", "batched[4]",
                           "self-balancing", "cuckoo[2,4]"}) {
    core::StreamingAllocator alloc(16, core::make_rule(spec, 16, 48));
    rng::Engine gen(6);
    const auto points = trace_allocation(alloc, gen, 48, 16);
    ASSERT_EQ(points.size(), 3u) << spec;
    EXPECT_LE(points.back().balls, 48u) << spec;  // cuckoo may stash
  }
}

TEST(Trace, TableHasOneRowPerPoint) {
  auto alloc = make("one-choice", 8);
  rng::Engine gen(6);
  const auto points = trace_allocation(alloc, gen, 50, 10);
  const io::Table table = trace_table(points);
  EXPECT_EQ(table.rows(), points.size());
  EXPECT_EQ(table.columns(), 6u);
  // Renders without throwing in all formats.
  EXPECT_NO_THROW((void)table.render(io::Format::kAscii));
  EXPECT_NO_THROW((void)table.render(io::Format::kCsv));
}

}  // namespace
}  // namespace bbb::sim
