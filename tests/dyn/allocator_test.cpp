/// Tests for the dynamic allocator layer: DynState's O(1) incremental
/// metrics against batch recomputation, the streaming allocators'
/// decision rules under churn, and the spec registry.

#include "bbb/dyn/allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocol.hpp"

namespace bbb::dyn {
namespace {

// Recompute every incremental metric from the raw loads and compare. This
// is the core correctness property of DynState: no event sequence may
// drift the incremental values away from the batch definitions.
void expect_metrics_match(const DynState& state, double tol = 1e-9) {
  const auto& loads = state.loads();
  const core::LoadMetrics batch = core::compute_metrics(loads, state.balls());
  EXPECT_EQ(state.max_load(), batch.max);
  EXPECT_EQ(state.min_load(), batch.min);
  EXPECT_EQ(state.gap(), batch.gap);
  EXPECT_NEAR(state.psi(), batch.psi, tol * (1.0 + std::abs(batch.psi)));
  EXPECT_NEAR(state.log_phi(), batch.log_phi, tol * (1.0 + std::abs(batch.log_phi)));
  std::uint32_t nonempty = 0;
  for (const auto l : loads) nonempty += l > 0 ? 1 : 0;
  EXPECT_EQ(state.nonempty_bins(), nonempty);
}

TEST(DynState, FreshStateIsAllZeros) {
  DynState state(16);
  EXPECT_EQ(state.balls(), 0u);
  EXPECT_EQ(state.max_load(), 0u);
  EXPECT_EQ(state.min_load(), 0u);
  EXPECT_EQ(state.nonempty_bins(), 0u);
  EXPECT_DOUBLE_EQ(state.psi(), 0.0);
  expect_metrics_match(state);
}

TEST(DynState, ZeroBinsThrows) { EXPECT_THROW(DynState(0), std::invalid_argument); }

TEST(DynState, MetricsStayExactUnderRandomChurn) {
  const std::uint32_t n = 32;
  DynState state(n);
  rng::Engine gen(123);
  std::vector<std::uint32_t> mirror(n, 0);
  std::uint64_t balls = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool add = balls == 0 || rng::bernoulli(gen, 0.55);
    if (add) {
      const auto bin = static_cast<std::uint32_t>(rng::uniform_below(gen, n));
      state.add_ball(bin);
      ++mirror[bin];
      ++balls;
    } else {
      const std::uint32_t bin = state.sample_nonempty(gen);
      state.remove_ball(bin);
      --mirror[bin];
      --balls;
    }
    ASSERT_EQ(state.balls(), balls);
    ASSERT_EQ(state.loads(), mirror);
    if (step % 97 == 0) expect_metrics_match(state);
  }
  expect_metrics_match(state);
}

TEST(DynState, TailCountsMatchScan) {
  DynState state(8);
  rng::Engine gen(7);
  for (int i = 0; i < 40; ++i) {
    state.add_ball(static_cast<std::uint32_t>(rng::uniform_below(gen, 8)));
  }
  for (std::uint32_t k = 0; k <= state.max_load() + 2; ++k) {
    std::uint32_t scan = 0;
    for (const auto l : state.loads()) scan += l >= k ? 1 : 0;
    EXPECT_EQ(state.bins_with_load_at_least(k), scan) << "k=" << k;
  }
}

TEST(DynState, RemoveFromEmptyBinThrows) {
  DynState state(4);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.add_ball(1);
  EXPECT_THROW(state.remove_ball(0), std::invalid_argument);
  state.remove_ball(1);
  EXPECT_EQ(state.balls(), 0u);
}

TEST(DynState, SampleNonemptyRequiresABall) {
  DynState state(4);
  rng::Engine gen(1);
  EXPECT_THROW((void)state.sample_nonempty(gen), std::logic_error);
  state.add_ball(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(state.sample_nonempty(gen), 2u);
}

TEST(DynAdaptive, NetBoundKeepsMaxLoadTightArrivalsOnly) {
  const std::uint32_t n = 64;
  DynAdaptive alloc(n, DynAdaptive::Bound::kNet);
  rng::Engine gen(42);
  for (std::uint64_t i = 1; i <= 10 * n; ++i) {
    alloc.place(gen);
    ASSERT_LE(alloc.state().max_load(), core::ceil_div(i, n) + 1) << "ball " << i;
  }
}

TEST(DynAdaptive, NetAndTotalAgreeWithoutDepartures) {
  rng::Engine g1(9), g2(9);
  DynAdaptive net(32, DynAdaptive::Bound::kNet);
  DynAdaptive total(32, DynAdaptive::Bound::kTotal);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(net.place(g1), total.place(g2));
  }
  EXPECT_EQ(net.state().loads(), total.state().loads());
  EXPECT_EQ(net.probes(), total.probes());
  EXPECT_TRUE(g1 == g2);
}

TEST(DynAdaptive, BoundsDivergeUnderChurn) {
  // Remove/replace cycles advance the total counter but not the net count,
  // so the total variant's bound keeps climbing while net's stays put.
  const std::uint32_t n = 8;
  rng::Engine gen(5);
  DynAdaptive net(n, DynAdaptive::Bound::kNet);
  DynAdaptive total(n, DynAdaptive::Bound::kTotal);
  for (std::uint32_t i = 0; i < 4 * n; ++i) {
    net.place(gen);
    total.place(gen);
  }
  const std::uint64_t net_bound = net.accept_bound();
  EXPECT_EQ(net_bound, total.accept_bound());
  for (int cycle = 0; cycle < 100; ++cycle) {
    const std::uint32_t victim_net = net.state().sample_nonempty(gen);
    net.remove(victim_net);
    net.place(gen);
    const std::uint32_t victim_total = total.state().sample_nonempty(gen);
    total.remove(victim_total);
    total.place(gen);
  }
  EXPECT_EQ(net.accept_bound(), net_bound);
  EXPECT_GT(total.accept_bound(), net_bound + 10);
}

TEST(DynThreshold, DeadlockIsDetectedNotSpun) {
  DynThreshold alloc(2, 0);  // accept only empty bins
  rng::Engine gen(3);
  alloc.place(gen);
  alloc.place(gen);
  EXPECT_EQ(alloc.state().max_load(), 1u);
  EXPECT_THROW(alloc.place(gen), std::logic_error);
  // A departure re-opens capacity.
  alloc.remove(0);
  EXPECT_NO_THROW(alloc.place(gen));
}

TEST(DynGreedy, ZeroChoicesThrows) {
  EXPECT_THROW(DynGreedy(4, 0), std::invalid_argument);
}

TEST(Registry, BuildsEverySpecShape) {
  const std::uint32_t n = 16;
  EXPECT_EQ(make_streaming_allocator("one-choice", n)->name(), "one-choice");
  EXPECT_EQ(make_streaming_allocator("greedy[2]", n)->name(), "greedy[2]");
  EXPECT_EQ(make_streaming_allocator("adaptive-net", n)->name(), "adaptive-net");
  EXPECT_EQ(make_streaming_allocator("adaptive-net[2]", n)->name(), "adaptive-net[2]");
  EXPECT_EQ(make_streaming_allocator("adaptive-total", n)->name(), "adaptive-total");
  EXPECT_EQ(make_streaming_allocator("adaptive-total[3]", n)->name(),
            "adaptive-total[3]");
  EXPECT_EQ(make_streaming_allocator("threshold[4]", n)->name(), "threshold[4]");
}

TEST(Registry, NameRoundTripsThroughRegistry) {
  for (const std::string spec :
       {"one-choice", "greedy[3]", "adaptive-net", "adaptive-total[2]",
        "threshold[5]"}) {
    const auto alloc = make_streaming_allocator(spec, 8);
    const auto rebuilt = make_streaming_allocator(alloc->name(), 8);
    EXPECT_EQ(rebuilt->name(), alloc->name());
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_streaming_allocator("nope", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[x]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("one-choice[1]", 8),
               std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("threshold", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("adaptive-net[1,2]", 8),
               std::invalid_argument);
  // Negative and uint32-overflowing arguments are rejected, not wrapped.
  EXPECT_THROW((void)make_streaming_allocator("greedy[-1]", 8),
               std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[4294967297]", 8),
               std::invalid_argument);
}

TEST(Registry, SpecsListIsNonEmptyAndStable) {
  const auto specs = streaming_allocator_specs();
  EXPECT_GE(specs.size(), 5u);
}

}  // namespace
}  // namespace bbb::dyn
