/// Tests for the dynamic allocator layer, which since the unified
/// streaming core is a veneer over core/rule.hpp: the spec registry, the
/// rules' behavior under churn, and the central property that *every*
/// registry rule keeps the incremental BinState metrics equal to the naive
/// batch recomputation under randomized place/remove interleavings.

#include "bbb/dyn/allocator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "bbb/core/metrics.hpp"
#include "bbb/core/protocol.hpp"
#include "bbb/core/protocols/adaptive.hpp"
#include "bbb/core/protocols/cuckoo.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/protocols/self_balancing.hpp"

namespace bbb::dyn {
namespace {

void expect_metrics_match(const BinState& state, double tol = 1e-9) {
  const auto& loads = state.loads();
  const core::LoadMetrics batch = core::compute_metrics(loads, state.balls());
  EXPECT_EQ(state.max_load(), batch.max);
  EXPECT_EQ(state.min_load(), batch.min);
  EXPECT_EQ(state.gap(), batch.gap);
  EXPECT_NEAR(state.psi(), batch.psi, tol * (1.0 + std::abs(batch.psi)));
  EXPECT_NEAR(state.log_phi(), batch.log_phi, tol * (1.0 + std::abs(batch.log_phi)));
  std::uint32_t nonempty = 0;
  for (const auto l : loads) nonempty += l > 0 ? 1 : 0;
  EXPECT_EQ(state.nonempty_bins(), nonempty);
  // Capacitated states additionally keep the normalized metrics exact.
  if (!state.capacities().empty()) {
    const core::NormalizedLoadMetrics norm = core::compute_normalized_metrics(
        loads, state.capacities(), state.balls());
    EXPECT_DOUBLE_EQ(state.max_norm_load(), norm.max_norm);
    EXPECT_DOUBLE_EQ(state.min_norm_load(), norm.min_norm);
    EXPECT_NEAR(state.weighted_psi(), norm.weighted_psi,
                tol * (1.0 + std::abs(norm.weighted_psi)));
  }
}

// ---------------------------------------------------------------- property

// Every concrete spec shape in the registry, with parameters valid at the
// test's n = 32 (left/stale need args <= n; threshold gets its bound from
// the m hint below).
const char* const kAllSpecs[] = {
    "one-choice",        "greedy[2]",           "greedy[4]",
    "left[2]",           "left[4]",             "memory[1,1]",
    "memory[2,2]",       "threshold",           "threshold[2]",
    "doubling-threshold[0]",                    "adaptive",
    "adaptive[2]",       "adaptive-net",        "adaptive-net[2]",
    "adaptive-total",    "stale-adaptive[1]",   "stale-adaptive[16]",
    "skewed-adaptive[50]",                      "batched[4]",
    "self-balancing",    "cuckoo[2,4]",
    // Heterogeneous-capacity variants: capacity-probing rules and a
    // uniform-probing rule over the same capacitated state.
    "capacities=1,2,4,8:one-choice",
    "capacities=1,2,4,8:greedy[2]",
    "capacities=1,2,4,8:left[2]",
    "capacities=1,3:adaptive-net",
    "capacities=2,5:memory[1,1]",
};

class RegistryChurnTest : public ::testing::TestWithParam<const char*> {};

// The satellite property: for every rule in the registry, a randomized
// interleaving of placements and departures leaves every incremental
// BinState metric equal to the naive recomputation from the raw loads.
TEST_P(RegistryChurnTest, MetricsStayExactUnderRandomInterleavings) {
  const std::uint32_t n = 32;
  // Provision fixed-bound rules (threshold) far above the population cap
  // below, so no interleaving can deadlock them.
  const std::uint64_t m_hint = 16ULL * n;
  const auto alloc = make_streaming_allocator(GetParam(), n, m_hint);
  rng::Engine gen(2024);
  // Population stays below 2n: batched[4] (capacity 4) and threshold
  // (bound 16) can then always admit another ball.
  const std::uint64_t cap = 2ULL * n;
  for (int step = 0; step < 3000; ++step) {
    const bool add = alloc->state().balls() == 0 ||
                     (alloc->state().balls() < cap && rng::bernoulli(gen, 0.55));
    if (add) {
      const std::uint32_t bin = alloc->place(gen);
      ASSERT_LT(bin, n);
    } else {
      alloc->remove(alloc->state().sample_nonempty(gen));
    }
    if (step % 97 == 0) expect_metrics_match(alloc->state());
  }
  expect_metrics_match(alloc->state());
  // The loads the rule produced are consistent with the ball count.
  std::uint64_t total = 0;
  for (const auto l : alloc->state().loads()) total += l;
  EXPECT_EQ(total, alloc->state().balls());
}

INSTANTIATE_TEST_SUITE_P(AllRegistryRules, RegistryChurnTest,
                         ::testing::ValuesIn(kAllSpecs));

// The same property under *weighted* placements: rules with atomic weight
// support take whole chains (random weights 1..6), everything else in the
// registry would go through the explode fallback (covered above); unit
// departures interleave throughout.
const char* const kWeightedSpecs[] = {
    "one-choice",
    "greedy[2]",
    "left[4]",
    "capacities=1,2,4,8:one-choice",
    "capacities=1,2,4,8:greedy[2]",
    "capacities=1,2,4,8:left[2]",
};

class WeightedChurnTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WeightedChurnTest, MetricsStayExactUnderWeightedInterleavings) {
  const std::uint32_t n = 32;
  const auto alloc = make_streaming_allocator(GetParam(), n);
  EXPECT_TRUE(alloc->rule().supports_weights());
  rng::Engine gen(777);
  const std::uint64_t cap = 8ULL * n;
  for (int step = 0; step < 2500; ++step) {
    const bool add = alloc->state().balls() == 0 ||
                     (alloc->state().balls() < cap && rng::bernoulli(gen, 0.55));
    if (add) {
      const auto w = static_cast<std::uint32_t>(1 + rng::uniform_below(gen, 6));
      const std::uint32_t bin = alloc->place_weighted(w, gen);
      ASSERT_LT(bin, n);
    } else {
      alloc->remove(alloc->state().sample_nonempty(gen));
    }
    if (step % 83 == 0) expect_metrics_match(alloc->state());
  }
  expect_metrics_match(alloc->state());
  std::uint64_t total = 0;
  for (const auto l : alloc->state().loads()) total += l;
  EXPECT_EQ(total, alloc->state().balls());
}

INSTANTIATE_TEST_SUITE_P(WeightCapableRules, WeightedChurnTest,
                         ::testing::ValuesIn(kWeightedSpecs));

// ------------------------------------------------------ adaptive mechanics

TEST(DynAdaptive, NetBoundKeepsMaxLoadTightArrivalsOnly) {
  const std::uint32_t n = 64;
  const auto alloc = make_streaming_allocator("adaptive-net", n);
  rng::Engine gen(42);
  for (std::uint64_t i = 1; i <= 10 * n; ++i) {
    alloc->place(gen);
    ASSERT_LE(alloc->state().max_load(), core::ceil_div(i, n) + 1) << "ball " << i;
  }
}

TEST(DynAdaptive, NetAndTotalAgreeWithoutDepartures) {
  rng::Engine g1(9), g2(9);
  const auto net = make_streaming_allocator("adaptive-net", 32);
  const auto total = make_streaming_allocator("adaptive-total", 32);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(net->place(g1), total->place(g2));
  }
  EXPECT_EQ(net->state().loads(), total->state().loads());
  EXPECT_EQ(net->probes(), total->probes());
  EXPECT_TRUE(g1 == g2);
}

TEST(DynAdaptive, BoundsDivergeUnderChurn) {
  // Remove/replace cycles advance the total counter but not the net count,
  // so the total variant's bound keeps climbing while net's stays put.
  const std::uint32_t n = 8;
  rng::Engine gen(5);
  const auto net = make_streaming_allocator("adaptive-net", n);
  const auto total = make_streaming_allocator("adaptive-total", n);
  const auto& net_rule = dynamic_cast<const core::AdaptiveRule&>(net->rule());
  const auto& total_rule = dynamic_cast<const core::AdaptiveRule&>(total->rule());
  for (std::uint32_t i = 0; i < 4 * n; ++i) {
    net->place(gen);
    total->place(gen);
  }
  const std::uint64_t net_bound = net_rule.accept_bound(net->state());
  EXPECT_EQ(net_bound, total_rule.accept_bound(total->state()));
  for (int cycle = 0; cycle < 100; ++cycle) {
    net->remove(net->state().sample_nonempty(gen));
    net->place(gen);
    total->remove(total->state().sample_nonempty(gen));
    total->place(gen);
  }
  EXPECT_EQ(net_rule.accept_bound(net->state()), net_bound);
  EXPECT_GT(total_rule.accept_bound(total->state()), net_bound + 10);
}

// ----------------------------------------------------- fixed-bound rules

TEST(DynThreshold, DeadlockIsDetectedNotSpun) {
  // threshold[slack] with the default m hint (= n) accepts load <= slack;
  // the slack-0 rule on 2 bins accepts only empty bins, so it admits two
  // balls and then deadlocks.
  const auto alloc = make_streaming_allocator("threshold[0]", 2);
  rng::Engine gen(3);
  alloc->place(gen);
  alloc->place(gen);
  EXPECT_EQ(alloc->state().max_load(), 1u);
  EXPECT_THROW(alloc->place(gen), std::logic_error);
  // A departure re-opens capacity.
  alloc->remove(0);
  EXPECT_NO_THROW(alloc->place(gen));
}

TEST(DynThreshold, MHintSetsTheBound) {
  // m hint 40 over 10 bins with slack 2: accept load <= ceil(40/10)+1 = 5,
  // so no bin can ever exceed 6 (bound + 1 by construction).
  const auto alloc = make_streaming_allocator("threshold[2]", 10, 40);
  rng::Engine gen(4);
  for (int i = 0; i < 50; ++i) alloc->place(gen);
  EXPECT_LE(alloc->state().max_load(), 6u);
}

TEST(DynBatched, CapacityHoldsUnderChurnAndDeadlockThrows) {
  const auto alloc = make_streaming_allocator("batched[2]", 4);
  rng::Engine gen(6);
  for (int i = 0; i < 8; ++i) alloc->place(gen);
  EXPECT_EQ(alloc->state().max_load(), 2u);
  EXPECT_EQ(alloc->state().min_load(), 2u);
  EXPECT_THROW(alloc->place(gen), std::logic_error);
  alloc->remove(1);
  EXPECT_EQ(alloc->place(gen), 1u);  // the only bin with spare capacity
}

TEST(DynCuckoo, ChurnMemoryStaysProportionalToPopulation) {
  // Rule-local state must be O(max population), not O(total insertions):
  // departed/parked item ids are recycled.
  const std::uint32_t n = 32;
  const auto alloc = make_streaming_allocator("cuckoo[2,4]", n);
  auto& rule = dynamic_cast<core::CuckooRule&>(alloc->rule());
  rng::Engine gen(11);
  const std::uint64_t population = 2ULL * n;
  for (std::uint64_t i = 0; i < population; ++i) alloc->place(gen);
  for (int cycle = 0; cycle < 5000; ++cycle) {
    alloc->remove(alloc->state().sample_nonempty(gen));
    alloc->place(gen);
  }
  EXPECT_EQ(alloc->state().balls(), population);
  // + stash slack: a failed insert can transiently hold one extra id.
  EXPECT_LE(rule.tracked_items(), population + rule.stash() + 1);
}

TEST(DynSelfBalancing, ChurnMemoryStaysProportionalToPopulation) {
  const std::uint32_t n = 32;
  const auto alloc = make_streaming_allocator("self-balancing", n);
  auto& rule = dynamic_cast<core::SelfBalancingRule&>(alloc->rule());
  rng::Engine gen(12);
  const std::uint64_t population = 2ULL * n;
  for (std::uint64_t i = 0; i < population; ++i) alloc->place(gen);
  for (int cycle = 0; cycle < 5000; ++cycle) {
    alloc->remove(alloc->state().sample_nonempty(gen));
    alloc->place(gen);
  }
  EXPECT_EQ(rule.tracked_balls(), population);
}

TEST(StreamingAllocator, RejectsRuleBuiltForDifferentN) {
  // n-bound rules (group partitions, resident tables, fixed bounds)
  // declare their n; pairing them with a mismatched BinState is an error,
  // not out-of-bounds indexing.
  for (const char* spec : {"left[2]", "cuckoo[2,4]", "skewed-adaptive[50]",
                           "threshold", "doubling-threshold[0]",
                           "stale-adaptive[2]"}) {
    EXPECT_THROW(StreamingAllocator(64, core::make_rule(spec, 32)),
                 std::invalid_argument)
        << spec;
  }
  // Unbound rules work with any state size.
  EXPECT_NO_THROW(StreamingAllocator(64, core::make_rule("greedy[2]", 32)));
}

TEST(DynCuckoo, BinVictimDepartureKeepsResidentsConsistent) {
  const std::uint32_t n = 16;
  const auto alloc = make_streaming_allocator("cuckoo[2,4]", n);
  EXPECT_FALSE(alloc->rule().stable_ball_identity());
  rng::Engine gen(8);
  for (int i = 0; i < 3 * 16; ++i) alloc->place(gen);
  for (int cycle = 0; cycle < 200; ++cycle) {
    alloc->remove(alloc->state().sample_nonempty(gen));
    alloc->place(gen);
  }
  expect_metrics_match(alloc->state());
}

// ---------------------------------------------------------------- registry

TEST(Registry, BuildsEverySpecShape) {
  const std::uint32_t n = 16;
  EXPECT_EQ(make_streaming_allocator("one-choice", n)->name(), "one-choice");
  EXPECT_EQ(make_streaming_allocator("greedy[2]", n)->name(), "greedy[2]");
  EXPECT_EQ(make_streaming_allocator("left[2]", n)->name(), "left[2]");
  EXPECT_EQ(make_streaming_allocator("memory[1,1]", n)->name(), "memory[1,1]");
  EXPECT_EQ(make_streaming_allocator("adaptive-net", n)->name(), "adaptive-net");
  EXPECT_EQ(make_streaming_allocator("adaptive-net[2]", n)->name(), "adaptive-net[2]");
  EXPECT_EQ(make_streaming_allocator("adaptive-total", n)->name(), "adaptive-total");
  EXPECT_EQ(make_streaming_allocator("adaptive-total[3]", n)->name(),
            "adaptive-total[3]");
  EXPECT_EQ(make_streaming_allocator("threshold[4]", n)->name(), "threshold[4]");
  EXPECT_EQ(make_streaming_allocator("doubling-threshold[0]", n)->name(),
            "doubling-threshold[0]");
  EXPECT_EQ(make_streaming_allocator("stale-adaptive[4]", n)->name(),
            "stale-adaptive[4]");
  EXPECT_EQ(make_streaming_allocator("skewed-adaptive[50]", n)->name(),
            "skewed-adaptive[50]");
  EXPECT_EQ(make_streaming_allocator("batched[4]", n)->name(), "batched[4]");
  EXPECT_EQ(make_streaming_allocator("self-balancing", n)->name(), "self-balancing");
  EXPECT_EQ(make_streaming_allocator("cuckoo[2,4]", n)->name(), "cuckoo[2,4]");
}

TEST(Registry, NameRoundTripsThroughRegistry) {
  for (const std::string spec :
       {"one-choice", "greedy[3]", "left[2]", "memory[2,1]", "adaptive-net",
        "adaptive-total[2]", "threshold[5]", "stale-adaptive[2]",
        "skewed-adaptive[50]", "batched[2]", "self-balancing", "cuckoo[2,4]"}) {
    const auto alloc = make_streaming_allocator(spec, 8);
    const auto rebuilt = make_streaming_allocator(alloc->name(), 8);
    EXPECT_EQ(rebuilt->name(), alloc->name());
  }
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_streaming_allocator("nope", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[x]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("one-choice[1]", 8),
               std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("adaptive-net[1,2]", 8),
               std::invalid_argument);
  // Parameters invalid at this n are rejected at construction.
  EXPECT_THROW((void)make_streaming_allocator("left[9]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("stale-adaptive[9]", 8),
               std::invalid_argument);
  // Negative and uint32-overflowing arguments are rejected, not wrapped.
  EXPECT_THROW((void)make_streaming_allocator("greedy[-1]", 8),
               std::invalid_argument);
  EXPECT_THROW((void)make_streaming_allocator("greedy[4294967297]", 8),
               std::invalid_argument);
}

TEST(Registry, SpecsListCoversTheFullRegistry) {
  const auto specs = streaming_allocator_specs();
  EXPECT_EQ(specs, core::protocol_specs());
  EXPECT_GE(specs.size(), 15u);
}

}  // namespace
}  // namespace bbb::dyn
