/// Tests for the dynamic engine: determinism across thread counts, the
/// ball-registry departure paths, steady-state sanity for the supermarket
/// and churn scenarios, and snapshot cadence.

#include "bbb/dyn/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bbb::dyn {
namespace {

DynConfig small_config() {
  DynConfig cfg;
  cfg.allocator_spec = "greedy[2]";
  cfg.workload_spec = "supermarket[80]";
  cfg.n = 64;
  cfg.warmup = 2'000;
  cfg.events = 4'000;
  cfg.stride = 500;
  cfg.tail_max = 8;
  cfg.replicates = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  const DynConfig cfg = small_config();
  par::ThreadPool one(1), four(4);
  const DynSummary a = run_dynamic(cfg, one);
  const DynSummary b = run_dynamic(cfg, four);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  EXPECT_DOUBLE_EQ(a.psi.mean(), b.psi.mean());
  EXPECT_DOUBLE_EQ(a.balls.mean(), b.balls.mean());
  EXPECT_DOUBLE_EQ(a.probes_per_ball.mean(), b.probes_per_ball.mean());
  for (std::size_t r = 0; r < a.replicates.size(); ++r) {
    ASSERT_EQ(a.replicates[r].snapshots.size(), b.replicates[r].snapshots.size());
    for (std::size_t s = 0; s < a.replicates[r].snapshots.size(); ++s) {
      EXPECT_EQ(a.replicates[r].snapshots[s].balls, b.replicates[r].snapshots[s].balls);
      EXPECT_DOUBLE_EQ(a.replicates[r].snapshots[s].psi,
                       b.replicates[r].snapshots[s].psi);
    }
  }
}

TEST(Engine, SupermarketSteadyStateOccupancyIsPlausible) {
  DynConfig cfg = small_config();
  cfg.allocator_spec = "one-choice";
  cfg.warmup = 20'000;
  cfg.events = 20'000;
  const DynSummary s = run_dynamic(cfg);
  // M/M/1 farm at lambda = 0.8: mean balls per bin is lambda/(1-lambda) = 4
  // in the infinite-buffer limit; the finite run should land in a broad
  // band around lambda*n at minimum.
  EXPECT_GT(s.balls.mean(), 0.5 * 0.8 * cfg.n);
  EXPECT_LT(s.balls.mean(), 12.0 * cfg.n);
  // tail[0] == 1 by definition; the tail is monotone nonincreasing.
  ASSERT_EQ(s.tail.size(), static_cast<std::size_t>(cfg.tail_max) + 1);
  EXPECT_DOUBLE_EQ(s.tail[0].mean(), 1.0);
  for (std::size_t k = 1; k < s.tail.size(); ++k) {
    EXPECT_LE(s.tail[k].mean(), s.tail[k - 1].mean() + 1e-12) << "k=" << k;
  }
}

TEST(Engine, TwoChoicesBeatOneChoiceInTheTail) {
  DynConfig cfg = small_config();
  cfg.n = 128;
  cfg.warmup = 30'000;
  cfg.events = 30'000;
  cfg.workload_spec = "supermarket[90]";
  cfg.replicates = 4;
  cfg.allocator_spec = "one-choice";
  const DynSummary one = run_dynamic(cfg);
  cfg.allocator_spec = "greedy[2]";
  const DynSummary two = run_dynamic(cfg);
  // The doubly-exponential fixed point: by k = 4 the two-choice tail is
  // far below one-choice's geometric tail (0.9^4 ~ 0.66 vs ~0.2).
  EXPECT_LT(two.tail[4].mean(), 0.6 * one.tail[4].mean());
  EXPECT_LT(two.max_load.mean(), one.max_load.mean());
}

TEST(Engine, ChurnHoldsPopulationAndUsesRegistry) {
  DynConfig cfg;
  cfg.allocator_spec = "adaptive-net";
  cfg.workload_spec = "churn[512]";
  cfg.n = 64;
  cfg.warmup = 1'024;  // > population: fill phase complete before measuring
  cfg.events = 4'096;
  cfg.stride = 512;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  // Population alternates 512 <-> 511 while churning.
  EXPECT_GT(s.balls.mean(), 511.0 - 1.0);
  EXPECT_LT(s.balls.mean(), 512.0 + 1.0);
}

TEST(Engine, OldestBallChurnDrivesFifoPath) {
  DynConfig cfg;
  cfg.allocator_spec = "one-choice";
  cfg.workload_spec = "churn-oldest[100]";
  cfg.n = 16;
  cfg.warmup = 200;
  cfg.events = 1'000;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  EXPECT_NEAR(s.balls.mean(), 100.0, 1.0);
}

TEST(Engine, AdaptiveNetSmootherThanTotalUnderChurn) {
  DynConfig cfg;
  cfg.workload_spec = "churn[1024]";
  cfg.n = 128;
  cfg.warmup = 4'096;
  cfg.events = 16'384;
  cfg.replicates = 2;
  cfg.allocator_spec = "adaptive-net";
  const DynSummary net = run_dynamic(cfg);
  cfg.allocator_spec = "adaptive-total";
  const DynSummary total = run_dynamic(cfg);
  // The total-placed bound goes vacuous under churn (it keeps climbing
  // while the population holds), so its Psi drifts toward one-choice
  // roughness; the net bound keeps the vector smooth.
  EXPECT_LT(net.psi_per_bin(), total.psi_per_bin());
}

TEST(Engine, SnapshotCadenceAndMonotonicity) {
  const DynConfig cfg = small_config();
  const DynReplicate rep = run_dynamic_replicate(cfg, 0);
  ASSERT_FALSE(rep.snapshots.empty());
  EXPECT_EQ(rep.snapshots.back().events, cfg.events);
  std::uint64_t last = 0;
  double last_time = 0.0;
  for (const DynSnapshot& snap : rep.snapshots) {
    EXPECT_GT(snap.events, last);
    EXPECT_GE(snap.time, last_time);
    EXPECT_TRUE(snap.events % cfg.stride == 0 || snap.events == cfg.events);
    last = snap.events;
    last_time = snap.time;
  }
}

TEST(Engine, ProbesPerBallAtLeastOne) {
  const DynConfig cfg = small_config();
  const DynSummary s = run_dynamic(cfg);
  EXPECT_GE(s.probes_per_ball.mean(), 1.0);
}

TEST(Engine, DescribeMentionsBothSpecs) {
  const DynConfig cfg = small_config();
  const std::string desc = cfg.describe();
  EXPECT_NE(desc.find("greedy[2]"), std::string::npos);
  EXPECT_NE(desc.find("supermarket[80]"), std::string::npos);
}

TEST(Engine, InvalidConfigsThrow) {
  DynConfig cfg = small_config();
  cfg.replicates = 0;
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.events = 0;
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.allocator_spec = "nope";
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.workload_spec = "nope";
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::dyn
