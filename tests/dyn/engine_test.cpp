/// Tests for the dynamic engine: determinism across thread counts, the
/// ball-registry departure paths, steady-state sanity for the supermarket
/// and churn scenarios, and snapshot cadence.

#include "bbb/dyn/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bbb::dyn {
namespace {

DynConfig small_config() {
  DynConfig cfg;
  cfg.allocator_spec = "greedy[2]";
  cfg.workload_spec = "supermarket[80]";
  cfg.n = 64;
  cfg.warmup = 2'000;
  cfg.events = 4'000;
  cfg.stride = 500;
  cfg.tail_max = 8;
  cfg.replicates = 4;
  cfg.seed = 42;
  return cfg;
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  const DynConfig cfg = small_config();
  par::ThreadPool one(1), four(4);
  const DynSummary a = run_dynamic(cfg, one);
  const DynSummary b = run_dynamic(cfg, four);
  ASSERT_EQ(a.replicates.size(), b.replicates.size());
  EXPECT_DOUBLE_EQ(a.psi.mean(), b.psi.mean());
  EXPECT_DOUBLE_EQ(a.balls.mean(), b.balls.mean());
  EXPECT_DOUBLE_EQ(a.probes_per_ball.mean(), b.probes_per_ball.mean());
  for (std::size_t r = 0; r < a.replicates.size(); ++r) {
    ASSERT_EQ(a.replicates[r].snapshots.size(), b.replicates[r].snapshots.size());
    for (std::size_t s = 0; s < a.replicates[r].snapshots.size(); ++s) {
      EXPECT_EQ(a.replicates[r].snapshots[s].balls, b.replicates[r].snapshots[s].balls);
      EXPECT_DOUBLE_EQ(a.replicates[r].snapshots[s].psi,
                       b.replicates[r].snapshots[s].psi);
    }
  }
}

TEST(Engine, SupermarketSteadyStateOccupancyIsPlausible) {
  DynConfig cfg = small_config();
  cfg.allocator_spec = "one-choice";
  cfg.warmup = 20'000;
  cfg.events = 20'000;
  const DynSummary s = run_dynamic(cfg);
  // M/M/1 farm at lambda = 0.8: mean balls per bin is lambda/(1-lambda) = 4
  // in the infinite-buffer limit; the finite run should land in a broad
  // band around lambda*n at minimum.
  EXPECT_GT(s.balls.mean(), 0.5 * 0.8 * cfg.n);
  EXPECT_LT(s.balls.mean(), 12.0 * cfg.n);
  // tail[0] == 1 by definition; the tail is monotone nonincreasing.
  ASSERT_EQ(s.tail.size(), static_cast<std::size_t>(cfg.tail_max) + 1);
  EXPECT_DOUBLE_EQ(s.tail[0].mean(), 1.0);
  for (std::size_t k = 1; k < s.tail.size(); ++k) {
    EXPECT_LE(s.tail[k].mean(), s.tail[k - 1].mean() + 1e-12) << "k=" << k;
  }
}

TEST(Engine, TwoChoicesBeatOneChoiceInTheTail) {
  DynConfig cfg = small_config();
  cfg.n = 128;
  cfg.warmup = 30'000;
  cfg.events = 30'000;
  cfg.workload_spec = "supermarket[90]";
  cfg.replicates = 4;
  cfg.allocator_spec = "one-choice";
  const DynSummary one = run_dynamic(cfg);
  cfg.allocator_spec = "greedy[2]";
  const DynSummary two = run_dynamic(cfg);
  // The doubly-exponential fixed point: by k = 4 the two-choice tail is
  // far below one-choice's geometric tail (0.9^4 ~ 0.66 vs ~0.2).
  EXPECT_LT(two.tail[4].mean(), 0.6 * one.tail[4].mean());
  EXPECT_LT(two.max_load.mean(), one.max_load.mean());
}

TEST(Engine, ChurnHoldsPopulationAndUsesRegistry) {
  DynConfig cfg;
  cfg.allocator_spec = "adaptive-net";
  cfg.workload_spec = "churn[512]";
  cfg.n = 64;
  cfg.warmup = 1'024;  // > population: fill phase complete before measuring
  cfg.events = 4'096;
  cfg.stride = 512;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  // Population alternates 512 <-> 511 while churning.
  EXPECT_GT(s.balls.mean(), 511.0 - 1.0);
  EXPECT_LT(s.balls.mean(), 512.0 + 1.0);
}

TEST(Engine, OldestBallChurnDrivesFifoPath) {
  DynConfig cfg;
  cfg.allocator_spec = "one-choice";
  cfg.workload_spec = "churn-oldest[100]";
  cfg.n = 16;
  cfg.warmup = 200;
  cfg.events = 1'000;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  EXPECT_NEAR(s.balls.mean(), 100.0, 1.0);
}

TEST(Engine, AdaptiveNetSmootherThanTotalUnderChurn) {
  DynConfig cfg;
  cfg.workload_spec = "churn[1024]";
  cfg.n = 128;
  cfg.warmup = 4'096;
  cfg.events = 16'384;
  cfg.replicates = 2;
  cfg.allocator_spec = "adaptive-net";
  const DynSummary net = run_dynamic(cfg);
  cfg.allocator_spec = "adaptive-total";
  const DynSummary total = run_dynamic(cfg);
  // The total-placed bound goes vacuous under churn (it keeps climbing
  // while the population holds), so its Psi drifts toward one-choice
  // roughness; the net bound keeps the vector smooth.
  EXPECT_LT(net.psi_per_bin(), total.psi_per_bin());
}

TEST(Engine, SnapshotCadenceAndMonotonicity) {
  const DynConfig cfg = small_config();
  const DynReplicate rep = run_dynamic_replicate(cfg, 0);
  ASSERT_FALSE(rep.snapshots.empty());
  EXPECT_EQ(rep.snapshots.back().events, cfg.events);
  std::uint64_t last = 0;
  double last_time = 0.0;
  for (const DynSnapshot& snap : rep.snapshots) {
    EXPECT_GT(snap.events, last);
    EXPECT_GE(snap.time, last_time);
    EXPECT_TRUE(snap.events % cfg.stride == 0 || snap.events == cfg.events);
    last = snap.events;
    last_time = snap.time;
  }
}

TEST(Engine, ProbesPerBallAtLeastOne) {
  const DynConfig cfg = small_config();
  const DynSummary s = run_dynamic(cfg);
  EXPECT_GE(s.probes_per_ball.mean(), 1.0);
}

TEST(Engine, DescribeMentionsBothSpecs) {
  const DynConfig cfg = small_config();
  const std::string desc = cfg.describe();
  EXPECT_NE(desc.find("greedy[2]"), std::string::npos);
  EXPECT_NE(desc.find("supermarket[80]"), std::string::npos);
}

TEST(Engine, NoDroppedDeparturesAcrossAllGeneratorAllocatorCombos) {
  // The shipped generators promise never to emit a departure when the
  // system is empty; the engine now counts violations instead of silently
  // swallowing them. Sweep every workload family against allocators
  // covering each departure path (ball registry, FIFO, nonempty-bin,
  // unstable-identity override) and demand a zero count.
  const char* const workloads[] = {
      "supermarket[85]",        "churn[256]",        "churn-oldest[256]",
      "bursty[95,10,25]",       "chains[80,110,6]",  "weighted:chains[80,110,6]",
  };
  const char* const allocators[] = {"one-choice", "greedy[2]", "adaptive-net",
                                    "cuckoo[2,8]"};
  for (const char* workload : workloads) {
    for (const char* allocator : allocators) {
      DynConfig cfg;
      cfg.allocator_spec = allocator;
      cfg.workload_spec = workload;
      cfg.n = 32;
      cfg.warmup = 500;
      cfg.events = 2'000;
      cfg.stride = 0;
      cfg.replicates = 2;
      const DynSummary s = run_dynamic(cfg);
      EXPECT_EQ(s.dropped_departures, 0u) << allocator << " x " << workload;
      for (const DynReplicate& rep : s.replicates) {
        EXPECT_EQ(rep.dropped_departures, 0u) << allocator << " x " << workload;
      }
    }
  }
}

TEST(Engine, WeightedChainsPlaceAtomicallyForWeightCapableRules) {
  // weighted:chains + greedy[2]: one 2-probe decision per chain, so probes
  // per *ball* drop below 2 exactly when chains land atomically; the
  // unprefixed workload pays 2 probes per unit ball.
  DynConfig cfg;
  cfg.allocator_spec = "greedy[2]";
  cfg.workload_spec = "weighted:chains[80,0,8]";  // uniform lengths 1..8
  cfg.n = 64;
  cfg.warmup = 2'000;
  cfg.events = 8'000;
  cfg.replicates = 2;
  const DynSummary atomic = run_dynamic(cfg);
  cfg.workload_spec = "chains[80,0,8]";
  const DynSummary exploded = run_dynamic(cfg);
  EXPECT_NEAR(exploded.probes_per_ball.mean(), 2.0, 1e-9);
  // Mean chain length 4.5 -> ~2/4.5 ~ 0.44 probes per ball.
  EXPECT_LT(atomic.probes_per_ball.mean(), 1.0);
  // Atomic chains pile whole bursts into single bins: the load vector is
  // strictly rougher than the per-ball spread.
  EXPECT_GT(atomic.psi.mean(), exploded.psi.mean());
}

TEST(Engine, WeightedChainsFallBackToExplodeForUnitRules) {
  // adaptive has no atomic weighted form; the engine must route the chain
  // through the unit-explode fallback and still run green.
  DynConfig cfg;
  cfg.allocator_spec = "adaptive-net";
  cfg.workload_spec = "weighted:chains[80,110,6]";
  cfg.n = 32;
  cfg.warmup = 1'000;
  cfg.events = 4'000;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  EXPECT_EQ(s.workload_name, "weighted:chains[80,110,6]");
  EXPECT_GE(s.probes_per_ball.mean(), 1.0);  // every unit ball probes
  EXPECT_EQ(s.dropped_departures, 0u);
}

TEST(Engine, HeterogeneousAllocatorRunsUnderChurn) {
  DynConfig cfg;
  cfg.allocator_spec = "capacities=1,2,4,8:greedy[2]";
  cfg.workload_spec = "churn[512]";
  cfg.n = 64;
  cfg.warmup = 1'024;
  cfg.events = 4'096;
  cfg.replicates = 2;
  const DynSummary s = run_dynamic(cfg);
  EXPECT_EQ(s.allocator_name, "capacities=1,2,4,8:greedy[2]");
  EXPECT_NEAR(s.balls.mean(), 511.5, 1.0);
}

TEST(Engine, InvalidConfigsThrow) {
  DynConfig cfg = small_config();
  cfg.replicates = 0;
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.events = 0;
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.allocator_spec = "nope";
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
  cfg = small_config();
  cfg.workload_spec = "nope";
  EXPECT_THROW((void)run_dynamic(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace bbb::dyn
