/// The API-pinning property (satellite of the dyn subsystem): every
/// streaming allocator, fed an arrivals-only event stream, reproduces the
/// matching batch Protocol::run result *bit-for-bit* from the same engine
/// state — identical loads, identical probe counts, and identical final
/// engine state (so the two APIs consume randomness in lockstep, not just
/// converge in distribution).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/core/protocols/threshold.hpp"
#include "bbb/dyn/allocator.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::dyn {
namespace {

struct Shape {
  std::uint64_t m;
  std::uint32_t n;
};

const Shape kShapes[] = {{1, 1}, {7, 3}, {100, 10}, {257, 64}, {1000, 33}};
const std::uint64_t kSeeds[] = {1, 42, 0xdeadbeef};

void expect_bitwise_equal(const std::string& dyn_spec, const std::string& batch_spec,
                          Shape shape, std::uint64_t seed) {
  rng::Engine batch_gen(seed), dyn_gen(seed);

  const auto protocol = core::make_protocol(batch_spec);
  const core::AllocationResult batch = protocol->run(shape.m, shape.n, batch_gen);

  const auto alloc = make_streaming_allocator(dyn_spec, shape.n);
  for (std::uint64_t i = 0; i < shape.m; ++i) alloc->place(dyn_gen);

  EXPECT_EQ(alloc->state().loads(), batch.loads)
      << dyn_spec << " vs " << batch_spec << " m=" << shape.m << " n=" << shape.n
      << " seed=" << seed;
  EXPECT_EQ(alloc->probes(), batch.probes);
  EXPECT_EQ(alloc->state().balls(), batch.balls);
  // Same draws in the same order: the engines end in the same state.
  EXPECT_TRUE(dyn_gen == batch_gen);
}

TEST(BatchEquivalence, OneChoice) {
  for (const Shape shape : kShapes) {
    for (const std::uint64_t seed : kSeeds) {
      expect_bitwise_equal("one-choice", "one-choice", shape, seed);
    }
  }
}

TEST(BatchEquivalence, GreedyD) {
  for (const std::uint32_t d : {2u, 3u, 5u}) {
    const std::string spec = "greedy[" + std::to_string(d) + "]";
    for (const Shape shape : kShapes) {
      for (const std::uint64_t seed : kSeeds) {
        expect_bitwise_equal(spec, spec, shape, seed);
      }
    }
  }
}

TEST(BatchEquivalence, AdaptiveTotalBound) {
  for (const std::uint32_t slack : {1u, 2u}) {
    const std::string suffix = slack == 1 ? "" : "[" + std::to_string(slack) + "]";
    const std::string batch = slack == 1 ? "adaptive" : "adaptive[2]";
    for (const Shape shape : kShapes) {
      for (const std::uint64_t seed : kSeeds) {
        expect_bitwise_equal("adaptive-total" + suffix, batch, shape, seed);
      }
    }
  }
}

TEST(BatchEquivalence, AdaptiveNetBoundEqualsTotalWithoutDepartures) {
  // With no departures, net == total, so the net variant must match the
  // batch adaptive protocol too — the two variants only diverge once balls
  // leave.
  for (const Shape shape : kShapes) {
    for (const std::uint64_t seed : kSeeds) {
      expect_bitwise_equal("adaptive-net", "adaptive", shape, seed);
    }
  }
}

TEST(BatchEquivalence, ThresholdFixedBound) {
  // The dynamic threshold takes the acceptance bound directly; the batch
  // allocator derives it from (m, slack). Matching the derivation makes
  // the runs identical.
  for (const std::uint32_t slack : {1u, 2u}) {
    for (const Shape shape : kShapes) {
      const auto bound = static_cast<std::uint32_t>(
          core::ceil_div(shape.m, shape.n) + slack - 1);
      const std::string dyn_spec = "threshold[" + std::to_string(bound) + "]";
      const std::string batch_spec =
          slack == 1 ? "threshold" : "threshold[" + std::to_string(slack) + "]";
      for (const std::uint64_t seed : kSeeds) {
        expect_bitwise_equal(dyn_spec, batch_spec, shape, seed);
      }
    }
  }
}

TEST(BatchEquivalence, SeedSequenceReplicateStreamsMatchToo) {
  // The engine derives replicate streams via SeedSequence; the pinning
  // holds through that path as well (what run_dynamic_replicate uses).
  for (std::uint32_t rep = 0; rep < 3; ++rep) {
    rng::Engine batch_gen = rng::SeedSequence(42).engine(rep);
    rng::Engine dyn_gen = rng::SeedSequence(42).engine(rep);
    const auto protocol = core::make_protocol("adaptive");
    const core::AllocationResult batch = protocol->run(500, 25, batch_gen);
    const auto alloc = make_streaming_allocator("adaptive-net", 25);
    for (int i = 0; i < 500; ++i) alloc->place(dyn_gen);
    EXPECT_EQ(alloc->state().loads(), batch.loads) << "replicate " << rep;
    EXPECT_EQ(alloc->probes(), batch.probes);
    EXPECT_TRUE(dyn_gen == batch_gen);
  }
}

}  // namespace
}  // namespace bbb::dyn
