/// The API-pinning property of the unified streaming core: every registry
/// rule with batch_equivalent(), fed an arrivals-only event stream,
/// reproduces the matching batch Protocol::run result *bit-for-bit* from
/// the same engine state — identical loads, identical probe counts, and
/// identical final engine state (so the two drivers consume randomness in
/// lockstep by construction, not just converge in distribution).
///
/// The two documented exceptions carry batch_equivalent() == false:
///   * batched — its batch form is the round-synchronous LW protocol over
///     the whole ball set, not a place_one loop;
///   * self-balancing — its batch form appends the balancing sweeps
///     (finalize), which an open-ended stream never reaches.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bbb/core/protocol.hpp"
#include "bbb/core/protocols/registry.hpp"
#include "bbb/dyn/allocator.hpp"
#include "bbb/rng/streams.hpp"

namespace bbb::dyn {
namespace {

struct Shape {
  std::uint64_t m;
  std::uint32_t n;
};

const Shape kShapes[] = {{1, 1}, {7, 3}, {100, 10}, {257, 64}, {1000, 33}};
const std::uint64_t kSeeds[] = {1, 42, 0xdeadbeef};

// Parameters valid at every shape above need n >= some minimum; the sweep
// skips shapes a spec cannot run at (left[d]/cuckoo[d,k] need d <= n,
// stale-adaptive[delta] needs delta <= n).
std::uint32_t min_bins(const std::string& spec) {
  if (spec.rfind("left[", 0) == 0) return spec[5] - '0';
  if (spec.rfind("stale-adaptive[", 0) == 0) return spec[15] - '0';
  if (spec.rfind("cuckoo", 0) == 0) return 2;
  return 1;
}

void expect_bitwise_equal(const std::string& spec, Shape shape, std::uint64_t seed) {
  rng::Engine batch_gen(seed), dyn_gen(seed);

  const auto protocol = core::make_protocol(spec);
  const core::AllocationResult batch = protocol->run(shape.m, shape.n, batch_gen);

  // The m hint binds fixed-bound rules (threshold) to the same total the
  // batch run received. Engine exclusivity matches the batch adapter
  // (run_rule promises it too), so rules with a probe lookahead read
  // ahead identically on both sides — this sweep is also the end-to-end
  // proof that the lookahead's FIFO buffering changes no consumed word.
  const auto alloc = make_streaming_allocator(spec, shape.n, shape.m);
  alloc->set_engine_exclusive(true);
  for (std::uint64_t i = 0; i < shape.m; ++i) alloc->place(dyn_gen);

  EXPECT_EQ(alloc->state().loads(), batch.loads)
      << spec << " m=" << shape.m << " n=" << shape.n << " seed=" << seed;
  EXPECT_EQ(alloc->probes(), batch.probes) << spec;
  EXPECT_EQ(alloc->state().balls(), batch.balls) << spec;
  // Same draws in the same order (including any lookahead read-ahead):
  // the engines end in the same state.
  EXPECT_TRUE(dyn_gen == batch_gen) << spec;
}

// Every batch-equivalent spec shape in the registry, swept over the shape
// and seed grid.
const char* const kEquivalentSpecs[] = {
    "one-choice",        "greedy[2]",     "greedy[3]",
    "greedy[5]",         "left[2]",       "left[4]",
    "memory[1,1]",       "memory[2,2]",   "threshold",
    "threshold[0]",      "threshold[2]",  "doubling-threshold[0]",
    "doubling-threshold[7]",              "adaptive",
    "adaptive[0]",       "adaptive[2]",   "adaptive-net",
    "adaptive-net[2]",   "adaptive-total", "adaptive-total[2]",
    "stale-adaptive[1]", "stale-adaptive[3]",
    "skewed-adaptive[0]", "skewed-adaptive[75]",
    "cuckoo[2,4]",       "cuckoo[3,2]",
};

class BatchEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchEquivalenceTest, StreamingReproducesBatchBitForBit) {
  const std::string spec = GetParam();
  ASSERT_TRUE(core::make_rule(spec, 8, 8)->batch_equivalent()) << spec;
  for (const Shape shape : kShapes) {
    if (shape.n < min_bins(spec)) continue;
    for (const std::uint64_t seed : kSeeds) {
      expect_bitwise_equal(spec, shape, seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEquivalentRules, BatchEquivalenceTest,
                         ::testing::ValuesIn(kEquivalentSpecs));

TEST(BatchEquivalence, ExceptionsDeclareThemselves) {
  // The two rules whose batch form is not the place_one loop say so; the
  // sweep above relies on this trait to be exhaustive over the rest.
  EXPECT_FALSE(core::make_rule("batched[2]", 8)->batch_equivalent());
  EXPECT_FALSE(core::make_rule("self-balancing", 8)->batch_equivalent());
  EXPECT_TRUE(core::make_rule("adaptive", 8)->batch_equivalent());
}

TEST(BatchEquivalence, AdaptiveNetEqualsAdaptiveWithoutDepartures) {
  // With no departures, net == total, so all three adaptive spellings are
  // the same process — the variants only diverge once balls leave.
  for (const Shape shape : kShapes) {
    for (const std::uint64_t seed : kSeeds) {
      rng::Engine g1(seed), g2(seed);
      const auto batch = core::make_protocol("adaptive")->run(shape.m, shape.n, g1);
      const auto alloc = make_streaming_allocator("adaptive-net", shape.n);
      for (std::uint64_t i = 0; i < shape.m; ++i) alloc->place(g2);
      EXPECT_EQ(alloc->state().loads(), batch.loads);
      EXPECT_EQ(alloc->probes(), batch.probes);
      EXPECT_TRUE(g1 == g2);
    }
  }
}

TEST(BatchEquivalence, SeedSequenceReplicateStreamsMatchToo) {
  // The engine derives replicate streams via SeedSequence; the pinning
  // holds through that path as well (what run_dynamic_replicate uses).
  for (std::uint32_t rep = 0; rep < 3; ++rep) {
    rng::Engine batch_gen = rng::SeedSequence(42).engine(rep);
    rng::Engine dyn_gen = rng::SeedSequence(42).engine(rep);
    const auto protocol = core::make_protocol("adaptive");
    const core::AllocationResult batch = protocol->run(500, 25, batch_gen);
    const auto alloc = make_streaming_allocator("adaptive-net", 25);
    for (int i = 0; i < 500; ++i) alloc->place(dyn_gen);
    EXPECT_EQ(alloc->state().loads(), batch.loads) << "replicate " << rep;
    EXPECT_EQ(alloc->probes(), batch.probes);
    EXPECT_TRUE(dyn_gen == batch_gen);
  }
}

}  // namespace
}  // namespace bbb::dyn
