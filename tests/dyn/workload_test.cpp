/// Tests for the workload generators: event legality (no departures from
/// an empty system, strictly increasing clocks), the structural properties
/// of each generator, and the spec registry.

#include "bbb/dyn/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace bbb::dyn {
namespace {

TEST(Supermarket, RejectsUnstableOrDegenerateParameters) {
  EXPECT_THROW(SupermarketWorkload(0, 0.5), std::invalid_argument);
  EXPECT_THROW(SupermarketWorkload(8, 0.0), std::invalid_argument);
  EXPECT_THROW(SupermarketWorkload(8, 1.0), std::invalid_argument);
  EXPECT_THROW(SupermarketWorkload(8, 1.5), std::invalid_argument);
  EXPECT_NO_THROW(SupermarketWorkload(8, 0.99));
}

TEST(Supermarket, OnlyArrivalsWhenEmpty) {
  SupermarketWorkload wl(16, 0.9);
  rng::Engine gen(1);
  const WorkloadContext empty{0, 0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(wl.next(gen, empty).kind, EventKind::kArrival);
  }
}

TEST(Supermarket, ClockStrictlyIncreases) {
  SupermarketWorkload wl(16, 0.5);
  rng::Engine gen(2);
  double last = 0.0;
  const WorkloadContext ctx{10, 8};
  for (int i = 0; i < 500; ++i) {
    const DynEvent ev = wl.next(gen, ctx);
    EXPECT_GT(ev.time, last);
    last = ev.time;
  }
}

TEST(Supermarket, ArrivalFractionTracksRates) {
  // With lambda*n = 8 and 8 busy bins the arrival probability is 1/2.
  SupermarketWorkload wl(16, 0.5);
  rng::Engine gen(3);
  const WorkloadContext ctx{20, 8};
  int arrivals = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    arrivals += wl.next(gen, ctx).kind == EventKind::kArrival ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(arrivals) / kTrials, 0.5, 0.02);
}

TEST(Supermarket, DepartSelectIsNonemptyBin) {
  SupermarketWorkload wl(4, 0.5);
  EXPECT_EQ(wl.depart_select(), DepartSelect::kUniformNonemptyBin);
  EXPECT_EQ(wl.name(), "supermarket[50]");
}

TEST(Churn, FillsThenAlternatesExactly) {
  const std::uint64_t population = 25;
  ChurnWorkload wl(population, DepartSelect::kUniformBall);
  rng::Engine gen(4);
  WorkloadContext ctx{0, 0};
  for (std::uint64_t i = 0; i < population; ++i) {
    const DynEvent ev = wl.next(gen, ctx);
    EXPECT_EQ(ev.kind, EventKind::kArrival) << "fill event " << i;
    ++ctx.balls;
  }
  for (int cycle = 0; cycle < 50; ++cycle) {
    EXPECT_EQ(wl.next(gen, ctx).kind, EventKind::kDeparture);
    EXPECT_EQ(wl.next(gen, ctx).kind, EventKind::kArrival);
  }
}

TEST(Churn, VictimPolicyAndNames) {
  EXPECT_EQ(ChurnWorkload(5, DepartSelect::kUniformBall).depart_select(),
            DepartSelect::kUniformBall);
  EXPECT_EQ(ChurnWorkload(5, DepartSelect::kOldestBall).depart_select(),
            DepartSelect::kOldestBall);
  EXPECT_EQ(ChurnWorkload(5, DepartSelect::kUniformBall).name(), "churn[5]");
  EXPECT_EQ(ChurnWorkload(5, DepartSelect::kOldestBall).name(), "churn-oldest[5]");
  EXPECT_THROW(ChurnWorkload(0, DepartSelect::kUniformBall), std::invalid_argument);
  EXPECT_THROW(ChurnWorkload(5, DepartSelect::kUniformNonemptyBin),
               std::invalid_argument);
}

TEST(Bursty, ValidatesRates) {
  EXPECT_THROW(BurstyWorkload(0, 0.9, 0.1, 0.05), std::invalid_argument);
  EXPECT_THROW(BurstyWorkload(8, -0.1, 0.1, 0.05), std::invalid_argument);
  EXPECT_THROW(BurstyWorkload(8, 0.0, 0.0, 0.05), std::invalid_argument);
  EXPECT_THROW(BurstyWorkload(8, 0.9, 0.1, 0.0), std::invalid_argument);
}

TEST(Bursty, PhaseToggles) {
  BurstyWorkload wl(8, 0.9, 0.1, 5.0);  // fast switching
  rng::Engine gen(5);
  const WorkloadContext ctx{4, 3};
  bool saw_on = false, saw_off = false;
  for (int i = 0; i < 2000 && !(saw_on && saw_off); ++i) {
    (void)wl.next(gen, ctx);
    (saw_on = saw_on || wl.on());
    (saw_off = saw_off || !wl.on());
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_off);
}

TEST(Bursty, OffPhaseWithZeroRateStillProgresses) {
  // lambda_off = 0: during off phases only departures and switches fire;
  // with an empty system the generator must still emit (the switch clock
  // eventually returns to the on phase).
  BurstyWorkload wl(8, 0.5, 0.0, 1.0);
  rng::Engine gen(6);
  const WorkloadContext empty{0, 0};
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(wl.next(gen, empty).kind, EventKind::kArrival);
  }
}

TEST(Chains, WeightsStayInRangeAndSkewSmall) {
  const std::uint32_t max_len = 6;
  ChainWorkload wl(16, 0.5, 1.2, max_len);
  rng::Engine gen(7);
  const WorkloadContext ctx{0, 0};
  std::uint64_t ones = 0, longest = 0, arrivals = 0;
  for (int i = 0; i < 5000; ++i) {
    const DynEvent ev = wl.next(gen, ctx);
    ASSERT_EQ(ev.kind, EventKind::kArrival);  // empty system: no departures
    ASSERT_GE(ev.weight, 1u);
    ASSERT_LE(ev.weight, max_len);
    ++arrivals;
    ones += ev.weight == 1 ? 1 : 0;
    longest += ev.weight == max_len ? 1 : 0;
  }
  // Zipf(1.2) strongly favors short chains.
  EXPECT_GT(ones, longest * 2);
  EXPECT_GT(wl.mean_length(), 1.0);
  EXPECT_LT(wl.mean_length(), static_cast<double>(max_len));
}

TEST(Chains, Validation) {
  EXPECT_THROW(ChainWorkload(0, 0.5, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ChainWorkload(8, 0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ChainWorkload(8, 1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(ChainWorkload(8, 0.5, 1.0, 0), std::invalid_argument);
}

TEST(Registry, BuildsEverySpecShape) {
  const std::uint32_t n = 16;
  EXPECT_EQ(make_workload("supermarket[90]", n)->name(), "supermarket[90]");
  EXPECT_EQ(make_workload("churn[100]", n)->name(), "churn[100]");
  EXPECT_EQ(make_workload("churn-oldest[64]", n)->name(), "churn-oldest[64]");
  EXPECT_EQ(make_workload("bursty[90,10,5]", n)->name(), "bursty[90,10,5]");
  EXPECT_EQ(make_workload("chains[50,120,8]", n)->name(), "chains[50,120,8]");
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW((void)make_workload("nope", 8), std::invalid_argument);
  EXPECT_THROW((void)make_workload("supermarket", 8), std::invalid_argument);
  EXPECT_THROW((void)make_workload("supermarket[100]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_workload("churn[]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_workload("bursty[90,10]", 8), std::invalid_argument);
  EXPECT_THROW((void)make_workload("chains[50,120]", 8), std::invalid_argument);
}

TEST(Registry, SpecsListIsNonEmpty) {
  EXPECT_GE(workload_specs().size(), 5u);
}

}  // namespace
}  // namespace bbb::dyn
